#!/usr/bin/env python3
"""Side-by-side engine comparison on one workload.

Runs the same mixed workload against bLSM, the update-in-place B-Tree
(InnoDB stand-in) and the leveled LSM (LevelDB stand-in), then prints a
comparison table — a miniature of the paper's Section 5 evaluation and
a template for benchmarking your own mixes.

Run:
    python examples/engine_comparison.py
"""

from repro import BLSMEngine, BLSMOptions, BTreeEngine, LevelDBEngine
from repro.ycsb import WorkloadSpec, load_phase, run_workload

RECORDS = 2000
OPERATIONS = 2000


def engines():
    yield BLSMEngine(BLSMOptions(c0_bytes=256 * 1024, buffer_pool_pages=32))
    yield BTreeEngine(page_size=16 * 1024, buffer_pool_pages=16)
    yield LevelDBEngine(
        memtable_bytes=64 * 1024,
        file_bytes=128 * 1024,
        level_base_bytes=512 * 1024,
        buffer_pool_pages=64,
    )


def main() -> None:
    load = WorkloadSpec(
        record_count=RECORDS, operation_count=0, value_bytes=500
    )
    serve = WorkloadSpec(
        record_count=RECORDS,
        operation_count=OPERATIONS,
        read_proportion=0.5,
        blind_write_proportion=0.3,
        scan_proportion=0.1,
        update_proportion=0.1,
        request_distribution="zipfian",
        value_bytes=500,
    )

    print(
        f"{'engine':10s}{'load ops/s':>12s}{'serve ops/s':>13s}"
        f"{'p99 (ms)':>10s}{'max (ms)':>10s}{'seeks':>8s}"
    )
    for engine in engines():
        loaded = load_phase(engine, load, seed=5)
        seeks_before = engine.seeks()
        result = run_workload(engine, serve, seed=6)
        latency = result.all_latencies()
        print(
            f"{engine.name:10s}{loaded.throughput:12.0f}"
            f"{result.throughput:13.0f}"
            f"{latency.percentile(99) * 1e3:10.2f}"
            f"{latency.max * 1e3:10.2f}"
            f"{engine.seeks() - seeks_before:8d}"
        )
        engine.close()


if __name__ == "__main__":
    main()
