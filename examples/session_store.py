#!/usr/bin/env python3
"""Interactive session store: the serving workload with a latency SLA.

Models the PNUTS-style use case bLSM was built for (Section 1): a
user-facing key-value store with a Zipfian request distribution, a mix
of reads, read-modify-writes and delta appends, and a strict latency
SLA.  Prints a latency report per operation class and checks the SLA.

Run:
    python examples/session_store.py
"""

import random

from repro import BLSM, BLSMOptions, DiskModel
from repro.ycsb import LatencyStats
from repro.ycsb.distributions import ScrambledZipfianChooser

USERS = 3000
OPERATIONS = 10000
SLA_P99_MS = 10.0


def main() -> None:
    db = BLSM(
        BLSMOptions(
            c0_bytes=256 * 1024,
            disk_model=DiskModel.ssd(),
            buffer_pool_pages=32,
        )
    )
    rng = random.Random(99)

    # Seed the session table with realistically sized session blobs,
    # then drain C0 so serving starts against on-disk components.
    blob = b'{"cart": [], "seen": [%s]}' % (b"0" * 400)
    for user in range(USERS):
        db.put(b"session/%06d" % user, blob)
    db.drain()

    chooser = ScrambledZipfianChooser(USERS)
    stats = {
        "read": LatencyStats(),
        "rmw": LatencyStats(),
        "delta": LatencyStats(),
    }
    for _ in range(OPERATIONS):
        user = chooser.next(rng)
        key = b"session/%06d" % user
        kind = rng.random()
        before = db.stasis.clock.now
        if kind < 0.70:
            db.get(key)
            bucket = "read"
        elif kind < 0.90:
            # Append a page-view event without reading first: the
            # zero-seek delta primitive (Section 3.1.1).
            db.apply_delta(key, b'+{"view": %06d}' % rng.randrange(10**6))
            bucket = "delta"
        else:
            db.read_modify_write(
                key, lambda old: (old or b"{}")[:64] + b'|checkout'
            )
            bucket = "rmw"
        stats[bucket].record(db.stasis.clock.now - before)

    elapsed = db.stasis.clock.now
    print(
        f"{OPERATIONS} ops over {USERS} users in {elapsed * 1e3:.1f} ms "
        f"of device time -> {OPERATIONS / elapsed:,.0f} ops/s"
    )
    print(f"{'class':8s}{'count':>8s}{'mean(us)':>10s}{'p99(us)':>10s}{'max(ms)':>9s}")
    for name, latency in stats.items():
        print(
            f"{name:8s}{latency.count:8d}{latency.mean * 1e6:10.1f}"
            f"{latency.percentile(99) * 1e6:10.1f}{latency.max * 1e3:9.2f}"
        )

    worst_p99_ms = max(l.percentile(99) for l in stats.values()) * 1e3
    verdict = "MET" if worst_p99_ms <= SLA_P99_MS else "MISSED"
    print(f"\nSLA p99 <= {SLA_P99_MS:.0f} ms: {verdict} (worst p99 {worst_p99_ms:.2f} ms)")
    db.close()


if __name__ == "__main__":
    main()
