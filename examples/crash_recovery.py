#!/usr/bin/env python3
"""Crash recovery and durability modes (Section 4.4.2).

Demonstrates the two-log recovery architecture: the physical WAL
restores the committed tree components, the logical log replays recent
writes, and Bloom filters are rebuilt (they are never persisted).
Contrasts the three durability modes:

* SYNC  — every write survives a crash;
* ASYNC — group commit: a recent unforced tail may be lost;
* NONE  — degraded mode: everything since the last merge may be lost,
          "useful for high-throughput replication".

Run:
    python examples/crash_recovery.py
"""

from repro import BLSM, BLSMOptions, DurabilityMode


def crash_and_recover(mode: DurabilityMode) -> None:
    options = BLSMOptions(c0_bytes=64 * 1024, durability=mode)
    db = BLSM(options)

    # Old data that reaches an on-disk component before the crash.
    for i in range(1500):
        db.put(b"old%04d" % i, b"durable")
    db.drain()

    # Recent writes that only live in C0 and the logical log.
    for i in range(20):
        db.put(b"recent%02d" % i, b"fresh")

    stasis = db.stasis
    read_before = stasis.data_disk.stats.bytes_read
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    replay_mb = (stasis.data_disk.stats.bytes_read - read_before) / 1e6

    old_ok = sum(
        1 for i in range(1500) if recovered.get(b"old%04d" % i) == b"durable"
    )
    recent_ok = sum(
        1 for i in range(20) if recovered.get(b"recent%02d" % i) == b"fresh"
    )
    print(
        f"{mode.value:5s} | old records {old_ok}/1500 | "
        f"recent records {recent_ok}/20 | "
        f"recovery read {replay_mb:.2f} MB (bloom rebuild + log replay)"
    )
    recovered.close()


def main() -> None:
    print("durability | what survives a crash")
    for mode in (DurabilityMode.SYNC, DurabilityMode.ASYNC, DurabilityMode.NONE):
        crash_and_recover(mode)
    print(
        "\nSYNC keeps everything; ASYNC may lose the unforced group-commit"
        "\ntail; NONE (degraded, for replication) keeps only what merges"
        "\nmade durable — exactly the Section 4.4.2 semantics."
    )


if __name__ == "__main__":
    main()
