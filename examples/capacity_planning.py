#!/usr/bin/env python3
"""Capacity planning with open-loop load curves.

The paper benchmarks under continuous overload; production systems
throttle (Section 5.1).  This example answers the operator's question:
*how much offered load can this store absorb while meeting a p99 SLA?*
It measures the closed-loop capacity, sweeps offered load with the
open-loop runner, prints the latency curve, and reports the highest
load that meets the SLA.

Run:
    python examples/capacity_planning.py
"""

from repro import BLSMEngine, BLSMOptions, DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_open_loop, run_workload

SLA_P99_MS = 2.0
RECORDS = 3000
OPS = 2500


def fresh_engine():
    engine = BLSMEngine(
        BLSMOptions(
            c0_bytes=512 * 1024,
            buffer_pool_pages=64,
            disk_model=DiskModel.ssd(),
        )
    )
    spec = WorkloadSpec(
        record_count=RECORDS, operation_count=0, value_bytes=1000
    )
    load_phase(engine, spec, seed=1)
    engine.tree.compact()
    return engine


def serving_spec():
    return WorkloadSpec(
        record_count=RECORDS,
        operation_count=OPS,
        read_proportion=0.8,
        blind_write_proportion=0.2,
        request_distribution="zipfian",
        value_bytes=1000,
    )


def main() -> None:
    capacity = run_workload(fresh_engine(), serving_spec(), seed=2).throughput
    print(f"closed-loop capacity: {capacity:,.0f} ops/s (saturated device)\n")
    print(f"{'offered load':>14s}{'p50 (ms)':>10s}{'p99 (ms)':>10s}{'meets SLA':>11s}")

    best_load = 0.0
    for fraction in (0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.2):
        rate = fraction * capacity
        result = run_open_loop(
            fresh_engine(), serving_spec(), offered_rate=rate, seed=2,
            poisson=True,
        )
        p50 = result.latency.percentile(50) * 1e3
        p99 = result.latency.percentile(99) * 1e3
        meets = p99 <= SLA_P99_MS and not result.saturated
        if meets:
            best_load = max(best_load, rate)
        print(
            f"{rate:12,.0f}/s{p50:10.3f}{p99:10.3f}"
            f"{'yes' if meets else 'NO':>11s}"
        )

    print(
        f"\nhighest load meeting p99 <= {SLA_P99_MS:.0f} ms: "
        f"{best_load:,.0f} ops/s "
        f"({best_load / capacity:.0%} of saturated capacity)"
    )
    print(
        "Past the knee the queue grows without bound — the 100s-of-ms\n"
        "latencies of the paper's overload methodology (Section 5.1)."
    )


if __name__ == "__main__":
    main()
