#!/usr/bin/env python3
"""Event-log ingestion: the analytical workload from the paper's intro.

"Applications that ingest event logs (such as user clicks and mobile
device sensor readings), and later mine the data by issuing long scans,
or targeted point queries" (Section 1).  This example:

1. ingests a stream of click events with ``insert_if_not_exists``
   (deduplicating retried deliveries at zero seeks);
2. reports windowed ingest throughput — steady, no write pauses;
3. runs the mining phase: a long scan per user and targeted lookups.

Run:
    python examples/event_log_ingest.py
"""

import random

from repro import BLSM, BLSMOptions
from repro.ycsb import Timeseries

EVENTS = 8000
USERS = 40


def event_key(user: int, event_id: int) -> bytes:
    return b"click/%04d/%012d" % (user, event_id)


def main() -> None:
    db = BLSM(BLSMOptions(c0_bytes=512 * 1024))
    rng = random.Random(7)
    series = Timeseries(window_seconds=0.01)

    # --- ingest phase -------------------------------------------------
    duplicates = 0
    ingested: list[bytes] = []
    for event_id in range(EVENTS):
        user = rng.randrange(USERS)
        payload = b"{page: %06d, dwell_ms: %04d}" % (
            rng.randrange(10**6),
            rng.randrange(10**4),
        )
        before = db.stasis.clock.now
        inserted = db.insert_if_not_exists(event_key(user, event_id), payload)
        series.record(before, db.stasis.clock.now - before)
        if inserted:
            ingested.append(event_key(user, event_id))
        else:
            duplicates += 1
        if rng.random() < 0.02:  # at-least-once delivery retries a batch
            retry_user, retry_id = user, event_id
            if not db.insert_if_not_exists(
                event_key(retry_user, retry_id), payload
            ):
                duplicates += 1

    elapsed = db.stasis.clock.now
    print(f"ingested {EVENTS} events in {elapsed * 1e3:.1f} ms of device time")
    print(f"  -> {EVENTS / elapsed:,.0f} events/s, {duplicates} duplicates dropped")
    throughputs = [t for t in series.throughputs() if t > 0]
    print(
        f"  windowed ingest rate: min {min(throughputs):,.0f} "
        f"max {max(throughputs):,.0f} events/s "
        f"({len(throughputs)} windows, no outages)"
    )

    # --- mining phase: one user's clickstream -------------------------
    user = 7
    before = db.stasis.clock.now
    events = list(db.scan(b"click/%04d/" % user, b"click/%04d0" % user))
    scan_ms = (db.stasis.clock.now - before) * 1e3
    print(f"scanned user {user}: {len(events)} events in {scan_ms:.2f} ms")

    # --- targeted point queries ---------------------------------------
    before = db.stasis.clock.now
    seeks_before = db.stasis.data_disk.stats.seeks
    hits = sum(
        1 for _ in range(200) if db.get(rng.choice(ingested)) is not None
    )
    seeks = db.stasis.data_disk.stats.seeks - seeks_before
    print(
        f"200 point queries: {hits} hits, {seeks} seeks "
        f"({seeks / 200:.2f} per probe) in "
        f"{(db.stasis.clock.now - before) * 1e3:.1f} ms"
    )
    db.close()


if __name__ == "__main__":
    main()
