#!/usr/bin/env python3
"""Watch the I/O: why log-structured writes win (Section 2).

Traces every device access while bLSM and the update-in-place B-Tree
apply the same writes, then prints the access patterns side by side:
the B-Tree's scattered read-modify-write seeks vs bLSM's long
sequential merge runs — the paper's core argument made visible.

Run:
    python examples/io_trace.py
"""

from repro import BLSM, BLSMOptions, BTreeEngine

WRITES = 400
VALUE = bytes(1000)


def pattern(events, limit=20):
    """Compact one-line-per-access rendering of a device trace."""
    lines = []
    for event in events[:limit]:
        marker = "SEEK" if event.seek else "  ->"
        lines.append(
            f"  {marker} {event.kind:5s} off={event.offset:>10,d} "
            f"len={event.nbytes:>7,d}  {event.service * 1e3:6.3f} ms"
        )
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} more accesses")
    return lines


def summarize(name, events, elapsed):
    seeks = sum(1 for e in events if e.seek)
    moved = sum(e.nbytes for e in events)
    print(f"\n{name}: {len(events)} accesses, {seeks} seeks, "
          f"{moved / 1e6:.2f} MB, {elapsed * 1e3:.1f} ms of device time")
    print("\n".join(pattern(events)))


def main() -> None:
    # --- update-in-place -----------------------------------------------
    btree = BTreeEngine(page_size=4096, buffer_pool_pages=8)
    for i in range(WRITES):  # populate first so updates hit real leaves
        btree.put(b"key%04d" % i, VALUE)
    btree.flush()
    btree.stasis.data_disk.start_trace()
    before = btree.clock.now
    import random

    rng = random.Random(0)
    for _ in range(WRITES):
        btree.put(b"key%04d" % rng.randrange(WRITES), VALUE)
    btree.flush()
    summarize(
        "B-Tree random updates (read page, write it back)",
        btree.stasis.data_disk.stop_trace(),
        btree.clock.now - before,
    )

    # --- log-structured --------------------------------------------------
    tree = BLSM(BLSMOptions(c0_bytes=64 * 1024, buffer_pool_pages=8))
    for i in range(WRITES):
        tree.put(b"key%04d" % i, VALUE)
    tree.drain()
    tree.stasis.data_disk.start_trace()
    before = tree.stasis.clock.now
    for _ in range(WRITES):
        tree.put(b"key%04d" % rng.randrange(WRITES), VALUE)
    tree.drain()
    summarize(
        "bLSM blind updates (sequential merge runs)",
        tree.stasis.data_disk.stop_trace(),
        tree.stasis.clock.now - before,
    )

    print(
        "\nSame logical work; the B-Tree pays an access per page while the"
        "\nLSM turns everything into a handful of long sequential transfers."
    )


if __name__ == "__main__":
    main()
