#!/usr/bin/env python3
"""Quickstart: the bLSM public API in two minutes.

Creates a tree over the simulated hard disk, exercises every public
operation — blind writes, reads, insert-if-not-exists, deltas, deletes,
scans, read-modify-write — and prints the I/O the virtual device
actually performed.

Run:
    python examples/quickstart.py
"""

from repro import BLSM, BLSMOptions


def main() -> None:
    db = BLSM(BLSMOptions(c0_bytes=256 * 1024))

    # Blind writes never touch the disk's read head (Table 1).
    for i in range(1000):
        db.put(b"user%04d" % i, b"profile-%04d" % i)

    print("get user0042          ->", db.get(b"user0042"))
    print("get missing           ->", db.get(b"no-such-user"))

    # insert-if-not-exists: the existence check is answered by Bloom
    # filters, so inserting fresh keys costs zero seeks (Section 3.1.2).
    print("insert new user       ->", db.insert_if_not_exists(b"user9999", b"new"))
    print("insert duplicate      ->", db.insert_if_not_exists(b"user0042", b"dup"))

    # Deltas are zero-seek partial updates, folded on read (Section 3.1.1).
    db.put(b"counter", b"v1")
    db.apply_delta(b"counter", b"+v2")
    db.apply_delta(b"counter", b"+v3")
    print("delta-folded value    ->", db.get(b"counter"))

    # Read-modify-write: one seek instead of a B-Tree's two (Table 1).
    db.read_modify_write(b"user0001", lambda old: (old or b"") + b"!")
    print("after RMW             ->", db.get(b"user0001"))

    db.delete(b"user0000")
    print("after delete          ->", db.get(b"user0000"))

    # Ordered scans merge every tree component (Section 3.3).
    print("scan user0040..44     ->")
    for key, value in db.scan(b"user0040", b"user0045"):
        print("   ", key, value)

    stats = db.stats()
    print()
    print(f"virtual time elapsed  -> {stats['clock_seconds'] * 1e3:.2f} ms")
    print(f"device seeks          -> {stats['data_seeks']}")
    print(
        "component sizes       ->",
        {k: stats[k] for k in ("c0", "c1", "c1_prime", "c2")},
    )
    db.close()


if __name__ == "__main__":
    main()
