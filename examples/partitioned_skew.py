#!/usr/bin/env python3
"""Partitioned bLSM under write skew (the paper's Section 4.2.2 design).

Loads an ordered keyspace, then hammers a hot key range with
clustered-Zipfian writes, comparing the unpartitioned tree against the
partitioned one: the greedy merge selector (Figure 3) concentrates
merge work on the hot partitions and leaves cold partitions untouched.

Run:
    python examples/partitioned_skew.py
"""

import random

from repro import BLSM, BLSMOptions, PartitionedBLSM
from repro.ycsb.distributions import ZipfianChooser

RECORDS = 3000
HOT_WRITES = 5000
VALUE = bytes(300)


def build(tree):
    for i in range(RECORDS):
        tree.put(b"key%08d" % i, VALUE)
    tree.drain()


def hammer(tree):
    chooser = ZipfianChooser(RECORDS)  # clustered: hot keys are adjacent
    rng = random.Random(11)
    written_before = tree.stasis.data_disk.stats.bytes_written
    clock_before = tree.stasis.clock.now
    worst = 0.0
    for i in range(HOT_WRITES):
        t = tree.stasis.clock.now
        tree.put(b"key%08d" % chooser.next(rng), VALUE)
        worst = max(worst, tree.stasis.clock.now - t)
    merged = tree.stasis.data_disk.stats.bytes_written - written_before
    elapsed = tree.stasis.clock.now - clock_before
    return {
        "ops_per_s": HOT_WRITES / elapsed,
        "write_amp": merged / (HOT_WRITES * len(VALUE)),
        "worst_ms": worst * 1e3,
    }


def main() -> None:
    options = dict(c0_bytes=256 * 1024, buffer_pool_pages=64)

    flat = BLSM(BLSMOptions(**options))
    build(flat)
    flat_result = hammer(flat)

    parted = PartitionedBLSM(
        BLSMOptions(**options), max_partition_bytes=512 * 1024
    )
    build(parted)
    parted_result = hammer(parted)

    print(f"{'variant':16s}{'ops/s':>10s}{'write amp':>11s}{'worst (ms)':>12s}")
    for name, row in (
        ("unpartitioned", flat_result),
        ("partitioned", parted_result),
    ):
        print(
            f"{name:16s}{row['ops_per_s']:10.0f}{row['write_amp']:11.2f}"
            f"{row['worst_ms']:12.2f}"
        )
    print(
        f"\npartitioned tree split the keyspace into "
        f"{parted.partition_count} ranges:"
    )
    for lo, hi in parted.partition_ranges():
        print(f"  [{lo.decode(errors='replace') or '-inf':>12s}, "
              f"{(hi.decode(errors='replace') if hi else '+inf'):>12s})")
    speedup = parted_result["ops_per_s"] / flat_result["ops_per_s"]
    print(f"\nskewed-write speedup from partitioning: {speedup:.2f}x")


if __name__ == "__main__":
    main()
