#!/usr/bin/env python3
"""Log-shipping replication with degraded durability (Section 4.4.2).

bLSM's no-logging durability mode exists for exactly this: "after a
crash, older (up to a well-defined point in time) updates are
available, but recent updates may be lost.  These semantics are useful
for high-throughput replication" — the replica's durability comes from
the *shipped log*, not a local one (bLSM grew out of Rose, a
log-structured replication engine).

This example runs a primary that ships its operation stream (the trace
format from ``repro.ycsb.trace``), and a replica applying it with
``DurabilityMode.NONE``.  The replica then crashes: everything its
merges made durable survives; the lost tail is re-applied by replaying
the shipped log from the replica's recovery point.

Run:
    python examples/replication.py
"""

import io
import random

from repro import BLSM, BLSMOptions, DurabilityMode
from repro.ycsb.generator import Operation, OpKind
from repro.ycsb.trace import read_trace, write_trace

UPDATES = 4000
KEYSPACE = 1200


def apply(tree: BLSM, op: Operation) -> None:
    if op.kind is OpKind.BLIND_WRITE:
        tree.put(op.key, op.value or b"")
    elif op.kind is OpKind.DELETE:
        tree.delete(op.key)


def main() -> None:
    rng = random.Random(3)

    # --- primary: generate writes and ship them as a trace -------------
    primary = BLSM(BLSMOptions(c0_bytes=64 * 1024))
    shipped: list[Operation] = []
    for i in range(UPDATES):
        key = b"row%05d" % rng.randrange(KEYSPACE)
        if rng.random() < 0.9:
            op = Operation(OpKind.BLIND_WRITE, key, b"v%06d" % i)
        else:
            op = Operation(OpKind.DELETE, key)
        apply(primary, op)
        shipped.append(op)
    wire = io.StringIO()
    write_trace(shipped, wire)
    print(
        f"primary: applied {UPDATES} updates, shipped "
        f"{len(wire.getvalue()) / 1024:.1f} KB of log"
    )

    # --- replica: apply with no local logging --------------------------
    replica_options = BLSMOptions(
        c0_bytes=64 * 1024, durability=DurabilityMode.NONE
    )
    replica = BLSM(replica_options)
    wire.seek(0)
    applied = 0
    for op in read_trace(wire):
        apply(replica, op)
        applied += 1
    log_mb = replica.stasis.log_disk.stats.bytes_written / 1e6
    print(
        f"replica: applied {applied} updates with durability=none "
        f"({log_mb:.2f} MB of local log written — manifests only)"
    )

    # --- replica crash + catch-up ---------------------------------------
    expected = dict(primary.scan(b""))
    stasis = replica.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, replica_options)
    after_crash = dict(recovered.scan(b""))
    lost = {
        k: v for k, v in expected.items() if after_crash.get(k) != v
    }
    print(
        f"replica crash: {len(after_crash)} rows durable, "
        f"{len(lost)} rows stale/missing (the un-merged tail)"
    )

    # Catch up by replaying the shipped log from the recovery point —
    # replay is idempotent thanks to blind base/tombstone writes.
    wire.seek(0)
    for op in read_trace(wire):
        apply(recovered, op)
    caught_up = dict(recovered.scan(b""))
    assert caught_up == expected
    print(f"replayed shipped log: replica now matches primary "
          f"({len(caught_up)} rows) — zero local commit latency paid")


if __name__ == "__main__":
    main()
