"""Section 5.3: random read performance.

The paper's headline here: read amplification "is no longer the case"
for Bloom-filtered LSM-Trees — bLSM performs about one disk seek per
uncached read, on par with (and in their measurements ahead of) InnoDB,
while LevelDB performs multiple seeks per read.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, make_btree, make_leveldb, report
from repro.ycsb import WorkloadSpec, load_phase, run_workload


def _measure():
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    reads = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=1500,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    rows = {}
    for name, engine in (
        ("bLSM", make_blsm()),
        ("InnoDB", make_btree()),
        ("LevelDB", make_leveldb()),
    ):
        load_phase(engine, load, seed=11)
        engine.flush()
        seeks_before = engine.seeks()
        result = run_workload(engine, reads, seed=12)
        rows[name] = {
            "throughput": result.throughput,
            "seeks_per_read": (engine.seeks() - seeks_before)
            / result.operations,
        }
    return rows


def test_sec53_random_reads(run_once):
    rows = run_once(_measure)

    lines = [f"{'system':10s}{'ops/s':>10s}{'seeks/read':>12s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:10s}{row['throughput']:10.0f}{row['seeks_per_read']:12.2f}"
        )
    report("sec53_random_reads", lines)

    # About one seek per uncached read for bLSM and InnoDB (the paper
    # confirmed this underlying metric for both systems).
    assert rows["bLSM"]["seeks_per_read"] <= 1.15
    assert rows["InnoDB"]["seeks_per_read"] <= 1.15
    # LevelDB performs multiple seeks per read, as expected.
    assert rows["LevelDB"]["seeks_per_read"] >= 2.0
    # Throughput ordering follows: bLSM at least on par with InnoDB,
    # both well ahead of LevelDB.
    assert rows["bLSM"]["throughput"] >= 0.8 * rows["InnoDB"]["throughput"]
    assert rows["bLSM"]["throughput"] > 2 * rows["LevelDB"]["throughput"]
