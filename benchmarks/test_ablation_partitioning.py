"""Ablation (Sections 2.3.2, 4.2.2, 5.5): partitioning and write skew.

The paper identifies two problems partitioning solves, and defers the
implementation; this repository implements it, so the ablation measures
both claims directly against the unpartitioned tree:

1. **Write skew** — "breaking the LSM-Tree into smaller trees and
   merging the trees according to their update rates concentrates merge
   activity on frequently updated key ranges": under clustered-Zipfian
   writes the partitioned tree moves far fewer merge bytes per write.

2. **Distribution shift** — "if the distribution of the keys of
   incoming writes varies significantly from the existing distribution,
   then large ranges of the larger tree component may be disjoint from
   the smaller tree.  Without partitioning, merge threads needlessly
   copy the disjoint data": after shifting all writes to a fresh key
   range, the unpartitioned tree keeps rewriting the cold bulk while
   the partitioned tree leaves cold partitions untouched.

Also reports Section 3.3's scan payoff: at most two on-disk components
per partition outside the merge.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.baselines import PartitionedBLSMEngine
from repro.core import BLSMOptions
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_workload


def make_partitioned(**overrides):
    options = dict(
        c0_bytes=SCALE.c0_bytes,
        buffer_pool_pages=SCALE.cache_pages(4096),
        disk_model=DiskModel.hdd(),
    )
    options.update(overrides)
    return PartitionedBLSMEngine(
        BLSMOptions(**options), max_partition_bytes=2 * SCALE.c0_bytes
    )


def _skewed_write_run(engine):
    """Load uniformly, then hammer a clustered-Zipfian hot range."""
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
        ordered_inserts=True,  # clustered skew needs ordered keys
    )
    load_phase(engine, load, seed=51)
    skewed = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=4000,
        blind_write_proportion=1.0,
        request_distribution="zipfian_clustered",
        value_bytes=SCALE.value_bytes,
        ordered_inserts=True,
    )
    before = engine.io_summary()["data_bytes_written"]
    result = run_workload(engine, skewed, seed=52)
    merged_bytes = engine.io_summary()["data_bytes_written"] - before
    app_bytes = 4000 * SCALE.value_bytes
    return {
        "throughput": result.throughput,
        "write_amp": merged_bytes / app_bytes,
        "max_latency_ms": result.all_latencies().max * 1e3,
    }


def _shift_run(engine):
    """Fill range A, then bulk-insert a disjoint range B in *reverse*
    key order — the paper's adversarial case (§5.5): reverse order
    defeats snowshoveling (memory-sized runs), so every pass rewrites
    the accumulated B data, and promotions recopy the cold A bulk."""
    for i in range(SCALE.record_count):
        engine.put(b"a/%012d" % i, bytes(SCALE.value_bytes))
    before_bytes = engine.io_summary()["data_bytes_written"]
    before_clock = engine.clock.now
    worst = 0.0
    n = SCALE.record_count
    for i in range(n - 1, -1, -1):
        t = engine.clock.now
        engine.put(b"b/%012d" % i, bytes(SCALE.value_bytes))
        worst = max(worst, engine.clock.now - t)
    merged = engine.io_summary()["data_bytes_written"] - before_bytes
    elapsed = engine.clock.now - before_clock
    return {
        "throughput": n / elapsed,
        "write_amp": merged / (n * SCALE.value_bytes),
        "max_latency_ms": worst * 1e3,
    }


def _measure():
    return {
        "skewed writes": {
            "unpartitioned": _skewed_write_run(make_blsm()),
            "partitioned": _skewed_write_run(make_partitioned()),
        },
        "distribution shift": {
            "unpartitioned": _shift_run(make_blsm()),
            "partitioned": _shift_run(make_partitioned()),
        },
    }


def test_ablation_partitioning(run_once):
    rows = run_once(_measure)

    lines = []
    for scenario, variants in rows.items():
        lines.append(scenario)
        lines.append(
            f"  {'variant':16s}{'ops/s':>10s}{'write amp':>11s}"
            f"{'max lat (ms)':>14s}"
        )
        for variant, row in variants.items():
            lines.append(
                f"  {variant:16s}{row['throughput']:10.0f}"
                f"{row['write_amp']:11.2f}{row['max_latency_ms']:14.2f}"
            )
    report("ablation_partitioning", lines)

    skew = rows["skewed writes"]
    shift = rows["distribution shift"]
    # Skew: partitioning concentrates merges on hot ranges, cutting the
    # merge I/O per application byte and raising throughput.
    assert skew["partitioned"]["write_amp"] < skew["unpartitioned"]["write_amp"]
    assert (
        skew["partitioned"]["throughput"]
        > skew["unpartitioned"]["throughput"]
    )
    # Shift: without partitioning the disjoint cold bulk is recopied by
    # every promotion; with it, cold partitions are never touched, so
    # amplification, throughput and the worst stall all improve.
    assert (
        shift["partitioned"]["write_amp"]
        < shift["unpartitioned"]["write_amp"]
    )
    assert (
        shift["partitioned"]["throughput"]
        > shift["unpartitioned"]["throughput"]
    )
    assert (
        shift["partitioned"]["max_latency_ms"]
        < shift["unpartitioned"]["max_latency_ms"]
    )


def test_partitioned_scans_need_two_components(run_once):
    def measure():
        engine = make_partitioned()
        for i in range(SCALE.record_count * 2):
            engine.put(
                b"key%012d" % (i % SCALE.record_count), bytes(SCALE.value_bytes)
            )
        engine.tree.drain()
        tree = engine.tree
        worst = 0
        for lo, hi in tree.partition_ranges():
            if not tree._partitions[tree._partition_index(lo)].merging:
                worst = max(worst, tree.components_in_range(lo, hi))
        return tree.partition_count, worst

    partitions, worst = run_once(measure)
    report(
        "partitioned_scan_components",
        [
            f"partitions: {partitions}",
            f"max on-disk components per non-merging partition: {worst}",
        ],
    )
    assert partitions > 1
    assert worst <= 2  # Section 3.3's two-seek scans