"""Ablation (Section 3.2): what to do when merges fall behind.

The paper surveys the practical options before proposing level
schedulers:

* **stall** (the base algorithm): block writes until merges catch up —
  unbounded write pauses;
* **extra components** (HBase with compaction disabled, Cassandra
  1.0's overlapping partitions): never stall, but every extra
  overlapping component adds a seek to scans — "this approach still
  severely impacts scan performance";
* **level scheduling** (spring and gear): steady merge progress bounds
  write latency *and* keeps the component count fixed.

This bench drives the same insert stream through all three policies
and measures worst-case insert latency, then the scan cost of the
state each policy leaves behind.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.ycsb import WorkloadSpec, load_phase, run_workload

CONFIGS = [
    ("stall (naive)", dict(scheduler="naive", snowshovel=False)),
    (
        "extra components",
        dict(scheduler="naive", snowshovel=True, extra_components=True),
    ),
    ("spring+gear", dict(scheduler="spring_gear", snowshovel=True)),
]


def _run(overrides):
    engine = make_blsm(**overrides)
    load = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    result = load_phase(engine, load, seed=131)
    scans = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=300,
        scan_proportion=1.0,
        scan_length_min=1,
        scan_length_max=4,
        value_bytes=SCALE.value_bytes,
    )
    scan_result = run_workload(engine, scans, seed=132)
    sizes = engine.tree.component_sizes()
    return {
        "write_max_ms": result.all_latencies().max * 1e3,
        "write_ops": result.throughput,
        "scan_ops": scan_result.throughput,
        "extras": len(engine.tree._extras),
        "disk_components": sum(
            1
            for c in (engine.tree._c1, engine.tree._c1_prime, engine.tree._c2)
            if c is not None
        )
        + len(engine.tree._extras),
        "sizes": sizes,
    }


def _measure():
    return {name: _run(overrides) for name, overrides in CONFIGS}


def test_ablation_stall_strategies(run_once):
    rows = run_once(_measure)

    lines = [
        f"{'policy':18s}{'write ops/s':>12s}{'max write (ms)':>16s}"
        f"{'scan ops/s':>12s}{'components':>12s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:18s}{row['write_ops']:12.0f}{row['write_max_ms']:16.2f}"
            f"{row['scan_ops']:12.0f}{row['disk_components']:12d}"
        )
    report("ablation_stall_strategies", lines)

    stall = rows["stall (naive)"]
    extras = rows["extra components"]
    spring = rows["spring+gear"]
    # Extras and spring+gear both bound write latency far below stall.
    assert extras["write_max_ms"] < stall["write_max_ms"] / 3
    assert spring["write_max_ms"] < stall["write_max_ms"] / 3
    # The workaround's price: more components on disk, slower scans
    # than the level scheduler (§3.2's argument).
    assert extras["extras"] >= 1
    assert extras["disk_components"] > spring["disk_components"]
    assert extras["scan_ops"] < spring["scan_ops"]