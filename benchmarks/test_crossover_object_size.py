"""Section 2's crossover: where update-in-place starts winning writes.

Analytic half: crossover object sizes per device and write
amplification.  Measured half: sweep the value size on the HDD model
and find where InnoDB's blind-write throughput overtakes bLSM's — the
paper's closing caveat ("we target applications that manage small
pieces of data").
"""

from __future__ import annotations

from benchmarks.conftest import make_blsm, make_btree, report
from repro.analysis import crossover_object_bytes, crossover_table
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_workload

VALUE_SIZES = [1_000, 10_000, 50_000, 200_000, 800_000]


def _blind_write_throughput(make_engine, value_bytes: int) -> float:
    engine = make_engine()
    records = max(40, 2_000_000 // value_bytes)
    load = WorkloadSpec(
        record_count=records, operation_count=0, value_bytes=value_bytes
    )
    load_phase(engine, load, seed=141)
    engine.flush()
    spec = WorkloadSpec(
        record_count=records,
        operation_count=200,
        blind_write_proportion=1.0,
        value_bytes=value_bytes,
    )
    return run_workload(engine, spec, seed=142).throughput


def _measure():
    sweep = {}
    for value_bytes in VALUE_SIZES:
        sweep[value_bytes] = {
            "bLSM": _blind_write_throughput(make_blsm, value_bytes),
            "InnoDB": _blind_write_throughput(make_btree, value_bytes),
        }
    return crossover_table(), sweep


def test_crossover_object_size(run_once):
    analytic, sweep = run_once(_measure)

    lines = ["analytic crossover object size (update-in-place wins above):"]
    lines.append(
        f"{'device':12s}{'access':>10s}"
        + "".join(f"{'WA=%g' % wa:>12s}" for wa in (4.0, 8.0, 16.0, 32.0))
    )
    for name, access, sizes in analytic:
        row = f"{name:12s}{access * 1e3:8.2f}ms"
        for size in sizes:
            row += (
                f"{'inf':>12s}" if size == float("inf") else f"{size:12,.0f}"
            )
        lines.append(row)
    lines.append("")
    lines.append("measured blind-write throughput (HDD):")
    lines.append(f"{'value bytes':>12s}{'bLSM':>10s}{'InnoDB':>10s}{'winner':>9s}")
    for value_bytes, row in sweep.items():
        winner = "bLSM" if row["bLSM"] >= row["InnoDB"] else "InnoDB"
        lines.append(
            f"{value_bytes:12,d}{row['bLSM']:10.0f}{row['InnoDB']:10.0f}"
            f"{winner:>9s}"
        )
    report("crossover_object_size", lines)

    # Analytic: slower seeks push the crossover up; SSDs pull it down.
    hdd = crossover_object_bytes(DiskModel.hdd(), 8.0)
    ssd = crossover_object_bytes(DiskModel.ssd(), 8.0)
    assert hdd > 5 * ssd
    # Measured: bLSM dominates small objects; InnoDB takes over as the
    # object size grows (Section 2's crossover exists and is visible).
    assert sweep[1_000]["bLSM"] > 3 * sweep[1_000]["InnoDB"]
    biggest = VALUE_SIZES[-1]
    assert sweep[biggest]["InnoDB"] > sweep[biggest]["bLSM"]
    # The measured crossover falls within the analytic ballpark for the
    # HDD profile at this tree's amplification (an order-of-magnitude
    # check, not a point estimate).
    flips = [
        size
        for size in VALUE_SIZES
        if sweep[size]["InnoDB"] > sweep[size]["bLSM"]
    ]
    assert flips, "InnoDB never won: no crossover observed"
    measured_crossover = flips[0]
    analytic_hdd = crossover_object_bytes(DiskModel.hdd(), 8.0)
    assert analytic_hdd / 30 < measured_crossover < analytic_hdd * 30