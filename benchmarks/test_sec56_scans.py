"""Section 5.6: scan performance after fragmentation.

The paper runs scans *last*, after the read-write tests fragmented the
B-Tree, and measures:

* short scans (1-4 rows): InnoDB reads one page, bLSM touches every
  tree component — InnoDB wins (608 vs 385 scans/sec, about 1.6x);
* longer scans (1-100 rows): B-Tree fragmentation erases the advantage
  — bLSM wins (165 vs 86 scans/sec, about 1.9x).
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, make_btree, report
from repro.ycsb import WorkloadSpec, load_phase, run_workload


def _fragmenting_phase(engine):
    """The read-write phase the paper runs before its scan experiment."""
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=2000,
        read_proportion=0.5,
        update_proportion=0.5,
        value_bytes=SCALE.value_bytes,
    )
    run_workload(engine, spec, seed=13)
    engine.flush()


def _scan_throughput(engine, scan_min, scan_max):
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=400,
        scan_proportion=1.0,
        scan_length_min=scan_min,
        scan_length_max=scan_max,
        value_bytes=SCALE.value_bytes,
    )
    return run_workload(engine, spec, seed=14).throughput


def _measure():
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    engines = {"bLSM": make_blsm(), "InnoDB": make_btree()}
    rows = {}
    for name, engine in engines.items():
        load_phase(engine, load, seed=13)
        _fragmenting_phase(engine)
        rows[name] = {
            "short scans (1-4 rows)": _scan_throughput(engine, 1, 4),
            "long scans (1-100 rows)": _scan_throughput(engine, 1, 100),
        }
    if hasattr(engines["InnoDB"], "fragmentation"):
        rows["InnoDB"]["fragmentation"] = engines["InnoDB"].fragmentation()
    return rows


def test_sec56_scans(run_once):
    rows = run_once(_measure)

    lines = [f"{'workload':26s}{'bLSM':>10s}{'InnoDB':>10s}"]
    for metric in ("short scans (1-4 rows)", "long scans (1-100 rows)"):
        lines.append(
            f"{metric:26s}{rows['bLSM'][metric]:10.0f}"
            f"{rows['InnoDB'][metric]:10.0f}"
        )
    lines.append(
        f"{'InnoDB leaf fragmentation':26s}"
        f"{rows['InnoDB'].get('fragmentation', 0.0):>20.2f}"
    )
    report("sec56_scans", lines)

    short_blsm = rows["bLSM"]["short scans (1-4 rows)"]
    short_inno = rows["InnoDB"]["short scans (1-4 rows)"]
    long_blsm = rows["bLSM"]["long scans (1-100 rows)"]
    long_inno = rows["InnoDB"]["long scans (1-100 rows)"]
    # Short scans: the sole experiment InnoDB wins (~1.6x in the paper).
    assert short_inno > short_blsm
    assert short_inno < 6 * short_blsm  # but not by an order of magnitude
    # Long scans: fragmentation erases InnoDB's advantage (~1.9x bLSM).
    assert long_blsm > long_inno
