"""Appendix A: measured read fanout and memory overheads.

The appendix computes a read fanout — data addressed per byte of index
RAM — of ``page_size / key_size`` (~40 for 100-byte keys on 4 KB
pages), and a Bloom overhead of ~5 % of index RAM (1.25 bytes/key with
four ~1 KB records per leaf).  This bench builds a real tree with the
appendix's record shape and measures both from the live structures.
"""

from __future__ import annotations

from benchmarks.conftest import make_blsm, report
from repro.analysis import read_fanout

KEY_BYTES = 100
VALUE_BYTES = 1000
RECORDS = 4000


def _measure():
    engine = make_blsm(c0_bytes=256 * 1024)
    for i in range(RECORDS):
        key = (b"user%09d" % i).ljust(KEY_BYTES, b"x")
        engine.put(key, bytes(VALUE_BYTES))
    engine.tree.compact()
    footprint = engine.tree.memory_footprint()
    data_bytes = engine.tree.component_sizes()["c2"]
    return {
        "analytic_fanout": read_fanout(4096, KEY_BYTES, VALUE_BYTES),
        "measured_fanout": data_bytes / max(1, footprint["index"]),
        "bloom_per_key": footprint["bloom"] / RECORDS,
        "bloom_over_index": footprint["bloom"] / max(1, footprint["index"]),
        "index_bytes": footprint["index"],
        "data_bytes": data_bytes,
    }


def test_appendix_a_read_fanout(run_once):
    row = run_once(_measure)

    lines = [
        f"data bytes            {row['data_bytes']:12,d}",
        f"index RAM             {row['index_bytes']:12,d}",
        f"read fanout analytic  {row['analytic_fanout']:12.1f}",
        f"read fanout measured  {row['measured_fanout']:12.1f}",
        f"bloom bytes per key   {row['bloom_per_key']:12.2f}",
        f"bloom / index RAM     {row['bloom_over_index']:12.2%}",
    ]
    report("appendix_a_read_fanout", lines)

    # The appendix's ~40x fanout, within a factor accounting for block
    # alignment (our index entry also stores a length).
    assert 20 < row["measured_fanout"] < 80
    assert row["measured_fanout"] > 0.5 * row["analytic_fanout"]
    # ~1.25 bytes/key of Bloom RAM (10 bits at 1% FPR).
    assert 1.0 < row["bloom_per_key"] < 1.6
    # "Bloom filters would increase memory utilization by about 5%".
    assert row["bloom_over_index"] < 0.15