"""Figure 7: random-order insert timeseries — bLSM vs LevelDB.

The paper loads the same unordered data into both systems and plots
windowed throughput and per-operation latency.  bLSM's throughput is
predictable (it varies by a bit under a factor of two, Section 4.1) and
it finishes earlier; LevelDB exhibits long pauses — multi-second write
outages — and takes longer overall (Section 5.2).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import SCALE, make_blsm, make_leveldb, report
from repro.ycsb import WorkloadSpec, load_phase

_RECORDS = SCALE.record_count * 2  # a longer load accentuates pauses


def _load(engine):
    spec = WorkloadSpec(
        record_count=_RECORDS,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    result = load_phase(engine, spec, seed=2, timeseries_window=0.02)
    return result


def _run_both():
    return {
        "bLSM": _load(make_blsm()),
        "LevelDB": _load(make_leveldb()),
    }


def test_fig7_insert_timeseries(run_once):
    results = run_once(_run_both)

    lines = []
    for name, result in results.items():
        lines.append(
            f"{name}: elapsed {result.elapsed_seconds * 1e3:8.1f} ms  "
            f"throughput {result.throughput:9.0f} ops/s  "
            f"max latency {result.all_latencies().max * 1e3:8.2f} ms"
        )
    from repro.ycsb.ascii_plot import render_timeseries

    blsm_tp = results["bLSM"].timeseries.throughputs()
    level_tp = results["LevelDB"].timeseries.throughputs()
    lines.append("")
    lines.extend(render_timeseries("bLSM ops/s   ", blsm_tp))
    lines.extend(render_timeseries("LevelDB ops/s", level_tp))
    lines.append("")
    lines.append(f"{'window':>8s}{'bLSM ops/s':>14s}{'LevelDB ops/s':>14s}")
    for i in range(max(len(blsm_tp), len(level_tp))):
        b = blsm_tp[i] if i < len(blsm_tp) else 0.0
        l = level_tp[i] if i < len(level_tp) else 0.0
        lines.append(f"{i:8d}{b:14.0f}{l:14.0f}")
    report("fig7_insert_timeseries", lines)

    blsm, leveldb = results["bLSM"], results["LevelDB"]
    # bLSM loads the same data in less (virtual) time.
    assert blsm.elapsed_seconds < leveldb.elapsed_seconds
    # LevelDB's worst pause dwarfs bLSM's worst write latency.
    assert leveldb.all_latencies().max > 3 * blsm.all_latencies().max

    def steady(series):
        skip = len(series) // 4  # drop the cache-warm/ramp-up prefix
        return series[skip:]

    blsm_steady, level_steady = steady(blsm_tp), steady(level_tp)
    # Write outages: windows in which not a single insert completed.
    blsm_outages = sum(1 for t in blsm_steady if t == 0) / len(blsm_steady)
    level_outages = sum(1 for t in level_steady if t == 0) / len(level_steady)
    assert blsm_outages < 0.10
    assert level_outages > 0.20
    # Steady-state variability (zeros included): bLSM is the smoother.
    blsm_cov = statistics.pstdev(blsm_steady) / statistics.mean(blsm_steady)
    level_cov = statistics.pstdev(level_steady) / statistics.mean(level_steady)
    assert blsm_cov < level_cov
