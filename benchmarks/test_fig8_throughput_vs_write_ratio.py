"""Figure 8: throughput vs write/read ratio on hard disk and SSD.

The paper sweeps the write fraction from 0 % to 100 % under uniform
random access for five curves — InnoDB (read-modify-write), LevelDB and
bLSM each with read-modify-write and with blind updates — on both device
classes.  Shape claims the assertions encode:

* read-modify-writes are strictly more expensive than reads, so every
  RMW curve falls as the write fraction grows (Section 5.4);
* on hard disks, blind writes are much faster than reads, so the blind
  curves rise steeply towards 100 % writes;
* the LSMs dominate InnoDB at high write fractions;
* on SSD, random writes are penalized: InnoDB keeps only ~20 % of its
  read throughput at 100 % RMW, while bLSM's blind writes retain most
  of theirs (Section 5.4's 78 % figure).
"""

from __future__ import annotations

from benchmarks.conftest import (
    SCALE,
    make_blsm,
    make_btree,
    make_leveldb,
    report,
)
from repro.sim import DiskModel
from repro.ycsb import load_phase, run_workload
from repro.ycsb.workload import WorkloadSpec, write_ratio_workload

WRITE_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
_OPS = 1200


def _measure_curve(make_engine, disk, blind):
    """Throughput at each write fraction for one engine/update family."""
    curve = []
    for fraction in WRITE_FRACTIONS:
        engine = make_engine(disk)
        load = WorkloadSpec(
            record_count=SCALE.record_count,
            operation_count=0,
            value_bytes=SCALE.value_bytes,
        )
        load_phase(engine, load, seed=5)
        engine.flush()
        spec = write_ratio_workload(
            fraction,
            record_count=SCALE.record_count,
            operation_count=_OPS,
            blind=blind,
            value_bytes=SCALE.value_bytes,
        )
        curve.append(run_workload(engine, spec, seed=6).throughput)
    return curve


def _sweep(disk):
    return {
        "InnoDB (RMW)": _measure_curve(make_btree, disk, blind=False),
        "LevelDB (RMW)": _measure_curve(make_leveldb, disk, blind=False),
        "bLSM (RMW)": _measure_curve(make_blsm, disk, blind=False),
        "LevelDB (blind)": _measure_curve(make_leveldb, disk, blind=True),
        "bLSM (blind)": _measure_curve(make_blsm, disk, blind=True),
    }


def _render(curves, title):
    lines = [title]
    lines.append(
        f"{'write %':>8s}"
        + "".join(f"{name:>17s}" for name in curves)
    )
    for i, fraction in enumerate(WRITE_FRACTIONS):
        row = f"{fraction * 100:7.0f}%"
        for name in curves:
            row += f"{curves[name][i]:17.0f}"
        lines.append(row)
    return lines


def _assert_shapes(curves, is_ssd):
    innodb = curves["InnoDB (RMW)"]
    blsm_rmw = curves["bLSM (RMW)"]
    blsm_blind = curves["bLSM (blind)"]
    leveldb_blind = curves["LevelDB (blind)"]
    # RMW curves fall with the write fraction.
    assert innodb[-1] < innodb[0]
    assert blsm_rmw[-1] < blsm_rmw[0] * 1.1
    # Blind writes beat RMW at 100% writes for the LSMs.
    assert blsm_blind[-1] > blsm_rmw[-1]
    # The LSMs dominate the B-Tree at 100% writes.
    assert blsm_blind[-1] > 3 * innodb[-1]
    assert leveldb_blind[-1] > innodb[-1]
    # bLSM reads are at least on par with InnoDB's (Section 5.3; the
    # paper measures 2-4x, driven by page size and queueing constants).
    assert blsm_rmw[0] >= 0.8 * innodb[0]
    if is_ssd:
        # InnoDB retains only a small fraction of its read throughput at
        # 100% writes; bLSM blind retains most (Section 5.4).
        assert innodb[-1] / innodb[0] < 0.45
        assert blsm_blind[-1] / blsm_blind[0] > 0.55


def test_fig8_hard_disk(run_once):
    curves = run_once(_sweep, DiskModel.hdd())
    report("fig8_hdd", _render(curves, "Throughput vs write %% (hard disk)"))
    _assert_shapes(curves, is_ssd=False)
    # HDD-specific: blind writes are far faster than seeks, so the blind
    # curve at 100% is far above the 0% (all-read) point.
    assert curves["bLSM (blind)"][-1] > 3 * curves["bLSM (blind)"][0]


def test_fig8_ssd(run_once):
    curves = run_once(_sweep, DiskModel.ssd())
    report("fig8_ssd", _render(curves, "Throughput vs write %% (SSD)"))
    _assert_shapes(curves, is_ssd=True)
