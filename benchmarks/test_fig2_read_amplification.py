"""Figure 2: read amplification vs data size — Bloom filters vs
fractional cascading.

Regenerates both panels of the paper's Figure 2 from the analytical
models: seeks per probe (left) and bandwidth per probe (right), for data
sizes 0-16x RAM and cascade fanouts R=2..10, against the three-level
Bloom-filtered design.  The claims the assertions encode (Section 3.1):

* the Bloom curve is flat and stays near 1 (max 1.03 in the paper's
  scenario);
* no setting of R makes fractional cascading competitive on seeks;
* larger R trades seeks for bandwidth, so its bandwidth panel is worse.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.analysis import figure2_series


def _render(series, value_index, title):
    labels = ["bloom"] + [f"R={r}" for r in range(2, 11)]
    ratios = [point[0] for point in series["bloom"]]
    lines = [title]
    lines.append(
        f"{'data/RAM':>9s}" + "".join(f"{label:>8s}" for label in labels)
    )
    for i, ratio in enumerate(ratios):
        if ratio != int(ratio):
            continue  # print integer ratios only, like the figure's axis
        row = f"{ratio:9.0f}"
        for label in labels:
            row += f"{series[label][i][value_index]:8.2f}"
        lines.append(row)
    return lines


def test_fig2_read_amplification(run_once):
    series = run_once(figure2_series)

    lines = _render(series, 1, "Read amplification (seeks) per probe")
    lines.append("")
    lines.extend(_render(series, 2, "Read amplification (bandwidth, pages) per probe"))
    report("fig2_read_amplification", lines)

    final = {label: points[-1] for label, points in series.items()}
    # Bloom stays near one seek at 16x RAM.
    assert final["bloom"][1] <= 1.05
    # No cascade fanout comes close (the figure's central claim).
    for r in range(2, 11):
        assert final[f"R={r}"][1] >= 2.0
    # Seek amplification falls with R; bandwidth amplification rises.
    assert final["R=2"][1] > final["R=10"][1]
    assert final["R=10"][2] > final["R=2"][2] / 2
    # Bandwidth panel tops out near the paper's ~12 pages at R=10, 16x.
    assert 8 <= final["R=10"][2] <= 16
    # Everything is free while data fits in RAM.
    assert series["bloom"][0][1] == 0.0
    assert series["R=2"][0][1] == 0.0
