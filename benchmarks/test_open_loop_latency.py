"""Latency vs offered load (Section 5.1's throttling remark).

The paper runs under continuous overload, producing 100s-of-ms
latencies, and notes that production systems throttle load, which
"would reduce the latencies" — Figure 9's stable ~2 ms is the lightly
loaded regime.  The open-loop runner makes the whole curve measurable:
latency is flat at the service time up to the engine's capacity, then
explodes past the knee.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_open_loop, run_workload

LOAD_FRACTIONS = [0.2, 0.5, 0.8, 1.0, 1.5, 2.5]


def _prepared_engine():
    engine = make_blsm(DiskModel.ssd())
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, spec, seed=95)
    engine.tree.compact()
    return engine


def _serving_spec(ops: int) -> WorkloadSpec:
    return WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=ops,
        read_proportion=0.8,
        blind_write_proportion=0.2,
        request_distribution="zipfian",
        value_bytes=SCALE.value_bytes,
    )


def _measure():
    capacity = run_workload(
        _prepared_engine(), _serving_spec(1500), seed=96
    ).throughput
    curve = {}
    for fraction in LOAD_FRACTIONS:
        engine = _prepared_engine()
        result = run_open_loop(
            engine,
            _serving_spec(1500),
            offered_rate=fraction * capacity,
            seed=96,
        )
        curve[fraction] = {
            "p50_ms": result.latency.percentile(50) * 1e3,
            "p99_ms": result.latency.percentile(99) * 1e3,
            "saturated": result.saturated,
        }
    return capacity, curve


def test_open_loop_latency_vs_load(run_once):
    capacity, curve = run_once(_measure)

    lines = [f"closed-loop capacity: {capacity:,.0f} ops/s"]
    lines.append(
        f"{'offered load':>13s}{'p50 (ms)':>10s}{'p99 (ms)':>10s}{'saturated':>11s}"
    )
    for fraction, row in curve.items():
        lines.append(
            f"{fraction:12.1f}x{row['p50_ms']:10.3f}{row['p99_ms']:10.3f}"
            f"{str(row['saturated']):>11s}"
        )
    report("open_loop_latency_vs_load", lines)

    # Below the knee: sub-millisecond latencies on SSD, no saturation.
    assert not curve[0.5]["saturated"]
    assert curve[0.5]["p99_ms"] < 2.0
    # Past the knee: saturation and orders-of-magnitude higher latency.
    assert curve[2.5]["saturated"]
    assert curve[2.5]["p99_ms"] > 20 * curve[0.5]["p99_ms"]
