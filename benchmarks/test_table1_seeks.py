"""Table 1: seeks per operation for bLSM, B-Tree and LevelDB.

Regenerates the paper's summary-of-results table by running each
operation class against each engine on the simulated hard disk and
counting device seeks.  The paper's claims, which the assertions encode:

* point lookup — bLSM 1, B-Tree 1, LevelDB O(log n) (multiple);
* read-modify-write — bLSM 1, B-Tree 2;
* apply delta — bLSM 0, B-Tree 2, LevelDB 0;
* insert/overwrite — bLSM 0, B-Tree 2, LevelDB 0;
* long scans — B-Tree up to one seek per page (fragmentation),
  bLSM a small constant.
"""

from __future__ import annotations

import random

from benchmarks.conftest import SCALE, make_blsm, make_btree, make_leveldb, report
from repro.baselines import PartitionedBLSMEngine
from repro.core import BLSMOptions
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase


def _make_partitioned():
    return PartitionedBLSMEngine(
        BLSMOptions(
            c0_bytes=SCALE.c0_bytes,
            buffer_pool_pages=SCALE.cache_pages(4096),
            disk_model=DiskModel.hdd(),
        ),
        max_partition_bytes=2 * SCALE.c0_bytes,
    )


def _loaded_engines():
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    engines = {
        "bLSM": make_blsm(),
        "bLSM-part": _make_partitioned(),
        "B-Tree": make_btree(),
        "LevelDB": make_leveldb(),
    }
    for engine in engines.values():
        load_phase(engine, spec, seed=1)
        engine.flush()
    # bLSM stays in its natural multi-component state (C1/C1'/C2), which
    # is what Table 1's 2-3 seek scan costs reflect; the partitioned
    # variant settles each partition to at most C1+C2 (the 2-seek row).
    engines["bLSM-part"].tree.drain()
    return engines


def _seeks_per_op(engine, operation, n):
    # Update-in-place engines defer their write seek to page writeback;
    # flushing before and after attributes those seeks to this phase.
    engine.flush()
    before = engine.seeks()
    for i in range(n):
        operation(i)
    engine.flush()
    return (engine.seeks() - before) / n


def _measure(engines):
    from repro.ycsb.generator import make_key

    rng = random.Random(9)
    existing = [make_key(i, ordered=False) for i in range(SCALE.record_count)]
    value = bytes(SCALE.value_bytes)
    rows: dict[str, dict[str, float]] = {}
    for name, engine in engines.items():
        pick = lambda: existing[rng.randrange(len(existing))]
        rows[name] = {
            "point lookup": _seeks_per_op(
                engine, lambda i: engine.get(pick()), 200
            ),
            "read-modify-write": _seeks_per_op(
                engine,
                lambda i: engine.read_modify_write(pick(), lambda _: value),
                100,
            ),
            "apply delta": _seeks_per_op(
                engine, lambda i: engine.apply_delta(pick(), b"+d"), 100
            ),
            "insert/overwrite": _seeks_per_op(
                engine, lambda i: engine.put(pick(), value), 100
            ),
            "short scan (<=1 page)": _seeks_per_op(
                engine, lambda i: list(engine.scan(pick(), limit=3)), 50
            ),
            "long scan (100 rows)": _seeks_per_op(
                engine, lambda i: list(engine.scan(pick(), limit=100)), 20
            ),
        }
    return rows


def test_table1_seeks_per_operation(run_once):
    engines = _loaded_engines()
    rows = run_once(_measure, engines)

    operations = list(next(iter(rows.values())))
    lines = [f"{'operation':24s}" + "".join(f"{n:>10s}" for n in rows)]
    for op in operations:
        lines.append(
            f"{op:24s}"
            + "".join(f"{rows[name][op]:10.2f}" for name in rows)
        )
    report("table1_seeks_per_operation", lines)

    blsm, btree, leveldb = rows["bLSM"], rows["B-Tree"], rows["LevelDB"]
    parted = rows["bLSM-part"]
    # Table 1's footnoted claim (§3.3): with partitioning, scans outside
    # the merging partition need only two seeks.  (The unpartitioned
    # tree needs 2-3 depending on whether C1' exists at measurement
    # time, so the comparison allows that noise band.)
    assert parted["short scan (<=1 page)"] <= 2.5
    assert (
        parted["short scan (<=1 page)"]
        <= blsm["short scan (<=1 page)"] + 0.25
    )
    assert parted["point lookup"] <= 1.3
    assert parted["insert/overwrite"] <= 0.3
    # Point lookups: both bLSM and the B-Tree do ~1 seek; LevelDB does more.
    assert blsm["point lookup"] <= 1.3
    assert btree["point lookup"] <= 1.3
    assert leveldb["point lookup"] > 1.5
    # Read-modify-write: bLSM ~1 seek, B-Tree ~2.
    assert blsm["read-modify-write"] <= 1.4
    assert btree["read-modify-write"] >= 1.4
    assert btree["read-modify-write"] > blsm["read-modify-write"]
    # Blind writes and deltas: zero seeks for the log-structured engines.
    assert blsm["apply delta"] <= 0.3
    assert leveldb["apply delta"] <= 0.3
    assert btree["apply delta"] >= 1.4
    assert blsm["insert/overwrite"] <= 0.3
    assert btree["insert/overwrite"] >= 1.4
    # Long scans: the fragmented B-Tree seeks per page; bLSM stays flat.
    assert btree["long scan (100 rows)"] > blsm["long scan (100 rows)"]
    # Short scans: the B-Tree reads one page, bLSM touches each component.
    assert btree["short scan (<=1 page)"] <= blsm["short scan (<=1 page)"] + 1.5
