"""Ablation (Section 4.4.3): persisting Bloom filters vs rebuilding.

The paper's prototype does not persist filters and acknowledges the
consequence: recovery must reconstruct them.  This ablation measures
both sides of that trade:

* steady-state cost of persistence — one small sequential write per
  merge (the filters are ~1.25 bytes/key, "small compared to the other
  data written by merges, so we do not expect them to significantly
  impact throughput");
* recovery cost — rebuilding filters rescans every component (~1 KB
  per key here) while loading persisted filters reads ~1.25 bytes/key.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.core import BLSM
from repro.storage import DurabilityMode
from repro.ycsb import WorkloadSpec, load_phase


def _run(persist: bool):
    engine = make_blsm(
        persist_bloom_filters=persist, durability=DurabilityMode.SYNC
    )
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load = load_phase(engine, spec, seed=61)
    engine.tree.drain()
    stasis = engine.tree.stasis
    stasis.crash()
    read_metric = f"disk.{stasis.data_disk.name}.bytes_read"
    read_before = stasis.runtime.metrics.value(read_metric)
    clock_before = stasis.clock.now
    recovered = BLSM.recover(stasis, engine.tree.options)
    recovery_read = stasis.runtime.metrics.value(read_metric) - read_before
    recovery_seconds = stasis.clock.now - clock_before
    assert recovered.get(b"__absent__") is None  # filters functional
    return {
        "load_throughput": load.throughput,
        "recovery_read_kb": recovery_read / 1024,
        "recovery_ms": recovery_seconds * 1e3,
    }


def _measure():
    return {
        "rebuild at recovery (paper)": _run(persist=False),
        "persisted filters": _run(persist=True),
    }


def test_ablation_bloom_persistence(run_once):
    rows = run_once(_measure)

    lines = [
        f"{'mode':30s}{'load ops/s':>12s}{'recovery KB':>13s}"
        f"{'recovery ms':>13s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:30s}{row['load_throughput']:12.0f}"
            f"{row['recovery_read_kb']:13.1f}{row['recovery_ms']:13.2f}"
        )
    report("ablation_bloom_persistence", lines)

    rebuild = rows["rebuild at recovery (paper)"]
    persisted = rows["persisted filters"]
    # Persistence barely dents load throughput (the paper's expectation).
    assert persisted["load_throughput"] > 0.9 * rebuild["load_throughput"]
    # ... and slashes recovery I/O by an order of magnitude or more.
    assert persisted["recovery_read_kb"] < rebuild["recovery_read_kb"] / 10
    assert persisted["recovery_ms"] < rebuild["recovery_ms"]
