"""Figure 9: shifting from 100 % uniform writes to 80/20 Zipfian.

The paper saturates bLSM with uniform writes, then switches at t=0 to an
80 % read / 20 % blind-write Zipfian mix (bulk-load-to-serving shift).
Performance ramps up as internal index pages warm the cache, then
settles into stable throughput with occasional merge hiccups; latencies
stay in the low milliseconds (the paper reports ~2 ms on SSD with 128
unthrottled workers).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import SCALE, make_blsm, report
from repro.sim import DiskModel
from repro.ycsb import OpKind, WorkloadSpec, load_phase, run_workload


def _run_shift():
    engine = make_blsm(DiskModel.ssd())
    write_phase = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, write_phase, seed=7)  # saturated uniform writes
    # After the write phase the cache holds write-era pages, not the
    # serving working set (the paper's ramp is exactly this warm-up:
    # "performance ramps up as internal index nodes are brought into
    # RAM").  Start the serving phase cold.
    engine.tree.stasis.buffer.drop_all()
    serve_phase = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=8000,
        read_proportion=0.8,
        blind_write_proportion=0.2,
        request_distribution="zipfian",
        value_bytes=SCALE.value_bytes,
    )
    return engine, run_workload(
        engine, serve_phase, seed=8, timeseries_window=0.005
    )


def test_fig9_workload_shift(run_once):
    engine, result = run_once(_run_shift)

    from repro.ycsb.ascii_plot import render_timeseries

    lines = render_timeseries(
        "throughput", result.timeseries.throughputs()
    )
    lines.append("")
    rows = result.timeseries.rows()
    lines += [f"{'t (ms)':>8s}{'ops/s':>10s}{'mean lat (us)':>15s}{'max lat (ms)':>14s}"]
    for start, ops, mean_latency, max_latency in rows:
        lines.append(
            f"{start * 1e3:8.0f}{ops:10.0f}{mean_latency * 1e6:15.1f}"
            f"{max_latency * 1e3:14.2f}"
        )
    lines.append("")
    lines.append(f"overall: {result.throughput:.0f} ops/s")
    read_stats = result.latencies[OpKind.READ]
    lines.append(
        f"read latency p50 {read_stats.percentile(50) * 1e6:.1f} us, "
        f"p99 {read_stats.percentile(99) * 1e6:.1f} us, "
        f"max {read_stats.max * 1e3:.2f} ms"
    )
    report("fig9_workload_shift", lines)

    throughputs = result.timeseries.throughputs()
    warmup = statistics.mean(throughputs[:3])
    steady = statistics.mean(throughputs[len(throughputs) // 2 :])
    # Performance ramps up as the cache warms, then stays there.
    assert steady > 1.2 * warmup
    # Stable serving: the second half never collapses to zero
    # ("occasional drops due to merge hiccups" but no outages).
    assert min(throughputs[len(throughputs) // 2 :]) > 0
    # Latency stays bounded through the shift (low ms on SSD).
    assert read_stats.percentile(99) < 0.010
    assert result.all_latencies().max < 0.200
