"""Table 2 (Appendix A): RAM required to cache B-Tree index nodes.

Regenerates the paper's table of GB of index cache per drive for four
device classes across access frequencies, using the five-minute-rule
variant implemented in :mod:`repro.analysis.five_minute`.  Assertions
pin the cells to the published values.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.analysis import STANDARD_DEVICES, cache_gb_table


def _render(rows):
    lines = [
        f"{'Access Frequency':18s}"
        + "".join(f"{device.name:>12s}" for device in STANDARD_DEVICES)
    ]
    for label, cells in rows:
        row = f"{label:18s}"
        for cell in cells:
            row += f"{'-':>12s}" if cell is None else f"{cell:12.3f}"
        lines.append(row)
    return lines


#: (row label, column index, expected GB) from the published table.
PAPER_CELLS = [
    ("Minute", 0, 0.302),
    ("Minute", 1, 6.03),
    ("Minute", 2, 0.003),
    ("Minute", 3, 0.002),
    ("Five minute", 0, 1.51),
    ("Five minute", 1, 30.2),
    ("Half hour", 0, 9.05),
    ("Half hour", 2, 0.091),
    ("Hour", 2, 0.181),
    ("Day", 2, 4.35),
    ("Week", 3, 15.2),
    ("Full disk", 0, 12.5),
    ("Full disk", 1, 122),
    ("Full disk", 2, 7.32),
    ("Full disk", 3, 48.8),
]

#: Cells the paper prints as '-' (capacity-bound regime).
PAPER_DASHES = [
    ("Half hour", 1),
    ("Hour", 0),
    ("Hour", 1),
    ("Day", 0),
    ("Week", 0),
    ("Week", 2),
    ("Month", 0),
    ("Month", 3),
]


def test_table2_cache_requirements(run_once):
    rows = run_once(cache_gb_table)
    report("table2_page_cache", _render(rows))

    table = {label: cells for label, cells in rows}
    for label, column, expected in PAPER_CELLS:
        got = table[label][column]
        assert got is not None
        # rel for the big cells; abs soaks up the paper's 3-decimal rounding
        assert got == pytest.approx(expected, rel=0.05, abs=0.001), (
            label,
            column,
        )
    for label, column in PAPER_DASHES:
        assert table[label][column] is None, (label, column)
