"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure from the paper.  The
paper's testbed (Section 5.1) is scaled down by a constant factor while
preserving the *ratios* that drive LSM behaviour:

* data : RAM is 5 : 1 (the paper's 50 GB over 10 GB);
* bLSM dedicates 80 % of its memory to C0 (8 GB of 10 GB) and the rest
  to page cache;
* LevelDB keeps its small write buffer and gets the whole budget as
  cache; InnoDB gets the whole budget as buffer pool with 16 KB pages;
* values are 1000 bytes, keys tens of bytes (YCSB defaults).

Absolute throughput numbers differ from the paper (simulated devices,
virtual time); the experiment index in EXPERIMENTS.md records both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.baselines import BLSMEngine, BTreeEngine, LevelDBEngine
from repro.core import BLSMOptions
from repro.sim import DiskModel

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class Scale:
    """One consistent scaling of the paper's setup."""

    value_bytes: int = 1000
    record_count: int = 3000          # ~3.1 MB of data ("50 GB")
    memory_bytes: int = 640 * KIB     # ~data/5 ("10 GB of RAM")

    @property
    def c0_bytes(self) -> int:
        return int(self.memory_bytes * 0.8)  # "8 GB for C0"

    @property
    def cache_bytes(self) -> int:
        return self.memory_bytes - self.c0_bytes  # "2 GB buffer cache"

    def cache_pages(self, page_size: int) -> int:
        return max(2, self.cache_bytes // page_size)


_SCALES = {
    # data:RAM stays 5:1 throughout; larger scales shrink per-op noise
    # at the cost of wall-clock time.
    "small": Scale(record_count=1500, memory_bytes=320 * KIB),
    "default": Scale(),
    "large": Scale(record_count=12000, memory_bytes=2560 * KIB),
}

SCALE = _SCALES[os.environ.get("REPRO_BENCH_SCALE", "default")]


def make_blsm(
    disk: DiskModel | None = None,
    scale: Scale = SCALE,
    **option_overrides,
) -> BLSMEngine:
    options = dict(
        c0_bytes=scale.c0_bytes,
        buffer_pool_pages=scale.cache_pages(4096),
        disk_model=disk if disk is not None else DiskModel.hdd(),
    )
    options.update(option_overrides)
    return BLSMEngine(BLSMOptions(**options))


def make_btree(
    disk: DiskModel | None = None, scale: Scale = SCALE
) -> BTreeEngine:
    # InnoDB: 16 KB pages (Section 5.3), the whole budget as buffer pool.
    return BTreeEngine(
        disk_model=disk if disk is not None else DiskModel.hdd(),
        page_size=16 * KIB,
        buffer_pool_pages=max(2, scale.memory_bytes // (16 * KIB)),
    )


def make_leveldb(
    disk: DiskModel | None = None, scale: Scale = SCALE
) -> LevelDBEngine:
    # LevelDB: "extremely small C0 components" (Section 5.1); cache gets
    # the full memory budget.
    return LevelDBEngine(
        disk_model=disk if disk is not None else DiskModel.hdd(),
        memtable_bytes=scale.memory_bytes // 10,
        file_bytes=scale.memory_bytes // 4,
        level_base_bytes=scale.memory_bytes,
        buffer_pool_pages=max(2, scale.memory_bytes // 4096),
    )


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: list[str]) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
