"""Ablation (Appendix A and Section 5.3): data page size.

The paper argues modern systems use excessively large pages: bLSM uses
4 KB data pages (the minimum SSD transfer) while InnoDB hard-codes
16 KB, and "these factors reduce the number of I/O operations per
second the drives deliver".  On SSD — where transfer time is a real
fraction of access time — oversized pages visibly cut random-read
throughput and pollute the cache with cold records.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, report
from repro.baselines import BLSMEngine
from repro.core import BLSMOptions
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_workload

PAGE_SIZES = [2048, 4096, 8192, 16384]


def _read_throughput(page_size: int):
    engine = BLSMEngine(
        BLSMOptions(
            c0_bytes=SCALE.c0_bytes,
            page_size=page_size,
            buffer_pool_pages=max(2, SCALE.cache_bytes // page_size),
            disk_model=DiskModel.ssd(),
        )
    )
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, load, seed=71)
    engine.tree.compact()
    reads = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=1500,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    result = run_workload(engine, reads, seed=72)
    return {
        "throughput": result.throughput,
        "hit_rate": engine.tree.stasis.buffer.hit_rate,
    }


def _measure():
    return {size: _read_throughput(size) for size in PAGE_SIZES}


def test_ablation_page_size(run_once):
    rows = run_once(_measure)

    lines = [f"{'page size':>10s}{'reads/s (SSD)':>15s}{'cache hit rate':>16s}"]
    for size, row in rows.items():
        lines.append(
            f"{size:10d}{row['throughput']:15.0f}{row['hit_rate']:16.3f}"
        )
    report("ablation_page_size", lines)

    # 4 KB pages out-read 16 KB pages on SSD (same cache bytes).
    assert rows[4096]["throughput"] > rows[16384]["throughput"]
    # Small pages raise the average heat of cached data (Appendix A.2).
    assert rows[4096]["hit_rate"] >= rows[16384]["hit_rate"]
