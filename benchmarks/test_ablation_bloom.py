"""Ablation (Section 3.1): Bloom filters.

Measures point-read cost and insert-if-not-exists cost with and without
Bloom filters on the same multi-component tree.  The paper's numbers:
filters cut worst-case read amplification from N (one probe per
component) to ``1 + N/100`` at a 1 % false-positive rate, and make the
existence check of ``insert if not exists`` free for absent keys.
"""

from __future__ import annotations

import random

from benchmarks.conftest import SCALE, make_blsm, report
from repro.ycsb import WorkloadSpec, load_phase
from repro.ycsb.generator import make_key


def _build(with_bloom):
    engine = make_blsm(with_bloom_filters=with_bloom)
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, spec, seed=31)
    return engine


def _seeks_per(engine, fn, n):
    before = engine.seeks()
    for i in range(n):
        fn(i)
    return (engine.seeks() - before) / n


def _measure():
    rng = random.Random(32)
    rows = {}
    for label, with_bloom in (("with bloom", True), ("without bloom", False)):
        engine = _build(with_bloom)
        existing = [
            make_key(rng.randrange(SCALE.record_count), ordered=False)
            for _ in range(200)
        ]
        absent = [
            existing[i % len(existing)] + b"-absent" for i in range(200)
        ]
        rows[label] = {
            "present read": _seeks_per(
                engine, lambda i: engine.get(existing[i]), len(existing)
            ),
            "absent read": _seeks_per(
                engine, lambda i: engine.get(absent[i]), len(absent)
            ),
            "insert-if-not-exists (new)": _seeks_per(
                engine,
                lambda i: engine.insert_if_not_exists(
                    absent[i] + b"-n", bytes(64)
                ),
                len(absent),
            ),
            "bloom RAM (bytes)": _bloom_bytes(engine),
        }
    return rows


def _bloom_bytes(engine):
    total = 0
    tree = engine.tree
    for component in (tree._c1, tree._c1_prime, tree._c2):
        if component is not None and component.bloom is not None:
            total += component.bloom.nbytes
    return total


def test_ablation_bloom_filters(run_once):
    rows = run_once(_measure)

    metrics = [m for m in rows["with bloom"] if m != "bloom RAM (bytes)"]
    lines = [
        f"{'operation':28s}{'with bloom':>12s}{'without':>12s}  (seeks/op)"
    ]
    for metric in metrics:
        lines.append(
            f"{metric:28s}{rows['with bloom'][metric]:12.2f}"
            f"{rows['without bloom'][metric]:12.2f}"
        )
    lines.append(
        f"{'bloom filter RAM':28s}"
        f"{rows['with bloom']['bloom RAM (bytes)']:12.0f}"
        f"{rows['without bloom']['bloom RAM (bytes)']:12.0f}"
    )
    report("ablation_bloom", lines)

    with_bloom, without = rows["with bloom"], rows["without bloom"]
    # Present reads: ~1 seek either way (the right component is found
    # quickly); filters must not make them worse.
    assert with_bloom["present read"] <= without["present read"] + 0.1
    # Absent reads: filters answer for free; without them every
    # component in whose key range the key falls is probed.
    assert with_bloom["absent read"] < 0.3
    assert without["absent read"] > 3 * max(0.1, with_bloom["absent read"])
    # Zero-seek insert-if-not-exists needs the filters (Section 3.1.2).
    assert with_bloom["insert-if-not-exists (new)"] < 0.3
    assert without["insert-if-not-exists (new)"] > 0.8
    # The price: ~1.25 bytes of RAM per key (Appendix A).
    per_key = with_bloom["bloom RAM (bytes)"] / SCALE.record_count
    assert 0.8 < per_key < 3.0