"""Ablation (Sections 4.1-4.3): naive vs gear vs spring-and-gear.

The paper's central engineering claim is that a *level scheduler* bounds
write latency without hurting throughput.  This ablation runs the same
uniform insert stream under all three schedulers and compares worst-case
insert latency and overall throughput:

* the naive scheduler (base LSM algorithm) has pass-sized stalls;
* gear bounds latency by pacing merges against C0's fill;
* spring-and-gear additionally composes with snowshoveling, buying the
  effective-C0 factor without reintroducing stalls.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.ycsb import WorkloadSpec, load_phase

CONFIGS = [
    ("naive (base LSM)", dict(scheduler="naive", snowshovel=False)),
    ("gear", dict(scheduler="gear", snowshovel=False)),
    ("spring+gear", dict(scheduler="spring_gear", snowshovel=True)),
]


def _measure():
    spec = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    rows = {}
    for name, overrides in CONFIGS:
        engine = make_blsm(**overrides)
        result = load_phase(engine, spec, seed=21)
        stats = result.all_latencies()
        rows[name] = {
            "throughput": result.throughput,
            "p99_ms": stats.percentile(99) * 1e3,
            "p999_ms": stats.percentile(99.9) * 1e3,
            "max_ms": stats.max * 1e3,
        }
    return rows


def test_ablation_merge_schedulers(run_once):
    rows = run_once(_measure)

    lines = [
        f"{'scheduler':20s}{'ops/s':>10s}{'p99 (ms)':>10s}"
        f"{'p99.9 (ms)':>12s}{'max (ms)':>10s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:20s}{row['throughput']:10.0f}{row['p99_ms']:10.2f}"
            f"{row['p999_ms']:12.2f}{row['max_ms']:10.2f}"
        )
    report("ablation_schedulers", lines)

    naive = rows["naive (base LSM)"]
    gear = rows["gear"]
    spring = rows["spring+gear"]
    # Level schedulers bound the worst-case stall the naive policy takes.
    assert spring["max_ms"] < naive["max_ms"] / 2
    assert gear["max_ms"] < naive["max_ms"]
    # ... without sacrificing throughput (Section 4: "bounds write
    # latency without impacting throughput").
    assert spring["throughput"] > 0.7 * naive["throughput"]
    # Snowshoveling's effective-C0 boost shows up as throughput over the
    # C0/C0'-partitioned gear configuration.
    assert spring["throughput"] > gear["throughput"]
