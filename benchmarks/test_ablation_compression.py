"""Ablation (Section 6): Rose-style compression.

"The compression techniques lead to constant factor decreases in write
amplification and do not impact reads" — bLSM's implementation heritage
(Rose).  This ablation loads the same stream at several compression
ratios and checks exactly that: merge bandwidth (and so insert
throughput on a bandwidth-bound device) scales with the ratio while
read seeks stay at ~1.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.ycsb import WorkloadSpec, load_phase, run_workload

RATIOS = [1.0, 0.7, 0.4]


def _run(ratio: float):
    engine = make_blsm(compression_ratio=ratio)
    load = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    result = load_phase(engine, load, seed=111)
    app_bytes = SCALE.record_count * 2 * SCALE.value_bytes
    write_amp = engine.io_summary()["data_bytes_written"] / app_bytes
    reads = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=600,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    seeks_before = engine.seeks()
    read_result = run_workload(engine, reads, seed=112)
    return {
        "insert_throughput": result.throughput,
        "write_amp": write_amp,
        "seeks_per_read": (engine.seeks() - seeks_before)
        / read_result.operations,
    }


def _measure():
    return {ratio: _run(ratio) for ratio in RATIOS}


def test_ablation_compression(run_once):
    rows = run_once(_measure)

    lines = [
        f"{'ratio':>6s}{'insert ops/s':>14s}{'write amp':>11s}"
        f"{'seeks/read':>12s}"
    ]
    for ratio, row in rows.items():
        lines.append(
            f"{ratio:6.1f}{row['insert_throughput']:14.0f}"
            f"{row['write_amp']:11.2f}{row['seeks_per_read']:12.2f}"
        )
    report("ablation_compression", lines)

    # Constant-factor write-amplification reduction...
    assert rows[0.4]["write_amp"] < 0.6 * rows[1.0]["write_amp"]
    assert rows[0.4]["insert_throughput"] > rows[1.0]["insert_throughput"]
    # ... with no read impact (Section 6's claim for Rose).
    for ratio in RATIOS:
        assert rows[ratio]["seeks_per_read"] <= 1.2