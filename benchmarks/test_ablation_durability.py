"""Ablation (Sections 4.4.2, 5.1): logical-log durability modes.

The paper's benchmark configuration does not sync logs at commit
("none of the systems sync their logs at commit") and notes the
degraded no-logging mode used for replication.  This ablation prices
the three modes on the same insert stream:

* ``SYNC`` — a log force per write: commit-latency bound;
* ``ASYNC`` — group commit (the paper's configuration);
* ``NONE`` — no logging; fastest, loses recent writes on crash.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.storage import DurabilityMode
from repro.ycsb import WorkloadSpec, load_phase


def _load_with(mode: DurabilityMode):
    engine = make_blsm(durability=mode)
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    result = load_phase(engine, spec, seed=81)
    summary = engine.io_summary()
    return {
        "throughput": result.throughput,
        "log_mb": summary["log_bytes_written"] / 1e6,
    }


def _measure():
    return {
        mode.value: _load_with(mode)
        for mode in (DurabilityMode.SYNC, DurabilityMode.ASYNC, DurabilityMode.NONE)
    }


def test_ablation_durability_modes(run_once):
    rows = run_once(_measure)

    lines = [f"{'mode':8s}{'insert ops/s':>14s}{'log MB written':>16s}"]
    for mode, row in rows.items():
        lines.append(
            f"{mode:8s}{row['throughput']:14.0f}{row['log_mb']:16.2f}"
        )
    report("ablation_durability", lines)

    # Group commit recovers most of the no-logging throughput; per-write
    # forces cost real time even on a dedicated sequential log device.
    assert rows["none"]["throughput"] >= rows["async"]["throughput"]
    assert rows["async"]["throughput"] > rows["sync"]["throughput"]
    # SYNC and ASYNC write the same logical-log bytes; NONE's log device
    # carries only the (small) physical WAL manifest records.
    assert rows["none"]["log_mb"] < 0.5 * rows["async"]["log_mb"]
    assert abs(rows["sync"]["log_mb"] - rows["async"]["log_mb"]) < 0.6