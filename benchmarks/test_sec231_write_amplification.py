"""Section 2.3.1: write amplification scales as sqrt(data / C0).

The base LSM analysis: with N on-disk levels sized for ratio
``R = (|data|/|C0|)^(1/N)``, the amortized insert cost is O(R); for the
paper's three-level tree (N = 2), that is O(sqrt(|data|/|C0|)).  This
bench loads datasets at several data:C0 ratios, measures bytes of merge
I/O per application byte, and checks the square-root scaling: doubling
the ratio must multiply amplification by well under 2 (a linear-scaling
structure would double it).

It also verifies the flip side (Section 2.2): the B-Tree's seek-bound
write cost is *independent* of data size but enormously larger in
device time.
"""

from __future__ import annotations

import math

from benchmarks.conftest import KIB, make_blsm, report
from repro.ycsb import WorkloadSpec, load_phase

C0_BYTES = 128 * KIB
RATIOS = [4, 8, 16, 32]
VALUE_BYTES = 200


def _write_amp(ratio: int) -> float:
    engine = make_blsm(c0_bytes=C0_BYTES, buffer_pool_pages=16)
    records = ratio * C0_BYTES // (VALUE_BYTES + 40)
    spec = WorkloadSpec(
        record_count=records, operation_count=0, value_bytes=VALUE_BYTES
    )
    load_phase(engine, spec, seed=91)
    engine.tree.drain()
    written = engine.io_summary()["data_bytes_written"]
    app_bytes = records * (VALUE_BYTES + 40)
    return written / app_bytes


def _measure():
    return {ratio: _write_amp(ratio) for ratio in RATIOS}


def test_sec231_write_amplification_scaling(run_once):
    amps = run_once(_measure)

    lines = [f"{'data/C0':>8s}{'write amp':>11s}{'amp/sqrt(ratio)':>17s}"]
    for ratio, amp in amps.items():
        lines.append(
            f"{ratio:8d}{amp:11.2f}{amp / math.sqrt(ratio):17.2f}"
        )
    report("sec231_write_amplification", lines)

    # Amplification grows with data size...
    assert amps[32] > amps[4]
    # ...but sub-linearly: each doubling of the ratio multiplies it by
    # less than 1.8 (sqrt predicts ~1.41; linear would be 2.0).
    for small, large in zip(RATIOS, RATIOS[1:]):
        growth = amps[large] / amps[small]
        assert growth < 1.8, (small, large, growth)
    # Normalized by sqrt(ratio) the curve is roughly flat (within 2.5x
    # across an 8x ratio range).
    normalized = [amp / math.sqrt(ratio) for ratio, amp in amps.items()]
    assert max(normalized) / min(normalized) < 2.5
