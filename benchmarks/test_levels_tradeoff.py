"""Two-level vs multi-level trees (Sections 2.3.1, 5.2 future work).

The paper: "we expected LevelDB's multi-level trees to provide higher
write throughput than our two-level approach ... we leave more detailed
performance comparisons between two-level and multi-level trees to
future work."  This bench does both halves:

* analytically, the Section 2.3.1 model: write amplification falls with
  level count (toward the ~ln(data/C0) optimum) while reads without
  Bloom filters and scans pay one seek per level;
* empirically, measured write amplification and uncached read seeks for
  the three-level bLSM vs the many-level LevelDB baseline at the same
  data scale.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, make_leveldb, report
from repro.analysis import tradeoff_table
from repro.ycsb import WorkloadSpec, load_phase, run_workload

DATA_OVER_C0 = 64.0


def _measured(engine):
    load = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, load, seed=101)
    app_bytes = SCALE.record_count * 2 * SCALE.value_bytes
    write_amp = engine.io_summary()["data_bytes_written"] / app_bytes
    reads = WorkloadSpec(
        record_count=SCALE.record_count * 2,
        operation_count=600,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    seeks_before = engine.seeks()
    result = run_workload(engine, reads, seed=102)
    seeks_per_read = (engine.seeks() - seeks_before) / result.operations
    return {"write_amp": write_amp, "seeks_per_read": seeks_per_read}


def _measure():
    analytic = tradeoff_table(DATA_OVER_C0, max_levels=6)
    measured = {
        "bLSM (2 disk levels, bloom)": _measured(make_blsm()),
        "LevelDB (multi-level, no bloom)": _measured(make_leveldb()),
    }
    return analytic, measured


def test_levels_tradeoff(run_once):
    analytic, measured = run_once(_measure)

    lines = [f"analytic model at data/C0 = {DATA_OVER_C0:.0f}:"]
    lines.append(
        f"{'levels':>7s}{'R':>8s}{'write amp':>11s}"
        f"{'read (bloom)':>14s}{'read (none)':>13s}{'scan seeks':>12s}"
    )
    for row in analytic:
        lines.append(
            f"{row['levels']:7.0f}{row['r']:8.2f}{row['write_amp']:11.1f}"
            f"{row['read_amp_bloom']:14.2f}{row['read_amp_no_bloom']:13.1f}"
            f"{row['scan_seeks']:12.1f}"
        )
    lines.append("")
    lines.append("measured:")
    lines.append(f"{'system':34s}{'write amp':>11s}{'seeks/read':>12s}")
    for name, row in measured.items():
        lines.append(
            f"{name:34s}{row['write_amp']:11.2f}{row['seeks_per_read']:12.2f}"
        )
    report("levels_tradeoff", lines)

    # Analytic: some deeper tree writes cheaper than two levels (the
    # optimum sits near ln(data/C0) levels), while reads/scans pay one
    # seek per level.
    deeper_best = min(row["write_amp"] for row in analytic[2:])
    assert deeper_best < analytic[1]["write_amp"]
    assert analytic[5]["read_amp_no_bloom"] > analytic[1]["read_amp_no_bloom"]
    # Measured: the multi-level tree pays multiple seeks per read while
    # the Bloom-filtered two-level tree stays at ~1.
    blsm = measured["bLSM (2 disk levels, bloom)"]
    leveldb = measured["LevelDB (multi-level, no bloom)"]
    assert blsm["seeks_per_read"] <= 1.2
    assert leveldb["seeks_per_read"] > 2 * blsm["seeks_per_read"]