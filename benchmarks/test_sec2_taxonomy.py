"""Section 2's storage taxonomy, measured.

The paper's background frames three disk-layout classes and their
defining trade:

* **update-in-place B-Trees** — optimal reads, seek-bound writes;
* **ordered log-structured** (bLSM) — sequential writes with merge
  amplification, near-optimal reads with Bloom filters, real scans;
* **unordered log-structured** (BitCask-style) — the highest write
  throughput ("order of magnitude differences are not uncommon"), but
  "unordered stores do not provide efficient scan operations", which
  is why the paper rules them out for PNUTS and Walnut.

One workload, four engines, the trade-offs in one table.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, make_btree, report
from repro.baselines import BitCaskEngine
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_workload


def _measure_engine(engine):
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_result = load_phase(engine, load, seed=151)
    engine.flush()
    reads = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=800,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    read_result = run_workload(engine, reads, seed=152)
    scans = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=100,
        scan_proportion=1.0,
        scan_length_min=50,
        scan_length_max=100,
        value_bytes=SCALE.value_bytes,
    )
    scan_result = run_workload(engine, scans, seed=153)
    return {
        "write_ops": load_result.throughput,
        "read_ops": read_result.throughput,
        "scan_ops": scan_result.throughput,
    }


def _measure():
    return {
        "InnoDB (update-in-place)": _measure_engine(make_btree()),
        "bLSM (ordered log)": _measure_engine(make_blsm()),
        "BitCask (unordered log)": _measure_engine(
            BitCaskEngine(disk_model=DiskModel.hdd())
        ),
    }


def test_sec2_storage_taxonomy(run_once):
    rows = run_once(_measure)

    lines = [
        f"{'class':26s}{'writes/s':>10s}{'reads/s':>10s}{'scans/s':>10s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:26s}{row['write_ops']:10.0f}{row['read_ops']:10.0f}"
            f"{row['scan_ops']:10.0f}"
        )
    report("sec2_taxonomy", lines)

    btree = rows["InnoDB (update-in-place)"]
    blsm = rows["bLSM (ordered log)"]
    bitcask = rows["BitCask (unordered log)"]
    # Write throughput ordering: unordered >> ordered >> update-in-place
    # ("order of magnitude differences are not uncommon", §2).
    assert bitcask["write_ops"] > 3 * blsm["write_ops"]
    assert blsm["write_ops"] > 3 * btree["write_ops"]
    # Reads: all classes manage ~1 seek; nobody collapses.
    assert min(r["read_ops"] for r in rows.values()) > 0.3 * max(
        r["read_ops"] for r in rows.values()
    )
    # Scans: the unordered store pays a seek per row and loses badly —
    # the reason the paper cannot use it (§2).
    assert bitcask["scan_ops"] < 0.35 * blsm["scan_ops"]