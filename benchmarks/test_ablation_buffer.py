"""Ablation (Section 4.4.2): CLOCK vs LRU buffer pool eviction.

The paper replaced LRU with CLOCK because LRU was a concurrency
bottleneck; the two policies are meant to deliver comparable hit rates.
This ablation verifies that CLOCK's hit rate on a Zipfian read workload
is close to LRU's (the policy swap is safe), and reports both.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, report
from repro.storage import EvictionPolicy
from repro.ycsb import WorkloadSpec, load_phase, run_workload


def _hit_rate(policy):
    engine = make_blsm(eviction_policy=policy)
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, load, seed=41)
    engine.tree.compact()
    buffer = engine.tree.stasis.buffer
    buffer.hits = buffer.misses = 0  # count the read phase only
    reads = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=3000,
        read_proportion=1.0,
        request_distribution="zipfian",
        value_bytes=SCALE.value_bytes,
    )
    result = run_workload(engine, reads, seed=42)
    return {"hit_rate": buffer.hit_rate, "throughput": result.throughput}


def _measure():
    return {
        "CLOCK": _hit_rate(EvictionPolicy.CLOCK),
        "LRU": _hit_rate(EvictionPolicy.LRU),
    }


def test_ablation_buffer_eviction(run_once):
    rows = run_once(_measure)

    lines = [f"{'policy':8s}{'hit rate':>10s}{'ops/s':>10s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:8s}{row['hit_rate']:10.3f}{row['throughput']:10.0f}"
        )
    report("ablation_buffer", lines)

    clock, lru = rows["CLOCK"], rows["LRU"]
    # Both policies cache the Zipfian hot set effectively...
    assert clock["hit_rate"] > 0.2
    assert lru["hit_rate"] > 0.2
    # ... and CLOCK approximates LRU closely (the paper's swap is free
    # in hit rate; its win was lock contention, which we do not model).
    assert abs(clock["hit_rate"] - lru["hit_rate"]) < 0.15
