"""Ablation (Section 4.2): snowshoveling.

Two measurements:

1. Run-length multipliers from replacement selection — the paper's
   arithmetic: ~2x memory for random arrivals, 1x for reverse-sorted,
   and the entire input for sorted arrivals ("it streams them directly
   to disk").
2. End-to-end insert throughput with snowshoveling on vs off (the off
   configuration freezes C0 into C0', halving the write pool), for
   random and sorted arrival orders.
"""

from __future__ import annotations

import random

from benchmarks.conftest import SCALE, make_blsm, report
from repro.memtable import replacement_selection_runs
from repro.memtable.snowshovel import run_length_multiplier
from repro.ycsb import WorkloadSpec, load_phase

_MEMORY_ITEMS = 400
_INPUT_ITEMS = 8000


def _arrivals(order):
    keys = [b"%08d" % i for i in range(_INPUT_ITEMS)]
    if order == "sorted":
        return keys
    if order == "reverse":
        return list(reversed(keys))
    rng = random.Random(23)
    rng.shuffle(keys)
    return keys


def _run_lengths():
    return {
        order: run_length_multiplier(_arrivals(order), _MEMORY_ITEMS)
        for order in ("sorted", "random", "reverse")
    }


def _insert_throughput(snowshovel, ordered):
    engine = make_blsm(snowshovel=snowshovel)
    spec = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
        ordered_inserts=ordered,
    )
    return load_phase(engine, spec, seed=24).throughput


def _measure():
    return {
        "multipliers": _run_lengths(),
        "random": {
            "snowshovel": _insert_throughput(True, ordered=False),
            "frozen C0'": _insert_throughput(False, ordered=False),
        },
        "sorted": {
            "snowshovel": _insert_throughput(True, ordered=True),
            "frozen C0'": _insert_throughput(False, ordered=True),
        },
    }


def test_ablation_snowshovel(run_once):
    results = run_once(_measure)

    multipliers = results["multipliers"]
    lines = ["Run length as a multiple of memory (replacement selection):"]
    for order, value in multipliers.items():
        lines.append(f"  {order:8s} arrivals: {value:8.2f}x")
    lines.append("")
    lines.append(f"{'insert order':14s}{'snowshovel':>12s}{'frozen C0-prime':>17s}")
    frozen = "frozen C0'"
    for order in ("random", "sorted"):
        lines.append(
            f"{order:14s}{results[order]['snowshovel']:12.0f}"
            f"{results[order][frozen]:17.0f}"
        )
    report("ablation_snowshovel", lines)

    # Section 4.2's run-length arithmetic.
    assert 1.7 < multipliers["random"] < 2.4
    assert multipliers["reverse"] <= 1.1
    assert multipliers["sorted"] > 10  # one run consumes the whole input
    # Snowshoveling raises write throughput for random arrivals
    # (bigger effective C0 means fewer C1 rewrites per byte).
    assert results["random"]["snowshovel"] > results["random"]["frozen C0'"]


def test_snowshovel_runs_cover_input(run_once):
    runs = run_once(
        replacement_selection_runs, _arrivals("random"), _MEMORY_ITEMS
    )
    assert sorted(k for run in runs for k in run) == sorted(_arrivals("random"))
