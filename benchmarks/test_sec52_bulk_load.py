"""Section 5.2: raw insert performance (bulk load).

The paper loads a 50 GB unordered dataset into each system using "the
strongest set of semantics each system could provide without resorting
to random reads":

* InnoDB — requires *pre-sorted* input for reasonable throughput;
  loading unordered data collapses to seek-bound speed;
* LevelDB — high-throughput unordered loads, but only with blind
  writes (no duplicate check), and with long pauses;
* bLSM — loads unordered data *and* checks every insert for a
  pre-existing key (``insert if not exists``) at nearly blind-write
  speed, thanks to the C2 Bloom filter (Section 3.1.2).
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, make_blsm, make_btree, make_leveldb, report
from repro.ycsb import WorkloadSpec, load_phase


def _spec(**overrides):
    defaults = dict(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def _run_loads():
    results = {}
    blsm = make_blsm()
    results["bLSM (unordered, insert-if-not-exists)"] = load_phase(
        blsm, _spec(check_exists_on_insert=True), seed=3
    )
    assert blsm.get(b"__nope__") is None

    leveldb = make_leveldb()
    results["LevelDB (unordered, blind writes)"] = load_phase(
        leveldb, _spec(), seed=3
    )

    btree_sorted = make_btree()
    results["InnoDB (pre-sorted bulk load)"] = load_phase(
        btree_sorted, _spec(ordered_inserts=True), seed=3, use_bulk_load=True
    )

    btree_random = make_btree()
    results["InnoDB (unordered inserts)"] = load_phase(
        btree_random, _spec(), seed=3
    )
    btree_random.flush()
    return results


def test_sec52_bulk_load(run_once):
    results = run_once(_run_loads)

    lines = [f"{'system / load mode':42s}{'ops/s':>12s}{'max lat (ms)':>14s}"]
    for name, result in results.items():
        lines.append(
            f"{name:42s}{result.throughput:12.0f}"
            f"{result.all_latencies().max * 1e3:14.2f}"
        )
    report("sec52_bulk_load", lines)

    blsm = results["bLSM (unordered, insert-if-not-exists)"]
    leveldb = results["LevelDB (unordered, blind writes)"]
    sorted_btree = results["InnoDB (pre-sorted bulk load)"]
    random_btree = results["InnoDB (unordered inserts)"]

    # bLSM beats LevelDB while doing strictly more work per insert
    # (the duplicate check), Section 5.2.
    assert blsm.throughput > leveldb.throughput
    # Unordered loads into the B-Tree collapse to seek-bound speed.
    assert blsm.throughput > 10 * random_btree.throughput
    assert sorted_btree.throughput > 10 * random_btree.throughput
    # LevelDB's pauses: its worst insert dwarfs bLSM's.
    assert leveldb.all_latencies().max > blsm.all_latencies().max
