"""Ablation (Section 5.3): InnoDB-style read-ahead.

"The version of MySQL we used hard codes a number of optimizations,
such as prefetching, that are counterproductive for this workload."
This ablation measures both faces of read-ahead on the B-Tree engine:

* two *interleaved* scans over a bulk-loaded tree on hard disk — the
  alternating streams ping-pong the head, so per-page reads seek every
  time; read-ahead amortizes one seek over many pages and wins big
  (the regime read-ahead was invented for);
* uniform random point reads on SSD — prefetch *loses*: it spends
  bandwidth and cache on physically adjacent pages a random workload
  will never touch.
"""

from __future__ import annotations

from benchmarks.conftest import SCALE, report
from repro.baselines import BTreeEngine
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_workload

PREFETCH = 8  # pages of read-ahead


def _engine(prefetch: int) -> BTreeEngine:
    return BTreeEngine(
        disk_model=DiskModel.ssd(),
        page_size=16 * 1024,
        buffer_pool_pages=max(2, SCALE.memory_bytes // (16 * 1024)),
        prefetch_leaves=prefetch,
    )


def _point_reads(prefetch: int) -> float:
    engine = _engine(prefetch)
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, load, seed=121)
    engine.flush()
    reads = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=1500,
        read_proportion=1.0,
        value_bytes=SCALE.value_bytes,
    )
    return run_workload(engine, reads, seed=122).throughput


def _interleaved_scans(prefetch: int) -> float:
    engine = BTreeEngine(
        disk_model=DiskModel.hdd(),
        page_size=16 * 1024,
        buffer_pool_pages=max(4, SCALE.memory_bytes // (16 * 1024)),
        prefetch_leaves=prefetch,
    )
    load = WorkloadSpec(
        record_count=SCALE.record_count,
        operation_count=0,
        ordered_inserts=True,
        value_bytes=SCALE.value_bytes,
    )
    load_phase(engine, load, seed=123, use_bulk_load=True)
    # Two concurrent table scans over disjoint halves, consumed in
    # lockstep: every page read alternates between distant offsets.
    from repro.ycsb.generator import make_key

    midpoint = make_key(SCALE.record_count // 2, ordered=True)
    before = engine.clock.now
    first = engine.scan(make_key(0, ordered=True), midpoint)
    second = engine.scan(midpoint)
    rows = 0
    for pair in zip(first, second):
        rows += 2
    elapsed = engine.clock.now - before
    return rows / elapsed


def _measure():
    return {
        "point reads (random, SSD)": {
            "off": _point_reads(0),
            "on": _point_reads(PREFETCH),
        },
        "interleaved scans (HDD)": {
            "off": _interleaved_scans(0),
            "on": _interleaved_scans(PREFETCH),
        },
    }


def test_ablation_prefetch(run_once):
    rows = run_once(_measure)

    lines = [f"{'workload':26s}{'prefetch off':>14s}{'prefetch on':>13s}"]
    for name, row in rows.items():
        lines.append(f"{name:26s}{row['off']:14.0f}{row['on']:13.0f}")
    report("ablation_prefetch", lines)

    # Counterproductive for random reads (the paper's point)...
    reads = rows["point reads (random, SSD)"]
    assert reads["on"] < 0.7 * reads["off"]
    # ... and the reason it exists: interleaved streams seek per page
    # without it, per read-ahead window with it.
    scans = rows["interleaved scans (HDD)"]
    assert scans["on"] > 2 * scans["off"]