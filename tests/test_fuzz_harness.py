"""Tests of the conformance harness itself: trace format, differential
executor, fault composer, minimizer, and the fuzz loop end-to-end.

The keystone is the honesty test: a deliberately broken engine
(:class:`~repro.testing.BrokenEngine`) must be *caught* by the
differential executor and *shrunk* by the minimizer to a tiny corpus
repro that still fails after a save/load roundtrip.  A harness that
cannot demonstrate that proves nothing by passing.
"""

import random

import pytest

from repro.engines import EngineConfig, build_engine
from repro.testing import (
    BrokenEngine,
    FuzzConfig,
    Trace,
    TraceOp,
    TraceOracle,
    default_fuzz_configs,
    enumerate_trace_crash_points,
    fuzz,
    format_fuzz_report,
    generate_trace,
    minimize_trace,
    replay_corpus,
    replay_corpus_file,
    run_crash_trace,
    run_differential,
    run_trace,
    trace_access_count,
    write_corpus_file,
)

CONFIG = EngineConfig(c0_bytes=32 * 1024, cache_pages=16)


# ----------------------------------------------------------------------
# Trace format
# ----------------------------------------------------------------------

ALL_KINDS_OPS = [
    TraceOp.put(b"k\x00\xffbin", b"v\x01\xfe"),
    TraceOp.delete(b"gone"),
    TraceOp.delta(b"k\x00\xffbin", b"+d"),
    TraceOp.get(b"k\x00\xffbin"),
    TraceOp.scan(b"a", b"z", 5),
    TraceOp.scan(b""),
    TraceOp.multi_get([b"k\x00\xffbin", b"gone"]),
    TraceOp.batch([
        ("put", b"bk", b"bv"),
        ("delete", b"gone", None),
        ("delta", b"bk", b"+x"),
    ]),
    TraceOp.merge_work(12 * 1024),
    TraceOp.crash(),
]


def test_trace_roundtrips_every_op_kind():
    trace = Trace(list(ALL_KINDS_OPS), meta={"mode": "differential"})
    clone = Trace.from_json(trace.to_json())
    assert clone.ops == trace.ops
    assert clone.meta == trace.meta
    assert clone.to_json() == trace.to_json()


def test_trace_save_load_roundtrip(tmp_path):
    trace = Trace(list(ALL_KINDS_OPS), meta={"mode": "crash", "seed": 3})
    path = str(tmp_path / "t.json")
    trace.save(path)
    assert Trace.load(path).ops == trace.ops


def test_trace_rejects_unknown_format():
    with pytest.raises(ValueError):
        Trace.from_json('{"format": "bogus", "ops": []}')


def test_trace_op_rejects_unknown_kind():
    with pytest.raises(ValueError):
        TraceOp("frobnicate")
    with pytest.raises(ValueError):
        TraceOp.batch([("upsert", b"k", b"v")])


def test_generate_trace_is_deterministic():
    first = generate_trace(400, seed=9)
    second = generate_trace(400, seed=9)
    assert first.to_json() == second.to_json()
    assert generate_trace(400, seed=10).to_json() != first.to_json()
    kinds = {op.kind for op in first}
    # The default mix exercises every differential surface.
    assert {"put", "delete", "get", "scan", "batch",
            "multi_get", "merge_work"} <= kinds


# ----------------------------------------------------------------------
# Oracle + differential executor
# ----------------------------------------------------------------------

def test_oracle_delta_semantics():
    oracle = TraceOracle()
    oracle.expected(TraceOp.put(b"k", b"A"))
    oracle.expected(TraceOp.delta(b"k", b"+1"))
    assert oracle.expected(TraceOp.get(b"k")) == b"A+1"
    oracle.expected(TraceOp.delete(b"k"))
    oracle.expected(TraceOp.delta(b"k", b"+2"))  # delta over tombstone
    assert oracle.expected(TraceOp.get(b"k")) is None
    oracle.expected(TraceOp.delta(b"ghost", b"+3"))  # dangling delta
    assert oracle.expected(TraceOp.get(b"ghost")) is None
    assert oracle.items() == []


def test_differential_all_engines_agree():
    trace = generate_trace(400, seed=1)
    divergences = run_differential(trace)
    assert divergences == []


def test_default_matrix_shape():
    labels = [config.label for config in default_fuzz_configs()]
    assert "blsm" in labels
    assert "sharded-2" in labels       # >= 2 shards, always
    assert "blsm-faulty" in labels     # fault-plan config in the matrix
    restricted = default_fuzz_configs(engines=["btree"],
                                      include_faulted=False)
    assert [config.label for config in restricted] == ["btree"]


def test_run_trace_reports_engine_exception_as_divergence():
    class Exploding(BrokenEngine):
        def get(self, key):
            raise RuntimeError("boom")

    engine = Exploding(build_engine("btree", CONFIG), bug="stale-scan")
    trace = Trace([TraceOp.put(b"k", b"v"), TraceOp.get(b"k")])
    divergence = run_trace(engine, trace, config="exploding")
    assert divergence is not None
    assert "RuntimeError" in divergence.detail


# ----------------------------------------------------------------------
# The honesty test: catch a planted bug, shrink it, file it, replay it
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bug", BrokenEngine.BUGS)
def test_broken_engine_is_caught_and_shrunk(bug, tmp_path):
    config = FuzzConfig(
        f"broken-{bug}",
        lambda: BrokenEngine(build_engine("blsm", CONFIG), bug=bug),
    )

    def failing(trace):
        return run_trace(
            config.build(), trace, batched=config.batched, config=config.label
        ) is not None

    trace = generate_trace(800, seed=0)
    divergence = run_trace(config.build(), trace, config=config.label)
    assert divergence is not None, f"bug {bug!r} not caught in 800 ops"

    small = minimize_trace(trace, failing)
    assert failing(small)
    assert len(small) <= 25, (
        f"bug {bug!r} shrunk only to {len(small)} ops"
    )

    path = write_corpus_file(small, str(tmp_path), f"repro-{bug}",
                             note=divergence.describe())
    reloaded = Trace.load(path)
    assert reloaded.meta["note"] == divergence.describe()
    assert failing(reloaded), "filed corpus repro no longer fails"


def test_minimizer_respects_probe_budget():
    probes = 0

    def failing(trace):
        nonlocal probes
        probes += 1
        return len(trace) >= 1

    trace = generate_trace(64, seed=2)
    small = minimize_trace(trace, failing, max_probes=10)
    assert probes <= 11
    assert len(small) >= 1


# ----------------------------------------------------------------------
# Fault composer
# ----------------------------------------------------------------------

def crash_trace(seed=4, ops=70):
    return generate_trace(
        ops, seed=seed, keyspace=25, scan_fraction=0.0,
        multi_get_fraction=0.03, merge_work_fraction=0.1,
        crash_fraction=0.06,
    )


def test_crash_markers_recover_and_verify():
    trace = crash_trace()
    assert any(op.kind == "crash" for op in trace)
    failures = run_crash_trace(trace, engine="blsm", seed=4)
    assert failures == []


def test_verify_recovered_flags_lost_acked_write():
    # The composer's durable-prefix check must actually check: a
    # recovered store missing an acked write, or returning a value that
    # is neither the acked nor the in-flight one, gets flagged.
    from repro.testing.composer import _verify_recovered

    class Fake:
        def __init__(self, state):
            self.state = state

        def get(self, key):
            return self.state.get(key)

    failures = []
    _verify_recovered(Fake({}), {b"k": b"acked"}, None, failures, "ctx")
    assert failures and "ctx" in failures[0]

    # In-flight ambiguity: old value, new value both fine; garbage not.
    for value, expect_failure in ((b"acked", False), (b"new", False),
                                  (b"garbage", True)):
        failures = []
        _verify_recovered(
            Fake({b"k": value}), {b"k": b"acked"},
            ("put", b"k", b"new"), failures, "ctx",
        )
        assert bool(failures) == expect_failure, (value, failures)


def test_enumerate_trace_crash_points_small_sweep():
    trace = crash_trace(seed=5, ops=40)
    total = trace_access_count(trace, engine="blsm", seed=5)
    assert total > 0
    stride = max(1, total // 4)
    report = enumerate_trace_crash_points(
        trace, engine="blsm", every=stride, seed=5
    )
    assert report.boundaries_tested >= 3
    assert report.crashes_triggered >= 3
    assert report.ok, [o.failures for o in report.failures]


def test_enumerate_rejects_bad_arguments():
    trace = crash_trace(ops=10)
    with pytest.raises(ValueError):
        enumerate_trace_crash_points(trace, engine="btree")
    with pytest.raises(ValueError):
        enumerate_trace_crash_points(trace, engine="blsm", every=0)


# ----------------------------------------------------------------------
# Fuzz loop + corpus replay
# ----------------------------------------------------------------------

def test_fuzz_end_to_end_clean():
    report = fuzz(rounds=1, ops=250, seed=6, faults="all",
                  crash_every=80, crash_ops=50)
    assert report.ok
    assert report.rounds_run == 1
    assert report.crash_boundaries > 0
    text = format_fuzz_report(report)
    assert "all engines agree" in text
    assert "crash compose" in text


def test_fuzz_rejects_unknown_fault_mode():
    with pytest.raises(ValueError):
        fuzz(rounds=1, ops=10, faults="chaos")


def test_replay_corpus_flags_failing_trace(tmp_path):
    # A trace whose meta pins expectations an engine cannot meet: the
    # replay must report it rather than pass silently. We fabricate the
    # failure by writing a differential trace and then flipping one
    # oracle-visible byte (a get after a put of a different value).
    good = Trace(
        [TraceOp.put(b"k", b"v"), TraceOp.get(b"k")],
        meta={"mode": "differential", "engines": ["btree"]},
    )
    good.save(str(tmp_path / "good.json"))
    results = replay_corpus(str(tmp_path))
    assert results and results[0][1] == []
    # An unreadable file reports instead of raising.
    (tmp_path / "broken.json").write_text("{not json")
    results = dict(replay_corpus(str(tmp_path)))
    assert any(failures for failures in results.values())


def test_replay_corpus_file_unknown_mode(tmp_path):
    trace = Trace([TraceOp.put(b"k", b"v")], meta={"mode": "martian"})
    path = str(tmp_path / "weird.json")
    trace.save(path)
    failures = replay_corpus_file(path)
    assert failures and "martian" in failures[0]


def test_fuzz_with_broken_config_files_minimized_corpus(tmp_path):
    # Wire a broken engine into the differential matrix by hand and run
    # the whole loop: fuzz must report the divergence and file a
    # minimized corpus repro.
    configs = default_fuzz_configs(engines=["blsm", "btree"],
                                  include_faulted=False)
    configs.append(FuzzConfig(
        "planted",
        lambda: BrokenEngine(build_engine("blsm", CONFIG),
                             bug="drop-tombstone"),
    ))
    from repro.testing.differential import run_differential as run_diff
    from repro.testing.harness import _shrink_and_file

    trace = generate_trace(600, seed=0)
    divergences = run_diff(trace, configs)
    assert [d.config for d in divergences] == ["planted"]
    small, path = _shrink_and_file(
        trace, divergences[0], configs, str(tmp_path), "planted-repro",
        None, 2,
    )
    assert len(small) <= 25
    assert path is not None
    assert Trace.load(path).meta["mode"] == "differential"


# ----------------------------------------------------------------------
# Determinism of the whole stack
# ----------------------------------------------------------------------

def test_fuzz_is_deterministic_across_runs():
    first = fuzz(rounds=1, ops=200, seed=12, faults="plans")
    second = fuzz(rounds=1, ops=200, seed=12, faults="plans")
    assert first.ok and second.ok
    assert first.ops_replayed == second.ops_replayed
    assert first.configs == second.configs


# ----------------------------------------------------------------------
# Wall-clock budget guard (the fuzzer must stay cheap enough for CI)
# ----------------------------------------------------------------------

def test_differential_matrix_fits_cpu_budget():
    """The whole matrix (now including the memtable-ablation configs)
    must replay a moderate trace within a *generous* CPU budget.  This
    is the guard against accidental hot-path regressions that would
    silently turn every fuzz run (and CI job) 10x slower: the budget is
    ~6x the typical cost on the reference container, so only a real
    slowdown trips it, never timing noise."""
    import time

    trace = generate_trace(400, seed=21)
    start = time.process_time()
    divergences = run_differential(trace)
    cpu = time.process_time() - start
    assert divergences == []
    assert cpu < 30.0, (
        f"differential replay of 400 ops took {cpu:.1f} CPU-seconds; "
        "the fuzz hot path has regressed"
    )


def test_fuzz_budget_seconds_stops_new_rounds():
    report = fuzz(rounds=50, ops=60, seed=3, faults="none",
                  budget_seconds=0.0)
    assert report.ok
    # The first round always runs (determinism anchor); the budget
    # stops every later round from starting.
    assert report.rounds_run == 1
