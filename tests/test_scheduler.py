"""Unit and behavioural tests for the merge schedulers."""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.core.scheduler import (
    GearScheduler,
    NaiveScheduler,
    SpringGearScheduler,
    make_scheduler,
)


def test_factory_names():
    assert isinstance(make_scheduler("naive"), NaiveScheduler)
    assert isinstance(make_scheduler("gear"), GearScheduler)
    assert isinstance(make_scheduler("spring_gear"), SpringGearScheduler)
    with pytest.raises(ValueError):
        make_scheduler("bogus")


def test_unattached_scheduler_rejects_use():
    scheduler = make_scheduler("naive")
    with pytest.raises(RuntimeError):
        scheduler.on_write(100)


def test_spring_gear_water_marks_validated():
    with pytest.raises(ValueError):
        SpringGearScheduler(low_water=0.9, high_water=0.5)


def insert_latencies(scheduler, snowshovel, n=8000, c0_bytes=128 * 1024):
    options = BLSMOptions(
        c0_bytes=c0_bytes, scheduler=scheduler, snowshovel=snowshovel
    )
    tree = BLSM(options)
    rng = random.Random(5)
    latencies = []
    for _ in range(n):
        key = b"user%09d" % rng.randrange(10**9)
        before = tree.stasis.clock.now
        tree.put(key, bytes(64))
        latencies.append(tree.stasis.clock.now - before)
    return tree, latencies


def test_spring_gear_keeps_c0_between_watermarks():
    tree, _ = insert_latencies("spring_gear", snowshovel=True)
    # Under steady uniform load C0 must settle inside the banded region.
    assert tree.c0_fill_fraction <= 1.0


def test_spring_gear_bounds_worst_case_stall():
    _, spring = insert_latencies("spring_gear", snowshovel=True)
    _, naive = insert_latencies("naive", snowshovel=False)
    # The headline claim (Table 1): the level scheduler bounds insert
    # latency; the naive scheduler's worst case is far larger.
    assert max(spring) < max(naive)


def test_naive_scheduler_stalls_are_pass_sized():
    tree, latencies = insert_latencies("naive", snowshovel=False)
    # The worst write waited for (at least) an entire C0:C1 pass.
    assert max(latencies) > 20 * (sum(latencies) / len(latencies))


def test_gear_scheduler_paces_merges_without_c0_overflow():
    tree, latencies = insert_latencies("gear", snowshovel=False)
    sizes = tree.component_sizes()
    assert sizes["c1"] > 0  # merges actually ran
    assert max(latencies) < 1.0  # no unbounded stall


def test_spring_gear_pauses_merges_below_low_water():
    options = BLSMOptions(
        c0_bytes=1 << 20, scheduler="spring_gear", low_water=0.5
    )
    tree = BLSM(options)
    for i in range(10):
        tree.put(b"k%02d" % i, bytes(64))
    # Fill is tiny, far below the low water mark: no merge should run.
    assert tree.component_sizes()["c1"] == 0
    assert tree._m01 is None


def test_schedulers_produce_identical_contents():
    results = {}
    for name, snow in (("naive", False), ("gear", False), ("spring_gear", True)):
        options = BLSMOptions(
            c0_bytes=64 * 1024, scheduler=name, snowshovel=snow
        )
        tree = BLSM(options)
        rng = random.Random(77)
        for i in range(3000):
            tree.put(b"key%05d" % rng.randrange(1500), b"v%d" % i)
        tree.drain()
        results[name] = sorted(tree.scan(b""))
    assert results["naive"] == results["gear"] == results["spring_gear"]


class TestPerTickLatencyBound:
    """The scheduler's documented contract: one on_write never performs
    more than ``max_tick_bytes`` of merge work while C0 is below the
    forced-drain threshold.  SpringGearScheduler used to cap its m01
    budget, deficit12 step and blocked-promotion step *independently*,
    spending up to ~2x the cap in one tick."""

    @pytest.mark.parametrize("scheduler", ["gear", "spring_gear"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_on_write_merge_work_bounded(self, scheduler, seed):
        # Large values against a small cap saturate the m01 budget while
        # an m12 deficit is open — the exact state where the pre-fix
        # spring gear double-spent (it reached ~2.6x max_tick here).
        max_tick = 16 * 1024
        value_max = 4096
        options = BLSMOptions(
            c0_bytes=64 * 1024,
            scheduler=scheduler,
            max_tick_bytes=max_tick,
        )
        tree = BLSM(options)
        metrics = tree.runtime.metrics

        def merge_bytes():
            return metrics.value("merge.c0c1.bytes") + metrics.value(
                "merge.c1c2.bytes"
            )

        def full_events():
            return metrics.value("memtable.full_events")

        rng = random.Random(seed)
        # Each of the (at most two) merge steps a tick dispatches may
        # overshoot its budget by the final record it emits, so the
        # documented bound is max_tick plus two worst-case records.
        slack = 2 * (value_max + 64)
        violations = []
        for i in range(4000):
            key = ("k%08d" % rng.randrange(2000)).encode()
            before_bytes = merge_bytes()
            before_full = full_events()
            tree.put(key, bytes(rng.randrange(1024, value_max)))
            worked = merge_bytes() - before_bytes
            if full_events() != before_full:
                continue  # forced drain: the bound deliberately yields
            if worked > max_tick + slack:
                violations.append((i, worked))
        assert not violations, (
            f"{scheduler} exceeded max_tick_bytes={max_tick} "
            f"on {len(violations)} writes, worst={max(v for _, v in violations)}"
        )
        tree.close()
