"""Behavioural tests for the update-in-place B-Tree engine."""

import random

import pytest

from repro.baselines import BTreeEngine
from repro.errors import EngineClosedError


def small_engine(**overrides):
    defaults = dict(buffer_pool_pages=8, page_size=4096)
    defaults.update(overrides)
    return BTreeEngine(**defaults)


def test_put_get_roundtrip():
    engine = small_engine()
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    assert engine.get(b"missing") is None


def test_overwrite():
    engine = small_engine()
    engine.put(b"k", b"v1")
    engine.put(b"k", b"v2")
    assert engine.get(b"k") == b"v2"


def test_delete():
    engine = small_engine()
    engine.put(b"k", b"v")
    engine.delete(b"k")
    assert engine.get(b"k") is None
    engine.delete(b"never-there")  # no-op


def test_splits_preserve_all_records():
    engine = small_engine(buffer_pool_pages=128)
    model = {}
    rng = random.Random(2)
    for i in range(3000):
        key = b"key%05d" % rng.randrange(2000)
        value = b"v%05d" % i
        engine.put(key, value)
        model[key] = value
    assert engine.leaf_count > 10
    assert all(engine.get(k) == v for k, v in model.items())


def test_scan_sorted_and_bounded():
    engine = small_engine(buffer_pool_pages=128)
    for i in range(500):
        engine.put(b"key%04d" % i, b"v")
    got = [k for k, _ in engine.scan(b"key0100", b"key0110")]
    assert got == [b"key%04d" % i for i in range(100, 110)]
    got = [k for k, _ in engine.scan(b"key0490", limit=5)]
    assert len(got) == 5


def test_update_is_two_seeks_uncached():
    # Section 2.2: read the old page, write the modification back.
    engine = small_engine(buffer_pool_pages=2)
    for i in range(400):
        engine.put(b"key%04d" % i, bytes(200))
    engine.flush()
    stats = engine.stasis.data_disk.stats
    rng = random.Random(1)
    n = 100
    seeks_before = stats.seeks
    for _ in range(n):
        engine.put(b"key%04d" % rng.randrange(400), bytes(200))
    engine.flush()
    seeks_per_update = (stats.seeks - seeks_before) / n
    assert 1.3 < seeks_per_update <= 2.5


def test_read_is_one_seek_uncached():
    engine = small_engine(buffer_pool_pages=2)
    for i in range(400):
        engine.put(b"key%04d" % i, bytes(200))
    engine.flush()
    stats = engine.stasis.data_disk.stats
    rng = random.Random(1)
    seeks_before = stats.seeks
    for _ in range(100):
        engine.get(b"key%04d" % rng.randrange(400))
    assert (stats.seeks - seeks_before) / 100 <= 1.1


def test_insert_if_not_exists_must_seek():
    # Unlike bLSM, the B-Tree reads a leaf even for absent keys (§5.2).
    engine = small_engine(buffer_pool_pages=2)
    for i in range(400):
        engine.put(b"key%04d" % i, bytes(200))
    engine.flush()
    stats = engine.stasis.data_disk.stats
    seeks_before = stats.seeks
    assert engine.insert_if_not_exists(b"key0100x", b"v")
    assert stats.seeks > seeks_before


def test_apply_delta_reads_then_writes():
    engine = small_engine()
    engine.put(b"k", b"base")
    engine.apply_delta(b"k", b"+d")
    assert engine.get(b"k") == b"base+d"
    engine.apply_delta(b"new", b"+x")  # materializes a base record
    assert engine.get(b"new") == b"+x"


def test_bulk_load_requires_sorted_unique():
    engine = small_engine()
    with pytest.raises(ValueError):
        engine.bulk_load(iter([(b"b", b"1"), (b"a", b"2")]))
    engine2 = small_engine()
    with pytest.raises(ValueError):
        engine2.bulk_load(iter([(b"a", b"1"), (b"a", b"2")]))


def test_bulk_load_roundtrip_and_contiguity():
    engine = small_engine(buffer_pool_pages=128)
    items = [(b"key%05d" % i, bytes(200)) for i in range(2000)]
    assert engine.bulk_load(iter(items)) == 2000
    assert engine.get(b"key01000") == bytes(200)
    assert engine.fragmentation() == 0.0  # perfectly sequential leaves


def test_bulk_load_rejected_on_nonempty_tree():
    engine = small_engine()
    engine.put(b"k", b"v")
    with pytest.raises(ValueError):
        engine.bulk_load(iter([(b"a", b"1")]))


def test_random_inserts_fragment_the_tree():
    engine = small_engine(buffer_pool_pages=256)
    rng = random.Random(3)
    for i in range(4000):
        engine.put(b"key%09d" % rng.randrange(10**9), bytes(100))
    assert engine.fragmentation() > 0.5  # Section 5.6's premise


def test_fragmented_scan_seeks_more_than_contiguous():
    loaded = small_engine(buffer_pool_pages=4)
    loaded.bulk_load(
        iter((b"key%05d" % i, bytes(200)) for i in range(2000))
    )
    fragmented = small_engine(buffer_pool_pages=4)
    rng = random.Random(3)
    keys = sorted({b"key%05d" % rng.randrange(100000) for _ in range(2000)})
    for key in rng.sample(keys, len(keys)):
        fragmented.put(key, bytes(200))
    fragmented.flush()

    def scan_seeks(engine):
        before = engine.stasis.data_disk.stats.seeks
        list(engine.scan(b"key", limit=1000))
        return engine.stasis.data_disk.stats.seeks - before

    assert scan_seeks(fragmented) > 2 * scan_seeks(loaded)


def test_prefetch_faults_in_following_pages():
    engine = small_engine(buffer_pool_pages=64, prefetch_leaves=4)
    engine.bulk_load(
        iter((b"key%04d" % i, bytes(200)) for i in range(300))
    )
    engine.stasis.buffer.drop_all()
    engine.get(b"key0000")  # miss: faults the leaf plus 4 followers
    resident = len(engine.stasis.buffer)
    assert resident >= 5


def test_prefetch_costs_bandwidth_on_random_reads():
    import random

    costs = {}
    for prefetch in (0, 8):
        engine = small_engine(buffer_pool_pages=2, prefetch_leaves=prefetch)
        engine.bulk_load(
            iter((b"key%04d" % i, bytes(200)) for i in range(400))
        )
        rng = random.Random(5)
        read_before = engine.stasis.data_disk.stats.bytes_read
        for _ in range(100):
            engine.get(b"key%04d" % rng.randrange(400))
        costs[prefetch] = (
            engine.stasis.data_disk.stats.bytes_read - read_before
        )
    assert costs[8] > 3 * costs[0]


def test_prefetch_zero_is_default_and_noop():
    engine = small_engine()
    assert engine.prefetch_leaves == 0
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"


def test_closed_engine_rejects_operations():
    engine = small_engine()
    engine.close()
    with pytest.raises(EngineClosedError):
        engine.put(b"k", b"v")
    engine.close()  # idempotent


def test_io_summary_and_seeks():
    engine = small_engine()
    engine.put(b"k", b"v")
    assert "data_seeks" in engine.io_summary()
    assert engine.seeks() >= 0
