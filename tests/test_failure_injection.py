"""Failure-injection tests: crashes at adversarial points.

Every test drives the tree to a particular internal state, crashes the
storage substrate, and checks that recovery restores exactly the
durable-by-contract data (synchronously logged writes plus committed
components) and nothing is corrupted.
"""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.core.partitioned import PartitionedBLSM
from repro.errors import CrashPoint
from repro.faults import FaultPlan, FaultRule
from repro.storage import DurabilityMode


def sync_options(**overrides):
    defaults = dict(
        c0_bytes=24 * 1024,
        buffer_pool_pages=32,
        durability=DurabilityMode.SYNC,
    )
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def populate(tree, n, keyspace=600, seed=0):
    rng = random.Random(seed)
    model = {}
    for i in range(n):
        key = b"user%05d" % rng.randrange(keyspace)
        value = b"v%06d" % i
        tree.put(key, value)
        model[key] = value
    return model


def assert_recovers(tree, model, options):
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    mismatches = {
        k: (v, recovered.get(k)) for k, v in model.items() if recovered.get(k) != v
    }
    assert not mismatches
    return recovered


@pytest.mark.parametrize("budget", [1, 500, 5000, 50_000])
def test_crash_at_every_m01_stage(budget):
    options = sync_options()
    tree = BLSM(options)
    model = populate(tree, 1500)
    tree.step_m01(budget)  # freeze the merge at an arbitrary stage
    assert_recovers(tree, model, options)


def test_crash_immediately_after_m01_completes():
    options = sync_options()
    tree = BLSM(options)
    model = populate(tree, 1500)
    tree.drain()
    assert_recovers(tree, model, options)


@pytest.mark.parametrize("budget", [1, 2000, 20_000])
def test_crash_mid_m12(budget):
    options = sync_options(c0_bytes=8 * 1024)
    tree = BLSM(options)
    model = populate(tree, 2500, keyspace=5000)
    tree.drain()
    while tree._m12 is not None or tree._c1_prime is not None:
        tree.step_m12(1 << 30)  # retire any in-flight C1':C2 merge first
    if tree._c1 is not None:
        tree._c1_prime = tree._c1  # force a promotion
        tree._c1 = None
    tree.step_m12(budget)
    assert_recovers(tree, model, options)


def test_crash_after_compaction():
    options = sync_options()
    tree = BLSM(options)
    model = populate(tree, 2000)
    tree.compact()
    recovered = assert_recovers(tree, model, options)
    assert recovered.component_sizes()["c2"] > 0


def test_repeated_crashes_converge():
    options = sync_options()
    tree = BLSM(options)
    model = populate(tree, 1000)
    stasis = tree.stasis
    for round_ in range(3):
        stasis.crash()
        tree = BLSM.recover(stasis, options)
        for i in range(200):
            key = b"extra%d-%d" % (round_, i)
            tree.put(key, b"x")
            model[key] = b"x"
        tree.step_m01(3000)
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert all(recovered.get(k) == v for k, v in model.items())


def test_crash_during_load_loses_nothing_with_sync_log():
    options = sync_options()
    tree = BLSM(options)
    model = {}
    rng = random.Random(3)
    for i in range(900):
        key = b"user%05d" % rng.randrange(500)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
        if i % 300 == 299:
            recovered = assert_recovers(tree, model, options)
            tree = recovered


def test_torn_merge_leaves_no_leaked_space():
    options = sync_options()
    tree = BLSM(options)
    populate(tree, 1500)
    tree.step_m01(4000)  # a merge holds uncommitted extents
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    live = set()
    for component in (recovered._c1, recovered._c1_prime, recovered._c2):
        if component is not None:
            live.update(component.extents)
    assert set(stasis.regions.allocated_extents) == live


def test_crash_with_pending_tombstones():
    options = sync_options()
    tree = BLSM(options)
    model = populate(tree, 800)
    victims = list(model)[:50]
    for key in victims:
        tree.delete(key)
        del model[key]
    tree.step_m01(2000)
    recovered = assert_recovers(tree, model, options)
    assert all(recovered.get(k) is None for k in victims)


def test_crash_with_pending_deltas():
    options = sync_options()
    tree = BLSM(options)
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.apply_delta(b"k", b"+2")
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, sync_options())
    assert recovered.get(b"k") == b"base+1+2"


# ---------------------------------------------------------------------------
# PartitionedBLSM recovery under injected faults
# ---------------------------------------------------------------------------


MAX_PART = 48 * 1024


def run_partitioned_until_crash(plan, ops=2500, keyspace=900, seed=0):
    """Drive a partitioned tree until the plan kills it (or ops run out).

    Returns ``(tree, model)`` with the in-flight (unacknowledged) write
    already removed from the model.
    """
    options = sync_options(c0_bytes=8 * 1024, fault_plan=plan)
    tree = PartitionedBLSM(options, max_partition_bytes=MAX_PART)
    rng = random.Random(seed)
    model = {}
    plan.arm()
    crashed = False
    try:
        for i in range(ops):
            key = b"user%05d" % rng.randrange(keyspace)
            if rng.random() < 0.1:
                tree.delete(key)
                model[key] = None
            else:
                value = b"v%06d" % i
                tree.put(key, value)
                model[key] = value
    except CrashPoint:
        crashed = True
        model.pop(key, None)  # the in-flight write was never acknowledged
    plan.disarm()
    return tree, model, crashed


def verify_partitioned_recovery(tree, model):
    tree.stasis.crash()
    recovered = PartitionedBLSM.recover(
        tree.stasis, tree.options, max_partition_bytes=MAX_PART
    )
    mismatches = {
        k: (v, recovered.get(k))
        for k, v in model.items()
        if recovered.get(k) != v
    }
    assert not mismatches
    return recovered


@pytest.mark.parametrize("crash_access", [40, 400, 1500])
def test_partitioned_recovers_from_crash_at_access(crash_access):
    plan = FaultPlan.crash_at(crash_access)
    tree, model, crashed = run_partitioned_until_crash(plan)
    assert crashed
    recovered = verify_partitioned_recovery(tree, model)
    assert recovered.partition_count >= 1


def test_partitioned_recovers_from_torn_log_write():
    plan = FaultPlan(
        [
            FaultRule(
                kind="torn", op="write", device="log",
                at_access=600, torn_fraction=0.4,
            )
        ],
        armed=False,
    )
    tree, model, crashed = run_partitioned_until_crash(plan)
    assert crashed
    verify_partitioned_recovery(tree, model)


def test_partitioned_recovers_from_torn_data_write():
    plan = FaultPlan(
        [
            FaultRule(
                kind="torn", op="write", device="data",
                at_access=200, torn_fraction=0.6,
            )
        ],
        armed=False,
    )
    tree, model, crashed = run_partitioned_until_crash(plan)
    if crashed:  # the data device may see < 200 writes; then nothing tears
        verify_partitioned_recovery(tree, model)


def test_partitioned_completes_under_transient_faults():
    plan = FaultPlan(
        [FaultRule(kind="transient", probability=0.03)], seed=5, armed=False
    )
    tree, model, crashed = run_partitioned_until_crash(plan, ops=1200)
    assert not crashed  # transient faults are absorbed by retries
    metrics = tree.stasis.runtime.metrics
    assert metrics.value("retry.retries") > 0
    assert metrics.value("retry.exhausted") == 0
    for key, value in model.items():
        assert tree.get(key) == value


def test_partitioned_repeated_fault_crashes_converge():
    plan = FaultPlan.crash_at(300)
    tree, model, crashed = run_partitioned_until_crash(plan, ops=1200)
    assert crashed
    for round_ in range(3):
        tree.stasis.crash()
        tree = PartitionedBLSM.recover(
            tree.stasis, tree.options, max_partition_bytes=MAX_PART
        )
        for i in range(150):
            key = b"extra%d-%d" % (round_, i)
            tree.put(key, b"x")
            model[key] = b"x"
    verify_partitioned_recovery(tree, model)
