"""Tests for the hot-path CPU profiler (``repro profile``, BENCH_10)."""

import json

import pytest

from repro.cli import main
from repro.memtable import MEMTABLE_NAMES
from repro.obs.report import load_report, validate_payload
from repro.ycsb.profile import (
    PRE_PR_BASELINE_OPS_PER_CPU_SECOND,
    memtable_microbench,
    profile_compare_rules,
    profile_memtables,
    profile_phases,
    profile_report,
    profile_workload,
)

# Small enough to run in well under a second; the committed BENCH_10
# uses the full default scale.
SMALL = dict(records=200, operations=600)


@pytest.fixture(scope="module")
def sweep_results():
    return profile_memtables(MEMTABLE_NAMES, trials=1, **SMALL)


def test_profile_workload_measures_cpu_rate():
    result = profile_workload(memtable="skiplist", trials=2, **SMALL)
    assert result.total_ops == 800
    assert len(result.trial_rates) == 2
    assert result.ops_per_cpu_second == max(result.trial_rates) > 0
    assert result.cpu_seconds > 0
    assert result.speedup_vs_baseline == pytest.approx(
        result.ops_per_cpu_second / PRE_PR_BASELINE_OPS_PER_CPU_SECOND
    )


def test_profile_workload_rejects_zero_trials():
    with pytest.raises(ValueError, match="trials"):
        profile_workload(trials=0, **SMALL)


def test_spin_shim_slows_the_measured_phase():
    clean = profile_workload(memtable="skiplist", trials=1, **SMALL)
    spun = profile_workload(
        memtable="skiplist", trials=1, spin_us=200.0, **SMALL
    )
    # 200 CPU-microseconds per measured op is a planted regression far
    # beyond timing noise; the rate must collapse.
    assert spun.ops_per_cpu_second < clean.ops_per_cpu_second / 2
    assert spun.run_cpu_seconds >= SMALL["operations"] * 150e-6


def test_sweep_covers_every_backend(sweep_results):
    assert [r.memtable for r in sweep_results] == list(MEMTABLE_NAMES)
    for result in sweep_results:
        assert result.ops_per_cpu_second > 0


def test_memtable_microbench_reports_component_costs():
    costs = memtable_microbench("array", n=300)
    assert set(costs) == {
        "insert_ns", "point_read_ns", "scan_ns", "drain_ns"
    }
    assert all(value > 0 for value in costs.values())


def test_profile_phases_reports_subsystem_costs():
    phases = profile_phases(n=2000)
    assert set(phases) == {
        "op_generation_ns",
        "bloom_add_probe_ns",
        "disk_charge_ns",
        "metrics_dispatch_ns",
    }
    assert all(value > 0 for value in phases.values())


def test_profile_report_schema_and_blocks(sweep_results):
    micro = {
        r.memtable: memtable_microbench(r.memtable, n=200)
        for r in sweep_results
    }
    report = profile_report(
        sweep_results, {"seed": 0}, micro=micro, phases=profile_phases(1000)
    )
    assert report.bench == "profile"
    assert validate_payload(report.to_dict()) == []
    best = report.value("best")
    assert best["memtable"] in MEMTABLE_NAMES
    assert best["ops_per_cpu_second"] == max(
        r.ops_per_cpu_second for r in sweep_results
    )
    assert report.value("default.memtable") == "skiplist"
    assert report.value("baseline_ops_per_cpu_second") == (
        PRE_PR_BASELINE_OPS_PER_CPU_SECOND
    )
    for kind in MEMTABLE_NAMES:
        block = report.value(f"memtables.{kind}")
        assert block["micro"]["insert_ns"] > 0
        assert block["trial_rates"]


def test_profile_report_requires_results():
    with pytest.raises(ValueError, match="at least one"):
        profile_report([], {})


def test_compare_rules_cover_sweep_and_floor_tolerance(sweep_results):
    report = profile_report(sweep_results, {})
    rules = profile_compare_rules(report, tolerance=0.25)
    paths = {rule.path for rule in rules}
    assert "best.ops_per_cpu_second" in paths
    for kind in MEMTABLE_NAMES:
        assert f"memtables.{kind}.ops_per_cpu_second" in paths
    # CPU rates are machine-dependent: the tolerance never drops below
    # 50% no matter what the caller passes...
    assert all(rule.tolerance == 0.5 for rule in rules)
    # ...but a caller asking for more slack gets it.
    wide = profile_compare_rules(report, tolerance=0.8)
    assert all(rule.tolerance == 0.8 for rule in wide)


# ----------------------------------------------------------------------
# Observability toggle: byte-identical engine state either way
# ----------------------------------------------------------------------


def _seeded_trace(engine, ops: int = 400, seed: int = 9):
    import random

    rng = random.Random(seed)
    for step in range(ops):
        key = b"key%03d" % rng.randrange(80)
        roll = rng.random()
        if roll < 0.6:
            engine.put(key, bytes([rng.randrange(256)]) * 24)
        elif roll < 0.8:
            engine.delete(key)
        else:
            engine.get(key)


def test_observability_off_is_semantically_invisible():
    """Disabling metrics/tracing skips dispatch work only: logical
    state (digest), scan order and even the virtual clock must be
    byte-identical to the instrumented engine."""
    from repro.engines import build_engine

    observed = build_engine(
        "blsm", c0_bytes=8 * 1024, cache_pages=16, observability=True
    )
    dark = build_engine(
        "blsm", c0_bytes=8 * 1024, cache_pages=16, observability=False
    )
    _seeded_trace(observed)
    _seeded_trace(dark)
    assert observed.state_digest() == dark.state_digest()
    assert observed.clock.now == dark.clock.now
    observed.close()
    dark.close()


def test_observability_off_disables_trace_and_counters():
    from repro.engines import build_engine

    dark = build_engine("blsm", durability="sync", observability=False)
    lit = build_engine("blsm", durability="sync", observability=True)
    assert not dark.runtime.observability
    assert not dark.runtime.trace.enabled
    _seeded_trace(dark, ops=50)
    _seeded_trace(lit, ops=50)
    # The instrumented engine accumulates per-device counters; the dark
    # one skips that dispatch entirely (same I/O, no bookkeeping).
    lit_writes = [
        name for name in lit.metrics() if name.endswith(".write_ops")
    ]
    assert lit_writes, "instrumented engine must expose disk counters"
    assert any(
        lit.runtime.metrics.value(name, 0.0) > 0.0 for name in lit_writes
    )
    for name in lit_writes:
        assert dark.runtime.metrics.value(name, 0.0) == 0.0
    dark.close()
    lit.close()


# ----------------------------------------------------------------------
# CLI: repro profile / the planted-regression gate self-test
# ----------------------------------------------------------------------


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_profile_emits_envelope_and_passes_floor(capsys, tmp_path):
    out_path = tmp_path / "BENCH_10.json"
    code, out = run_cli(
        capsys,
        "profile", "--memtable", "all", "--records", "200", "--ops", "600",
        "--trials", "1", "--phases", "--json", str(out_path),
        "--assert-min-ops", "100", "--quiet",
    )
    assert code == 0
    assert "gates: all passed" in out
    report = load_report(str(out_path))
    assert validate_payload(report.to_dict()) == []
    assert set(report.metrics["memtables"]) == set(MEMTABLE_NAMES)
    assert report.value("phases.op_generation_ns") > 0


def test_cli_profile_rejects_unknown_memtable(capsys):
    with pytest.raises(SystemExit, match="unknown memtable"):
        main(["profile", "--memtable", "btree"])


def test_cli_profile_floor_gate_fails_loudly(capsys):
    code, out = run_cli(
        capsys,
        "profile", "--memtable", "skiplist", "--records", "100",
        "--ops", "200", "--trials", "1",
        "--assert-min-ops", "1e12", "--quiet",
    )
    assert code == 1
    assert "FAIL" in out


def test_cli_planted_regression_fails_the_compare_gate(capsys, tmp_path):
    """The throughput gate self-test: a per-op CPU-spin shim plants a
    real hot-path regression, and ``repro report --compare`` against
    the clean baseline must exit nonzero."""
    base_path = tmp_path / "BENCH_10.json"
    code, _ = run_cli(
        capsys,
        "profile", "--memtable", "skiplist", "--records", "200",
        "--ops", "500", "--trials", "1", "--json", str(base_path), "--quiet",
    )
    assert code == 0

    # Identical report → perf gate passes.
    code, out = run_cli(
        capsys, "report", "--compare", str(base_path), str(base_path)
    )
    assert code == 0
    assert "no regressions" in out

    regressed_path = tmp_path / "BENCH_10.regressed.json"
    code, _ = run_cli(
        capsys,
        "profile", "--memtable", "skiplist", "--records", "200",
        "--ops", "500", "--trials", "1", "--spin-us", "400",
        "--json", str(regressed_path), "--quiet",
    )
    assert code == 0
    code, out = run_cli(
        capsys, "report", "--compare", str(base_path), str(regressed_path)
    )
    assert code == 1
    assert "FAIL" in out
    assert "ops_per_cpu_second" in out


def test_committed_bench_10_is_valid_and_clears_3x():
    """The committed BENCH_10.json must parse, carry the full sweep,
    and demonstrate the >= 3x hot-path speedup acceptance."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_10.json"
    if not path.exists():
        pytest.skip("BENCH_10.json not committed")
    report = load_report(str(path))
    assert report.bench == "profile"
    assert validate_payload(report.to_dict()) == []
    assert set(report.metrics["memtables"]) >= set(MEMTABLE_NAMES)
    assert report.value("best.speedup_vs_baseline") >= 3.0
    assert report.value("baseline_ops_per_cpu_second") == (
        PRE_PR_BASELINE_OPS_PER_CPU_SECOND
    )
