"""Stateful (rule-based) property testing of the engines.

Hypothesis drives arbitrary interleavings of the full public API —
writes, deletes, deltas, reads, scans, insert-if-not-exists, merge
steps, crash/recover — against a dictionary model.  This is the test
that found the delta double-application and tombstone-swallowing bugs
documented in docs/correctness.md.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import BLSM, BLSMOptions, PartitionedBLSM
from repro.storage import DurabilityMode

keys = st.binary(min_size=1, max_size=6)
values = st.binary(min_size=0, max_size=24)


class BLSMMachine(RuleBasedStateMachine):
    """The unpartitioned tree under arbitrary API interleavings.

    The option combination is itself randomized, so every feature flag
    (scheduler, snowshoveling, compression, Bloom persistence, delta
    read-repair, the extra-components workaround) is exercised under
    the same arbitrary interleavings.
    """

    @initialize(
        scheduler=st.sampled_from(["naive", "gear", "spring_gear"]),
        snowshovel=st.booleans(),
        compression=st.sampled_from([1.0, 0.5]),
        persist_blooms=st.booleans(),
        repair=st.booleans(),
        extras=st.booleans(),
    )
    def setup(self, scheduler, snowshovel, compression, persist_blooms,
              repair, extras):
        self.options = BLSMOptions(
            c0_bytes=2048,
            buffer_pool_pages=8,
            durability=DurabilityMode.SYNC,
            scheduler=scheduler,
            snowshovel=snowshovel,
            compression_ratio=compression,
            persist_bloom_filters=persist_blooms,
            delta_read_repair=repair,
            extra_components=extras,
        )
        self.tree = BLSM(self.options)
        self.model: dict[bytes, bytes] = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule(key=keys, delta=st.binary(min_size=1, max_size=6))
    def apply_delta(self, key, delta):
        self.tree.apply_delta(key, delta)
        if key in self.model:
            self.model[key] += delta

    @rule(key=keys, value=values)
    def insert_if_not_exists(self, key, value):
        inserted = self.tree.insert_if_not_exists(key, value)
        assert inserted == (key not in self.model)
        if inserted:
            self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(budget=st.integers(1, 5000))
    def merge_work(self, budget):
        if self.tree.step_m01(budget) == 0:
            self.tree.step_m12(budget)

    @rule()
    def drain(self):
        self.tree.drain()

    @rule()
    def crash_and_recover(self):
        stasis = self.tree.stasis
        stasis.crash()
        self.tree = BLSM.recover(stasis, self.options)

    @precondition(lambda self: len(self.model) < 200)
    @rule()
    def full_scan_matches_model(self):
        assert list(self.tree.scan(b"")) == sorted(self.model.items())

    @invariant()
    def spot_check(self):
        if self.model:
            key = next(iter(self.model))
            assert self.tree.get(key) == self.model[key]


class PartitionedMachine(RuleBasedStateMachine):
    """The partitioned tree under arbitrary API interleavings."""

    @initialize()
    def setup(self):
        self.options = BLSMOptions(
            c0_bytes=2048,
            buffer_pool_pages=8,
            durability=DurabilityMode.SYNC,
        )
        self.tree = PartitionedBLSM(self.options, max_partition_bytes=4096)
        self.model: dict[bytes, bytes] = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule(key=keys)
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(budget=st.integers(1, 5000))
    def merge_work(self, budget):
        self.tree.merge_step(budget)

    @rule()
    def crash_and_recover(self):
        stasis = self.tree.stasis
        stasis.crash()
        self.tree = PartitionedBLSM.recover(
            stasis, self.options, max_partition_bytes=4096
        )

    @rule()
    def full_scan_matches_model(self):
        assert list(self.tree.scan(b"")) == sorted(self.model.items())

    @invariant()
    def partitions_tile(self):
        ranges = self.tree.partition_ranges()
        assert ranges[0][0] == b""
        assert ranges[-1][1] is None
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo


TestBLSMStateful = BLSMMachine.TestCase
TestBLSMStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestPartitionedStateful = PartitionedMachine.TestCase
TestPartitionedStateful.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
