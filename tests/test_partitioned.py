"""Behavioural tests for the partitioned bLSM tree (Section 4.2.2)."""

import random

import pytest

from repro.core import BLSMOptions, PartitionedBLSM
from repro.errors import EngineClosedError
from repro.storage import DurabilityMode


def small_tree(**overrides):
    max_partition = overrides.pop("max_partition_bytes", 64 * 1024)
    defaults = dict(c0_bytes=32 * 1024, buffer_pool_pages=64)
    defaults.update(overrides)
    return PartitionedBLSM(
        BLSMOptions(**defaults), max_partition_bytes=max_partition
    )


def test_put_get_roundtrip():
    tree = small_tree()
    tree.put(b"k", b"v")
    assert tree.get(b"k") == b"v"
    assert tree.get(b"missing") is None


def test_model_equivalence_with_splits():
    tree = small_tree()
    rng = random.Random(5)
    model = {}
    for i in range(8000):
        action = rng.random()
        key = b"key%06d" % rng.randrange(4000)
        if action < 0.8:
            value = b"v%06d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.9:
            tree.delete(key)
            model.pop(key, None)
        elif key in model:
            tree.apply_delta(key, b"+D")
            model[key] += b"+D"
    assert tree.partition_count > 1  # splits happened
    assert sum(1 for k, v in model.items() if tree.get(k) != v) == 0


def test_scan_across_partition_boundaries():
    tree = small_tree()
    model = {}
    for i in range(6000):
        key = b"key%06d" % (i % 3000)
        value = b"v%d" % i
        tree.put(key, value)
        model[key] = value
    tree.drain()
    assert tree.partition_count > 1
    expected = sorted(model.items())
    assert list(tree.scan(b"")) == expected
    # A scan straddling a boundary:
    boundary = tree.partition_ranges()[1][0]
    lo = boundary[:-1]  # just below the second partition's low key
    got = list(tree.scan(lo, limit=50))
    model_slice = [(k, v) for k, v in expected if k >= lo][:50]
    assert got == model_slice


def test_partitions_tile_the_keyspace():
    tree = small_tree()
    for i in range(6000):
        tree.put(b"key%06d" % (i % 3000), bytes(32))
    tree.drain()
    ranges = tree.partition_ranges()
    assert ranges[0][0] == b""
    assert ranges[-1][1] is None
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo  # no gaps, no overlaps


def test_two_seek_scans_outside_merging_partition():
    # Section 3.3: with partitioning, most of the tree needs only two
    # seeks per scan because each partition holds at most C1 + C2.
    tree = small_tree()
    for i in range(6000):
        tree.put(b"key%06d" % (i % 3000), bytes(32))
    tree.drain()
    ranges = tree.partition_ranges()
    assert len(ranges) > 1
    lo, hi = ranges[0][0], ranges[0][1]
    assert tree.components_in_range(lo, hi) <= 2


def test_greedy_selection_targets_hot_partitions():
    # Concentrate writes in one key range: the hot partition should
    # absorb the merge activity while cold partitions stay untouched.
    tree = small_tree(c0_bytes=16 * 1024)
    for i in range(4000):  # build several partitions of cold data
        tree.put(b"key%06d" % (i % 2000), bytes(32))
    tree.drain()
    assert tree.partition_count > 1
    cold_ids = {
        id(p.c2)
        for p in tree._partitions[1:]
        if p.c2 is not None
    }
    # Hammer the first partition's range only.
    for i in range(3000):
        tree.put(b"key0000%02d" % (i % 100), b"hot%d" % i)
    untouched = sum(
        1
        for p in tree._partitions[1:]
        if p.c2 is not None and id(p.c2) in cold_ids
    )
    assert untouched >= max(1, (tree.partition_count - 1) // 2)


def test_tombstones_collected_per_partition():
    tree = small_tree()
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(32))
    tree.drain()
    for i in range(2000):
        tree.delete(b"key%05d" % i)
    tree.drain()
    # Force every partition's C1 down into C2 (tombstones drop there).
    for partition in list(tree._partitions):
        while partition.c1 is not None and partition in tree._partitions:
            if partition.m12 is None:
                tree._start_m12(partition)
            partition.m12.run_to_completion()
            tree._finish_merge(partition, partition.m12)
            break
    assert list(tree.scan(b"key")) == []


def test_deltas_fold_across_partition_levels():
    tree = small_tree()
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.apply_delta(b"k", b"+2")
    assert tree.get(b"k") == b"base+1+2"
    tree.drain()
    assert tree.get(b"k") == b"base+1+2"


def test_insert_if_not_exists():
    tree = small_tree()
    assert tree.insert_if_not_exists(b"k", b"v1")
    assert not tree.insert_if_not_exists(b"k", b"v2")
    assert tree.get(b"k") == b"v1"


def test_read_modify_write():
    tree = small_tree()
    tree.put(b"n", b"1")
    assert tree.read_modify_write(b"n", lambda v: v + b"1") == b"11"


def test_recovery_restores_partitions_and_memtable():
    options = BLSMOptions(
        c0_bytes=32 * 1024, buffer_pool_pages=64,
        durability=DurabilityMode.SYNC,
    )
    tree = PartitionedBLSM(options, max_partition_bytes=64 * 1024)
    rng = random.Random(9)
    model = {}
    for i in range(6000):
        key = b"key%06d" % rng.randrange(3000)
        value = b"v%d" % i
        tree.put(key, value)
        model[key] = value
    partitions_before = tree.partition_count
    stasis = tree.stasis
    stasis.crash()
    recovered = PartitionedBLSM.recover(
        stasis, options, max_partition_bytes=64 * 1024
    )
    assert recovered.partition_count == partitions_before
    assert sum(1 for k, v in model.items() if recovered.get(k) != v) == 0


def test_crash_mid_merge_is_safe():
    options = BLSMOptions(
        c0_bytes=32 * 1024, durability=DurabilityMode.SYNC
    )
    tree = PartitionedBLSM(options, max_partition_bytes=64 * 1024)
    model = {}
    for i in range(3000):
        key = b"key%05d" % (i % 1500)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
    tree.merge_step(2000)  # leave a merge in flight
    stasis = tree.stasis
    stasis.crash()
    recovered = PartitionedBLSM.recover(stasis, options)
    assert sum(1 for k, v in model.items() if recovered.get(k) != v) == 0


def test_write_latency_stays_bounded_under_uniform_load():
    tree = small_tree(c0_bytes=64 * 1024)
    rng = random.Random(3)
    worst = 0.0
    for i in range(8000):
        before = tree.stasis.clock.now
        tree.put(b"user%09d" % rng.randrange(10**9), bytes(64))
        worst = max(worst, tree.stasis.clock.now - before)
    assert worst < 0.1  # no pass-sized stalls


def test_closed_tree_rejects_operations():
    tree = small_tree()
    tree.close()
    with pytest.raises(EngineClosedError):
        tree.put(b"k", b"v")


def test_stats_surface():
    tree = small_tree()
    tree.put(b"k", b"v")
    stats = tree.stats()
    for key in ("partitions", "c0", "disk_bytes", "clock_seconds"):
        assert key in stats


def test_engine_adapter():
    from repro.baselines import PartitionedBLSMEngine

    engine = PartitionedBLSMEngine(
        BLSMOptions(c0_bytes=32 * 1024), max_partition_bytes=64 * 1024
    )
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    assert engine.insert_if_not_exists(b"k2", b"w")
    engine.apply_delta(b"k", b"+d")
    assert engine.get(b"k") == b"v+d"
    assert list(engine.scan(b"k", limit=2)) == [(b"k", b"v+d"), (b"k2", b"w")]
    assert "partitions" in engine.io_summary()
    engine.close()
