"""Unit tests for the physical write-ahead log."""

import pytest

from repro.errors import LogError
from repro.sim import DiskModel, SimDisk, VirtualClock
from repro.storage import WriteAheadLog


@pytest.fixture
def wal():
    clock = VirtualClock()
    return WriteAheadLog(SimDisk(DiskModel.hdd(), clock))


def test_append_assigns_increasing_lsns(wal):
    assert wal.append("a", 1) == 0
    assert wal.append("b", 2) == 1
    assert wal.next_lsn == 2


def test_unforced_records_are_not_durable(wal):
    wal.append("manifest", {"x": 1})
    assert wal.durable_lsn == 0
    assert list(wal.records()) == []


def test_force_makes_records_durable(wal):
    wal.append("manifest", {"x": 1})
    wal.force()
    records = list(wal.records())
    assert len(records) == 1
    assert records[0].payload == {"x": 1}
    assert wal.durable_lsn == 1


def test_force_charges_sequential_io(wal):
    wal.append("a", "payload-one")
    wal.force()
    wal.append("b", "payload-two")
    wal.force()
    assert wal.disk.stats.seeks == 1  # appends continue sequentially


def test_crash_loses_unforced_tail(wal):
    wal.append("a", 1)
    wal.force()
    wal.append("b", 2)
    wal.crash()
    kinds = [record.kind for record in wal.records()]
    assert kinds == ["a"]


def test_truncate_drops_old_records(wal):
    for i in range(5):
        wal.append("r", i)
    wal.force()
    wal.truncate(3)
    payloads = [record.payload for record in wal.records()]
    assert payloads == [3, 4]


def test_truncate_past_end_rejected(wal):
    with pytest.raises(LogError):
        wal.truncate(10)


def test_replay_from_lsn(wal):
    for i in range(4):
        wal.append("r", i)
    wal.force()
    payloads = [record.payload for record in wal.records(from_lsn=2)]
    assert payloads == [2, 3]


def test_replay_charges_read_io(wal):
    wal.append("r", "data")
    wal.force()
    before = wal.disk.stats.bytes_read
    list(wal.records())
    assert wal.disk.stats.bytes_read > before


def test_explicit_record_size(wal):
    wal.append("r", "x", nbytes=1000)
    before = wal.disk.stats.bytes_written
    wal.force()
    assert wal.disk.stats.bytes_written - before == 1000


def test_truncate_advances_durable_head(wal):
    for i in range(4):
        wal.append("r", i, nbytes=100)
    wal.force()
    assert wal.head_offset == 0
    wal.truncate(2)
    assert wal.head_offset == 200  # records 0 and 1 are dead space
    wal.truncate(4)
    assert wal.head_offset == 400  # empty log: head meets tail


def test_replay_charged_from_head_not_origin(wal):
    for i in range(10):
        wal.append("r", i, nbytes=500)
    wal.force()
    wal.truncate(9)  # one live record, 4500 dead bytes before it
    before = wal.disk.stats.bytes_read
    list(wal.records())
    assert wal.disk.stats.bytes_read - before == 500  # not 5000


def test_replay_cost_stays_proportional_to_live_tail(wal):
    # Repeated append/truncate cycles must not grow replay cost: the
    # head chases the tail, so replay reads only the retained records.
    costs = []
    for cycle in range(5):
        for i in range(20):
            wal.append("r", (cycle, i), nbytes=64)
        wal.force()
        wal.truncate(wal.next_lsn - 1)
        before = wal.disk.stats.bytes_read
        list(wal.records())
        costs.append(wal.disk.stats.bytes_read - before)
    assert len(set(costs)) == 1  # identical every cycle


def test_live_bytes_tracks_retained_records(wal):
    for i in range(3):
        wal.append("r", i, nbytes=100)
    wal.force()
    assert wal.live_bytes == 300
    wal.truncate(2)
    assert wal.live_bytes == 100


def test_records_carry_checksums_on_fault_capable_disks():
    # Checksums exist to catch device damage, so they are only computed
    # when the device *can* be damaged; a plain SimDisk skips them.
    from repro.faults.disk import FaultyDisk

    clock = VirtualClock()
    wal = WriteAheadLog(FaultyDisk(DiskModel.hdd(), clock))
    wal.append("manifest", {"root": 7})
    wal.force()
    (record,) = list(wal.records())
    assert record.checksum != 0


def test_plain_disks_skip_checksums(wal):
    wal.append("manifest", {"root": 7})
    wal.force()
    (record,) = list(wal.records())
    assert record.checksum == 0  # SimDisk can neither corrupt nor tear


# ---------------------------------------------------------------------------
# Accounting invariants under truncate / torn-crash / recovery (property test)
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import CrashPoint  # noqa: E402


class _TornDisk(SimDisk):
    """A disk that tears one scheduled write partway through."""

    def __init__(self, model, clock):
        super().__init__(model, clock)
        self.tear_fraction: float | None = None

    def write(self, offset: int, nbytes: int) -> float:
        fraction = self.tear_fraction
        if fraction is not None:
            self.tear_fraction = None
            raise CrashPoint(persisted_bytes=int(nbytes * fraction))
        return super().write(offset, nbytes)


def _check_wal_invariants(wal: WriteAheadLog) -> None:
    """The accounting every quiescent (post-recovery) WAL must satisfy."""
    assert wal.durable_lsn <= wal.next_lsn
    assert 0 <= wal.head_offset <= wal.tail_offset
    # Live records occupy a contiguous span inside [head, tail]: replay
    # never reads outside what the device actually holds.
    assert wal.live_bytes <= wal.tail_offset - wal.head_offset


_wal_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=1, max_value=200)),
        st.tuples(st.just("force"), st.just(0)),
        st.tuples(
            st.just("torn_crash"),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        st.tuples(st.just("truncate"), st.floats(min_value=0.0, max_value=1.0)),
    ),
    min_size=1,
    max_size=40,
)


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_wal_ops)
def test_wal_accounting_survives_truncate_crash_recover(ops):
    clock = VirtualClock()
    disk = _TornDisk(DiskModel.hdd(), clock)
    wal = WriteAheadLog(disk)
    acked: set[int] = set()   # lsns whose force completed (durable contract)
    staged: list[int] = []    # appended, awaiting a force (lost by a crash)
    floor = 0                 # truncation floor: lsns below are released
    for kind, arg in ops:
        if kind == "append":
            staged.append(wal.append("r", arg, nbytes=arg))
        elif kind == "force":
            wal.force()
            acked.update(staged)
            staged.clear()
        elif kind == "truncate":
            lsn = int(arg * wal.next_lsn)
            wal.truncate(lsn)
            floor = max(floor, lsn)
            acked = {l for l in acked if l >= floor}
        else:  # torn_crash: tear the force, die, recover via replay
            if wal.pending_records == 0:
                continue
            disk.tear_fraction = arg
            try:
                wal.force()
            except CrashPoint:
                pass
            wal.crash()
            staged.clear()  # un-forced appends died with the process
            replayed = [r.lsn for r in wal.records()]
            # Recovery contract: every acked record still in the log
            # replays, in order; the torn (never-acked) tail is dropped.
            assert replayed == sorted(replayed)
            assert acked <= set(replayed) | set(range(floor))
            acked.update(replayed)
        if kind != "append":  # pending bytes are not yet accounted on-disk
            _check_wal_invariants(wal)
    # Reopen: a final crash + replay must land on consistent accounting
    # and lose nothing that was acked.
    wal.crash()
    survivors = [r.lsn for r in wal.records()]
    assert acked <= set(survivors) | set(range(floor))
    _check_wal_invariants(wal)
    # The log must remain writable after recovery: post-recovery appends
    # force and replay cleanly over any rolled-back torn region.
    wal.append("post", 1, nbytes=64)
    wal.force()
    assert wal.next_lsn - 1 in {r.lsn for r in wal.records()}
    _check_wal_invariants(wal)


def test_torn_tail_truncation_rolls_back_tail_offset():
    # A torn force leaves the straddling record's partial bytes on disk;
    # recovery drops the record AND reclaims its space — the tail rolls
    # back to where it began, so no dead bytes are stranded inside the
    # live extent and post-recovery appends overwrite the torn region.
    clock = VirtualClock()
    disk = _TornDisk(DiskModel.hdd(), clock)
    wal = WriteAheadLog(disk)
    wal.append("good", 1, nbytes=100)
    wal.force()
    tail_after_good = wal.tail_offset
    wal.append("torn", 2, nbytes=100)
    disk.tear_fraction = 0.5  # 50 of 100 bytes reach the platter
    try:
        wal.force()
    except CrashPoint:
        pass
    assert wal.tail_offset == tail_after_good + 50  # partial bytes on disk
    wal.crash()
    assert [r.payload for r in wal.records()] == [1]  # torn record dropped
    assert wal.tail_offset == tail_after_good  # ...and its space reclaimed
    assert wal.live_bytes == wal.tail_offset - wal.head_offset
    wal.append("after", 3, nbytes=100)
    wal.force()
    assert [r.payload for r in wal.records()] == [1, 3]


def test_torn_tail_truncation_of_whole_log_resets_head():
    clock = VirtualClock()
    disk = _TornDisk(DiskModel.hdd(), clock)
    wal = WriteAheadLog(disk)
    wal.append("only", 1, nbytes=100)
    disk.tear_fraction = 0.3
    try:
        wal.force()
    except CrashPoint:
        pass
    wal.crash()
    assert list(wal.records()) == []
    assert wal.head_offset == wal.tail_offset == 0
    assert wal.live_bytes == 0
