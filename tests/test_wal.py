"""Unit tests for the physical write-ahead log."""

import pytest

from repro.errors import LogError
from repro.sim import DiskModel, SimDisk, VirtualClock
from repro.storage import WriteAheadLog


@pytest.fixture
def wal():
    clock = VirtualClock()
    return WriteAheadLog(SimDisk(DiskModel.hdd(), clock))


def test_append_assigns_increasing_lsns(wal):
    assert wal.append("a", 1) == 0
    assert wal.append("b", 2) == 1
    assert wal.next_lsn == 2


def test_unforced_records_are_not_durable(wal):
    wal.append("manifest", {"x": 1})
    assert wal.durable_lsn == 0
    assert list(wal.records()) == []


def test_force_makes_records_durable(wal):
    wal.append("manifest", {"x": 1})
    wal.force()
    records = list(wal.records())
    assert len(records) == 1
    assert records[0].payload == {"x": 1}
    assert wal.durable_lsn == 1


def test_force_charges_sequential_io(wal):
    wal.append("a", "payload-one")
    wal.force()
    wal.append("b", "payload-two")
    wal.force()
    assert wal.disk.stats.seeks == 1  # appends continue sequentially


def test_crash_loses_unforced_tail(wal):
    wal.append("a", 1)
    wal.force()
    wal.append("b", 2)
    wal.crash()
    kinds = [record.kind for record in wal.records()]
    assert kinds == ["a"]


def test_truncate_drops_old_records(wal):
    for i in range(5):
        wal.append("r", i)
    wal.force()
    wal.truncate(3)
    payloads = [record.payload for record in wal.records()]
    assert payloads == [3, 4]


def test_truncate_past_end_rejected(wal):
    with pytest.raises(LogError):
        wal.truncate(10)


def test_replay_from_lsn(wal):
    for i in range(4):
        wal.append("r", i)
    wal.force()
    payloads = [record.payload for record in wal.records(from_lsn=2)]
    assert payloads == [2, 3]


def test_replay_charges_read_io(wal):
    wal.append("r", "data")
    wal.force()
    before = wal.disk.stats.bytes_read
    list(wal.records())
    assert wal.disk.stats.bytes_read > before


def test_explicit_record_size(wal):
    wal.append("r", "x", nbytes=1000)
    before = wal.disk.stats.bytes_written
    wal.force()
    assert wal.disk.stats.bytes_written - before == 1000


def test_truncate_advances_durable_head(wal):
    for i in range(4):
        wal.append("r", i, nbytes=100)
    wal.force()
    assert wal.head_offset == 0
    wal.truncate(2)
    assert wal.head_offset == 200  # records 0 and 1 are dead space
    wal.truncate(4)
    assert wal.head_offset == 400  # empty log: head meets tail


def test_replay_charged_from_head_not_origin(wal):
    for i in range(10):
        wal.append("r", i, nbytes=500)
    wal.force()
    wal.truncate(9)  # one live record, 4500 dead bytes before it
    before = wal.disk.stats.bytes_read
    list(wal.records())
    assert wal.disk.stats.bytes_read - before == 500  # not 5000


def test_replay_cost_stays_proportional_to_live_tail(wal):
    # Repeated append/truncate cycles must not grow replay cost: the
    # head chases the tail, so replay reads only the retained records.
    costs = []
    for cycle in range(5):
        for i in range(20):
            wal.append("r", (cycle, i), nbytes=64)
        wal.force()
        wal.truncate(wal.next_lsn - 1)
        before = wal.disk.stats.bytes_read
        list(wal.records())
        costs.append(wal.disk.stats.bytes_read - before)
    assert len(set(costs)) == 1  # identical every cycle


def test_live_bytes_tracks_retained_records(wal):
    for i in range(3):
        wal.append("r", i, nbytes=100)
    wal.force()
    assert wal.live_bytes == 300
    wal.truncate(2)
    assert wal.live_bytes == 100


def test_records_carry_checksums(wal):
    wal.append("manifest", {"root": 7})
    wal.force()
    (record,) = list(wal.records())
    assert record.checksum != 0
