"""Unit tests for latency statistics and timeseries."""

import pytest

from repro.ycsb import LatencyStats, Timeseries


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.max == 0.0
        assert stats.percentile(99) == 0.0

    def test_mean_and_max(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.max == 3.0

    def test_percentiles_nearest_rank(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.record(float(value))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(0) == 1.0

    def test_recording_after_percentile_query(self):
        stats = LatencyStats()
        stats.record(5.0)
        assert stats.percentile(50) == 5.0
        stats.record(1.0)
        assert stats.percentile(0) == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.record(1.0)
        summary = stats.summary()
        for key in ("count", "mean", "p50", "p95", "p99", "max"):
            assert key in summary


class TestTimeseries:
    def test_windows_partition_time(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.5, 0.01)
        series.record(1.5, 0.02)
        series.record(1.9, 0.04)
        assert len(series.windows) == 2
        assert series.throughputs() == [1.0, 2.0]

    def test_gap_windows_are_empty(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.0, 0.01)
        series.record(3.5, 0.01)
        assert len(series.windows) == 4
        assert series.throughputs()[1] == 0.0

    def test_latency_aggregation(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.1, 0.010)
        series.record(0.2, 0.030)
        window = series.windows[0]
        assert window.mean_latency == pytest.approx(0.020)
        assert window.latency_max == pytest.approx(0.030)
        assert series.max_latencies() == [pytest.approx(0.030)]

    def test_rows_shape(self):
        series = Timeseries(window_seconds=0.5)
        series.record(0.1, 0.01)
        rows = series.rows()
        assert rows[0][0] == 0.0
        assert rows[0][1] == pytest.approx(2.0)
