"""Unit tests for latency statistics and timeseries."""

import pytest

from repro.ycsb import LatencyStats, Timeseries


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.max == 0.0
        assert stats.percentile(99) == 0.0

    def test_mean_and_max(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.record(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.max == 3.0

    def test_percentiles_nearest_rank(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.record(float(value))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(0) == 1.0

    def test_recording_after_percentile_query(self):
        stats = LatencyStats()
        stats.record(5.0)
        assert stats.percentile(50) == 5.0
        stats.record(1.0)
        assert stats.percentile(0) == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.record(1.0)
        summary = stats.summary()
        for key in ("count", "mean", "p50", "p95", "p99", "max"):
            assert key in summary

    def test_running_max_tracks_every_record(self):
        stats = LatencyStats()
        for value in (3.0, 7.0, 2.0, 5.0):
            stats.record(value)
            assert stats.max == max(stats._samples)
        # max survives the lazy sort percentile() performs
        stats.percentile(50)
        assert stats.max == 7.0

    def test_merge_preserves_samples_and_max(self):
        a, b = LatencyStats(), LatencyStats()
        for value in (1.0, 9.0):
            a.record(value)
        for value in (4.0, 2.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.max == 9.0
        assert a.percentile(100) == 9.0
        b2 = LatencyStats()
        b2.record(20.0)
        a.merge(b2)
        assert a.max == 20.0


class TestTimeseries:
    def test_windows_partition_time(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.5, 0.01)
        series.record(1.5, 0.02)
        series.record(1.9, 0.04)
        assert len(series.windows) == 2
        assert series.throughputs() == [1.0, 2.0]

    def test_gap_windows_are_empty(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.0, 0.01)
        series.record(3.5, 0.01)
        assert len(series.windows) == 4
        assert series.throughputs()[1] == 0.0

    def test_latency_aggregation(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.1, 0.010)
        series.record(0.2, 0.030)
        window = series.windows[0]
        assert window.mean_latency == pytest.approx(0.020)
        assert window.latency_max == pytest.approx(0.030)
        assert series.max_latencies() == [pytest.approx(0.030)]

    def test_rows_shape(self):
        series = Timeseries(window_seconds=0.5)
        series.record(0.1, 0.01)
        rows = series.rows()
        assert rows[0][0] == 0.0
        assert rows[0][1] == pytest.approx(2.0)


class TestPartialFinalWindow:
    """Regression: the final partial window must not show a spurious
    throughput dip from dividing by the full window length."""

    def test_partial_window_is_scaled(self):
        series = Timeseries(window_seconds=1.0)
        # Steady 4 ops/sec for 1.25 seconds of observation.
        for i in range(5):
            series.record(i * 0.25, 0.01)
        series.end_time = 1.25
        throughputs = series.throughputs()
        assert throughputs[0] == pytest.approx(4.0)
        # Final window observed one op in 0.25s: 4 ops/sec, not 1.
        assert throughputs[-1] == pytest.approx(4.0)
        assert series.rows()[-1][1] == pytest.approx(4.0)

    def test_without_end_time_windows_are_full(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.5, 0.01)
        assert series.throughputs() == [1.0]

    def test_end_time_on_window_boundary_changes_nothing(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.5, 0.01)
        series.record(1.5, 0.01)
        series.end_time = 2.0
        assert series.throughputs() == [1.0, 1.0]

    def test_full_windows_unaffected_by_end_time(self):
        series = Timeseries(window_seconds=1.0)
        for t in (0.1, 0.9, 1.1, 2.05):
            series.record(t, 0.01)
        series.end_time = 2.1
        throughputs = series.throughputs()
        assert throughputs[0] == pytest.approx(2.0)
        assert throughputs[1] == pytest.approx(1.0)
        assert throughputs[2] == pytest.approx(10.0)

    def test_window_duration_clamps_to_positive(self):
        series = Timeseries(window_seconds=1.0)
        series.record(0.5, 0.01)
        # A bogus end_time at/before the window start falls back to the
        # full window rather than dividing by zero.
        series.end_time = 0.0
        assert series.throughputs() == [1.0]
