"""Unit tests for the incremental merge process."""

import pytest

from repro.core.merge import (
    EmptySource,
    FrozenSource,
    MergeProcess,
    SnowshovelSource,
)
from repro.memtable import MemTable
from repro.records import Record
from repro.sstable import SSTableBuilder
from repro.storage import Stasis


@pytest.fixture
def stasis():
    return Stasis(buffer_pool_pages=64)


def make_table(stasis, keys, tree_id=1, seqno=0):
    builder = SSTableBuilder(stasis, tree_id=tree_id, expected_keys=len(keys))
    for i, key in enumerate(sorted(keys)):
        builder.add(Record.base(key, b"old", seqno + i))
    return builder.finish()


def make_memtable(keys, seqno=100):
    table = MemTable(1 << 20)
    for i, key in enumerate(keys):
        table.put(Record.base(key, b"new", seqno + i))
    return table


class TestSources:
    def test_empty_source(self):
        source = EmptySource()
        assert source.peek() is None
        with pytest.raises(StopIteration):
            source.pop()

    def test_frozen_source_orders(self):
        records = [Record.base(b"a", b"", 0), Record.base(b"b", b"", 1)]
        source = FrozenSource(iter(records))
        assert source.peek().key == b"a"
        assert source.pop().key == b"a"
        assert source.pop().key == b"b"
        assert source.peek() is None

    def test_snowshovel_source_sees_live_inserts(self):
        table = make_memtable([b"b"])
        source = SnowshovelSource(table)
        assert source.pop().key == b"b"
        table.put(Record.base(b"c", b"", 200))
        assert source.peek().key == b"c"


class TestMergeProcess:
    def test_merge_into_empty_level(self, stasis):
        memtable = make_memtable([b"a", b"b", b"c"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=7,
            input_bytes=memtable.nbytes,
            expected_keys=3,
            drop_tombstones=False,
        )
        process.run_to_completion()
        assert process.done
        assert process.output.key_count == 3
        assert memtable.is_empty

    def test_merge_combines_and_prefers_newer(self, stasis):
        old = make_table(stasis, [b"a", b"b"])
        memtable = make_memtable([b"b", b"c"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=old,
            tree_id=8,
            input_bytes=memtable.nbytes + old.nbytes,
            expected_keys=4,
            drop_tombstones=False,
        )
        process.run_to_completion()
        out = process.output
        assert out.key_count == 3
        assert out.get(b"b").value == b"new"
        assert out.get(b"a").value == b"old"

    def test_step_respects_budget(self, stasis):
        memtable = make_memtable([b"k%03d" % i for i in range(100)])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=9,
            input_bytes=memtable.nbytes,
            expected_keys=100,
            drop_tombstones=False,
        )
        worked = process.step(100)
        assert 0 < worked <= 200  # may overshoot by at most one record
        assert not process.done
        assert 0 < process.inprogress < 1

    def test_inprogress_reaches_one(self, stasis):
        memtable = make_memtable([b"a"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=10,
            input_bytes=memtable.nbytes,
            expected_keys=1,
            drop_tombstones=False,
        )
        process.run_to_completion()
        assert process.inprogress == 1.0
        assert process.step(1000) == 0  # completed merges do nothing

    def test_tombstones_dropped_at_bottom(self, stasis):
        old = make_table(stasis, [b"a"])
        memtable = MemTable(1 << 20)
        memtable.put(Record.tombstone(b"a", 50))
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=old,
            tree_id=11,
            input_bytes=old.nbytes + memtable.nbytes,
            expected_keys=2,
            drop_tombstones=True,
        )
        process.run_to_completion()
        assert process.output is None  # everything merged away

    def test_tombstones_kept_mid_tree(self, stasis):
        old = make_table(stasis, [b"a"])
        memtable = MemTable(1 << 20)
        memtable.put(Record.tombstone(b"a", 50))
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=old,
            tree_id=12,
            input_bytes=old.nbytes + memtable.nbytes,
            expected_keys=2,
            drop_tombstones=False,
        )
        process.run_to_completion()
        assert process.output.get(b"a").is_tombstone

    def test_overlay_keeps_consumed_records_readable(self, stasis):
        memtable = make_memtable([b"a", b"b"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=13,
            input_bytes=memtable.nbytes,
            expected_keys=2,
            drop_tombstones=False,
        )
        process.step(1)  # consumes at least record a
        assert memtable.get(b"a") is None
        assert process.overlay_get(b"a") is not None
        assert [r.key for r in process.overlay_scan(b"a", None)] == [b"a"]

    def test_seqno_tracking(self, stasis):
        memtable = make_memtable([b"a", b"b"], seqno=40)
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=14,
            input_bytes=memtable.nbytes,
            expected_keys=2,
            drop_tombstones=False,
        )
        process.run_to_completion()
        assert process.min_seqno_consumed == 40
        assert process.max_seqno_consumed == 41

    def test_abort_frees_partial_output(self, stasis):
        memtable = make_memtable([b"k%03d" % i for i in range(200)])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=15,
            input_bytes=memtable.nbytes,
            expected_keys=200,
            drop_tombstones=False,
        )
        process.step(1000)
        process.abort()
        assert process.done
        assert stasis.regions.allocated_extents == []

    def test_live_insert_ahead_of_cursor_joins_pass(self, stasis):
        memtable = make_memtable([b"b", b"y"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=None,
            tree_id=16,
            input_bytes=memtable.nbytes,
            expected_keys=4,
            drop_tombstones=False,
        )
        process.step(1)  # emits b
        memtable.put(Record.base(b"m", b"mid", 500))
        process.run_to_completion()
        keys = [r.key for r in process.output.iter_records()]
        assert keys == [b"b", b"m", b"y"]

    def test_cursor_tracks_older_source_output(self, stasis):
        # A fresh insert between the snowshovel cursor and a key already
        # emitted from C1 must wait for the next pass (ordering).
        old = make_table(stasis, [b"m", b"z"])
        memtable = make_memtable([b"a"])
        process = MergeProcess(
            stasis,
            newer=SnowshovelSource(memtable),
            older=old,
            tree_id=17,
            input_bytes=old.nbytes + memtable.nbytes,
            expected_keys=4,
            drop_tombstones=False,
        )
        # Consume 'a' and 'm' (two records); then insert 'c' < 'm'.
        process.step(2 * 30)
        memtable.put(Record.base(b"c", b"late", 600))
        process.run_to_completion()
        keys = [r.key for r in process.output.iter_records()]
        assert keys == [b"a", b"m", b"z"]
        assert memtable.get(b"c") is not None  # waits for the next pass
