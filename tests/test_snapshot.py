"""MVCC snapshot reads: pinned views that survive switches and merges."""

from repro.core.options import BLSMOptions
from repro.core.tree import BLSM
from repro.core.versions import VersionSet, ram_source
from repro.engines import EngineConfig, build_engine
from repro.records import Record, RecordKind


def _small_tree(**overrides) -> BLSM:
    options = BLSMOptions(
        c0_bytes=overrides.pop("c0_bytes", 6 * 1024),
        buffer_pool_pages=16,
        **overrides,
    )
    return BLSM(options)


def _fill(tree: BLSM, count: int, tag: str = "v0", start: int = 0) -> None:
    for i in range(start, start + count):
        tree.put(b"key-%06d" % i, (f"{tag}-{i:06d}").encode() + b"x" * 40)


# ---------------------------------------------------------------------------
# Snapshot isolation
# ---------------------------------------------------------------------------


def test_snapshot_isolated_from_later_writes():
    tree = _small_tree()
    _fill(tree, 20, tag="old")
    with tree.snapshot() as snap:
        tree.put(b"key-000003", b"new-000003")
        tree.delete(b"key-000007")
        tree.put(b"key-999999", b"brand-new")
        assert snap.get(b"key-000003") == b"old-000003" + b"x" * 40
        assert snap.get(b"key-000007") == b"old-000007" + b"x" * 40
        assert snap.get(b"key-999999") is None
    # The live tree sees the new world.
    assert tree.get(b"key-000003") == b"new-000003"
    assert tree.get(b"key-000007") is None
    assert tree.get(b"key-999999") == b"brand-new"
    tree.close()


def test_snapshot_multi_get_matches_point_gets():
    tree = _small_tree()
    _fill(tree, 10)
    with tree.snapshot() as snap:
        keys = [b"key-%06d" % i for i in range(12)]
        assert snap.multi_get(keys) == [snap.get(key) for key in keys]
    tree.close()


# ---------------------------------------------------------------------------
# Paused scans across memtable switches and merge installs
# ---------------------------------------------------------------------------


def test_paused_scan_survives_memtable_switch():
    # The bLSM acceptance scenario: a scan paused mid-iteration while
    # the memtable rotates (and merges install) underneath it completes
    # without a restart and yields exactly the snapshot-time rows —
    # zero blocked-read stalls, no row seen twice, no row skipped.
    # snowshovel=False uses the freeze/rotate C0 discipline — the
    # "memtable switch" the acceptance scenario names.
    tree = _small_tree(snowshovel=False)
    _fill(tree, 60, tag="old")
    expected = [(key, value) for key, value in tree.scan(b"")]
    rotations = tree.runtime.metrics.counter("memtable.rotations")
    before = rotations.value

    rows = []
    with tree.snapshot() as snap:
        scan = snap.scan(b"")
        for _ in range(5):
            rows.append(next(scan))
        # Interleave enough writes to rotate C0 and run merges while
        # the scan is paused.
        _fill(tree, 200, tag="new", start=0)
        assert rotations.value > before, "workload never rotated C0"
        rows.extend(scan)
    assert rows == expected
    keys = [key for key, _ in rows]
    assert keys == sorted(set(keys)), "a restart would repeat or skip rows"
    tree.close()


def test_merge_install_defers_frees_past_live_snapshot():
    # A merge retiring a component a snapshot still pins must defer the
    # free (zombie) until the last pin drops — the direct evidence that
    # the read never blocked behind the install.
    tree = _small_tree(snowshovel=False)
    _fill(tree, 80, tag="old")
    tree.flush_log()
    snap = tree.snapshot()
    _fill(tree, 300, tag="new")
    assert tree.versions.deferred_frees > 0, (
        "no merge retired a pinned component; workload too small"
    )
    zombies = tree.versions.zombie_count
    assert zombies > 0
    freed_before = tree.versions.completed_frees
    snap.close()
    assert tree.versions.zombie_count == 0
    assert tree.versions.completed_frees >= freed_before + zombies
    tree.close()


# ---------------------------------------------------------------------------
# VersionSet mechanics
# ---------------------------------------------------------------------------


class _FakeTable:
    def __init__(self):
        self.freed = False

    def free(self):
        self.freed = True


def test_versionset_pin_refcounts():
    versions = VersionSet()
    table = _FakeTable()
    versions.pin(table)
    versions.pin(table)
    versions.retire(table)
    assert not table.freed  # two pins outstanding
    versions.unpin(table)
    assert not table.freed  # one pin left
    versions.unpin(table)
    assert table.freed
    assert versions.deferred_frees == 1
    assert versions.completed_frees == 1
    assert versions.pinned_count == versions.zombie_count == 0


def test_versionset_retire_unpinned_frees_immediately():
    versions = VersionSet()
    table = _FakeTable()
    versions.retire(table)
    assert table.freed
    assert versions.deferred_frees == 0
    assert versions.completed_frees == 1


def test_versionset_crash_drops_pins_without_freeing():
    # Recovery's orphan-extent sweep reclaims zombies; the crashed
    # process must not "free" storage it no longer owns.
    versions = VersionSet()
    table = _FakeTable()
    versions.pin(table)
    versions.retire(table)
    versions.crash()
    assert not table.freed
    assert versions.pinned_count == versions.zombie_count == 0


def test_ram_source_is_a_point_in_time_copy():
    records = [
        Record(b"b", b"2", RecordKind.BASE, seqno=1),
        Record(b"a", b"1", RecordKind.BASE, seqno=0),
    ]
    source = ram_source(records)
    records.append(Record(b"c", b"3", RecordKind.BASE, seqno=2))
    assert source.get(b"a").value == b"1"
    assert source.get(b"c") is None
    assert [r.key for r in source.scan(b"", None)] == [b"a", b"b"]


# ---------------------------------------------------------------------------
# Engine surface
# ---------------------------------------------------------------------------


def test_materialized_snapshot_fallback_for_flat_engines():
    engine = build_engine("bitcask", EngineConfig())
    try:
        engine.put(b"k1", b"before")
        with engine.snapshot() as snap:
            engine.put(b"k1", b"after")
            engine.put(b"k2", b"new")
            assert snap.get(b"k1") == b"before"
            assert snap.get(b"k2") is None
            assert list(snap.scan(b"")) == [(b"k1", b"before")]
        assert engine.get(b"k1") == b"after"
    finally:
        engine.close()


def test_blsm_engine_snapshot_is_tree_backed():
    engine = build_engine(
        "blsm", EngineConfig(c0_bytes=32 * 1024, cache_pages=16)
    )
    try:
        engine.put(b"k", b"v")
        with engine.snapshot() as snap:
            engine.put(b"k", b"v2")
            assert snap.get(b"k") == b"v"
    finally:
        engine.close()
