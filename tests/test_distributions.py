"""Unit tests for YCSB request distributions."""

import random
from collections import Counter

import pytest

from repro.ycsb import (
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.ycsb.distributions import fnv1a_64, make_chooser, zeta


def draw(chooser, n=20000, seed=0):
    rng = random.Random(seed)
    return [chooser.next(rng) for _ in range(n)]


def test_uniform_in_range_and_flat():
    chooser = UniformChooser(100)
    samples = draw(chooser)
    assert all(0 <= s < 100 for s in samples)
    counts = Counter(samples)
    assert max(counts.values()) < 3 * min(counts.values())


def test_zipfian_in_range():
    chooser = ZipfianChooser(1000)
    assert all(0 <= s < 1000 for s in draw(chooser))


def test_zipfian_is_skewed_to_low_ranks():
    chooser = ZipfianChooser(1000)
    samples = draw(chooser, n=50000)
    counts = Counter(samples)
    # Rank 0 should dominate: classic Zipf at theta=0.99.
    assert counts[0] > counts.get(100, 0) * 5
    top10 = sum(counts[i] for i in range(10)) / len(samples)
    assert top10 > 0.3


def test_zipfian_theta_validation():
    with pytest.raises(ValueError):
        ZipfianChooser(10, theta=1.0)
    with pytest.raises(ValueError):
        ZipfianChooser(10, theta=0.0)


def test_scrambled_zipfian_spreads_hot_keys():
    chooser = ScrambledZipfianChooser(1000)
    samples = draw(chooser, n=50000)
    counts = Counter(samples)
    hottest = counts.most_common(1)[0][0]
    # The hot key is *some* key, not necessarily index 0.
    assert counts.most_common(1)[0][1] > len(samples) * 0.05
    assert all(0 <= s < 1000 for s in samples)
    # Determinism: hashing must be stable across instances.
    assert ScrambledZipfianChooser(1000).next(random.Random(0)) == samples[0]
    assert isinstance(hottest, int)


def test_latest_favors_recent():
    chooser = LatestChooser(1000)
    samples = draw(chooser, n=20000)
    recent = sum(1 for s in samples if s >= 900) / len(samples)
    assert recent > 0.5


def test_latest_grows():
    chooser = LatestChooser(10)
    chooser.grow(100)
    assert chooser.n == 100
    assert all(0 <= s < 100 for s in draw(chooser, n=1000))
    chooser.grow(50)  # shrink requests are ignored
    assert chooser.n == 100


def test_make_chooser_names():
    assert isinstance(make_chooser("uniform", 10), UniformChooser)
    assert isinstance(make_chooser("zipfian", 10), ScrambledZipfianChooser)
    assert isinstance(make_chooser("zipfian_clustered", 10), ZipfianChooser)
    assert isinstance(make_chooser("latest", 10), LatestChooser)
    with pytest.raises(ValueError):
        make_chooser("nope", 10)


def test_zero_items_rejected():
    with pytest.raises(ValueError):
        UniformChooser(0)


def test_zeta_matches_harmonic():
    assert zeta(1, 0.5) == 1.0
    assert zeta(3, 1.0 - 1e-12) == pytest.approx(1 + 1 / 2 + 1 / 3, rel=1e-6)


def test_fnv_is_deterministic_and_64bit():
    assert fnv1a_64(12345) == fnv1a_64(12345)
    assert fnv1a_64(1) != fnv1a_64(2)
    assert 0 <= fnv1a_64(999) < 1 << 64
