"""Tests for the Section 3.2 workaround: extra overlapping components."""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.records import Record, resolve
from repro.storage import DurabilityMode


def workaround_tree(**overrides):
    defaults = dict(
        c0_bytes=16 * 1024,
        buffer_pool_pages=32,
        extra_components=True,
    )
    defaults.update(overrides)
    return BLSM(BLSMOptions(**defaults))


def test_full_c0_flushes_instead_of_stalling():
    tree = workaround_tree(scheduler="naive")
    worst = 0.0
    for i in range(3000):
        before = tree.stasis.clock.now
        tree.put(b"key%06d" % i, bytes(64))
        worst = max(worst, tree.stasis.clock.now - before)
    # The naive scheduler would stall for whole merge passes; the
    # workaround bounds every write by one memtable flush.
    assert worst < 0.02
    assert tree.component_sizes()["extras"] >= 0


def test_extras_accumulate_under_naive_scheduler():
    tree = workaround_tree(scheduler="naive")
    for i in range(4000):
        tree.put(b"key%06d" % i, bytes(64))
    # The naive scheduler never merges below a full C0, so the flushes
    # pile up as overlapping components — HBase with compaction off.
    assert len(tree._extras) >= 2


def test_reads_see_extras_newest_first():
    tree = workaround_tree(scheduler="naive")
    tree.put(b"k", b"old")
    tree.force_drain(0.0, 1 << 20)  # flush to extra
    tree.put(b"k", b"new")
    tree.force_drain(0.0, 1 << 20)  # second, newer extra
    assert len(tree._extras) == 2
    assert tree.get(b"k") == b"new"


def test_model_correctness_with_extras():
    tree = workaround_tree(scheduler="naive")
    rng = random.Random(8)
    model = {}
    for i in range(5000):
        action = rng.random()
        key = b"key%05d" % rng.randrange(1200)
        if action < 0.7:
            value = b"v%05d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.85:
            tree.delete(key)
            model.pop(key, None)
        elif key in model:
            tree.apply_delta(key, b"+D")
            model[key] += b"+D"
    assert sum(1 for k, v in model.items() if tree.get(k) != v) == 0
    assert list(tree.scan(b"")) == sorted(model.items())


def test_merges_drain_extras_oldest_first():
    tree = workaround_tree(scheduler="spring_gear")
    for i in range(5000):
        tree.put(b"key%06d" % (i % 2000), bytes(64))
    tree.drain()
    while tree._extras or tree._m01 is not None:
        if tree.step_m01(1 << 30) == 0 and tree.step_m12(1 << 30) == 0:
            break
    assert tree._extras == []
    assert tree.get(b"key000000") is not None


def test_extras_survive_crash():
    options = BLSMOptions(
        c0_bytes=16 * 1024,
        extra_components=True,
        scheduler="naive",
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    model = {}
    for i in range(3000):
        key = b"key%05d" % (i % 1000)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
    extras_before = len(tree._extras)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert len(recovered._extras) == extras_before
    assert sum(1 for k, v in model.items() if recovered.get(k) != v) == 0


def test_scan_cost_grows_with_extras():
    tree = workaround_tree(scheduler="naive", buffer_pool_pages=2)
    for i in range(5000):
        tree.put(b"key%06d" % (i % 2500), bytes(64))
    extras = len(tree._extras)
    assert extras >= 2
    seeks_before = tree.stasis.data_disk.stats.seeks
    list(tree.scan(b"key", limit=5))
    seeks = tree.stasis.data_disk.stats.seeks - seeks_before
    # Every overlapping component costs the scan a seek (§3.2's point).
    assert seeks >= extras


def test_resolve_dedupes_equal_seqno_deltas():
    versions = [
        Record.delta(b"k", b"+D", 7),
        Record.delta(b"k", b"+D", 7),  # replay duplicate
        Record.base(b"k", b"v", 3),
    ]
    assert resolve(versions) == b"v+D"


def test_default_mode_has_no_extras():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(3000):
        tree.put(b"key%06d" % i, bytes(64))
    assert tree._extras == []
    assert tree.component_sizes()["extras"] == 0
