"""Unit tests for the Bloom filter."""

import random

import pytest

from repro.bloom import BloomFilter
from repro.bloom.filter import optimal_bits, optimal_hash_count


def test_no_false_negatives():
    bloom = BloomFilter.for_capacity(1000)
    keys = [b"key%d" % i for i in range(1000)]
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)


def test_false_positive_rate_below_target():
    # Section 3.1: sizing for 1% false positives.
    bloom = BloomFilter.for_capacity(5000, false_positive_rate=0.01)
    for i in range(5000):
        bloom.add(b"member%d" % i)
    trials = 20000
    rng = random.Random(7)
    hits = sum(
        1
        for _ in range(trials)
        if b"absent%d" % rng.randrange(10**9) in bloom
    )
    assert hits / trials < 0.02  # target 1%, allow slack


def test_empty_filter_rejects_everything():
    bloom = BloomFilter.for_capacity(100)
    assert b"anything" not in bloom
    assert bloom.expected_false_positive_rate() == 0.0


def test_sizing_is_about_ten_bits_per_key():
    bloom = BloomFilter.for_capacity(10000, false_positive_rate=0.01)
    bits_per_key = bloom.nbits / 10000
    assert 9.0 < bits_per_key < 10.5
    assert bloom.nhashes == 7


def test_memory_footprint_tracks_bits():
    bloom = BloomFilter(800, 7)
    assert bloom.nbytes == 100


def test_expected_fpr_grows_with_load():
    bloom = BloomFilter.for_capacity(100)
    for i in range(50):
        bloom.add(b"k%d" % i)
    half = bloom.expected_false_positive_rate()
    for i in range(50, 200):
        bloom.add(b"k%d" % i)
    overloaded = bloom.expected_false_positive_rate()
    assert overloaded > half


def test_double_hashing_determinism():
    a = BloomFilter(1024, 5)
    b = BloomFilter(1024, 5)
    a.add(b"key")
    b.add(b"key")
    assert (b"key" in a) == (b"key" in b)
    assert a._bits == b._bits


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BloomFilter(0, 1)
    with pytest.raises(ValueError):
        BloomFilter(10, 0)
    with pytest.raises(ValueError):
        optimal_bits(100, 1.5)


def test_optimal_bits_monotone_in_capacity():
    assert optimal_bits(1000, 0.01) < optimal_bits(10000, 0.01)


def test_optimal_hash_count_bounds():
    assert optimal_hash_count(100, 0) == 1
    assert optimal_hash_count(960, 100) == 7


def test_counts_insertions():
    bloom = BloomFilter.for_capacity(10)
    bloom.add(b"a")
    bloom.add(b"a")
    assert bloom.ninserted == 2
