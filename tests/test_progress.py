"""Unit tests for the gear scheduler's progress estimators."""

import pytest

from repro.core.progress import inprogress, outprogress


def test_inprogress_is_fraction_of_input():
    assert inprogress(50, 100) == pytest.approx(0.5)


def test_inprogress_clamped_to_one():
    assert inprogress(150, 100) == 1.0


def test_inprogress_empty_input_is_complete():
    assert inprogress(0, 0) == 1.0


def test_inprogress_is_smooth():
    # Any merge activity increases the estimate (the paper's smoothness
    # requirement; estimators that can get stuck cause routine stalls).
    values = [inprogress(b, 1000) for b in range(0, 1001, 10)]
    assert all(b > a for a, b in zip(values, values[1:]))


def test_outprogress_counts_completed_passes():
    # After 2 of 4 passes with the current merge half done: (0.5+2)/4.
    assert outprogress(0.5, tree_bytes=2000, ram_bytes=1000, r=4) == pytest.approx(
        0.625
    )


def test_outprogress_reaches_one_when_tree_fills():
    assert outprogress(1.0, tree_bytes=3000, ram_bytes=1000, r=4) == 1.0


def test_outprogress_clamped():
    assert outprogress(1.0, tree_bytes=9000, ram_bytes=1000, r=4) == 1.0


def test_outprogress_fractional_r_uses_ceiling():
    value = outprogress(0.0, tree_bytes=1000, ram_bytes=1000, r=2.5)
    assert value == pytest.approx(1.0 / 3.0)


def test_outprogress_invalid_ram_rejected():
    with pytest.raises(ValueError):
        outprogress(0.5, 100, 0, 4)
