"""Behavioural tests for the unordered log-structured store."""

import random

import pytest

from repro.baselines import BitCaskEngine
from repro.errors import EngineClosedError


def test_put_get_roundtrip():
    engine = BitCaskEngine()
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    assert engine.get(b"missing") is None


def test_overwrite_and_delete():
    engine = BitCaskEngine()
    engine.put(b"k", b"v1")
    engine.put(b"k", b"v2")
    assert engine.get(b"k") == b"v2"
    engine.delete(b"k")
    assert engine.get(b"k") is None
    engine.delete(b"never")  # no-op


def test_writes_are_zero_seek():
    engine = BitCaskEngine()
    for i in range(500):
        engine.put(b"key%04d" % i, bytes(100))
    # One head-positioning at most; everything else streams.
    assert engine.disk.stats.seeks <= 1


def test_reads_are_one_seek():
    engine = BitCaskEngine()
    for i in range(500):
        engine.put(b"key%04d" % i, bytes(100))
    rng = random.Random(0)
    seeks_before = engine.disk.stats.seeks
    for _ in range(100):
        assert engine.get(b"key%04d" % rng.randrange(500)) is not None
    assert engine.disk.stats.seeks - seeks_before <= 100 + 1


def test_insert_if_not_exists_is_free():
    engine = BitCaskEngine()
    engine.put(b"k", b"v")
    busy = engine.disk.stats.busy_seconds
    reads = engine.disk.stats.read_ops
    assert not engine.insert_if_not_exists(b"k", b"w")
    assert engine.disk.stats.read_ops == reads  # RAM index answered
    assert engine.insert_if_not_exists(b"new", b"x")
    assert engine.get(b"new") == b"x"
    assert busy <= engine.disk.stats.busy_seconds  # only the append paid


def test_scan_is_correct_but_seek_bound():
    engine = BitCaskEngine()
    rng = random.Random(1)
    model = {}
    for i in range(300):
        key = b"key%04d" % rng.randrange(150)
        value = b"v%04d" % i
        engine.put(key, value)
        model[key] = value
    seeks_before = engine.disk.stats.seeks
    got = list(engine.scan(b""))
    assert got == sorted(model.items())
    # The weakness the paper cites: about one seek per scanned row.
    assert engine.disk.stats.seeks - seeks_before >= len(model) * 0.8


def test_compaction_reclaims_garbage():
    engine = BitCaskEngine(garbage_threshold=0.4)
    for round_ in range(10):
        for i in range(100):
            engine.put(b"key%03d" % i, bytes(200))  # rewrite same keys
    assert engine.compactions >= 1
    assert engine.garbage_fraction < 0.5
    assert all(
        engine.get(b"key%03d" % i) == bytes(200) for i in range(100)
    )


def test_compaction_cost_scales_with_live_set():
    # The paper: compaction cost is a function of reserved free space,
    # independent of cache.  A looser threshold compacts less often.
    written = {}
    for threshold in (0.3, 0.8):
        engine = BitCaskEngine(garbage_threshold=threshold)
        for round_ in range(12):
            for i in range(100):
                engine.put(b"key%03d" % i, bytes(200))
        written[threshold] = engine.disk.stats.bytes_written
    assert written[0.8] < written[0.3]


def test_delta_folds_via_read():
    engine = BitCaskEngine()
    engine.put(b"k", b"base")
    engine.apply_delta(b"k", b"+d")
    assert engine.get(b"k") == b"base+d"
    engine.apply_delta(b"ghost", b"+x")  # materializes like the B-Tree
    assert engine.get(b"ghost") == b"+x"


def test_model_equivalence():
    engine = BitCaskEngine(garbage_threshold=0.5)
    rng = random.Random(5)
    model = {}
    for i in range(4000):
        action = rng.random()
        key = b"key%05d" % rng.randrange(1000)
        if action < 0.7:
            value = b"v%05d" % i
            engine.put(key, value)
            model[key] = value
        elif action < 0.85:
            engine.delete(key)
            model.pop(key, None)
        else:
            assert engine.get(key) == model.get(key)
    assert list(engine.scan(b"")) == sorted(model.items())


def test_closed_engine_rejects_operations():
    engine = BitCaskEngine()
    engine.close()
    with pytest.raises(EngineClosedError):
        engine.put(b"k", b"v")


def test_invalid_threshold():
    with pytest.raises(ValueError):
        BitCaskEngine(garbage_threshold=0.0)


def test_io_summary_shape():
    engine = BitCaskEngine()
    engine.put(b"k", b"v")
    summary = engine.io_summary()
    assert summary["log_bytes_written"] == 0  # the data log IS the log
    assert summary["data_bytes_written"] > 0
    assert "garbage_fraction" in summary
