"""I/O-pattern assertions via device tracing.

The device trace lets tests assert *how* an engine performs I/O — the
claims the whole paper is built on — not just how much.
"""

from repro.core import BLSM, BLSMOptions
from repro.sim import DiskModel, SimDisk, VirtualClock


def test_trace_records_events():
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    disk.start_trace()
    disk.write(0, 4096)
    disk.read(0, 4096)
    events = disk.stop_trace()
    assert len(events) == 2
    assert events[0].kind == "write"
    assert events[1].kind == "read"
    assert events[0].seek is True  # first access positions the head
    assert events[1].seek is True  # read after write repositions
    assert events[0].service > 0
    assert events[1].time >= events[0].time


def test_trace_off_by_default_and_after_stop():
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    disk.write(0, 10)
    disk.start_trace()
    disk.write(10, 10)
    assert len(disk.stop_trace()) == 1
    disk.write(20, 10)
    assert disk.stop_trace() == []


def test_merge_output_is_written_sequentially():
    # The defining property of log-structured writes: merge output goes
    # to disk as long sequential runs, not scattered pages.
    tree = BLSM(BLSMOptions(c0_bytes=32 * 1024, buffer_pool_pages=32))
    tree.stasis.data_disk.start_trace()
    for i in range(1500):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    events = tree.stasis.data_disk.stop_trace()
    writes = [e for e in events if e.kind == "write"]
    assert writes, "the drain must have written a component"
    seeking_writes = sum(1 for e in writes if e.seek)
    # A handful of repositionings (extent starts), not one per page.
    assert seeking_writes <= max(4, len(writes) // 4)
    written = sum(e.nbytes for e in writes)
    assert written >= 1500 * 80 * 0.8  # bulk of the data moved


def test_blind_writes_never_read_the_data_disk():
    tree = BLSM(BLSMOptions(c0_bytes=1 << 20, buffer_pool_pages=8))
    tree.stasis.data_disk.start_trace()
    for i in range(500):
        tree.put(b"key%05d" % i, bytes(64))
    events = tree.stasis.data_disk.stop_trace()
    assert all(e.kind != "read" for e in events)


def test_uncached_point_read_is_one_seek_one_block():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=2))
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(64))
    tree.compact()
    tree.stasis.data_disk.start_trace()
    assert tree.get(b"key01000") is not None
    events = tree.stasis.data_disk.stop_trace()
    reads = [e for e in events if e.kind == "read"]
    assert 1 <= len(reads) <= 2  # the block (plus a possible spill page)
    assert sum(1 for e in reads if e.seek) == 1


def test_log_appends_batch_into_few_forces():
    # Size-triggered batching turns thousands of appends into a handful
    # of large forces.  Each force pays exactly one head positioning (a
    # durability barrier breaks sequentiality — SimDisk.sync_barrier);
    # the batching is what keeps the log bandwidth-bound, not the
    # absence of barriers.
    tree = BLSM(BLSMOptions(c0_bytes=1 << 20))
    tree.stasis.log_disk.start_trace()
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(300))
    tree.flush_log()
    events = tree.stasis.log_disk.stop_trace()
    writes = [e for e in events if e.kind == "write"]
    assert writes
    assert len(writes) <= 4  # 2000 appends coalesced into a few forces
    assert all(e.seek for e in writes)  # one barrier per force, no more
