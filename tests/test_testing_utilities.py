"""Tests for the public model-based testing utilities."""

import pytest

from repro.baselines import BLSMEngine, BTreeEngine, LevelDBEngine
from repro.core import BLSM, BLSMOptions
from repro.storage import DurabilityMode
from repro.testing import (
    check_blsm_invariants,
    crash_recover_check,
    run_model_workload,
    verify_against_model,
)


def test_run_model_workload_on_all_engines():
    from repro.baselines import BitCaskEngine, PartitionedBLSMEngine

    engines = [
        BLSMEngine(BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=16)),
        PartitionedBLSMEngine(
            BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=16),
            max_partition_bytes=32 * 1024,
        ),
        BTreeEngine(buffer_pool_pages=16, page_size=4096),
        LevelDBEngine(
            memtable_bytes=8 * 1024, file_bytes=16 * 1024,
            level_base_bytes=32 * 1024, buffer_pool_pages=16,
        ),
        BitCaskEngine(),
    ]
    models = []
    for engine in engines:
        model = run_model_workload(engine, operations=2000, seed=7)
        verify_against_model(engine, model)
        models.append(sorted(model.items()))
    # Same seed, same stream: every engine converges to the same state.
    assert all(m == models[0] for m in models[1:])


def test_checkpoint_callback_fires():
    engine = BLSMEngine(BLSMOptions(c0_bytes=16 * 1024))
    calls = []
    run_model_workload(
        engine,
        operations=500,
        checkpoint_every=100,
        on_checkpoint=lambda e, m: calls.append(len(m)),
        seed=1,
    )
    assert len(calls) == 5


def test_invalid_fractions_rejected():
    engine = BLSMEngine(BLSMOptions(c0_bytes=16 * 1024))
    with pytest.raises(ValueError):
        run_model_workload(
            engine, operations=10,
            delta_fraction=0.5, delete_fraction=0.5, read_fraction=0.5,
        )


def test_invariant_checker_accepts_healthy_tree():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(2000):
        tree.put(b"key%05d" % (i % 900), b"v%d" % i)
    tree.drain()
    check_blsm_invariants(tree)


def test_invariant_checker_detects_corruption():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(2000):
        tree.put(b"key%05d" % (i % 900), b"v%d" % i)
    tree.drain()
    assert tree._c1 is not None or tree._c1_prime is not None
    component = tree._c1 or tree._c1_prime
    component.key_count += 1  # sabotage the accounting
    with pytest.raises(AssertionError):
        check_blsm_invariants(tree)


def test_crash_recover_check_roundtrip():
    options = BLSMOptions(
        c0_bytes=16 * 1024, durability=DurabilityMode.SYNC
    )
    tree = BLSM(options)
    model = {}
    for i in range(1200):
        key = b"key%04d" % (i % 500)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
    recovered = crash_recover_check(tree, model)
    assert recovered.get(b"key0001") == model[b"key0001"]
