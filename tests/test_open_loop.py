"""Tests for the open-loop (throttled) runner."""

import pytest

from repro.baselines import BLSMEngine
from repro.core import BLSMOptions
from repro.sim import DiskModel
from repro.ycsb import WorkloadSpec, load_phase, run_open_loop, run_workload


def engine_and_spec():
    engine = BLSMEngine(
        BLSMOptions(
            c0_bytes=64 * 1024,
            buffer_pool_pages=8,
            disk_model=DiskModel.hdd(),
        )
    )
    spec = WorkloadSpec(
        record_count=800,
        operation_count=400,
        read_proportion=1.0,
        value_bytes=200,
    )
    load_phase(engine, spec, seed=1)
    engine.tree.compact()
    return engine, spec


def closed_loop_capacity():
    engine, spec = engine_and_spec()
    return run_workload(engine, spec, seed=2).throughput


def test_light_load_latency_is_service_time():
    capacity = closed_loop_capacity()
    engine, spec = engine_and_spec()
    result = run_open_loop(engine, spec, offered_rate=0.2 * capacity, seed=2)
    assert not result.saturated
    # With the device mostly idle, p50 latency is about one seek.
    assert result.latency.percentile(50) < 3 * DiskModel.hdd().read_access_seconds


def test_overload_builds_backlog():
    capacity = closed_loop_capacity()
    engine, spec = engine_and_spec()
    result = run_open_loop(engine, spec, offered_rate=3.0 * capacity, seed=2)
    assert result.saturated
    assert result.backlog_seconds > 0
    # Under overload the achieved rate approaches closed-loop capacity.
    assert result.achieved_rate < 1.5 * capacity


def test_latency_grows_with_load():
    capacity = closed_loop_capacity()
    p99s = []
    for fraction in (0.2, 0.7, 1.5):
        engine, spec = engine_and_spec()
        result = run_open_loop(
            engine, spec, offered_rate=fraction * capacity, seed=2
        )
        p99s.append(result.latency.percentile(99))
    # Below the knee, latency is flat at the service time (deterministic
    # arrivals and service queue almost nothing)...
    assert p99s[1] == pytest.approx(p99s[0], rel=0.5)
    # ... and past the knee it explodes: the hockey stick.
    assert p99s[2] > 3 * p99s[1]


def test_poisson_arrivals():
    capacity = closed_loop_capacity()
    engine, spec = engine_and_spec()
    result = run_open_loop(
        engine, spec, offered_rate=0.5 * capacity, seed=2, poisson=True
    )
    assert result.operations == spec.operation_count
    assert result.latency.count == spec.operation_count


def test_deterministic_latencies_repeatable():
    capacity = closed_loop_capacity()
    outcomes = []
    for _ in range(2):
        engine, spec = engine_and_spec()
        result = run_open_loop(engine, spec, offered_rate=0.5 * capacity, seed=2)
        outcomes.append(result.latency.percentile(99))
    assert outcomes[0] == outcomes[1]


def test_invalid_rate_rejected():
    engine, spec = engine_and_spec()
    with pytest.raises(ValueError):
        run_open_loop(engine, spec, offered_rate=0)


def test_trailing_stall_does_not_deflate_achieved_rate():
    # Regression: achieved_rate used to divide by first-arrival-to-last-
    # completion, so an engine stall *after* the final arrival (a merge
    # the last write kicked off) made a keeping-up engine look
    # saturated.  The rate is now measured over the arrival window.
    capacity = closed_loop_capacity()
    engine, spec = engine_and_spec()
    rate = 0.3 * capacity
    result = run_open_loop(engine, spec, offered_rate=rate, seed=2)
    assert not result.saturated
    baseline = result.achieved_rate
    assert baseline == pytest.approx(rate, rel=0.15)
    # Simulate the trailing stall: same completions, with the clock (and
    # thus completed_in) dragged far past the last arrival.
    stalled = run_open_loop(engine_and_spec()[0], spec, offered_rate=rate, seed=2)
    stalled.completed_in += 30.0  # 30 virtual seconds of post-arrival work
    stalled.backlog_seconds += 30.0
    assert stalled.achieved_rate == pytest.approx(baseline)  # unmoved
    # The old ratio would have collapsed:
    assert stalled.operations / stalled.completed_in < 0.5 * baseline
