"""Unit tests for on-disk tree components (builder and reader)."""

import pytest

from repro.errors import StorageError
from repro.records import Record
from repro.sstable import SSTableBuilder
from repro.storage import Stasis


@pytest.fixture
def stasis():
    return Stasis(buffer_pool_pages=64)


def build(stasis, n=100, value_bytes=100, with_bloom=True, tree_id=1):
    builder = SSTableBuilder(
        stasis,
        tree_id=tree_id,
        expected_bytes=n * (value_bytes + 24),
        expected_keys=n,
        with_bloom=with_bloom,
    )
    for i in range(n):
        builder.add(Record.base(b"key%05d" % i, b"v" * value_bytes, i))
    return builder.finish()


def test_build_and_point_lookup(stasis):
    table = build(stasis)
    record = table.get(b"key00042")
    assert record is not None
    assert record.seqno == 42
    assert table.get(b"key99999") is None


def test_metadata(stasis):
    table = build(stasis, n=50)
    assert table.key_count == 50
    assert table.min_key == b"key00000"
    assert table.max_key == b"key00049"
    assert table.nbytes == 50 * (16 + 8 + 100)


def test_out_of_order_add_rejected(stasis):
    builder = SSTableBuilder(stasis, tree_id=1, expected_keys=10)
    builder.add(Record.base(b"b", b"", 0))
    with pytest.raises(StorageError):
        builder.add(Record.base(b"a", b"", 1))
    with pytest.raises(StorageError):
        builder.add(Record.base(b"b", b"", 2))  # duplicates also rejected


def test_empty_builder_returns_none(stasis):
    builder = SSTableBuilder(stasis, tree_id=1, expected_bytes=4096)
    assert builder.finish() is None
    assert stasis.regions.allocated_extents == []


def test_double_finish_rejected(stasis):
    builder = SSTableBuilder(stasis, tree_id=1)
    builder.add(Record.base(b"a", b"", 0))
    builder.finish()
    with pytest.raises(StorageError):
        builder.finish()


def test_bloom_skips_io_for_absent_keys(stasis):
    table = build(stasis)
    busy = stasis.data_disk.stats.busy_seconds
    assert table.get(b"zzz-not-there") is None
    assert stasis.data_disk.stats.busy_seconds == busy  # zero seeks


def test_no_bloom_reads_a_block_for_in_range_miss(stasis):
    table = build(stasis, with_bloom=False)
    reads = stasis.data_disk.stats.read_ops
    assert table.get(b"key00042x") is None  # in range, absent
    assert stasis.data_disk.stats.read_ops > reads


def test_point_lookup_costs_one_block(stasis):
    table = build(stasis)
    stats = stasis.data_disk.stats
    seeks = stats.seeks
    table.get(b"key00042")
    assert stats.seeks == seeks + 1


def test_scan_range(stasis):
    table = build(stasis)
    keys = [r.key for r in table.scan(b"key00010", b"key00020")]
    assert keys == [b"key%05d" % i for i in range(10, 20)]


def test_scan_unbounded_tail(stasis):
    table = build(stasis, n=20)
    keys = [r.key for r in table.scan(b"key00015")]
    assert keys == [b"key%05d" % i for i in range(15, 20)]


def test_iter_records_complete_and_sorted(stasis):
    table = build(stasis, n=300)
    records = list(table.iter_records(chunk_pages=8))
    assert len(records) == 300
    assert [r.key for r in records] == sorted(r.key for r in records)


def test_iter_records_is_sequential_io(stasis):
    table = build(stasis, n=500)
    seeks = stasis.data_disk.stats.seeks
    list(table.iter_records(chunk_pages=64))
    # A handful of chunked reads over one extent: few seeks, not per-page.
    assert stasis.data_disk.stats.seeks - seeks <= 4


def test_build_writes_sequentially(stasis):
    stats = stasis.data_disk.stats
    build(stasis, n=1000)
    # ~1000 * 124B = 124KB over 4K pages: ~31 pages; chunked flushes over
    # one extent must not seek per page.
    assert stats.seeks <= 4
    assert stats.bytes_written >= 1000 * 116


def test_oversized_record_spans_pages(stasis):
    builder = SSTableBuilder(stasis, tree_id=1, expected_keys=2)
    big = Record.base(b"big", b"x" * 10_000, 0)  # > 2 pages
    builder.add(big)
    builder.add(Record.base(b"small", b"y", 1))
    table = builder.finish()
    block = table.blocks[0]
    assert block.npages == 3
    got = table.get(b"big")
    assert got is not None and len(got.value) == 10_000


def test_spanning_record_read_charges_all_pages(stasis):
    builder = SSTableBuilder(stasis, tree_id=1, expected_keys=1)
    builder.add(Record.base(b"big", b"x" * 10_000, 0))
    table = builder.finish()
    before = stasis.data_disk.stats.bytes_read
    table.get(b"big")
    assert stasis.data_disk.stats.bytes_read - before == 3 * 4096


def test_free_releases_space(stasis):
    table = build(stasis)
    pages = table.npages
    table.free()
    assert stasis.regions.free_pages() >= pages
    table.free()  # idempotent


def test_extent_tail_trimmed(stasis):
    # The builder over-allocates from an estimate; finish returns the tail.
    builder = SSTableBuilder(
        stasis, tree_id=1, expected_bytes=100 * 4096, expected_keys=10
    )
    for i in range(10):
        builder.add(Record.base(b"k%d" % i, b"v" * 100, i))
    table = builder.finish()
    assert table.npages < 100


def test_growth_after_estimate_exhausted(stasis):
    builder = SSTableBuilder(
        stasis, tree_id=1, expected_bytes=2 * 4096, expected_keys=100
    )
    for i in range(100):
        builder.add(Record.base(b"k%03d" % i, b"v" * 400, i))
    table = builder.finish()
    assert table.key_count == 100
    assert len(table.extents) >= 2
    assert [r.key for r in table.iter_records()] == [b"k%03d" % i for i in range(100)]


def test_abandon_frees_everything(stasis):
    builder = SSTableBuilder(
        stasis, tree_id=1, expected_bytes=50 * 4096, expected_keys=50
    )
    for i in range(50):
        builder.add(Record.base(b"k%02d" % i, b"v" * 200, i))
    builder.abandon()
    assert stasis.regions.allocated_extents == []


def test_reads_use_buffer_cache(stasis):
    table = build(stasis)
    table.get(b"key00042")
    busy = stasis.data_disk.stats.busy_seconds
    table.get(b"key00042")  # same block: cache hit
    assert stasis.data_disk.stats.busy_seconds == busy
