"""Batched-vs-sequential parity for every registry engine.

The batched surface (``apply_batch`` / ``multi_get`` / ``WriteBatch``)
must be an API-shape change, never a semantics change: replaying the
same trace through the batched entry points and through one-op-at-a-time
calls must leave byte-identical state and return identical answers.  The
sharded router is the engine this exists for (its batch path fans out
and reorders across shards), but the sweep covers every engine so a
future override cannot drift.
"""

import pytest

from repro.engines import ENGINE_NAMES, EngineConfig, build_engine
from repro.testing import generate_trace, run_trace

CONFIG = EngineConfig(c0_bytes=32 * 1024, cache_pages=16)
TRACE = generate_trace(500, seed=7)


def _build(name):
    if name == "sharded":
        return build_engine(name, CONFIG, shards=3)
    return build_engine(name, CONFIG)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_batched_path_matches_sequential(name):
    # Both replays check every read against the same oracle, so any
    # batched-vs-sequential disagreement surfaces as a divergence in
    # (at least) one of them; the digests then pin final-state equality
    # engine-to-engine, byte for byte.
    sequential = _build(name)
    batched = _build(name)
    try:
        div = run_trace(sequential, TRACE, batched=False,
                        config=f"{name}-seq", close=False)
        assert div is None, div.describe()
        div = run_trace(batched, TRACE, batched=True,
                        config=f"{name}-batched", close=False)
        assert div is None, div.describe()
        assert sequential.state_digest() == batched.state_digest()
    finally:
        sequential.close()
        batched.close()


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_write_batch_roundtrip_digest(name):
    # A direct WriteBatch exercise (no oracle in the loop): the batch
    # API and the point API must land the same bytes.
    from repro.baselines.interface import WriteBatch

    point = _build(name)
    batch_engine = _build(name)
    try:
        batch = WriteBatch()
        for i in range(40):
            key = b"pk%04d" % (i % 17)
            point.put(key, b"v%d" % i)
            batch.put(key, b"v%d" % i)
        point.delete(b"pk0003")
        batch.delete(b"pk0003")
        point.apply_delta(b"pk0004", b"+D")
        batch.apply_delta(b"pk0004", b"+D")
        batch_engine.apply_batch(batch)
        assert point.state_digest() == batch_engine.state_digest()
        keys = [b"pk%04d" % i for i in range(17)]
        assert batch_engine.multi_get(keys) == [point.get(k) for k in keys]
    finally:
        point.close()
        batch_engine.close()
