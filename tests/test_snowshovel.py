"""Unit tests for snowshoveling (replacement selection)."""

import random

import pytest

from repro.memtable import MemTable, SnowshovelCursor, replacement_selection_runs
from repro.memtable.snowshovel import run_length_multiplier
from repro.records import Record


def fill(table, keys, start_seqno=0):
    for i, key in enumerate(keys):
        table.put(Record.base(key, b"v", start_seqno + i))


class TestSnowshovelCursor:
    def test_drains_in_key_order(self):
        table = MemTable(10_000)
        fill(table, [b"c", b"a", b"b"])
        cursor = SnowshovelCursor(table)
        keys = []
        while (record := cursor.next_record()) is not None:
            keys.append(record.key)
        assert keys == [b"a", b"b", b"c"]
        assert table.is_empty

    def test_inserts_ahead_of_cursor_join_run(self):
        table = MemTable(10_000)
        fill(table, [b"b", b"d"])
        cursor = SnowshovelCursor(table)
        assert cursor.next_record().key == b"b"
        table.put(Record.base(b"c", b"v", 10))  # lands ahead of cursor
        assert cursor.next_record().key == b"c"
        assert cursor.next_record().key == b"d"

    def test_inserts_behind_cursor_wait_for_next_run(self):
        table = MemTable(10_000)
        fill(table, [b"b", b"d"])
        cursor = SnowshovelCursor(table)
        assert cursor.next_record().key == b"b"
        table.put(Record.base(b"a", b"v", 10))  # behind the cursor
        assert cursor.next_record().key == b"d"
        assert cursor.next_record() is None  # run over; 'a' remains
        assert cursor.run_exhausted()
        cursor.start_new_run()
        assert cursor.next_record().key == b"a"

    def test_advance_past_skips_intermediate_keys(self):
        table = MemTable(10_000)
        fill(table, [b"a", b"m"])
        cursor = SnowshovelCursor(table)
        assert cursor.next_record().key == b"a"
        cursor.advance_past(b"k")
        table.put(Record.base(b"c", b"v", 10))  # now behind the cursor
        assert cursor.next_record().key == b"m"
        assert cursor.next_record() is None
        assert table.get(b"c") is not None

    def test_advance_past_never_moves_backwards(self):
        table = MemTable(10_000)
        fill(table, [b"x"])
        cursor = SnowshovelCursor(table)
        cursor.advance_past(b"m")
        cursor.advance_past(b"c")  # earlier key: must not rewind
        assert cursor.cursor == b"m\x00"

    def test_counts(self):
        table = MemTable(10_000)
        fill(table, [b"a", b"b"])
        cursor = SnowshovelCursor(table)
        cursor.next_record()
        cursor.next_record()
        cursor.start_new_run()
        assert cursor.records_emitted == 2
        assert cursor.runs_completed == 1


class TestReplacementSelection:
    def test_sorted_input_is_one_run(self):
        # Best case (Section 4.2): sorted arrivals stream straight out.
        keys = [b"%05d" % i for i in range(1000)]
        runs = replacement_selection_runs(keys, memory_items=50)
        assert len(runs) == 1
        assert runs[0] == keys

    def test_reverse_input_runs_are_memory_sized(self):
        # Worst case: reverse order gives runs exactly one memory-full.
        keys = [b"%05d" % i for i in range(999, -1, -1)]
        runs = replacement_selection_runs(keys, memory_items=50)
        assert len(runs) == 20
        assert all(len(run) == 50 for run in runs)

    def test_random_input_doubles_run_length(self):
        rng = random.Random(11)
        keys = [b"%07d" % rng.randrange(10**7) for _ in range(20000)]
        multiplier = run_length_multiplier(keys, memory_items=500)
        assert 1.7 < multiplier < 2.4  # Section 4.2's factor of ~2

    def test_runs_are_sorted_and_complete(self):
        rng = random.Random(3)
        keys = [b"%05d" % rng.randrange(10**5) for _ in range(2000)]
        runs = replacement_selection_runs(keys, memory_items=100)
        flattened = [key for run in runs for key in run]
        assert sorted(flattened) == sorted(keys)
        for run in runs:
            assert run == sorted(run)

    def test_small_input_single_run(self):
        runs = replacement_selection_runs([b"b", b"a"], memory_items=10)
        assert runs == [[b"a", b"b"]]

    def test_empty_input(self):
        assert replacement_selection_runs([], memory_items=4) == []
        assert run_length_multiplier([], 4) == 0.0

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            replacement_selection_runs([b"a"], memory_items=0)
