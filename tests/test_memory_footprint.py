"""Tests for RAM accounting (Appendix A's read-fanout inputs)."""

from repro.core import BLSM, BLSMOptions
from repro.records import Record
from repro.sstable import SSTableBuilder
from repro.storage import Stasis


def test_index_ram_scales_with_blocks():
    stasis = Stasis()
    builder = SSTableBuilder(stasis, tree_id=1, expected_keys=400)
    for i in range(400):
        builder.add(Record.base(b"key%04d" % i, b"v" * 500, i))
    table = builder.finish()
    per_block = table.index_ram_bytes() / len(table.blocks)
    # One entry per block: first key (8 bytes here) + pointer + length.
    assert 20 <= per_block <= 40
    assert table.index_ram_bytes() < table.nbytes / 10


def test_memory_footprint_roles():
    tree = BLSM(BLSMOptions(c0_bytes=64 * 1024, buffer_pool_pages=16))
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(100))
    footprint = tree.memory_footprint()
    for role in ("index", "bloom", "c0", "cache"):
        assert role in footprint
        assert footprint[role] >= 0
    assert footprint["cache"] == 16 * 4096
    assert footprint["c0"] == tree.component_sizes()["c0"]


def test_footprint_index_appears_after_merge():
    tree = BLSM(BLSMOptions(c0_bytes=64 * 1024))
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(100))
    before = tree.memory_footprint()
    tree.drain()
    after = tree.memory_footprint()
    assert before["index"] == 0 or after["index"] >= before["index"]
    assert after["index"] > 0
    assert after["bloom"] > 0
    assert after["c0"] == 0


def test_read_fanout_is_data_over_index():
    tree = BLSM(BLSMOptions(c0_bytes=128 * 1024))
    for i in range(1000):
        key = (b"user%05d" % i).ljust(100, b"x")  # Appendix A key shape
        tree.put(key, bytes(1000))
    tree.compact()
    footprint = tree.memory_footprint()
    data = tree.component_sizes()["c2"]
    fanout = data / footprint["index"]
    assert 20 < fanout < 80  # the appendix's ~40x


def test_no_bloom_means_zero_bloom_ram():
    tree = BLSM(
        BLSMOptions(c0_bytes=32 * 1024, with_bloom_filters=False)
    )
    for i in range(1500):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    assert tree.memory_footprint()["bloom"] == 0
