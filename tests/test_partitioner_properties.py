"""Property tests for RangePartitioner resizes on the sharded engine.

A resize moves ownership boundaries without migrating data, so every
read/write path must reason through the placement *history*
(``owners()``): reads fall back to historic owners, deletes broadcast
tombstones to all of them, scans dedupe by newest owner, and deltas —
the PR 5 fix — land wherever the base version actually lives.  These
tests drive seeded random workloads across repeated resizes and check
all of that against a dictionary model, plus the structural deep check
(:func:`check_sharded_invariants`) after every phase.
"""

import random

import pytest

from repro.core.options import BLSMOptions
from repro.baselines.interface import WriteBatch
from repro.shard.engine import ShardedEngine
from repro.shard.partitioner import RangePartitioner
from repro.testing import check_sharded_invariants

KEYS = [b"k%03d" % i for i in range(120)]


def build_engine(boundaries=(b"k040", b"k080")):
    part = RangePartitioner(list(boundaries))
    return ShardedEngine(
        BLSMOptions(c0_bytes=24 * 1024), shards=len(boundaries) + 1,
        partitioner=part,
    )


def verify(engine, model):
    for key in KEYS:
        assert engine.get(key) == model.get(key), key
    live = sorted((k, v) for k, v in model.items() if v is not None)
    assert list(engine.scan(b"")) == live
    check_sharded_invariants(engine)


def test_read_your_deletes_through_owner_history():
    # A key deleted *after* a resize moved it must stay deleted even
    # though an old version sits on its historic owner.
    engine = build_engine()
    model = {}
    rng = random.Random(11)
    for key in KEYS:
        value = b"v-" + key
        engine.put(key, value)
        model[key] = value
    engine.partitioner.resize([b"k020", b"k100"])
    for key in rng.sample(KEYS, 40):
        engine.delete(key)
        model[key] = None
    verify(engine, model)
    # A second resize must not resurrect them either.
    engine.partitioner.resize([b"k060", b"k061"])
    verify(engine, model)
    engine.close()


def test_tombstone_broadcast_masks_every_historic_owner():
    # The delete broadcast writes a tombstone on every shard that ever
    # owned the key, so even a *direct* per-shard read sees no live
    # version anywhere.
    engine = build_engine()
    engine.put(b"k010", b"old")          # owner under (k040, k080): shard 0
    engine.partitioner.resize([b"k005", b"k080"])
    engine.put(b"k010", b"new")          # now owned by shard 1
    engine.delete(b"k010")
    for shard in engine.shards:
        assert shard.get(b"k010") is None
    assert engine.get(b"k010") is None
    assert list(engine.scan(b"")) == []
    check_sharded_invariants(engine)
    engine.close()


def test_scan_first_owner_wins_under_interleaved_writes():
    # Writes interleaved with resizes leave several versions of one key
    # on different shards; the merged scan must yield exactly one row
    # per key — the version from the newest owner in the history.
    engine = build_engine()
    model = {}
    rng = random.Random(23)
    boundaries = [
        [b"k030", b"k090"],
        [b"k010", b"k050"],
        [b"k070", b"k071"],
    ]
    for round_index, bounds in enumerate(boundaries):
        for key in rng.sample(KEYS, 60):
            value = b"r%d-" % round_index + key
            engine.put(key, value)
            model[key] = value
        for key in rng.sample(KEYS, 15):
            engine.delete(key)
            model[key] = None
        verify(engine, model)
        engine.partitioner.resize(bounds)
        verify(engine, model)
    # Limited scans agree with the model prefix too (the dedup must not
    # consume the limit on rows it discards).
    live = sorted((k, v) for k, v in model.items() if v is not None)
    assert list(engine.scan(b"", None, 7)) == live[:7]
    assert list(engine.scan(b"k030", b"k090")) == [
        (k, v) for k, v in live if b"k030" <= k < b"k090"
    ]
    engine.close()


def test_delta_after_resize_lands_on_base_version():
    # Regression for bug 7 (docs/correctness.md): a delta issued after a
    # resize must reach the shard holding the base version, not dangle
    # on the new owner while reads fall back to the stale base.
    engine = build_engine()
    engine.put(b"k050", b"BASE")         # shard 1 under (k040, k080)
    engine.partitioner.resize([b"k060", b"k080"])  # k050 -> shard 0
    engine.apply_delta(b"k050", b"+D")
    assert engine.get(b"k050") == b"BASE+D"
    # Same through the batch path.
    engine.apply_batch(WriteBatch().apply_delta(b"k050", b"+E"))
    assert engine.get(b"k050") == b"BASE+D+E"
    # A put-then-delta pair inside one batch stays ordered on one shard.
    engine.apply_batch(
        WriteBatch().put(b"k050", b"FRESH").apply_delta(b"k050", b"+F")
    )
    assert engine.get(b"k050") == b"FRESH+F"
    check_sharded_invariants(engine)
    engine.close()


def test_mixed_workload_soak_across_resizes():
    # Seeded soak: random puts/deletes/deltas/batches interleaved with
    # resizes, fully verified against the model after every phase.
    engine = build_engine((b"k060",))
    model = {}
    rng = random.Random(5)
    for phase in range(4):
        for _ in range(80):
            key = rng.choice(KEYS)
            roll = rng.random()
            if roll < 0.55:
                value = b"p%d-" % phase + key
                engine.put(key, value)
                model[key] = value
            elif roll < 0.75:
                engine.delete(key)
                model[key] = None
            elif model.get(key) is not None:
                engine.apply_delta(key, b"+x")
                model[key] += b"+x"
            else:
                assert engine.get(key) == model.get(key)
        batch = WriteBatch()
        for _ in range(10):
            key = rng.choice(KEYS)
            value = b"b%d-" % phase + key
            batch.put(key, value)
            model[key] = value
        engine.apply_batch(batch)
        verify(engine, model)
        engine.partitioner.resize([rng.choice(KEYS)])
        verify(engine, model)
    engine.close()


def test_resize_rejects_wrong_shard_count():
    engine = build_engine()
    with pytest.raises(ValueError):
        engine.partitioner.resize([b"k050"])  # 2 shards != 3
    engine.close()
