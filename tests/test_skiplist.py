"""Unit tests for the skip list."""

import random

from repro.memtable import SkipList


def test_insert_and_get():
    sl = SkipList()
    assert sl.insert(b"b", 2) is None
    assert sl.get(b"b") == 2
    assert sl.get(b"a") is None


def test_overwrite_returns_old_value():
    sl = SkipList()
    sl.insert(b"k", 1)
    assert sl.insert(b"k", 2) == 1
    assert sl.get(b"k") == 2
    assert len(sl) == 1


def test_iteration_is_sorted():
    sl = SkipList(seed=3)
    keys = [b"%04d" % i for i in random.Random(0).sample(range(1000), 200)]
    for key in keys:
        sl.insert(key, key)
    assert [k for k, _ in sl] == sorted(keys)


def test_remove():
    sl = SkipList()
    sl.insert(b"a", 1)
    sl.insert(b"b", 2)
    assert sl.remove(b"a") == 1
    assert sl.get(b"a") is None
    assert len(sl) == 1
    assert sl.remove(b"missing") is None


def test_remove_all_then_reuse():
    sl = SkipList()
    for i in range(50):
        sl.insert(b"%02d" % i, i)
    for i in range(50):
        assert sl.remove(b"%02d" % i) == i
    assert len(sl) == 0
    sl.insert(b"new", 99)
    assert sl.get(b"new") == 99


def test_first():
    sl = SkipList()
    assert sl.first() is None
    sl.insert(b"m", 1)
    sl.insert(b"a", 2)
    assert sl.first() == (b"a", 2)


def test_ceiling():
    sl = SkipList()
    for key in (b"b", b"d", b"f"):
        sl.insert(key, key)
    assert sl.ceiling(b"a") == (b"b", b"b")
    assert sl.ceiling(b"d") == (b"d", b"d")
    assert sl.ceiling(b"e") == (b"f", b"f")
    assert sl.ceiling(b"g") is None


def test_iter_from():
    sl = SkipList()
    for i in range(10):
        sl.insert(b"%02d" % i, i)
    assert [v for _, v in sl.iter_from(b"05")] == [5, 6, 7, 8, 9]
    assert list(sl.iter_from(b"99")) == []


def test_contains():
    sl = SkipList()
    sl.insert(b"x", 1)
    assert b"x" in sl
    assert b"y" not in sl


def test_deterministic_given_seed():
    a, b = SkipList(seed=5), SkipList(seed=5)
    for i in range(100):
        a.insert(b"%03d" % i, i)
        b.insert(b"%03d" % i, i)
    assert list(a) == list(b)


def test_large_random_workload_against_dict():
    sl = SkipList(seed=1)
    rng = random.Random(42)
    model = {}
    for _ in range(5000):
        key = b"%03d" % rng.randrange(300)
        action = rng.random()
        if action < 0.6:
            value = rng.randrange(10**6)
            sl.insert(key, value)
            model[key] = value
        elif action < 0.9:
            assert sl.get(key) == model.get(key)
        else:
            assert sl.remove(key) == model.pop(key, None)
    assert [k for k, _ in sl] == sorted(model)
    assert len(sl) == len(model)
