"""Crash-recovery tests for the bLSM tree (Section 4.4.2)."""

import random

from repro.core import BLSM, BLSMOptions
from repro.storage import DurabilityMode


def options(**overrides):
    defaults = dict(
        c0_bytes=32 * 1024,
        buffer_pool_pages=64,
        durability=DurabilityMode.SYNC,
    )
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def test_recover_empty_tree():
    opts = options()
    tree = BLSM(opts)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"anything") is None


def test_recover_memtable_from_logical_log():
    opts = options()
    tree = BLSM(opts)
    tree.put(b"a", b"1")
    tree.put(b"b", b"2")
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"a") == b"1"
    assert recovered.get(b"b") == b"2"


def test_recover_on_disk_components():
    opts = options()
    tree = BLSM(opts)
    rng = random.Random(4)
    model = {}
    for i in range(3000):
        key = b"key%05d" % rng.randrange(2000)
        value = b"v%05d" % i
        tree.put(key, value)
        model[key] = value
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    mismatches = sum(1 for k, v in model.items() if recovered.get(k) != v)
    assert mismatches == 0


def test_recovered_scan_matches_pre_crash():
    opts = options()
    tree = BLSM(opts)
    model = {}
    for i in range(1500):
        key = b"key%05d" % (i % 800)
        value = b"v%d" % i
        tree.put(key, value)
        model[key] = value
    expected = sorted(model.items())
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert list(recovered.scan(b"")) == expected


def test_recover_deletes_and_deltas():
    opts = options()
    tree = BLSM(opts)
    tree.put(b"gone", b"x")
    tree.put(b"kept", b"base")
    tree.drain()
    tree.delete(b"gone")
    tree.apply_delta(b"kept", b"+d")
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"gone") is None
    assert recovered.get(b"kept") == b"base+d"


def test_crash_mid_merge_recovers_consistent_state():
    opts = options()
    tree = BLSM(opts)
    model = {}
    for i in range(1200):
        key = b"key%05d" % (i % 700)
        value = b"v%d" % i
        tree.put(key, value)
        model[key] = value
    # Start a merge pass but do not finish it: its extents are orphans.
    tree.step_m01(2000)
    assert tree._m01 is not None
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    mismatches = sum(1 for k, v in model.items() if recovered.get(k) != v)
    assert mismatches == 0


def test_crash_mid_merge_frees_orphan_extents():
    opts = options()
    tree = BLSM(opts)
    for i in range(1200):
        tree.put(b"key%05d" % (i % 700), bytes(32))
    tree.step_m01(2000)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    live_extents = set()
    for component in (recovered._c1, recovered._c1_prime, recovered._c2):
        if component is not None:
            live_extents.update(component.extents)
    assert set(stasis.regions.allocated_extents) == live_extents


def test_degraded_durability_loses_recent_writes_only():
    # DurabilityMode.NONE (Section 4.4.2): updates before the last
    # completed merge survive; recent ones may be lost.
    opts = options(durability=DurabilityMode.NONE)
    tree = BLSM(opts)
    tree.put(b"old", b"1")
    tree.drain()  # 'old' reaches a durable component
    tree.put(b"recent", b"2")  # memtable only
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"old") == b"1"
    assert recovered.get(b"recent") is None


def test_async_mode_loses_unforced_tail():
    opts = options(durability=DurabilityMode.ASYNC)
    tree = BLSM(opts)
    tree.put(b"a", b"1")  # sits in the group-commit buffer
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"a") is None


def test_flush_log_makes_async_writes_durable():
    opts = options(durability=DurabilityMode.ASYNC)
    tree = BLSM(opts)
    tree.put(b"a", b"1")
    tree.flush_log()
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"a") == b"1"


def test_recovery_charges_bloom_rebuild_io():
    # Bloom filters are not persisted (Section 4.4.3); recovery must
    # re-scan components to rebuild them, a real cost.
    opts = options()
    tree = BLSM(opts)
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(32))
    tree.drain()
    stasis = tree.stasis
    stasis.crash()
    read_before = stasis.data_disk.stats.bytes_read
    recovered = BLSM.recover(stasis, opts)
    assert stasis.data_disk.stats.bytes_read > read_before
    assert recovered._c1 is None or recovered._c1.bloom is not None


def test_recovered_tree_keeps_serving_writes():
    opts = options()
    tree = BLSM(opts)
    for i in range(2000):
        tree.put(b"key%05d" % (i % 900), b"v%d" % i)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    for i in range(2000):
        recovered.put(b"new%05d" % (i % 900), b"w%d" % i)
    assert recovered.get(b"new00000") is not None
    recovered.drain()
    assert recovered.get(b"new00000") is not None


def test_seqnos_continue_after_recovery():
    opts = options()
    tree = BLSM(opts)
    tree.put(b"a", b"1")
    seqno_before = tree._next_seqno
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered._next_seqno >= seqno_before
    recovered.put(b"a", b"2")
    assert recovered.get(b"a") == b"2"
