"""The compaction design-space lab: policies, level manager, trees.

Covers the ISSUE 6 invariants: geometric level sizing
(``max_bytes(level) = base * ratio^level``), single-run L1+ levels (and
hence no in-level key-range overlap) under ``leveled``, bounded run
counts under ``tiered``, tombstone GC happening *only* at the bottom
level, plus conformance (dict-oracle parity for every policy) and crash
recovery round-trips for the policy trees.
"""

import random

import pytest

from repro.baselines.compaction_engine import CompactionEngine
from repro.core.compaction import (
    POLICY_NAMES,
    CompactionTree,
    LevelManager,
    MergePlan,
    make_policy,
    make_tree,
    recover_tree,
)
from repro.core.options import BLSMOptions
from repro.core.tree import BLSM
from repro.testing import generate_trace, run_trace

POLICIES = tuple(name for name in POLICY_NAMES if name != "blsm3")


def small_options(policy, **overrides):
    defaults = dict(
        compaction_policy=policy,
        c0_bytes=4 * 1024,
        buffer_pool_pages=64,
        level_ratio=3.0,
        level0_trigger=2,
        level0_stop_trigger=6,
        tier_fanout=3,
    )
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def fill_tree(tree, ops=3000, keyspace=300, seed=7):
    rng = random.Random(seed)
    oracle = {}
    for i in range(ops):
        key = b"k%05d" % rng.randrange(keyspace)
        if rng.random() < 0.12:
            tree.delete(key)
            oracle.pop(key, None)
        else:
            value = b"v%08d" % i
            tree.put(key, value)
            oracle[key] = value
    return oracle


# ----------------------------------------------------------------------
# Level sizing and manager invariants
# ----------------------------------------------------------------------


def test_level_sizing_formula():
    manager = LevelManager(base_bytes=1000, ratio=3.0)
    for level in range(8):
        assert manager.max_bytes(level) == int(1000 * 3.0**level)


def test_manager_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LevelManager(base_bytes=0, ratio=3.0)
    with pytest.raises(ValueError):
        LevelManager(base_bytes=100, ratio=1.0)


def test_merge_plan_targets_same_or_next_level():
    MergePlan(1, 2, include_target=True, label="ok")
    MergePlan(2, 2, include_target=True, label="in-place")
    with pytest.raises(ValueError):
        MergePlan(1, 3, include_target=True, label="skip")
    with pytest.raises(ValueError):
        MergePlan(2, 1, include_target=True, label="up")


def test_options_validate_policy_fields():
    with pytest.raises(ValueError, match="unknown compaction policy"):
        BLSMOptions(compaction_policy="rocksdb")
    with pytest.raises(ValueError, match="level_ratio"):
        BLSMOptions(level_ratio=1.0)
    with pytest.raises(ValueError, match="level0_stop_trigger"):
        BLSMOptions(level0_trigger=6, level0_stop_trigger=4)
    with pytest.raises(ValueError, match="tier_fanout"):
        BLSMOptions(tier_fanout=1)


def test_make_policy_names():
    for name in POLICIES:
        assert make_policy(name).name == name
    with pytest.raises(ValueError, match="unknown compaction policy"):
        make_policy("blsm3")


def test_make_tree_dispatch():
    assert isinstance(make_tree(BLSMOptions()), BLSM)
    tree = make_tree(small_options("leveled"))
    assert isinstance(tree, CompactionTree)
    tree.close()


# ----------------------------------------------------------------------
# Layout invariants under sustained load
# ----------------------------------------------------------------------


def test_leveled_single_run_per_deep_level_and_no_overlap():
    tree = make_tree(small_options("leveled"))
    fill_tree(tree)
    tree.drain()
    manager = tree.manager
    for level in range(1, manager.level_count):
        runs = manager.runs(level)
        assert len(runs) <= 1, (level, len(runs))
        # With one run per level, key ranges within a level are
        # trivially disjoint; assert it through the run bounds anyway
        # so a future multi-run leveled variant inherits the check.
        spans = sorted(
            (run.min_key, run.max_key) for run in runs
        )
        for (_, prev_hi), (next_lo, _) in zip(spans, spans[1:]):
            assert prev_hi < next_lo
    tree.close()


def test_tiered_run_counts_bounded_after_drain():
    options = small_options("tiered")
    tree = make_tree(options)
    fill_tree(tree)
    tree.drain()
    manager = tree.manager
    policy = tree.policy
    for level in range(manager.level_count):
        assert manager.run_count(level) < policy.max_runs(level), level
    tree.close()


def test_lazy_leveled_bottom_is_single_run():
    tree = make_tree(small_options("lazy-leveled"))
    fill_tree(tree)
    tree.drain()
    manager = tree.manager
    bottom = manager.capacity_bottom()
    for level in range(bottom, manager.level_count):
        assert manager.run_count(level) <= 1, (level, bottom)
    tree.close()


def test_capacity_bottom_deepens_with_data():
    manager = LevelManager(base_bytes=1000, ratio=4.0)
    assert manager.capacity_bottom() == 1  # empty tree
    # capacity_bottom reads total_bytes(); fake levels via max_bytes math
    assert manager.max_bytes(2) == 16000
    class FakeTable:
        def __init__(self, nbytes):
            self.nbytes = nbytes
            self.key_count = 1
    manager._ensure_level(1)
    manager.levels[1].append(FakeTable(15000))
    assert manager.capacity_bottom() == 2
    manager.levels[1].append(FakeTable(40000))  # total 55000 <= 64000
    assert manager.capacity_bottom() == 3


# ----------------------------------------------------------------------
# Tombstone GC only at the bottom level
# ----------------------------------------------------------------------


def count_tombstones(tree):
    per_level = []
    for level in range(tree.manager.level_count):
        count = 0
        for run in tree.manager.runs(level):
            count += sum(
                1 for record in run.iter_records() if record.is_tombstone
            )
        per_level.append(count)
    return per_level


@pytest.mark.parametrize("policy", POLICIES)
def test_tombstones_survive_above_bottom_and_die_at_bottom(policy):
    tree = make_tree(small_options(policy))
    # Settle a base of live data at the bottom first.
    for i in range(400):
        tree.put(b"base%04d" % i, b"x" * 24)
    tree.drain()
    # Now delete keys that live only at the bottom; the tombstones must
    # survive every non-bottom merge (dropping one early would
    # resurrect the bottom-level value).
    for i in range(0, 400, 2):
        tree.delete(b"base%04d" % i)
    tree.drain()
    for i in range(0, 400, 2):
        assert tree.get(b"base%04d" % i) is None, (policy, i)
    for i in range(1, 400, 2):
        assert tree.get(b"base%04d" % i) is not None, (policy, i)
    # A full consolidation reaches the bottom with every older version
    # in its inputs: all tombstones are garbage-collected.
    tree.compact()
    assert sum(count_tombstones(tree)) == 0, count_tombstones(tree)
    for i in range(0, 400, 2):
        assert tree.get(b"base%04d" % i) is None, (policy, i)
    tree.close()


def test_drop_tombstones_rule():
    manager = LevelManager(base_bytes=1000, ratio=3.0)
    policy = make_policy("tiered", fanout=3)
    class FakeTable:
        nbytes = 10
        key_count = 1
    manager._ensure_level(2)
    manager.levels[1].append(FakeTable())
    manager.levels[2].append(FakeTable())
    # Merging into a non-bottom level never drops tombstones.
    plan = MergePlan(0, 1, include_target=False, label="t")
    assert not policy.drop_tombstones(manager, plan)
    # A tiering move into the *occupied* bottom level keeps tombstones:
    # older runs stay resident in the target.
    plan = MergePlan(1, 2, include_target=False, label="t")
    assert not policy.drop_tombstones(manager, plan)
    # A leveling move into the bottom consumes those older runs: GC.
    plan = MergePlan(1, 2, include_target=True, label="t")
    assert policy.drop_tombstones(manager, plan)
    # Tiering into an empty bottom is also safe.
    manager.levels[2].clear()
    plan = MergePlan(1, 2, include_target=False, label="t")
    assert policy.drop_tombstones(manager, plan)


# ----------------------------------------------------------------------
# Conformance and recovery
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_tree_matches_dict_oracle(policy):
    trace = generate_trace(1500, seed=13, keyspace=120)
    engine = CompactionEngine(small_options(policy))
    assert run_trace(engine, trace, config=policy) is None


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_tree_crash_recovery_roundtrip(policy):
    from repro.storage import DurabilityMode

    options = small_options(policy, durability=DurabilityMode.SYNC)
    tree = make_tree(options)
    oracle = fill_tree(tree, ops=1200, keyspace=150)
    stasis = tree.stasis
    stasis.crash()
    recovered = recover_tree(stasis, options)
    assert dict(recovered.scan(b"")) == oracle
    # The recovered tree keeps serving writes and merges.
    for i in range(300):
        recovered.put(b"post%04d" % i, b"y")
    recovered.drain()
    assert recovered.get(b"post0000") == b"y"
    recovered.close()


def test_scheduler_surface_backpressure():
    """Level-0 overflow stalls the writer instead of growing unbounded."""
    options = small_options("tiered", scheduler="naive")
    tree = make_tree(options)
    fill_tree(tree, ops=4000, keyspace=400)
    assert (
        tree.manager.run_count(0) <= options.level0_stop_trigger
    ), tree.manager.run_count(0)
    assert tree.stats()["policy"] == "tiered"
    tree.close()


def test_blsm_level_view_maps_slots_to_levels():
    tree = BLSM(BLSMOptions(c0_bytes=4 * 1024, buffer_pool_pages=32))
    for i in range(800):
        tree.put(b"k%04d" % (i % 120), b"v" * 20)
    tree.drain()
    view = tree.level_view()
    assert view["policy"] == "blsm3"
    assert len(view["levels"]) == 3
    assert len(view["max_bytes"]) == 3
    assert sum(len(level) for level in view["levels"]) >= 1
    tree.close()
