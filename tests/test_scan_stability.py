"""Scans interleaved with merges/compactions/splits (Section 4.4.1).

The paper hit this in its merge-thread implementation: batched scans
could observe a tree component deleted mid-scan, fixed with logical
timestamps on tree roots.  These tests pause scans at arbitrary points,
mutate the engine underneath (forcing merges, compactions and leaf
splits), and require the resumed scan to stay correct: sorted, no
duplicates, and containing every key that existed for the whole scan.
"""

import random

import pytest

from repro.baselines import BTreeEngine, LevelDBEngine
from repro.core import BLSM, BLSMOptions, PartitionedBLSM


def check_interleaved_scan(engine, writer, stable_keys, scan_from=b""):
    """Drive a scan one row at a time, running ``writer`` between rows."""
    seen = []
    for n, (key, _value) in enumerate(engine.scan(scan_from)):
        seen.append(key)
        writer(n)
    assert seen == sorted(seen), "scan emitted out of order"
    assert len(seen) == len(set(seen)), "scan emitted duplicates"
    missing = [k for k in stable_keys if k not in set(seen)]
    assert not missing, f"scan missed {len(missing)} stable keys"


def test_blsm_scan_survives_compaction_under_it():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(1500):
        tree.put(b"key%05d" % (i % 800), bytes(64))
    tree.drain()
    scan = tree.scan(b"key")
    rows = [next(scan) for _ in range(5)]
    tree.compact()  # frees the components the scan was reading
    rest = list(scan)
    keys = [k for k, _ in rows + rest]
    assert keys == sorted(set(keys))
    assert len(keys) == 800


def test_blsm_scan_with_interleaved_writes():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    stable = [b"key%05d" % i for i in range(600)]
    for key in stable:
        tree.put(key, bytes(64))
    rng = random.Random(0)

    def writer(n):
        for _ in range(10):
            tree.put(b"key%05d" % rng.randrange(600), bytes(64))

    check_interleaved_scan(tree, writer, stable)


def test_partitioned_scan_survives_splits_under_it():
    tree = PartitionedBLSM(
        BLSMOptions(c0_bytes=16 * 1024), max_partition_bytes=32 * 1024
    )
    stable = [b"key%05d" % i for i in range(800)]
    for key in stable:
        tree.put(key, bytes(64))
    rng = random.Random(1)

    def writer(n):
        for _ in range(8):
            tree.put(b"key%05d" % rng.randrange(800), bytes(64))

    check_interleaved_scan(tree, writer, stable)
    assert tree.partition_count >= 1


def test_leveldb_scan_survives_compaction_under_it():
    engine = LevelDBEngine(
        memtable_bytes=8 * 1024, file_bytes=16 * 1024,
        level_base_bytes=32 * 1024, buffer_pool_pages=32,
    )
    stable = [b"key%05d" % i for i in range(700)]
    for key in stable:
        engine.put(key, bytes(64))
    rng = random.Random(2)

    def writer(n):
        for _ in range(8):
            engine.put(b"key%05d" % rng.randrange(700), bytes(64))

    check_interleaved_scan(engine, writer, stable)


def test_btree_scan_survives_leaf_splits_under_it():
    engine = BTreeEngine(buffer_pool_pages=64, page_size=4096)
    stable = [b"key%05d" % i for i in range(400)]
    for key in stable:
        engine.put(key, bytes(64))
    rng = random.Random(3)

    def writer(n):
        # Interleave inserts of *new* keys ahead of the cursor to force
        # splits in leaves the scan has not reached yet.
        engine.put(b"key%05d-x%03d" % (rng.randrange(400), n), bytes(64))

    check_interleaved_scan(engine, writer, stable)


def test_scan_restart_respects_limit():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(500):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    scan = tree.scan(b"key", limit=10)
    rows = [next(scan) for _ in range(3)]
    tree.compact()
    rows.extend(scan)
    assert len(rows) == 10
    assert [k for k, _ in rows] == [b"key%05d" % i for i in range(10)]


def test_scan_restart_respects_hi_bound():
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(500):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    scan = tree.scan(b"key00100", b"key00200")
    rows = [next(scan) for _ in range(5)]
    tree.compact()
    rows.extend(scan)
    keys = [k for k, _ in rows]
    assert keys == [b"key%05d" % i for i in range(100, 200)]


@pytest.mark.parametrize("pause_at", [0, 1, 7, 50])
def test_blsm_scan_paused_at_various_points(pause_at):
    tree = BLSM(BLSMOptions(c0_bytes=16 * 1024))
    for i in range(300):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    scan = tree.scan(b"key")
    rows = []
    for _ in range(pause_at):
        rows.append(next(scan))
    tree.compact()
    rows.extend(scan)
    assert [k for k, _ in rows] == [b"key%05d" % i for i in range(300)]
