"""Unit tests for the page file."""

import pytest

from repro.errors import PageNotFoundError
from repro.sim import DiskModel, SimDisk, VirtualClock
from repro.storage import PageFile


@pytest.fixture
def pagefile():
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    return PageFile(disk, page_size=4096)


def test_write_then_read_roundtrips(pagefile):
    pagefile.write_page(3, ("payload",))
    assert pagefile.read_page(3) == ("payload",)


def test_missing_page_raises(pagefile):
    with pytest.raises(PageNotFoundError):
        pagefile.read_page(42)


def test_read_charges_one_page_of_io(pagefile):
    pagefile.write_page(0, "x")
    before = pagefile.disk.stats.bytes_read
    pagefile.read_page(0)
    assert pagefile.disk.stats.bytes_read - before == 4096


def test_page_address_is_id_times_size(pagefile):
    pagefile.write_page(0, "a")
    pagefile.write_page(1, "b")  # physically adjacent
    assert pagefile.disk.stats.seeks == 1  # second write was sequential


def test_write_run_is_one_transfer(pagefile):
    before = pagefile.disk.stats.seeks
    pagefile.write_run(10, ["a", "b", "c", "d"])
    assert pagefile.disk.stats.seeks == before + 1
    assert pagefile.read_page(12) == "c"


def test_read_run_returns_payloads_in_order(pagefile):
    pagefile.write_run(5, ["a", "b", "c"])
    seeks_before = pagefile.disk.stats.seeks
    assert pagefile.read_run(5, 3) == ["a", "b", "c"]
    assert pagefile.disk.stats.seeks == seeks_before + 1


def test_read_run_missing_page_raises(pagefile):
    pagefile.write_page(0, "a")
    with pytest.raises(PageNotFoundError):
        pagefile.read_run(0, 2)


def test_empty_run_is_free(pagefile):
    before = pagefile.disk.stats.busy_seconds
    assert pagefile.read_run(0, 0) == []
    pagefile.write_run(0, [])
    assert pagefile.disk.stats.busy_seconds == before


def test_free_page_removes_without_io(pagefile):
    pagefile.write_page(0, "a")
    busy = pagefile.disk.stats.busy_seconds
    pagefile.free_page(0)
    assert 0 not in pagefile
    assert pagefile.disk.stats.busy_seconds == busy


def test_peek_does_not_charge_io(pagefile):
    pagefile.write_page(0, "a")
    busy = pagefile.disk.stats.busy_seconds
    assert pagefile.peek(0) == "a"
    assert pagefile.disk.stats.busy_seconds == busy


def test_invalid_page_size_rejected():
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    with pytest.raises(ValueError):
        PageFile(disk, page_size=0)


def test_len_counts_pages(pagefile):
    pagefile.write_page(0, "a")
    pagefile.write_page(9, "b")
    assert len(pagefile) == 2
