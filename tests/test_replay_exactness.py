"""Regression tests: exact log retention and replay idempotence.

Two classes of corruption fixed during development, both around deltas:

1. **Double application** — conservative (prefix) log truncation kept
   records already merged into durable components; replaying a delta a
   component already contains appends it twice.  Fixed by exact
   retention: the log keeps precisely the coverage ranges of the
   records still resident in C0.

2. **Tombstone swallowing** — folding a delta over a tombstone used to
   keep only the (dangling) delta, letting reads walk past the deletion
   and anchor on an older base in a deeper component.
"""

import random

from repro.core import BLSM, BLSMOptions
from repro.storage import DurabilityMode


def sync_tree(**overrides):
    defaults = dict(
        c0_bytes=24 * 1024,
        buffer_pool_pages=32,
        durability=DurabilityMode.SYNC,
    )
    defaults.update(overrides)
    return BLSM(BLSMOptions(**defaults)), BLSMOptions(**defaults)


def test_merged_delta_not_double_applied_after_crash():
    tree, options = sync_tree()
    tree.put(b"victim", b"base")
    # Old writes that stay in C0 across merges keep retention honest.
    for i in range(20):
        tree.put(b"old%02d" % i, b"x")
    tree.apply_delta(b"victim", b"+D")
    # Merge the delta into C1 while the old keys stay resident.
    tree.drain()
    assert tree.get(b"victim") == b"base+D"
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert recovered.get(b"victim") == b"base+D"  # not base+D+D


def test_folded_delta_chain_survives_crash_exactly():
    tree, options = sync_tree()
    tree.put(b"k", b"v")
    tree.apply_delta(b"k", b"+1")
    tree.apply_delta(b"k", b"+2")  # folds in C0: one record, 3 writes
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert recovered.get(b"k") == b"v+1+2"


def test_partially_merged_fold_survives_crash():
    tree, options = sync_tree()
    tree.put(b"k", b"v")
    tree.drain()  # base durable
    tree.apply_delta(b"k", b"+1")
    tree.apply_delta(b"k", b"+2")
    tree.drain()  # folded delta chain durable in C1
    tree.apply_delta(b"k", b"+3")  # still only in C0 + log
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert recovered.get(b"k") == b"v+1+2+3"


def test_delta_after_delete_does_not_resurrect_base():
    tree, _ = sync_tree()
    tree.put(b"k", b"resurrect-me")
    tree.drain()  # base durable in C1
    tree.delete(b"k")
    tree.apply_delta(b"k", b"+D")  # folds over the tombstone in C0
    assert tree.get(b"k") is None
    tree.drain()
    assert tree.get(b"k") is None
    tree.compact()
    assert tree.get(b"k") is None


def test_delta_after_delete_crash_safe():
    tree, options = sync_tree()
    tree.put(b"k", b"resurrect-me")
    tree.drain()
    tree.delete(b"k")
    tree.apply_delta(b"k", b"+D")
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert recovered.get(b"k") is None


def test_fuzz_delta_delete_crash_recover():
    rng = random.Random(123)
    for trial in range(5):
        tree, options = sync_tree()
        model: dict[bytes, bytes] = {}
        for i in range(1200):
            key = b"k%03d" % rng.randrange(120)
            action = rng.random()
            if action < 0.45:
                value = b"v%04d" % i
                tree.put(key, value)
                model[key] = value
            elif action < 0.65:
                tree.delete(key)
                model.pop(key, None)
            elif action < 0.90:
                tree.apply_delta(key, b"+D")
                if key in model:
                    model[key] += b"+D"
            else:
                tree.drain()
        stasis = tree.stasis
        stasis.crash()
        recovered = BLSM.recover(stasis, options)
        bad = {
            k: (v, recovered.get(k))
            for k, v in model.items()
            if recovered.get(k) != v
        }
        assert not bad, (trial, list(bad.items())[:3])
        # Deleted keys stay deleted.
        for key in (b"k%03d" % i for i in range(120)):
            if key not in model:
                assert recovered.get(key) is None, key
