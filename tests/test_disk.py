"""Unit tests for the simulated device cost model."""

import pytest

from repro.sim import DiskModel, SimDisk, VirtualClock


@pytest.fixture
def hdd():
    clock = VirtualClock()
    return SimDisk(DiskModel.hdd(), clock), clock


def test_first_access_is_a_seek(hdd):
    disk, clock = hdd
    disk.read(0, 4096)
    assert disk.stats.seeks == 1
    assert clock.now >= disk.model.read_access_seconds


def test_sequential_read_charges_no_seek(hdd):
    disk, _ = hdd
    disk.read(0, 4096)
    disk.read(4096, 4096)
    assert disk.stats.seeks == 1  # only the first access seeks


def test_non_sequential_read_seeks(hdd):
    disk, _ = hdd
    disk.read(0, 4096)
    disk.read(1 << 20, 4096)
    assert disk.stats.seeks == 2


def test_transfer_time_matches_bandwidth():
    clock = VirtualClock()
    model = DiskModel.hdd()
    disk = SimDisk(model, clock)
    nbytes = 10 * 1024 * 1024
    disk.read(0, nbytes)
    expected = model.read_access_seconds + nbytes / model.seq_read_bandwidth
    assert clock.now == pytest.approx(expected)


def test_write_then_read_at_same_offset_seeks(hdd):
    # The head moved past the written range; re-reading it repositions.
    disk, _ = hdd
    disk.write(0, 4096)
    disk.read(0, 4096)
    assert disk.stats.seeks == 2


def test_interleaved_read_write_streams_seek(hdd):
    disk, _ = hdd
    disk.read(0, 4096)
    disk.write(1 << 20, 4096)
    disk.read(4096, 4096)
    assert disk.stats.seeks == 3


def test_zero_byte_access_is_free(hdd):
    disk, clock = hdd
    before = clock.now
    assert disk.read(0, 0) == 0.0
    assert clock.now == before
    assert disk.stats.read_ops == 0


def test_negative_access_rejected(hdd):
    disk, _ = hdd
    with pytest.raises(ValueError):
        disk.read(-1, 10)
    with pytest.raises(ValueError):
        disk.write(0, -10)


def test_counters_track_bytes(hdd):
    disk, _ = hdd
    disk.read(0, 100)
    disk.write(200, 300)
    assert disk.stats.bytes_read == 100
    assert disk.stats.bytes_written == 300
    assert disk.stats.read_ops == 1
    assert disk.stats.write_ops == 1


def test_ssd_random_writes_cost_more_than_reads():
    model = DiskModel.ssd()
    assert model.write_access_seconds > model.read_access_seconds


def test_hdd_access_dwarfs_small_transfer():
    # Section 2.1: "the seek cost generally dwarfs the transfer cost".
    model = DiskModel.hdd()
    transfer = 1000 / model.seq_read_bandwidth
    assert model.read_access_seconds > 100 * transfer


def test_shared_clock_across_devices():
    clock = VirtualClock()
    a = SimDisk(DiskModel.hdd(), clock, name="a")
    b = SimDisk(DiskModel.hdd(), clock, name="b")
    a.read(0, 4096)
    t = clock.now
    b.read(0, 4096)
    assert clock.now > t


def test_single_hdd_matches_paper_write_amp_arithmetic():
    # Section 2.2: two seeks for a 1000-byte record vs 10us sequential
    # gives a write amplification near 1000.
    model = DiskModel.single_hdd()
    two_seeks = 2 * model.write_access_seconds
    sequential = 1000 / model.seq_write_bandwidth
    assert two_seeks / sequential == pytest.approx(1000, rel=0.1)
