"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_scripts():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_examples_exist():
    scripts = example_scripts()
    assert len(scripts) >= 3  # the deliverable: at least three examples
    assert "quickstart.py" in scripts


@pytest.mark.parametrize("script", example_scripts())
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
