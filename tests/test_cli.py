"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_workload_standard_mix(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--engine", "blsm", "--workload", "a",
        "--records", "300", "--ops", "300", "--value-bytes", "100",
    )
    assert code == 0
    assert "engine=bLSM" in out
    assert "load :" in out
    assert "run  :" in out
    assert "io   :" in out


@pytest.mark.parametrize("engine", ["blsm", "blsm-part", "btree", "leveldb"])
def test_workload_all_engines(capsys, engine):
    code, out = run_cli(
        capsys,
        "workload", "--engine", engine,
        "--records", "200", "--ops", "150",
        "--read", "0.5", "--blind-write", "0.5",
        "--value-bytes", "100",
    )
    assert code == 0
    assert "ops/s" in out


def test_workload_custom_proportions_normalized(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--records", "100", "--ops", "100",
        "--read", "3", "--scan", "1", "--value-bytes", "100",
    )
    assert code == 0
    assert "read" in out
    assert "scan" in out


def test_workload_defaults_to_mixed(capsys):
    # No proportions at all: the CLI falls back to a 50/50 mix.
    code, out = run_cli(
        capsys, "workload", "--records", "100", "--ops", "60",
        "--value-bytes", "100",
    )
    assert code == 0
    assert "blind_write" in out


def test_workload_ssd(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--disk", "ssd", "--records", "100", "--ops", "50",
        "--read", "1.0", "--value-bytes", "100",
    )
    assert code == 0
    assert "disk=ssd" in out


def test_load_only(capsys):
    code, out = run_cli(
        capsys, "workload", "--records", "100", "--ops", "0",
        "--value-bytes", "100",
    )
    assert code == 0
    assert "run  :" not in out


def test_compare_runs_all_engines(capsys):
    code, out = run_cli(
        capsys,
        "compare", "--records", "200", "--ops", "100",
        "--read", "0.5", "--blind-write", "0.5", "--value-bytes", "100",
        "--c0-bytes", "8192", "--cache-pages", "8",
    )
    assert code == 0
    for name in ("bLSM", "bLSM-part", "InnoDB", "LevelDB"):
        assert name in out


def test_compare_load_only(capsys):
    code, out = run_cli(
        capsys, "compare", "--records", "150", "--ops", "0",
        "--value-bytes", "100", "--c0-bytes", "8192",
    )
    assert code == 0
    assert "InnoDB" in out


def test_amplification_table(capsys):
    code, out = run_cli(capsys, "amplification", "--max-ratio", "4")
    assert code == 0
    assert "bloom" in out
    assert "R=10" in out


def test_cache_table(capsys):
    code, out = run_cli(capsys, "cache-table")
    assert code == 0
    assert "Full disk" in out
    assert "SATA SSD" in out
    assert "-" in out  # the capacity-bound dashes


def test_record_and_replay(capsys, tmp_path):
    trace = str(tmp_path / "w.trace")
    code, out = run_cli(
        capsys,
        "record", "--records", "100", "--ops", "200",
        "--read", "0.5", "--blind-write", "0.5",
        "--value-bytes", "100", "--output", trace,
    )
    assert code == 0
    assert "recorded 200 operations" in out
    code, out = run_cli(
        capsys,
        "replay", "--trace", trace, "--engine", "blsm",
        "--c0-bytes", "8192",
    )
    assert code == 0
    assert "replayed 200 ops" in out


def test_selfcheck_passes(capsys):
    code, out = run_cli(capsys, "selfcheck", "--operations", "800")
    assert code == 0
    assert "selfcheck: PASS" in out
    for name in ("bLSM", "InnoDB", "LevelDB", "recovery"):
        assert name in out


def test_parser_rejects_unknown_engine():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["workload", "--engine", "bogus"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_trace_summary_lists_stalls(capsys):
    code, out = run_cli(
        capsys,
        "trace", "--engine", "blsm", "--scheduler", "naive",
        "--records", "300", "--ops", "0", "--value-bytes", "100",
        "--c0-bytes", "16384", "--cache-pages", "16",
    )
    assert code == 0
    assert "trace:" in out and "events" in out
    assert "stall_begin" in out  # event taxonomy listing
    assert "merge_backpressure" in out  # top stall causes
    assert "merge time by level" in out
    assert "c0c1" in out


def test_trace_dump_prints_raw_events(capsys):
    code, out = run_cli(
        capsys,
        "trace", "--engine", "blsm", "--scheduler", "naive",
        "--records", "300", "--ops", "0", "--value-bytes", "100",
        "--c0-bytes", "16384", "--cache-pages", "16",
        "--dump", "--last", "5",
    )
    assert code == 0
    lines = [line for line in out.splitlines() if line]
    assert len(lines) == 5
    assert all(line.startswith("t=") for line in lines)


def test_trace_works_for_every_engine(capsys):
    # Engines without stalls still summarize cleanly.
    code, out = run_cli(
        capsys,
        "trace", "--engine", "bitcask",
        "--records", "100", "--ops", "0", "--value-bytes", "100",
    )
    assert code == 0
    assert "disk_io" in out


def test_crashtest_subcommand_passes(capsys):
    code, out = run_cli(
        capsys,
        "crashtest", "--engine", "blsm", "--ops", "60", "--every", "9",
        "--quiet",
    )
    assert code == 0
    assert "crash-point enumeration" in out
    assert "verdict" in out and "PASS" in out


def test_crashtest_partitioned_engine(capsys):
    code, out = run_cli(
        capsys,
        "crashtest", "--engine", "partitioned", "--ops", "50",
        "--every", "11", "--quiet",
    )
    assert code == 0
    assert "PASS" in out


def test_trace_summary_reports_injected_faults(capsys):
    code, out = run_cli(
        capsys,
        "trace", "--engine", "blsm",
        "--records", "400", "--ops", "200", "--value-bytes", "100",
        "--c0-bytes", "16384", "--cache-pages", "16",
        "--fault-transient", "0.05", "--fault-seed", "3",
    )
    assert code == 0
    assert "faults and recovery hardening:" in out
    assert "transient I/O errors" in out
    assert "retries" in out
    assert "retry backoff" in out


def test_trace_summary_silent_when_healthy(capsys):
    code, out = run_cli(
        capsys,
        "trace", "--engine", "blsm",
        "--records", "200", "--ops", "0", "--value-bytes", "100",
    )
    assert code == 0
    assert "faults and recovery hardening:" not in out


def test_workload_with_fault_flags_completes(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--engine", "blsm",
        "--records", "200", "--ops", "150", "--value-bytes", "100",
        "--blind-write", "1.0",
        "--fault-transient", "0.02", "--fault-latency", "0.001",
    )
    assert code == 0
    assert "run  :" in out


def test_fault_flags_rejected_for_non_blsm_engines(capsys):
    with pytest.raises(SystemExit):
        main([
            "workload", "--engine", "btree",
            "--records", "50", "--ops", "0",
            "--fault-transient", "0.1",
        ])


def test_workload_sharded_engine(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--engine", "sharded", "--shards", "2",
        "--records", "200", "--ops", "150",
        "--read", "0.5", "--blind-write", "0.5",
        "--value-bytes", "100",
    )
    assert code == 0
    assert "ops/s" in out


def test_workload_sharded_range_partitioner(capsys):
    code, out = run_cli(
        capsys,
        "workload", "--engine", "sharded", "--shards", "3",
        "--partitioner", "range",
        "--records", "200", "--ops", "100",
        "--read", "0.6", "--scan", "0.4", "--value-bytes", "100",
    )
    assert code == 0
    assert "scan" in out


def test_trace_sharded_prints_per_shard_rows(capsys):
    code, out = run_cli(
        capsys,
        "trace", "--engine", "sharded", "--shards", "2",
        "--records", "300", "--ops", "100", "--value-bytes", "100",
    )
    assert code == 0
    assert "shards (load balance and utilization):" in out
    assert "shard" in out


def test_compare_includes_sharded(capsys):
    code, out = run_cli(
        capsys,
        "compare", "--records", "150", "--ops", "100",
        "--value-bytes", "100",
    )
    assert code == 0
    assert "sharded" in out


def test_bench_reports_speedup(capsys):
    code, out = run_cli(
        capsys,
        "bench", "--records", "400", "--ops", "256", "--batch", "32",
        "--value-bytes", "200", "--c0-bytes", "16384", "--cache-pages", "8",
    )
    assert code == 0
    assert "speedup" in out
    assert "batch" in out


def test_bench_assert_speedup_failure_exits_nonzero(capsys):
    code, out = run_cli(
        capsys,
        "bench", "--records", "400", "--ops", "256", "--batch", "32",
        "--value-bytes", "200", "--c0-bytes", "16384", "--cache-pages", "8",
        "--assert-speedup", "1000",
    )
    assert code == 1
    assert "speedup" in out


def test_bench_without_baseline(capsys):
    code, out = run_cli(
        capsys,
        "bench", "--records", "300", "--ops", "128", "--batch", "16",
        "--value-bytes", "200", "--c0-bytes", "16384", "--cache-pages", "8",
        "--baseline", "none",
    )
    assert code == 0
    assert "speedup" not in out


def test_fuzz_differential_clean(capsys):
    code, out = run_cli(
        capsys, "fuzz", "--ops", "200", "--seed", "0", "--quiet",
    )
    assert code == 0
    assert "all engines agree" in out
    # The default matrix covers every registry engine, a 2-shard
    # config, and the fault-plan config.
    assert "sharded-2" in out
    assert "blsm-faulty" in out


def test_fuzz_with_crash_composition(capsys):
    code, out = run_cli(
        capsys, "fuzz", "--ops", "150", "--seed", "1", "--faults", "all",
        "--crash-every", "80", "--crash-ops", "40", "--quiet",
    )
    assert code == 0
    assert "crash compose" in out


def test_fuzz_engine_subset(capsys):
    code, out = run_cli(
        capsys, "fuzz", "--ops", "150", "--engines", "btree,bitcask",
        "--faults", "none", "--quiet",
    )
    assert code == 0
    assert "btree" in out and "bitcask" in out
    assert "blsm-faulty" not in out


def test_fuzz_corpus_replay(capsys, tmp_path):
    from repro.testing import Trace, TraceOp

    Trace(
        [TraceOp.put(b"k", b"v"), TraceOp.get(b"k")],
        meta={"mode": "differential", "engines": ["btree"]},
    ).save(str(tmp_path / "one.json"))
    code, out = run_cli(capsys, "fuzz", "--corpus", str(tmp_path), "--quiet")
    assert code == 0
    assert "all OK" in out


def test_fuzz_corpus_replay_shipped_corpus(capsys):
    import os

    corpus = os.path.join(os.path.dirname(__file__), "corpus")
    code, out = run_cli(capsys, "fuzz", "--corpus", corpus, "--quiet")
    assert code == 0
    assert "all OK" in out
