"""The engine registry: one place every entry point builds engines.

Covers: every registered name builds a working engine, keyword
overrides and explicit configs compose, capability gates fail loudly
instead of silently ignoring flags, and the crash-harness surface
builds/recovers the raw trees the enumeration drives.
"""

import pytest

from repro import cli
from repro.baselines import (
    BitCaskEngine,
    BLSMEngine,
    BTreeEngine,
    CompactionEngine,
    KVEngine,
    LevelDBEngine,
    PartitionedBLSMEngine,
)
from repro.core import BLSM, CompactionTree, PartitionedBLSM
from repro.engines import (
    CRASH_ENGINE_NAMES,
    ENGINE_NAMES,
    EngineConfig,
    blsm_options,
    build_crash_tree,
    build_engine,
    crash_options,
    engine_spec,
    recover_crash_tree,
)
from repro.faults import FaultPlan
from repro.shard import RangePartitioner, ShardedEngine
from repro.sim import DiskModel
from repro.storage import DurabilityMode


EXPECTED_TYPES = {
    "blsm": BLSMEngine,
    "blsm-part": PartitionedBLSMEngine,
    "sharded": ShardedEngine,
    "btree": BTreeEngine,
    "leveldb": LevelDBEngine,
    "bitcask": BitCaskEngine,
    "leveled": CompactionEngine,
    "tiered": CompactionEngine,
    "lazy-leveled": CompactionEngine,
}


def small_config(**overrides):
    defaults = dict(c0_bytes=32 * 1024, cache_pages=16)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_every_registered_name_builds_and_serves(name):
    engine = build_engine(name, small_config())
    assert isinstance(engine, KVEngine)
    assert isinstance(engine, EXPECTED_TYPES[name])
    engine.put(b"alpha", b"1")
    engine.put(b"beta", b"2")
    assert engine.get(b"alpha") == b"1"
    assert engine.multi_get([b"beta", b"missing"]) == [b"2", None]
    engine.close()


def test_engine_names_cover_registry_and_cli():
    assert set(ENGINE_NAMES) == set(EXPECTED_TYPES)
    assert "sharded" in ENGINE_NAMES
    # The CLI exposes the registry tuple itself, not a private copy.
    assert cli.ENGINES is ENGINE_NAMES


def test_keyword_overrides_apply_on_top_of_config():
    config = small_config(shards=2)
    engine = build_engine("sharded", config, shards=3)
    assert len(engine.shard_rows()) == 3
    engine.close()
    # The original config is untouched (EngineConfig is frozen).
    assert config.shards == 2


def test_overrides_without_config_use_defaults():
    engine = build_engine("sharded", shards=2, c0_bytes=32 * 1024)
    assert len(engine.shard_rows()) == 2
    engine.close()


def test_blsm_options_mirror_config():
    config = small_config(
        durability="sync", compression=0.5, data_stripes=2, seed=7
    )
    options = blsm_options(config)
    assert options.c0_bytes == 32 * 1024
    assert options.buffer_pool_pages == 16
    assert options.durability is DurabilityMode.SYNC
    assert options.compression_ratio == 0.5
    assert options.data_stripes == 2
    assert options.seed == 7


def test_range_partitioner_from_sample():
    sample = tuple(b"key%03d" % i for i in range(90))
    engine = build_engine(
        "sharded",
        small_config(shards=3, partitioner="range", partitioner_sample=sample),
    )
    for key in sample:
        engine.put(key, b"v")
    rows = engine.shard_rows()
    # Sample-derived boundaries split the keyspace across all shards.
    assert all(row["ops"] > 0 for row in rows)
    engine.close()


def test_unknown_engine_name_raises():
    with pytest.raises(ValueError, match="unknown engine 'rocksdb'"):
        build_engine("rocksdb")
    with pytest.raises(ValueError, match="unknown engine"):
        engine_spec("nope")


def test_fault_plan_gate_rejects_non_blsm_engines():
    plan = FaultPlan(seed=1)
    for name in ("btree", "leveldb", "bitcask", "sharded"):
        with pytest.raises(ValueError, match="fault injection requires"):
            build_engine(name, small_config(fault_plan=plan))


def test_fault_plan_accepted_by_blsm_family():
    for name in ("blsm", "blsm-part"):
        engine = build_engine(name, small_config(fault_plan=FaultPlan(seed=1)))
        engine.put(b"k", b"v")
        assert engine.get(b"k") == b"v"
        engine.close()


def test_placement_gate_rejects_flat_engines():
    for name in ("btree", "leveldb", "bitcask"):
        with pytest.raises(ValueError, match="require a bLSM"):
            build_engine(name, small_config(data_stripes=4))
        with pytest.raises(ValueError, match="require a bLSM"):
            build_engine(name, small_config(log_disk=DiskModel.ssd()))
        with pytest.raises(ValueError, match="require a bLSM"):
            build_engine(name, small_config(background_merges=True))


def test_placement_accepted_by_sharded_engine():
    engine = build_engine("sharded", small_config(shards=2, data_stripes=2))
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    engine.close()


def test_engine_spec_capabilities():
    assert engine_spec("blsm").supports_faults
    assert engine_spec("blsm-part").supports_faults
    assert not engine_spec("sharded").supports_faults
    assert engine_spec("sharded").supports_shards
    assert engine_spec("sharded").supports_placement
    assert not engine_spec("btree").supports_placement


def test_explicit_partitioner_object_still_works():
    # The ShardedEngine itself accepts partitioner instances directly;
    # the registry's string names cover the CLI surface.
    engine = ShardedEngine(
        blsm_options(small_config()),
        shards=2,
        partitioner=RangePartitioner([b"m"]),
    )
    engine.put(b"a", b"1")
    engine.put(b"z", b"2")
    assert engine.multi_get([b"a", b"z"]) == [b"1", b"2"]
    engine.close()


# ----------------------------------------------------------------------
# Crash-harness surface
# ----------------------------------------------------------------------


def test_crash_engine_names():
    assert CRASH_ENGINE_NAMES == (
        "blsm",
        "partitioned",
        "leveled",
        "tiered",
        "lazy-leveled",
    )


def test_crash_options_are_tiny_and_sync():
    options = crash_options(None, seed=3)
    assert options.c0_bytes == 6 * 1024
    assert options.durability is DurabilityMode.SYNC
    assert options.seed == 3


@pytest.mark.parametrize(
    "name, tree_type",
    [
        ("blsm", BLSM),
        ("partitioned", PartitionedBLSM),
        ("leveled", CompactionTree),
        ("tiered", CompactionTree),
        ("lazy-leveled", CompactionTree),
    ],
)
def test_build_and_recover_crash_tree(name, tree_type):
    tree = build_crash_tree(name, None, seed=0)
    assert isinstance(tree, tree_type)
    tree.put(b"k", b"v")
    assert tree.get(b"k") == b"v"
    stasis, options = tree.stasis, tree.options
    recovered = recover_crash_tree(name, stasis, options)
    assert isinstance(recovered, tree_type)
    assert recovered.get(b"k") == b"v"
    recovered.close()


def test_crash_tree_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown engine"):
        build_crash_tree("sharded", None, seed=0)
    with pytest.raises(ValueError, match="unknown engine"):
        recover_crash_tree("sharded", None, None)
