"""Unit tests for the region (extent) allocator."""

import pytest

from repro.errors import RegionError
from repro.storage import Extent, RegionAllocator


def test_allocations_are_contiguous_and_disjoint():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    b = alloc.allocate(5)
    assert a.length == 10
    assert b.start >= a.end


def test_free_then_reuse():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    alloc.allocate(5)
    alloc.free(a)
    c = alloc.allocate(10)
    assert c.start == a.start  # first-fit reuses the hole


def test_partial_reuse_splits_hole():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    alloc.allocate(1)
    alloc.free(a)
    c = alloc.allocate(4)
    d = alloc.allocate(6)
    assert c == Extent(a.start, 4)
    assert d == Extent(a.start + 4, 6)


def test_coalescing_merges_adjacent_holes():
    alloc = RegionAllocator()
    a = alloc.allocate(4)
    b = alloc.allocate(4)
    c = alloc.allocate(4)
    alloc.allocate(1)  # guard so the tail is not open space
    alloc.free(a)
    alloc.free(c)
    alloc.free(b)  # middle free must merge all three
    d = alloc.allocate(12)
    assert d == Extent(a.start, 12)


def test_double_free_rejected():
    alloc = RegionAllocator()
    a = alloc.allocate(4)
    alloc.free(a)
    with pytest.raises(RegionError):
        alloc.free(a)


def test_free_unallocated_rejected():
    alloc = RegionAllocator()
    with pytest.raises(RegionError):
        alloc.free(Extent(100, 4))


def test_zero_length_rejected():
    alloc = RegionAllocator()
    with pytest.raises(RegionError):
        alloc.allocate(0)


def test_shrink_returns_tail():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    alloc.allocate(1)  # block tail growth
    shrunk = alloc.shrink(a, 6)
    assert shrunk == Extent(a.start, 6)
    tail = alloc.allocate(4)
    assert tail == Extent(a.start + 6, 4)


def test_shrink_to_same_length_is_noop():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    assert alloc.shrink(a, 10) == a


def test_shrink_invalid_length_rejected():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    with pytest.raises(RegionError):
        alloc.shrink(a, 0)
    with pytest.raises(RegionError):
        alloc.shrink(a, 11)


def test_shrunk_extent_can_be_freed():
    alloc = RegionAllocator()
    a = alloc.allocate(10)
    shrunk = alloc.shrink(a, 6)
    alloc.free(shrunk)
    assert alloc.free_pages() >= 10


def test_free_pages_accounting():
    alloc = RegionAllocator()
    a = alloc.allocate(8)
    alloc.allocate(2)
    alloc.free(a)
    assert alloc.free_pages() == 8


def test_extent_contains():
    extent = Extent(10, 5)
    assert 10 in extent
    assert 14 in extent
    assert 15 not in extent
    assert 9 not in extent


def test_allocated_extents_listing():
    alloc = RegionAllocator()
    a = alloc.allocate(3)
    b = alloc.allocate(2)
    alloc.free(a)
    assert alloc.allocated_extents == [b]
