"""Tests for the analytical models (Figure 2, Table 2, read fanout)."""

import pytest

from repro.analysis import (
    DeviceSpec,
    STANDARD_DEVICES,
    bloom_read_amplification,
    cache_gb_table,
    cascade_bandwidth_amplification,
    cascade_read_amplification,
    figure2_series,
    read_fanout,
)
from repro.analysis.five_minute import full_disk_cache_gb, interval_cache_gb


class TestFigure2:
    def test_bloom_amplification_is_flat_and_near_one(self):
        # Section 3.1: "Bloom filters' maximum amplification is 1.03".
        values = [bloom_read_amplification(x) for x in (2, 4, 8, 16)]
        assert all(v == pytest.approx(1.02) for v in values)

    def test_bloom_amplification_zero_when_data_fits_ram(self):
        assert bloom_read_amplification(0.5) == 0.0

    def test_cascade_levels_grow_logarithmically(self):
        assert cascade_read_amplification(2, 16) == 4
        assert cascade_read_amplification(4, 16) == 2
        assert cascade_read_amplification(10, 16) == 2
        assert cascade_read_amplification(2, 2) == 1

    def test_no_r_beats_bloom(self):
        # The figure's point: no setting of R reaches Bloom's seek count.
        for r in range(2, 11):
            assert cascade_read_amplification(r, 16) > bloom_read_amplification(16)

    def test_bandwidth_tradeoff(self):
        # Larger R: fewer levels but more bandwidth per level.
        small_r = cascade_bandwidth_amplification(2, 16)
        large_r = cascade_bandwidth_amplification(10, 16)
        assert large_r > small_r / 2  # both are well above bloom's ~1

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            cascade_read_amplification(1.0, 4)

    def test_series_shape(self):
        series = figure2_series(max_ratio=4, points_per_unit=1)
        assert "bloom" in series and "R=2" in series
        assert len(series["bloom"]) == 5
        ratio, seeks, bandwidth = series["R=2"][-1]
        assert ratio == 4.0 and seeks == 2.0


class TestReadFanout:
    def test_typical_scenario_is_about_forty(self):
        # Appendix A: 100-byte keys, 4KB pages -> read fanout ~40.
        assert read_fanout(4096, 100, 1000) == pytest.approx(38, rel=0.05)

    def test_large_records_dominate_page_size(self):
        assert read_fanout(4096, 100, 100_000) > 500

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            read_fanout(0, 100, 1000)


class TestTable2:
    def test_matches_paper_cells(self):
        # Spot-check the published Table 2 values.
        ssd = STANDARD_DEVICES[0]
        assert interval_cache_gb(ssd, 60) == pytest.approx(0.30, abs=0.01)
        assert interval_cache_gb(ssd, 300) == pytest.approx(1.5, abs=0.02)
        assert full_disk_cache_gb(ssd) == pytest.approx(12.5, abs=0.1)
        pcie = STANDARD_DEVICES[1]
        assert interval_cache_gb(pcie, 60) == pytest.approx(6.0, abs=0.1)
        assert full_disk_cache_gb(pcie) == pytest.approx(122, abs=1)
        media = STANDARD_DEVICES[3]
        assert interval_cache_gb(media, 604800) == pytest.approx(15.12, abs=0.1)
        assert full_disk_cache_gb(media) == pytest.approx(48.8, abs=0.1)

    def test_dash_cells_are_none(self):
        # Devices become capacity-bound at low access frequencies.
        ssd = STANDARD_DEVICES[0]
        assert interval_cache_gb(ssd, 3600) is None  # paper prints '-'

    def test_table_shape(self):
        rows = cache_gb_table()
        assert len(rows) == 8  # 7 intervals + full disk
        assert all(len(cells) == 4 for _, cells in rows)
        assert rows[-1][0] == "Full disk"

    def test_custom_device(self):
        tiny = DeviceSpec("tiny", capacity_gb=1, reads_per_sec=10)
        rows = cache_gb_table([tiny])
        assert rows[0][1][0] is not None
