"""Property-based tests (hypothesis) for core structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import BTreeEngine, LevelDBEngine
from repro.bloom import BloomFilter
from repro.core import BLSM, BLSMOptions
from repro.memtable import SkipList, replacement_selection_runs
from repro.records import Record, fold, resolve
from repro.sstable import SSTableBuilder, kway_merge
from repro.storage import DurabilityMode, RegionAllocator, Stasis

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=0, max_size=32)
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@given(st.lists(st.tuples(keys, st.integers(0, 2), values), max_size=120))
def test_skiplist_matches_dict(operations):
    sl = SkipList(seed=7)
    model = {}
    for key, op, value in operations:
        if op == 0:
            sl.insert(key, value)
            model[key] = value
        elif op == 1:
            assert sl.get(key) == model.get(key)
        else:
            assert sl.remove(key) == model.pop(key, None)
    assert [k for k, _ in sl] == sorted(model)


@given(st.lists(keys, unique=True, max_size=80))
def test_bloom_never_false_negative(members):
    bloom = BloomFilter.for_capacity(max(1, len(members)))
    for key in members:
        bloom.add(key)
    assert all(key in bloom for key in members)


@given(st.lists(keys, min_size=1, max_size=200), st.integers(1, 20))
def test_replacement_selection_partitions_sorted_runs(arrivals, memory):
    runs = replacement_selection_runs(arrivals, memory)
    assert sorted(k for run in runs for k in run) == sorted(arrivals)
    for run in runs:
        assert run == sorted(run)
    # The defining property: every run except the last is at least one
    # memory-full (replacement selection never emits short runs early).
    for run in runs[:-1]:
        assert len(run) >= min(memory, len(arrivals))


@given(st.lists(st.tuples(keys, st.integers(0, 2), values), max_size=100))
def test_blsm_matches_dict_model(operations):
    tree = BLSM(BLSMOptions(c0_bytes=2048, buffer_pool_pages=16))
    model = {}
    for key, op, value in operations:
        if op == 0:
            tree.put(key, value)
            model[key] = value
        elif op == 1:
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    for key, value in model.items():
        assert tree.get(key) == value
    assert list(tree.scan(b"")) == sorted(model.items())


@given(st.lists(st.tuples(keys, st.booleans(), values), max_size=80))
def test_blsm_deltas_match_semantic_model(operations):
    tree = BLSM(BLSMOptions(c0_bytes=2048, buffer_pool_pages=16))
    model = {}
    for key, is_delta, value in operations:
        if is_delta:
            tree.apply_delta(key, value)
            if key in model and model[key] is not None:
                model[key] = model[key] + value
            else:
                model.setdefault(key, None)  # dangling delta
        else:
            tree.put(key, value)
            model[key] = value
    for key, value in model.items():
        assert tree.get(key) == value


@given(st.lists(st.tuples(keys, values), max_size=60))
def test_blsm_survives_crash_with_sync_log(writes):
    options = BLSMOptions(
        c0_bytes=2048, buffer_pool_pages=16, durability=DurabilityMode.SYNC
    )
    tree = BLSM(options)
    model = {}
    for key, value in writes:
        tree.put(key, value)
        model[key] = value
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    for key, value in model.items():
        assert recovered.get(key) == value


@given(st.lists(st.tuples(keys, st.integers(0, 1), values), max_size=80))
def test_btree_matches_dict_model(operations):
    engine = BTreeEngine(buffer_pool_pages=8, page_size=1024)
    model = {}
    for key, op, value in operations:
        if op == 0:
            engine.put(key, value)
            model[key] = value
        else:
            engine.delete(key)
            model.pop(key, None)
    for key, value in model.items():
        assert engine.get(key) == value
    assert [k for k, _ in engine.scan(b"")] == sorted(model)


@given(st.lists(st.tuples(keys, values), max_size=80))
def test_leveldb_matches_dict_model(writes):
    engine = LevelDBEngine(
        memtable_bytes=512, file_bytes=1024, level_base_bytes=2048,
        buffer_pool_pages=16,
    )
    model = {}
    for key, value in writes:
        engine.put(key, value)
        model[key] = value
    for key, value in model.items():
        assert engine.get(key) == value
    assert list(engine.scan(b"")) == sorted(model.items())


@given(st.lists(st.tuples(keys, st.integers(0, 1), values), max_size=100))
def test_bitcask_matches_dict_model(operations):
    from repro.baselines import BitCaskEngine

    engine = BitCaskEngine(garbage_threshold=0.3)  # compact aggressively
    model = {}
    for key, op, value in operations:
        if op == 0:
            engine.put(key, value)
            model[key] = value
        else:
            engine.delete(key)
            model.pop(key, None)
    for key, value in model.items():
        assert engine.get(key) == value
    assert list(engine.scan(b"")) == sorted(model.items())


@given(
    st.lists(st.lists(st.tuples(keys, values), max_size=30), max_size=4)
)
def test_kway_merge_yields_sorted_unique_groups(source_specs):
    sources = []
    for i, pairs in enumerate(source_specs):
        unique = {}
        for key, value in pairs:
            unique[key] = value
        records = [
            Record.base(k, v, 1000 - i) for k, v in sorted(unique.items())
        ]
        sources.append(iter(records))
    seen = []
    for group in kway_merge(sources):
        assert len({r.key for r in group}) == 1
        seen.append(group[0].key)
    assert seen == sorted(set(seen))


@given(st.lists(st.tuples(st.integers(0, 2), values), min_size=1, max_size=10))
def test_fold_chain_equals_resolve(version_specs):
    # Folding versions pairwise (what merges do) must agree with
    # resolving the full chain (what reads do).
    kinds = {0: Record.base, 1: Record.delta}
    chain = []
    for seqno, (kind, value) in enumerate(version_specs):
        if kind == 2:
            chain.append(Record.tombstone(b"k", seqno))
        else:
            chain.append(kinds[kind](b"k", value, seqno))
    newest_first = list(reversed(chain))
    folded = chain[0]
    for newer in chain[1:]:
        folded = fold(newer, folded)
    assert resolve([folded]) == resolve(newest_first)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=60))
def test_sstable_roundtrip(pairs):
    unique = dict(pairs)
    stasis = Stasis(buffer_pool_pages=16)
    builder = SSTableBuilder(stasis, tree_id=1, expected_keys=len(unique))
    for i, (key, value) in enumerate(sorted(unique.items())):
        builder.add(Record.base(key, value, i))
    table = builder.finish()
    for key, value in unique.items():
        assert table.get(key).value == value
    assert [r.key for r in table.iter_records()] == sorted(unique)


@given(st.lists(st.tuples(st.integers(1, 30), st.booleans()), max_size=60))
def test_region_allocator_never_overlaps(steps):
    allocator = RegionAllocator()
    live = []
    for length, should_free in steps:
        if should_free and live:
            allocator.free(live.pop(random.Random(length).randrange(len(live))))
        else:
            live.append(allocator.allocate(length))
        spans = sorted((e.start, e.end) for e in live)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2  # no overlap


@given(st.lists(st.tuples(keys, values), max_size=100), st.integers(0, 3))
def test_scan_prefix_consistency(writes, prefix_len):
    tree = BLSM(BLSMOptions(c0_bytes=2048, buffer_pool_pages=16))
    model = {}
    for key, value in writes:
        tree.put(key, value)
        model[key] = value
    lo = bytes(prefix_len)
    expected = sorted((k, v) for k, v in model.items() if k >= lo)
    assert list(tree.scan(lo)) == expected
