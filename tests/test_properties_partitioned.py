"""Property-based tests for the partitioned tree and range snowshovel."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BLSMOptions, PartitionedBLSM
from repro.core.merge import RangeSnowshovelSource
from repro.memtable import MemTable
from repro.records import Record
from repro.storage import DurabilityMode

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=0, max_size=32)

settings.register_profile(
    "repro_part",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro_part")


def tiny_tree():
    return PartitionedBLSM(
        BLSMOptions(c0_bytes=2048, buffer_pool_pages=16),
        max_partition_bytes=4096,
    )


@given(st.lists(st.tuples(keys, st.integers(0, 2), values), max_size=120))
def test_partitioned_matches_dict_model(operations):
    tree = tiny_tree()
    model = {}
    for key, op, value in operations:
        if op == 0:
            tree.put(key, value)
            model[key] = value
        elif op == 1:
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    for key, value in model.items():
        assert tree.get(key) == value
    assert list(tree.scan(b"")) == sorted(model.items())


@given(st.lists(st.tuples(keys, values), max_size=80))
def test_partitions_always_tile_keyspace(writes):
    tree = tiny_tree()
    for key, value in writes:
        tree.put(key, value)
    tree.drain()
    ranges = tree.partition_ranges()
    assert ranges[0][0] == b""
    assert ranges[-1][1] is None
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo


@given(st.lists(st.tuples(keys, values), max_size=60))
def test_partitioned_crash_recovery(writes):
    options = BLSMOptions(
        c0_bytes=2048, buffer_pool_pages=16, durability=DurabilityMode.SYNC
    )
    tree = PartitionedBLSM(options, max_partition_bytes=4096)
    model = {}
    for key, value in writes:
        tree.put(key, value)
        model[key] = value
    stasis = tree.stasis
    stasis.crash()
    recovered = PartitionedBLSM.recover(
        stasis, options, max_partition_bytes=4096
    )
    for key, value in model.items():
        assert recovered.get(key) == value


@given(
    st.lists(keys, min_size=1, max_size=60, unique=True),
    st.binary(min_size=1, max_size=4),
    st.binary(min_size=1, max_size=4),
)
def test_range_snowshovel_stays_in_bounds(all_keys, bound_a, bound_b):
    lo, hi = min(bound_a, bound_b), max(bound_a, bound_b)
    if lo == hi:
        hi = hi + b"\xff"
    table = MemTable(1 << 20)
    for i, key in enumerate(all_keys):
        table.put(Record.base(key, b"v", i))
    source = RangeSnowshovelSource(table, lo, hi)
    drained = []
    while (record := source.peek()) is not None:
        drained.append(source.pop().key)
    expected = sorted(k for k in all_keys if lo <= k < hi)
    assert drained == expected
    # Everything outside the range is untouched.
    remaining = sorted(record.key for record in table)
    assert remaining == sorted(k for k in all_keys if not lo <= k < hi)


@given(st.lists(st.tuples(keys, values), max_size=80), st.integers(0, 20))
def test_partitioned_scan_with_interleaved_writes(writes, pause_every):
    tree = tiny_tree()
    model = {}
    for key, value in writes:
        tree.put(key, value)
        model[key] = value
    rng = random.Random(0)
    seen = []
    extra = list(model)
    for n, (key, _) in enumerate(tree.scan(b"")):
        seen.append(key)
        if extra and pause_every and n % (pause_every + 1) == 0:
            tree.put(extra[rng.randrange(len(extra))], b"rewrite")
    assert seen == sorted(set(seen))
    assert set(model) <= set(seen)
