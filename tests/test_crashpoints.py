"""Crash-point enumeration harness tests (ALICE-style, docs/fault-injection.md).

The fast tests enumerate a thinned boundary set; the slow test is the
full acceptance run — 500 ops, a crash at *every* I/O boundary, both
engines — and is exercised by the scheduled ``crash-matrix`` CI job.
"""

import pytest

from repro.faults.crashpoints import (
    count_workload_accesses,
    enumerate_crash_points,
    format_report,
    scripted_workload,
)


def test_scripted_workload_is_deterministic():
    assert scripted_workload(50, seed=4) == scripted_workload(50, seed=4)
    assert scripted_workload(50, seed=4) != scripted_workload(50, seed=5)
    ops = scripted_workload(200, seed=0)
    assert any(op == "delete" for op, _, _ in ops)
    assert any(op == "put" for op, _, _ in ops)


def test_workload_access_count_is_stable():
    script = scripted_workload(80, seed=0)
    first = count_workload_accesses("blsm", script)
    second = count_workload_accesses("blsm", script)
    assert first == second > 0


@pytest.mark.parametrize("engine", ["blsm", "partitioned"])
def test_every_seventh_boundary_recovers(engine):
    report = enumerate_crash_points(engine=engine, ops=150, every=7, seed=0)
    assert report.ok, format_report(report)
    assert report.crashes_triggered > 0
    assert report.recoveries_verified == report.crashes_triggered
    assert report.points_tested >= report.total_accesses // 7


def test_report_formatting_mentions_verdict():
    report = enumerate_crash_points(engine="blsm", ops=40, every=13, seed=1)
    text = format_report(report)
    assert "verdict" in text
    assert ("PASS" in text) == report.ok


def test_enumeration_rejects_bad_arguments():
    with pytest.raises(ValueError):
        enumerate_crash_points(engine="innodb")
    with pytest.raises(ValueError):
        enumerate_crash_points(ops=0)
    with pytest.raises(ValueError):
        enumerate_crash_points(every=0)


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["blsm", "partitioned"])
def test_full_boundary_sweep_500_ops(engine):
    """The acceptance run: crash at every single I/O boundary."""
    report = enumerate_crash_points(engine=engine, ops=500, every=1, seed=0)
    assert report.ok, format_report(report)
    assert report.crashes_triggered == report.total_accesses
    assert report.recoveries_verified == report.total_accesses