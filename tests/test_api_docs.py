"""The generated API reference stays fresh and complete."""

import importlib.util
import os
import subprocess
import sys

TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


def test_api_docs_are_fresh():
    result = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_generator_covers_headline_api():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", os.path.join(TOOLS, "gen_api_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    text = module.generate()
    for symbol in (
        "`BLSM`",
        "`PartitionedBLSM`",
        "`BTreeEngine`",
        "`LevelDBEngine`",
        "`SpringGearScheduler`",
        "`run_workload(",
        "`run_open_loop(",
        "`BloomFilter`",
        "`run_model_workload(",
    ):
        assert symbol in text, symbol


def test_public_surface_is_documented():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", os.path.join(TOOLS, "gen_api_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    text = module.generate()
    assert "*(undocumented)*" not in text
