"""Property tests for the swappable memtable backends (the ablation).

Every backend behind ``repro profile --memtable all`` must be
*semantically invisible*: same sorted iteration, same tombstone
handling, same freeze/rollover behavior as the paper-faithful skip
list.  These tests pin that equivalence directly (backend vs backend on
one operation stream) and end to end (full bLSM trees rolling C0 over
across merges).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BLSM, BLSMOptions
from repro.memtable import MEMTABLE_NAMES, MemTable
from repro.memtable.backends import make_backend
from repro.records import Record

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=0, max_size=24)
settings.register_profile(
    "ablation",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ablation")

ALTERNATES = tuple(k for k in MEMTABLE_NAMES if k != "skiplist")


def test_registry_names_are_stable():
    # The profile CLI, fuzz matrix and docs all spell these.
    assert "skiplist" in MEMTABLE_NAMES
    assert set(ALTERNATES) == {"array", "dict"}


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown memtable"):
        make_backend("btree")
    with pytest.raises(ValueError, match="unknown memtable"):
        MemTable(1024, kind="btree")


def test_options_validate_memtable_kind():
    with pytest.raises(ValueError, match="unknown memtable"):
        BLSMOptions(memtable="vector")


def test_fuzz_matrix_includes_memtable_variants():
    from repro.testing.differential import default_fuzz_configs

    labels = {config.label for config in default_fuzz_configs()}
    for kind in ALTERNATES:
        assert f"blsm-mt-{kind}" in labels


# ----------------------------------------------------------------------
# Backend-level equivalence (one op stream, every structure)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", MEMTABLE_NAMES)
@given(ops=st.lists(st.tuples(keys, st.integers(0, 2), values), max_size=120))
def test_backend_matches_dict_model(kind, ops):
    backend = make_backend(kind, seed=7)
    model = {}
    for key, op, value in ops:
        if op == 0:
            backend.insert(key, value)
            model[key] = value
        elif op == 1:
            assert backend.get(key) == model.get(key)
        else:
            assert backend.remove(key) == model.pop(key, None)
    assert len(backend) == len(model)
    # Sorted iteration is the contract snowshoveling drains depend on.
    assert [k for k, _ in backend] == sorted(model)
    if model:
        smallest = min(model)
        assert backend.first() == (smallest, model[smallest])
    else:
        assert backend.first() is None


@pytest.mark.parametrize("kind", ALTERNATES)
@given(ops=st.lists(st.tuples(keys, st.integers(0, 2), values), max_size=100),
       probe=keys)
def test_backend_equivalent_to_skiplist(kind, ops, probe):
    subject = make_backend(kind, seed=3)
    reference = make_backend("skiplist", seed=3)
    for key, op, value in ops:
        if op == 0:
            assert subject.insert(key, value) == reference.insert(key, value)
        elif op == 1:
            assert subject.get(key) == reference.get(key)
        else:
            assert subject.remove(key) == reference.remove(key)
    assert list(subject) == list(reference)
    assert subject.ceiling(probe) == reference.ceiling(probe)
    assert list(subject.iter_from(probe)) == list(reference.iter_from(probe))


@pytest.mark.parametrize("kind", MEMTABLE_NAMES)
@given(ops=st.lists(st.tuples(keys, st.integers(0, 2), values),
                    min_size=1, max_size=80))
def test_memtable_tombstones_and_folds_match_skiplist(kind, ops):
    """Tombstones, deltas and replay duplicates fold identically."""
    subject = MemTable(1 << 30, seed=5, kind=kind)
    reference = MemTable(1 << 30, seed=5, kind="skiplist")
    for seqno, (key, op, value) in enumerate(ops):
        if op == 0:
            record = Record.base(key, value, seqno)
        elif op == 1:
            record = Record.tombstone(key, seqno)
        else:
            record = Record.delta(key, value, seqno)
        subject.put(record)
        reference.put(record)
    assert subject.nbytes == reference.nbytes
    assert list(subject) == list(reference)
    for key, *_ in ops:
        assert subject.get(key) == reference.get(key)


@pytest.mark.parametrize("kind", MEMTABLE_NAMES)
def test_snowshovel_drain_order_matches_skiplist(kind):
    """first/ceiling/remove sweeps (the C0:C1 drain verbs) agree."""
    subject = MemTable(1 << 30, seed=1, kind=kind)
    reference = MemTable(1 << 30, seed=1, kind="skiplist")
    for seqno in range(64):
        record = Record.base(b"k%03d" % ((seqno * 37) % 64), b"v", seqno)
        subject.put(record)
        reference.put(record)
    drained_subject, drained_reference = [], []
    cursor = subject.first_key()
    while cursor is not None:
        drained_subject.append(subject.remove(cursor).key)
        cursor = subject.ceiling_key(cursor)
    cursor = reference.first_key()
    while cursor is not None:
        drained_reference.append(reference.remove(cursor).key)
        cursor = reference.ceiling_key(cursor)
    assert drained_subject == drained_reference
    assert subject.is_empty and reference.is_empty


# ----------------------------------------------------------------------
# End-to-end freeze/rollover equivalence (full trees, tiny C0)
# ----------------------------------------------------------------------


def _drive(tree, seed: int, ops: int = 500):
    import random

    rng = random.Random(seed)
    model = {}
    for step in range(ops):
        key = b"key%04d" % rng.randrange(120)
        roll = rng.random()
        if roll < 0.55:
            value = bytes([rng.randrange(256)]) * rng.randrange(1, 40)
            tree.put(key, value)
            model[key] = value
        elif roll < 0.75:
            tree.delete(key)
            model.pop(key, None)
        elif roll < 0.9:
            assert tree.get(key) == model.get(key), (step, key)
        else:
            delta = b"+%d" % step
            tree.apply_delta(key, delta)
            if key in model:
                model[key] += delta
    return model


@pytest.mark.parametrize("kind", ALTERNATES)
def test_tree_rollover_equivalence_vs_skiplist(kind):
    """A tiny C0 forces many freezes/rollovers; logical state, scans
    and the snowshovel drain must match the skip-list tree exactly."""
    subject = BLSM(
        BLSMOptions(c0_bytes=4096, buffer_pool_pages=16, memtable=kind)
    )
    reference = BLSM(
        BLSMOptions(c0_bytes=4096, buffer_pool_pages=16, memtable="skiplist")
    )
    model = _drive(subject, seed=11)
    reference_model = _drive(reference, seed=11)
    assert model == reference_model
    assert list(subject.scan(b"")) == sorted(model.items())
    assert list(subject.scan(b"")) == list(reference.scan(b""))
    subject.close()
    reference.close()


@pytest.mark.parametrize("kind", ALTERNATES)
def test_tree_crash_recovery_with_alternate_memtable(kind):
    """Rollover + crash + recover on a non-default backend: the log
    replay path rebuilds C0 through the same MemTable surface."""
    from repro.storage import DurabilityMode

    options = BLSMOptions(
        c0_bytes=4096,
        buffer_pool_pages=16,
        memtable=kind,
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    model = _drive(tree, seed=23, ops=300)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert list(recovered.scan(b"")) == sorted(model.items())
    recovered.close()
