"""Sharded engine: routing, overlapped fan-out, scans, resize safety.

Covers the tentpole claims: batches cost the max (not the sum) of
per-shard device time, cross-shard scans merge in order, tombstones
mask versions stranded on old owners after a range resize, and four
shards deliver at least 3x the batched read throughput of one tree.
"""

import pytest

from repro.baselines import BLSMEngine, WriteBatch, validate_io_summary
from repro.core import BLSMOptions
from repro.core.options import derive_shard_options
from repro.shard import (
    HashPartitioner,
    RangePartitioner,
    ShardedEngine,
    fnv1a_bytes,
    make_partitioner,
)
from repro.testing import run_model_workload, verify_against_model
from repro.ycsb import WorkloadSpec, load_phase, run_batched_workload
from repro.ycsb.generator import make_key


def small_options(**overrides):
    defaults = dict(c0_bytes=32 * 1024, buffer_pool_pages=16)
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def make_engine(shards=4, partitioner=None, **overrides):
    return ShardedEngine(
        small_options(**overrides), shards=shards, partitioner=partitioner
    )


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------


def test_fnv1a_matches_reference_vectors():
    # Published FNV-1a 64-bit test vectors: routing must be stable
    # across processes and Python versions.
    assert fnv1a_bytes(b"") == 0xCBF29CE484222325
    assert fnv1a_bytes(b"a") == 0xAF63DC4C8601EC8C
    assert fnv1a_bytes(b"foobar") == 0x85944171F73967E8


def test_hash_partitioner_spreads_and_is_deterministic():
    part = HashPartitioner(4)
    keys = [b"user%019d" % i for i in range(400)]
    buckets = [0] * 4
    for key in keys:
        index = part.shard_for(key)
        assert part.shard_for(key) == index
        assert part.owners(key) == (index,)
        buckets[index] += 1
    assert all(count > 50 for count in buckets)


def test_hash_partitioner_rejects_zero_shards():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_range_partitioner_routes_by_boundary():
    part = RangePartitioner([b"g", b"p"])
    assert part.nshards == 3
    assert part.shard_for(b"a") == 0
    assert part.shard_for(b"g") == 1  # boundary key goes right
    assert part.shard_for(b"m") == 1
    assert part.shard_for(b"z") == 2


def test_range_partitioner_from_sample_balances():
    keys = [b"k%04d" % i for i in range(100)]
    part = RangePartitioner.from_sample(keys, 4)
    counts = [0] * 4
    for key in keys:
        counts[part.shard_for(key)] += 1
    assert max(counts) - min(counts) <= 2


def test_range_partitioner_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        RangePartitioner([])
    with pytest.raises(ValueError):
        RangePartitioner([b"b", b"a"])
    with pytest.raises(ValueError):
        RangePartitioner([b"a", b"a"])


def test_range_resize_keeps_history_in_owners():
    part = RangePartitioner([b"m"])
    assert part.owners(b"c") == (0,)
    part.resize([b"b"])  # keys in [b, m) move from shard 0 to shard 1
    assert part.resized
    assert part.shard_for(b"c") == 1
    assert part.owners(b"c") == (1, 0)  # current first, then historic
    assert part.owners(b"a") == (0,)  # unmoved keys have one owner
    with pytest.raises(ValueError):
        part.resize([b"a", b"b"])  # shard count must not change


def test_make_partitioner_names():
    assert isinstance(make_partitioner("hash", 4), HashPartitioner)
    ranged = make_partitioner("range", 2, sample=[b"a", b"b", b"c", b"d"])
    assert isinstance(ranged, RangePartitioner)
    with pytest.raises(ValueError):
        make_partitioner("range", 4)  # needs a sample
    with pytest.raises(ValueError):
        make_partitioner("consistent", 4)


# ----------------------------------------------------------------------
# Router semantics
# ----------------------------------------------------------------------


def test_point_ops_route_and_read_back():
    engine = make_engine(shards=3)
    items = {b"key%04d" % i: b"value%04d" % i for i in range(60)}
    for key, value in items.items():
        engine.put(key, value)
    for key, value in items.items():
        assert engine.get(key) == value
    engine.delete(b"key0000")
    assert engine.get(b"key0000") is None
    assert engine.get(b"missing") is None
    engine.close()


def test_model_check_against_dict():
    engine = make_engine(shards=4)
    model = run_model_workload(engine, operations=1200, seed=7)
    verify_against_model(engine, model)
    engine.close()


def test_partitioner_shard_count_mismatch_rejected():
    with pytest.raises(ValueError):
        ShardedEngine(small_options(), shards=4, partitioner=HashPartitioner(2))


def test_sharding_rejects_fault_plan():
    from repro.faults import FaultPlan

    with pytest.raises(ValueError):
        derive_shard_options(
            small_options(fault_plan=FaultPlan(seed=0)), index=0
        )


def test_shard_clocks_never_pass_the_router():
    engine = make_engine(shards=4)
    for i in range(200):
        engine.put(b"key%04d" % i, b"v" * 64)
    engine.multi_get([b"key%04d" % i for i in range(0, 200, 7)])
    for shard in engine.shards:
        assert shard.clock.now <= engine.clock.now + 1e-12
    engine.close()


def test_multi_get_matches_sequential_gets():
    engine = make_engine(shards=4)
    for i in range(100):
        engine.put(b"key%04d" % i, b"value%04d" % i)
    keys = [b"key%04d" % i for i in range(0, 140, 3)]  # includes misses
    assert engine.multi_get(keys) == [engine.get(key) for key in keys]
    engine.close()


def test_apply_batch_matches_sequential_application():
    batch = WriteBatch()
    for i in range(50):
        batch.put(b"key%04d" % i, b"value%04d" % i)
    batch.delete(b"key0004").put(b"key0007", b"rewritten")

    batched = make_engine(shards=4)
    batched.apply_batch(batch)
    sequential = make_engine(shards=4)
    for i in range(50):
        sequential.put(b"key%04d" % i, b"value%04d" % i)
    sequential.delete(b"key0004")
    sequential.put(b"key0007", b"rewritten")

    for i in range(50):
        key = b"key%04d" % i
        assert batched.get(key) == sequential.get(key)
    batched.close()
    sequential.close()


def test_batch_cost_is_max_not_sum_of_shard_time():
    # Uncached reads spanning all shards: the router's clock advance
    # must equal the slowest shard's service time, and undercut the
    # serial sum whenever more than one shard participated.
    engine = make_engine(shards=4, c0_bytes=16 * 1024, buffer_pool_pages=4)
    # Hashed YCSB-style keys: sorted synthetic keys would load in order
    # and serve reads straight from each shard's write path, costing no
    # device time at all.
    load_keys = [make_key(i, ordered=False) for i in range(1200)]
    for key in load_keys:
        engine.put(key, b"v" * 512)
    engine.flush()
    keys = load_keys[::7]
    before = engine.clock.now
    engine.multi_get(keys)
    elapsed = engine.clock.now - before
    events = [
        event
        for event in engine.trace("shard_batch")
        if event.get("kind") == "multi_get"
    ]
    assert events
    last = events[-1]
    per_shard = last.get("per_shard")
    assert len(per_shard) == 4  # uniform keys touched every shard
    assert last.get("seconds") == pytest.approx(max(per_shard.values()))
    assert sum(per_shard.values()) > last.get("seconds") > 0.0
    assert elapsed >= last.get("seconds")
    engine.close()


def test_read_modify_write_routes_through_batch():
    engine = make_engine(shards=2)
    engine.put(b"counter", b"1")
    result = engine.read_modify_write(
        b"counter", lambda old: b"%d" % (int(old) + 1)
    )
    assert result == b"2"
    assert engine.get(b"counter") == b"2"
    assert engine.trace("rmw")  # attribution event fired
    engine.close()


def test_insert_if_not_exists_checks_all_owners():
    part = RangePartitioner([b"m"])
    engine = make_engine(shards=2, partitioner=part)
    engine.put(b"c", b"old")
    part.resize([b"b"])  # b"c" now owned by shard 1, version lives on 0
    assert engine.insert_if_not_exists(b"c", b"new") is False
    assert engine.get(b"c") == b"old"
    assert engine.insert_if_not_exists(b"fresh", b"v") is True
    engine.close()


# ----------------------------------------------------------------------
# Cross-shard scans (satellite 4: merged order, limits, tombstones)
# ----------------------------------------------------------------------


def test_scan_merges_shards_in_key_order():
    engine = make_engine(shards=4)
    items = {b"key%04d" % i: b"value%04d" % i for i in range(120)}
    for key, value in items.items():
        engine.put(key, value)
    rows = list(engine.scan(b"key0000"))
    assert rows == sorted(items.items())
    engine.close()


def test_scan_limit_cuts_across_shard_boundaries():
    engine = make_engine(shards=4)
    for i in range(100):
        engine.put(b"key%04d" % i, b"v%04d" % i)
    rows = list(engine.scan(b"key0010", limit=17))
    assert [key for key, _ in rows] == [b"key%04d" % i for i in range(10, 27)]
    bounded = list(engine.scan(b"key0000", b"key0009", limit=50))
    assert [key for key, _ in bounded] == [b"key%04d" % i for i in range(9)]
    engine.close()


def test_scan_after_resize_prefers_newest_owner_and_masks_tombstones():
    part = RangePartitioner([b"key0050"])
    engine = make_engine(shards=2, partitioner=part)
    for i in range(100):
        engine.put(b"key%04d" % i, b"old%04d" % i)
    # Move the split: keys [key0030, key0050) now belong to shard 1,
    # but their pre-resize versions remain physically on shard 0.
    part.resize([b"key0030"])
    engine.put(b"key0040", b"rewritten")  # new version on the new owner
    engine.delete(b"key0044")  # tombstone must broadcast to both owners

    assert engine.get(b"key0040") == b"rewritten"
    assert engine.get(b"key0035") == b"old0035"  # fallback to old owner
    assert engine.get(b"key0044") is None

    rows = dict(engine.scan(b"key0000"))
    assert rows[b"key0040"] == b"rewritten"  # newest owner wins the merge
    assert b"key0044" not in rows  # stranded version stays masked
    assert len(rows) == 99
    assert list(rows) == sorted(rows)
    engine.close()


def test_multi_get_falls_back_through_placement_history():
    part = RangePartitioner([b"key0050"])
    engine = make_engine(shards=2, partitioner=part)
    for i in range(100):
        engine.put(b"key%04d" % i, b"v%04d" % i)
    part.resize([b"key0030"])
    keys = [b"key0035", b"key0010", b"key0070", b"key0040"]
    assert engine.multi_get(keys) == [
        b"v0035", b"v0010", b"v0070", b"v0040"
    ]
    assert engine.metrics()["shard.fallback_reads"] > 0
    engine.close()


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def test_io_summary_schema_and_shard_rows():
    engine = make_engine(shards=3)
    for i in range(150):
        engine.put(b"key%04d" % i, b"v" * 200)
    summary = validate_io_summary(engine.io_summary(), "sharded")
    assert summary["shards"] == 3
    assert len(summary["per_shard"]) == 3
    assert summary["data_seeks"] == sum(
        s["data_seeks"] for s in summary["per_shard"]
    )
    rows = engine.shard_rows()
    assert [row["shard"] for row in rows] == [0, 1, 2]
    assert sum(row["ops"] for row in rows) == 150
    metrics = engine.metrics()
    assert metrics["shard.batches"] == 150
    assert "shard0.disk.hdd-data.busy_seconds" in metrics
    engine.close()


# ----------------------------------------------------------------------
# Acceptance: 4 shards >= 3x one tree on batched uniform reads
# ----------------------------------------------------------------------


def test_four_shards_triple_batched_read_throughput():
    spec = WorkloadSpec(
        record_count=3000,
        operation_count=1500,
        read_proportion=1.0,
        request_distribution="uniform",
        value_bytes=1000,
    )
    tuning = dict(c0_bytes=64 * 1024, buffer_pool_pages=16)

    sharded = make_engine(shards=4, **tuning)
    load_phase(sharded, spec, seed=1, batch_size=64)
    sharded_run = run_batched_workload(sharded, spec, seed=2, batch_size=64)
    sharded.close()

    single = BLSMEngine(small_options(**tuning))
    load_phase(single, spec, seed=1, batch_size=64)
    single_run = run_batched_workload(single, spec, seed=2, batch_size=64)
    single.close()

    assert single_run.throughput > 0
    speedup = sharded_run.throughput / single_run.throughput
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x acceptance bar"
    assert sharded_run.batch is not None
    assert sharded_run.batch.operations == spec.operation_count


# ----------------------------------------------------------------------
# Chunked limit-aware scans
# ----------------------------------------------------------------------


def test_limited_scan_fetches_chunks_not_whole_shards():
    # The chunked fetch asks each shard for ~limit/N rows up front and
    # refills only a shard that runs dry, so a small-limit scan over a
    # big fleet must pull a few dozen rows from the shards — not every
    # row they hold, which is what the old fetch-everything merge did.
    engine = make_engine(shards=4)
    for i in range(800):
        engine.put(b"key-%06d" % i, b"v%06d" % i)

    fetched = {"rows": 0}
    for shard in engine.shards:
        original = shard.scan

        def counting_scan(lo, hi=None, limit=None, _original=original):
            rows = list(_original(lo, hi, limit))
            fetched["rows"] += len(rows)
            return iter(rows)

        shard.scan = counting_scan

    rows = list(engine.scan(b"", None, 8))
    assert [key for key, _ in rows] == [b"key-%06d" % i for i in range(8)]
    # chunk = ceil(8/4) + 1 = 3 per shard up front, plus bounded refills
    # on whichever shard supplies the head run.
    assert fetched["rows"] <= 8 * len(engine.shards), (
        f"limit=8 scan pulled {fetched['rows']} rows from the shards"
    )
    fetched["rows"] = 0
    assert len(list(engine.scan(b""))) == 800
    assert fetched["rows"] == 800  # unlimited scans still read everything
    engine.close()


def test_limited_scan_refills_a_skewed_shard():
    # All matching keys land on one shard of a range fleet: the global
    # limit exceeds the initial per-shard chunk (~limit/N + 1), so the
    # scan must refill that shard repeatedly — and still honour order,
    # the limit, and completeness.
    engine = make_engine(
        shards=4,
        partitioner=RangePartitioner([b"m", b"s", b"x"]),
    )
    for i in range(120):
        engine.put(b"a-%06d" % i, b"v%06d" % i)  # all below b"m": shard 0
    engine.put(b"z-tail", b"last")  # shard 3, beyond the scanned range
    rows = list(engine.scan(b"a-", b"b", 90))
    assert len(rows) == 90
    assert rows == [(b"a-%06d" % i, b"v%06d" % i) for i in range(90)]
    engine.close()


def test_unlimited_scan_streams_every_shard():
    engine = make_engine(shards=3)
    expected = {}
    for i in range(300):
        expected[b"key-%06d" % i] = b"v%06d" % i
    for key, value in expected.items():
        engine.put(key, value)
    assert list(engine.scan(b"")) == sorted(expected.items())
    engine.close()
