"""Edge-case tests across modules."""

import pytest

from repro.baselines import BLSMEngine, PartitionedBLSMEngine
from repro.core import BLSM, BLSMOptions, PartitionedBLSM
from repro.errors import DuplicateKeyError, EngineClosedError
from repro.memtable import MemTable
from repro.records import Record


class TestOptionsValidation:
    def test_watermark_ordering(self):
        with pytest.raises(ValueError):
            BLSMOptions(low_water=0.9, high_water=0.5)
        with pytest.raises(ValueError):
            BLSMOptions(low_water=-0.1)

    def test_r_clamps(self):
        with pytest.raises(ValueError):
            BLSMOptions(min_r=0.5)
        with pytest.raises(ValueError):
            BLSMOptions(min_r=5.0, max_r=2.0)

    def test_scheduler_name(self):
        with pytest.raises(ValueError):
            BLSMOptions(scheduler="wibble")

    def test_c0_bytes_positive(self):
        with pytest.raises(ValueError):
            BLSMOptions(c0_bytes=0)

    def test_compression_ratio_range(self):
        with pytest.raises(ValueError):
            BLSMOptions(compression_ratio=1.5)
        BLSMOptions(compression_ratio=1.0)  # boundary is legal


class TestInsertUnique:
    def test_raises_on_duplicate(self):
        engine = BLSMEngine(BLSMOptions(c0_bytes=8 * 1024))
        engine.insert_unique(b"k", b"v")
        with pytest.raises(DuplicateKeyError) as excinfo:
            engine.insert_unique(b"k", b"w")
        assert excinfo.value.key == b"k"
        assert engine.get(b"k") == b"v"

    def test_works_on_every_engine(self):
        from repro.baselines import BTreeEngine, LevelDBEngine

        for engine in (
            BLSMEngine(BLSMOptions(c0_bytes=8 * 1024)),
            BTreeEngine(buffer_pool_pages=8),
            LevelDBEngine(memtable_bytes=4096, buffer_pool_pages=8),
            PartitionedBLSMEngine(BLSMOptions(c0_bytes=8 * 1024)),
        ):
            engine.insert_unique(b"a", b"1")
            with pytest.raises(DuplicateKeyError):
                engine.insert_unique(b"a", b"2")


class TestEmptyTrees:
    def test_empty_scan(self):
        tree = BLSM(BLSMOptions(c0_bytes=8 * 1024))
        assert list(tree.scan(b"")) == []
        assert list(tree.scan(b"a", b"z", limit=5)) == []

    def test_empty_partitioned_scan(self):
        tree = PartitionedBLSM(BLSMOptions(c0_bytes=8 * 1024))
        assert list(tree.scan(b"")) == []

    def test_drain_and_compact_on_empty(self):
        tree = BLSM(BLSMOptions(c0_bytes=8 * 1024))
        tree.drain()
        tree.compact()
        assert tree.component_sizes()["c2"] == 0

    def test_empty_range_scan(self):
        tree = BLSM(BLSMOptions(c0_bytes=8 * 1024))
        for i in range(10):
            tree.put(b"k%02d" % i, b"v")
        assert list(tree.scan(b"k05", b"k05")) == []  # empty interval
        assert list(tree.scan(b"z")) == []  # past all keys


class TestClosedEngines:
    def test_partitioned_closed(self):
        tree = PartitionedBLSM(BLSMOptions(c0_bytes=8 * 1024))
        tree.close()
        with pytest.raises(EngineClosedError):
            tree.get(b"k")
        with pytest.raises(EngineClosedError):
            list(tree.scan(b""))
        with pytest.raises(EngineClosedError):
            tree.drain()

    def test_scan_generator_created_before_close(self):
        tree = BLSM(BLSMOptions(c0_bytes=8 * 1024))
        tree.put(b"k", b"v")
        scan = tree.scan(b"")  # generator not yet started
        tree.close()
        with pytest.raises(EngineClosedError):
            next(scan)


class TestMemtableCoverage:
    def test_fold_in_memtable_tracks_coverage(self):
        # Log retention depends on folded memtable records carrying the
        # full seqno range of the writes they incorporate.
        table = MemTable(1 << 16)
        table.put(Record.base(b"k", b"v", 5))
        table.put(Record.delta(b"k", b"+1", 8))
        table.put(Record.delta(b"k", b"+2", 11))
        record = table.get(b"k")
        assert record.seqno == 11
        assert record.coverage_start == 5

    def test_superseding_base_resets_coverage(self):
        table = MemTable(1 << 16)
        table.put(Record.base(b"k", b"v", 5))
        table.put(Record.delta(b"k", b"+1", 8))
        table.put(Record.base(b"k", b"fresh", 12))
        assert table.get(b"k").coverage_start == 12


class TestZeroByteValues:
    def test_empty_values_roundtrip_everywhere(self):
        tree = BLSM(BLSMOptions(c0_bytes=4096))
        tree.put(b"empty", b"")
        assert tree.get(b"empty") == b""
        tree.drain()
        assert tree.get(b"empty") == b""
        tree.compact()
        assert tree.get(b"empty") == b""
        assert list(tree.scan(b"")) == [(b"empty", b"")]


class TestHugeRecords:
    def test_record_larger_than_c0(self):
        tree = BLSM(BLSMOptions(c0_bytes=4096, buffer_pool_pages=8))
        big = bytes(20_000)  # bigger than C0 itself
        tree.put(b"big", big)
        assert tree.get(b"big") == big
        tree.drain()
        assert tree.get(b"big") == big
        for i in range(50):
            tree.put(b"small%02d" % i, b"x")
        assert tree.get(b"big") == big
