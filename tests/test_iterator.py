"""Unit tests for k-way merging and record collapsing."""

from repro.records import Record
from repro.sstable import kway_merge, merge_records


def recs(*pairs):
    return [Record.base(k, v, s) for k, v, s in pairs]


def test_merge_disjoint_sources():
    a = recs((b"a", b"1", 10), (b"c", b"3", 11))
    b = recs((b"b", b"2", 1), (b"d", b"4", 2))
    groups = list(kway_merge([iter(a), iter(b)]))
    assert [g[0].key for g in groups] == [b"a", b"b", b"c", b"d"]
    assert all(len(g) == 1 for g in groups)


def test_merge_groups_versions_newest_first():
    newer = recs((b"k", b"new", 10))
    older = recs((b"k", b"old", 1))
    groups = list(kway_merge([iter(newer), iter(older)]))
    assert len(groups) == 1
    assert [r.value for r in groups[0]] == [b"new", b"old"]


def test_merge_three_sources():
    s0 = recs((b"a", b"0", 30))
    s1 = recs((b"a", b"1", 20), (b"b", b"1", 21))
    s2 = recs((b"a", b"2", 10), (b"c", b"2", 11))
    groups = list(kway_merge([iter(s0), iter(s1), iter(s2)]))
    assert [g[0].key for g in groups] == [b"a", b"b", b"c"]
    assert [r.value for r in groups[0]] == [b"0", b"1", b"2"]


def test_merge_empty_sources():
    assert list(kway_merge([])) == []
    assert list(kway_merge([iter([]), iter([])])) == []


def test_merge_records_keeps_newest_base():
    group = recs((b"k", b"new", 10)) + recs((b"k", b"old", 1))
    merged = merge_records(group)
    assert merged.value == b"new"


def test_merge_records_folds_delta_chain():
    group = [
        Record.delta(b"k", b"+2", 3),
        Record.delta(b"k", b"+1", 2),
        Record.base(b"k", b"v", 1),
    ]
    merged = merge_records(group)
    assert merged.is_base
    assert merged.value == b"v+1+2"


def test_merge_records_tombstone_kept_mid_tree():
    group = [Record.tombstone(b"k", 2), Record.base(b"k", b"v", 1)]
    merged = merge_records(group, drop_tombstones=False)
    assert merged is not None and merged.is_tombstone


def test_merge_records_tombstone_dropped_at_bottom():
    group = [Record.tombstone(b"k", 2), Record.base(b"k", b"v", 1)]
    assert merge_records(group, drop_tombstones=True) is None


def test_merge_records_delta_over_tombstone_collapses_to_tombstone():
    group = [
        Record.delta(b"k", b"+1", 3),
        Record.tombstone(b"k", 2),
        Record.base(b"k", b"v", 1),
    ]
    merged = merge_records(group, drop_tombstones=False)
    assert merged is not None and merged.is_tombstone
    # At the bottom level the tombstone (and everything under it) drops.
    assert merge_records(group, drop_tombstones=True) is None


def test_merge_records_delta_after_tombstone_does_not_resurrect():
    # Mid-tree: the folded record must keep shadowing a deeper base.
    group = [Record.delta(b"k", b"+1", 3), Record.tombstone(b"k", 2)]
    merged = merge_records(group, drop_tombstones=False)
    assert merged is not None and merged.is_tombstone
