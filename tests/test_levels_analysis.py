"""Tests for the level-count trade-off model (Section 2.3.1)."""

import math

import pytest

from repro.analysis import (
    level_ratio,
    optimal_levels_for_write,
    read_amplification,
    tradeoff_table,
    write_amplification,
)


def test_level_ratio_is_nth_root():
    assert level_ratio(100, 2) == pytest.approx(10.0)
    assert level_ratio(8, 3) == pytest.approx(2.0)
    assert level_ratio(25, 1) == pytest.approx(25.0)


def test_level_ratio_validation():
    with pytest.raises(ValueError):
        level_ratio(10, 0)
    with pytest.raises(ValueError):
        level_ratio(0.5, 2)


def test_write_amp_falls_then_rises_with_levels():
    # More levels reduce R (cheaper crossings) but add crossings.
    ratio = 10_000.0
    amps = [write_amplification(ratio, n) for n in range(1, 20)]
    best = min(range(len(amps)), key=lambda i: amps[i])
    assert 0 < best < len(amps) - 1  # an interior optimum exists
    assert amps[0] > amps[best]
    assert amps[-1] > amps[best]


def test_optimal_levels_grow_logarithmically():
    # Section 2.3.1: O(N-1 root of data) insert cost; the write-optimal
    # N grows like ln(data/C0).
    small = optimal_levels_for_write(10)
    large = optimal_levels_for_write(100_000)
    assert large > small
    assert large <= 3 * math.log(100_000)


def test_two_levels_vs_many_reads():
    # The paper's three-level choice: with Bloom filters reads are ~1
    # regardless, but scans pay one seek per level (Section 3.3).
    assert read_amplification(2, 0.01) == pytest.approx(1.01)
    assert read_amplification(8, 0.01) == pytest.approx(1.07)
    assert read_amplification(8, None) == 8.0


def test_tradeoff_table_shape():
    rows = tradeoff_table(625, max_levels=4)
    assert [row["levels"] for row in rows] == [1, 2, 3, 4]
    two = rows[1]
    assert two["r"] == pytest.approx(25.0)
    # The paper's design point: 2 on-disk levels -> scans cost 2 seeks,
    # reads ~1 with filters; write amp is higher than the write-optimal
    # deep tree but bounded.
    assert two["scan_seeks"] == 2.0
    assert two["read_amp_bloom"] < 1.05
    deep = rows[-1]
    assert deep["write_amp"] < two["write_amp"]  # deep trees write cheaper
    assert deep["scan_seeks"] > two["scan_seeks"]  # ...and scan worse
