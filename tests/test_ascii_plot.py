"""Tests for ASCII series rendering."""

from repro.ycsb.ascii_plot import render_timeseries, sparkline


def test_empty_series():
    assert sparkline([]) == ""
    assert render_timeseries("x", []) == ["x: (empty)"]


def test_flat_zero_series():
    assert sparkline([0.0, 0.0, 0.0]) == "   "


def test_monotone_series_renders_ramp():
    line = sparkline([0, 1, 2, 3, 4])
    assert line[0] <= line[-1]
    assert line[-1] == "█"


def test_negative_values_clamped():
    line = sparkline([-5.0, 10.0])
    assert line[0] == " "
    assert line[1] == "█"


def test_downsampling_to_width():
    line = sparkline(list(range(1000)), width=40)
    assert len(line) == 40
    assert line[-1] == "█"


def test_no_downsampling_when_short():
    assert len(sparkline([1, 2, 3], width=40)) == 3


def test_render_timeseries_includes_scale():
    lines = render_timeseries("tput", [100.0, 200.0])
    assert "max=200" in lines[0]
    assert "min=100" in lines[0]
    assert len(lines) == 2


def test_pause_is_visible_as_gap():
    line = sparkline([100, 100, 0, 0, 100, 100])
    assert " " in line  # the outage shows as blank columns
    assert line.count("█") >= 4
