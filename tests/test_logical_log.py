"""Unit tests for the logical log and its durability modes."""

import pytest

from repro.sim import DiskModel, SimDisk, VirtualClock
from repro.storage import DurabilityMode, LogicalLog


def make_log(mode, group_bytes=512 * 1024):
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    return LogicalLog(disk, mode, group_commit_bytes=group_bytes)


def test_sync_mode_forces_every_write():
    log = make_log(DurabilityMode.SYNC)
    log.log(0, "put", b"k", b"v")
    assert log.durable_records == 1


def test_async_mode_groups_commits():
    log = make_log(DurabilityMode.ASYNC, group_bytes=200)
    log.log(0, "put", b"k0", b"v" * 50)
    assert log.durable_records == 0  # below the group threshold
    log.log(1, "put", b"k1", b"v" * 150)
    assert log.durable_records == 2  # threshold crossed, both flushed


def test_none_mode_never_logs():
    log = make_log(DurabilityMode.NONE)
    assert log.log(0, "put", b"k", b"v") == 0.0
    log.force()
    assert log.durable_records == 0
    assert log.disk.stats.bytes_written == 0


def test_sync_forces_pay_one_barrier_each():
    # A force is a durability barrier: every forced write repositions
    # (SimDisk.sync_barrier), so per-write syncing pays one access per
    # write — the cost group commit exists to amortize.
    log = make_log(DurabilityMode.SYNC)
    for i in range(5):
        log.log(i, "put", b"k%d" % i, b"v")
    assert log.forces == 5
    assert log.disk.stats.seeks == 5


def test_async_batches_amortize_the_barrier():
    # Unsynced batching pays a single barrier for the whole buffer.
    log = make_log(DurabilityMode.ASYNC)
    for i in range(5):
        log.log(i, "put", b"k%d" % i, b"v")
    log.force()
    assert log.forces == 1
    assert log.disk.stats.seeks == 1


def test_crash_loses_unforced_records():
    log = make_log(DurabilityMode.ASYNC)
    log.log(0, "put", b"k", b"v")
    log.crash()
    assert log.durable_records == 0
    assert list(log.replay()) == []


def test_replay_yields_seqno_order():
    log = make_log(DurabilityMode.SYNC)
    log.log(2, "put", b"b", b"2")
    log.log(1, "put", b"a", b"1")
    seqnos = [record.seqno for record in log.replay()]
    assert seqnos == [1, 2]


def test_truncate_drops_covered_records():
    log = make_log(DurabilityMode.SYNC)
    for i in range(5):
        log.log(i, "put", b"k%d" % i, b"v")
    log.truncate(3)
    assert log.truncated_below == 3
    seqnos = [record.seqno for record in log.replay()]
    assert seqnos == [3, 4]


def test_truncate_never_moves_backwards():
    log = make_log(DurabilityMode.SYNC)
    log.truncate(10)
    log.truncate(5)
    assert log.truncated_below == 10


def test_delete_records_have_no_value():
    log = make_log(DurabilityMode.SYNC)
    log.log(0, "delete", b"k", None)
    record = next(iter(log.replay()))
    assert record.value is None
    assert record.op == "delete"


def test_retain_ranges_keeps_exact_coverage():
    log = make_log(DurabilityMode.SYNC)
    for seqno, key in enumerate([b"a", b"b", b"a", b"c", b"a"]):
        log.log(seqno, "put", key, b"v")
    # Resident: a folded record for 'a' covering [2, 4], nothing else.
    log.retain_ranges({b"a": (2, 4)})
    kept = [(r.key, r.seqno) for r in log.replay()]
    assert kept == [(b"a", 2), (b"a", 4)]


def test_retain_ranges_empty_drops_everything():
    log = make_log(DurabilityMode.SYNC)
    log.log(0, "put", b"a", b"v")
    log.retain_ranges({})
    assert list(log.replay()) == []
    assert log.truncated_below >= 1


def test_retain_ranges_charges_checkpoint_write():
    log = make_log(DurabilityMode.SYNC)
    log.log(0, "put", b"a", b"v")
    written = log.disk.stats.bytes_written
    log.retain_ranges({b"a": (0, 0)})
    assert log.disk.stats.bytes_written > written


def test_retain_ranges_noop_in_none_mode():
    log = make_log(DurabilityMode.NONE)
    assert log.retain_ranges({b"a": (0, 5)}) == 0.0
    assert log.disk.stats.bytes_written == 0


def test_retain_ranges_leaves_pending_alone():
    log = make_log(DurabilityMode.ASYNC)
    log.log(0, "put", b"a", b"v")  # pending, not yet durable
    log.retain_ranges({})
    log.force()
    assert [r.seqno for r in log.replay()] == [0]


def test_replay_charges_read_io():
    log = make_log(DurabilityMode.SYNC)
    log.log(0, "put", b"k", b"v" * 100)
    before = log.disk.stats.bytes_read
    list(log.replay())
    assert log.disk.stats.bytes_read > before
