"""The batched KVEngine surface: WriteBatch, sequential defaults, the
io_summary schema contract, and the batched runner's coalescing rules.

Every engine inherits ``multi_get``/``apply_batch`` defaults, so the
batched YCSB runner drives any engine unchanged; these tests pin the
default semantics the sharded router's overrides must match.
"""

import pytest

from repro.baselines import (
    IO_SUMMARY_KEYS,
    KVEngine,
    WriteBatch,
    build_io_summary,
    validate_io_summary,
)
from repro.engines import ENGINE_NAMES, EngineConfig, build_engine
from repro.sim import VirtualClock
from repro.ycsb import execute_batch
from repro.ycsb.generator import Operation, OpKind


def small_engine(name):
    return build_engine(name, EngineConfig(c0_bytes=32 * 1024, cache_pages=16))


# ----------------------------------------------------------------------
# WriteBatch
# ----------------------------------------------------------------------


def test_write_batch_chaining_and_order():
    batch = WriteBatch().put(b"a", b"1").delete(b"b").apply_delta(b"c", b"+")
    assert len(batch) == 3
    assert bool(batch)
    assert list(batch) == [
        (WriteBatch.PUT, b"a", b"1"),
        (WriteBatch.DELETE, b"b", None),
        (WriteBatch.DELTA, b"c", b"+"),
    ]
    assert "3 ops" in repr(batch)


def test_write_batch_empty_and_extend():
    batch = WriteBatch()
    assert not batch
    assert len(batch) == 0
    other = WriteBatch().put(b"x", b"1")
    batch.extend(other)
    assert list(batch) == [(WriteBatch.PUT, b"x", b"1")]


# ----------------------------------------------------------------------
# Default batched semantics (every engine)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_default_multi_get_matches_sequential_gets(name):
    engine = small_engine(name)
    for i in range(40):
        engine.put(b"key%03d" % i, b"v%03d" % i)
    keys = [b"key%03d" % i for i in (0, 13, 39, 7)] + [b"missing"]
    assert engine.multi_get(keys) == [engine.get(key) for key in keys]
    engine.close()


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_apply_batch_applies_puts_deletes_and_deltas(name):
    engine = small_engine(name)
    engine.put(b"gone", b"old")
    engine.put(b"delta", b"12345678")
    batch = (
        WriteBatch()
        .put(b"new", b"value")
        .delete(b"gone")
        .apply_delta(b"delta", b"ABCD")
    )
    engine.apply_batch(batch)
    assert engine.get(b"new") == b"value"
    assert engine.get(b"gone") is None
    assert engine.get(b"delta") == b"12345678ABCD"  # deltas byte-append
    engine.close()


def test_apply_batch_rejects_unknown_op():
    engine = small_engine("btree")
    with pytest.raises(ValueError, match="unknown batch op"):
        engine.apply_batch([("merge", b"k", b"v")])
    engine.close()


def test_batch_order_preserved_on_same_key():
    engine = small_engine("blsm")
    engine.apply_batch(
        WriteBatch().put(b"k", b"first").delete(b"k").put(b"k", b"last")
    )
    assert engine.get(b"k") == b"last"
    engine.close()


# ----------------------------------------------------------------------
# read_modify_write routing
# ----------------------------------------------------------------------


def test_rmw_uses_put_on_default_engines_and_emits_trace():
    engine = small_engine("blsm")
    engine.put(b"n", b"1")
    result = engine.read_modify_write(b"n", lambda old: b"%d" % (int(old) + 1))
    assert result == b"2"
    assert engine.get(b"n") == b"2"
    events = engine.trace("rmw")
    assert events and events[-1].get("key") == b"n"
    engine.close()


def test_rmw_routes_through_overridden_apply_batch():
    class RecordingEngine(_FakeEngine):
        def __init__(self):
            super().__init__()
            self.batched = []

        def apply_batch(self, batch):
            self.batched.append(list(batch))
            super().apply_batch(batch)

    engine = RecordingEngine()
    engine.put(b"n", b"1")
    engine.read_modify_write(b"n", lambda old: old + b"!")
    assert engine.batched == [[(WriteBatch.PUT, b"n", b"1!")]]
    assert engine.get(b"n") == b"1!"


# ----------------------------------------------------------------------
# io_summary schema contract
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_io_summary_contract_and_seeks(name):
    engine = small_engine(name)
    for i in range(60):
        engine.put(b"key%03d" % i, b"v" * 120)
    engine.get(b"key007")
    summary = validate_io_summary(engine.io_summary(), name)
    assert IO_SUMMARY_KEYS <= summary.keys()
    assert engine.seeks() == int(summary["data_seeks"])
    engine.close()


def test_validate_io_summary_lists_missing_keys():
    with pytest.raises(ValueError) as exc:
        validate_io_summary({"data_seeks": 1}, "broken")
    message = str(exc.value)
    assert "broken" in message
    assert "busy_seconds" in message


def test_build_io_summary_defaults_fg_to_unattributed_busy():
    summary = build_io_summary(
        data_seeks=5,
        data_bytes_read=100,
        data_bytes_written=200,
        log_bytes_written=300,
        busy_seconds=4.0,
        bg_busy_seconds=1.5,
        extra_counter=9,
    )
    assert summary["fg_busy_seconds"] == 2.5
    assert summary["extra_counter"] == 9
    validate_io_summary(summary)


# ----------------------------------------------------------------------
# execute_batch coalescing (read-after-write ordering)
# ----------------------------------------------------------------------


class _FakeEngine(KVEngine):
    """In-memory engine recording which batched calls were made."""

    name = "fake"

    def __init__(self):
        self._clock = VirtualClock()
        self._data = {}
        self.calls = []

    @property
    def clock(self):
        return self._clock

    def get(self, key):
        self.calls.append(("get", key))
        return self._data.get(key)

    def put(self, key, value):
        self._data[key] = value

    def delete(self, key):
        self._data.pop(key, None)

    def scan(self, lo, hi=None, limit=None):
        rows = sorted(
            (k, v)
            for k, v in self._data.items()
            if k >= lo and (hi is None or k < hi)
        )
        yield from rows[:limit]

    def insert_if_not_exists(self, key, value):
        if key in self._data:
            return False
        self._data[key] = value
        return True

    def apply_delta(self, key, delta):
        self._data[key] = self._data.get(key, b"") + delta

    def multi_get(self, keys):
        self.calls.append(("multi_get", tuple(keys)))
        return [self._data.get(key) for key in keys]

    def apply_batch(self, batch):
        ops = list(batch)
        self.calls.append(("apply_batch", tuple(op for op, _, _ in ops)))
        for op, key, value in ops:
            if op == WriteBatch.PUT:
                self.put(key, value)
            elif op == WriteBatch.DELETE:
                self.delete(key)
            else:
                self.apply_delta(key, value)

    def flush(self):
        pass

    def close(self):
        pass

    def io_summary(self):
        return build_io_summary(
            data_seeks=0,
            data_bytes_read=0,
            data_bytes_written=0,
            log_bytes_written=0,
            busy_seconds=0.0,
        )


def _op(kind, key, value=None):
    return Operation(kind=kind, key=key, value=value)


def test_execute_batch_coalesces_runs_without_crossing_boundaries():
    engine = _FakeEngine()
    engine.put(b"a", b"0")
    batch = [
        _op(OpKind.BLIND_WRITE, b"a", b"1"),
        _op(OpKind.BLIND_WRITE, b"b", b"2"),
        _op(OpKind.READ, b"a"),
        _op(OpKind.READ, b"b"),
        _op(OpKind.BLIND_WRITE, b"a", b"3"),
        _op(OpKind.READ, b"a"),
    ]
    execute_batch(engine, batch)
    # Writes flush before the reads that follow them, and the final
    # read observes the later write: coalescing never reorders across
    # a read/write boundary.
    assert engine.calls == [
        ("apply_batch", (WriteBatch.PUT, WriteBatch.PUT)),
        ("multi_get", (b"a", b"b")),
        ("apply_batch", (WriteBatch.PUT,)),
        ("multi_get", (b"a",)),
    ]
    assert engine._data[b"a"] == b"3"


def test_execute_batch_handles_deletes_and_single_ops():
    engine = _FakeEngine()
    engine.put(b"a", b"0")
    engine.put(b"b", b"0")
    batch = [
        _op(OpKind.DELETE, b"a"),
        _op(OpKind.READ, b"a"),
        _op(OpKind.SCAN, b"a"),
        _op(OpKind.READ, b"b"),
    ]
    execute_batch(engine, batch)
    assert b"a" not in engine._data
    kinds = [call[0] for call in engine.calls]
    assert kinds[0] == "apply_batch"  # the delete
    assert "multi_get" in kinds
