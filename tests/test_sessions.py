"""The multi-session open-loop runner (group commit's front door)."""

import pytest

from repro.engines import EngineConfig, build_engine
from repro.ycsb import (
    WorkloadSpec,
    commit_queues,
    load_phase,
    logical_logs,
    run_sessions,
)


def _spec(ops: int = 240, records: int = 120, read: float = 0.25):
    return WorkloadSpec(
        record_count=records,
        operation_count=ops,
        read_proportion=read,
        blind_write_proportion=1.0 - read,
        request_distribution="uniform",
        value_bytes=100,
    )


def _engine(durability: str = "group", **overrides):
    config = EngineConfig(
        c0_bytes=64 * 1024, cache_pages=32, durability=durability
    )
    return build_engine("blsm", config, **overrides)


def _run(durability: str = "group", rate: float = 4000.0, **kwargs):
    spec = kwargs.pop("spec", None) or _spec()
    engine = _engine(durability)
    load_phase(engine, spec, seed=0)
    result = run_sessions(engine, spec, rate, seed=1, **kwargs)
    engine.close()
    return result


def test_sessions_run_is_deterministic():
    first = _run(sessions=4)
    second = _run(sessions=4)
    assert first.summary() == second.summary()


def test_group_commit_beats_sync_on_forces_per_op():
    # The acceptance criterion at bench scale is >= 4x at 8 sessions /
    # 4000 ops/s (gated by the sessions-smoke CI job via BENCH_8.json);
    # here a trimmed config pins the amortization holds at all.
    group = _run("group", sessions=8)
    sync = _run("sync", sessions=8)
    assert sync.forces_per_op == pytest.approx(1.0)
    assert group.forces_per_op < 0.5
    assert sync.forces_per_op / group.forces_per_op >= 2.0
    # Grouping actually happened: some leader covered >= 2 tickets.
    assert any(size >= 2 for size in group.group_sizes)


def test_queueing_measured_separately_from_service():
    # Saturate a sync engine: every write forces (~2.5 ms on the hdd
    # model), so at 4000/s arrivals outrun service and queueing delay
    # must accumulate — while the same offered load under group commit
    # keeps the queue near-empty.
    sync = _run("sync", sessions=8)
    group = _run("group", sessions=8)
    assert sync.queueing.percentile(99.0) > group.queueing.percentile(99.0)
    assert sync.backlog_seconds > 0.0
    # Ack latency is bounded by the leader force cadence, not the whole
    # run: under group commit waiting sessions share forces.
    assert group.ack_latency.count == group.writes


def test_sessions_timeline_covers_the_run():
    result = _run(sessions=4)
    assert result.timeline, "expected at least one timeline window"
    assert all("queue_p99" in window for window in result.timeline)
    assert all("queue_p999" in window for window in result.timeline)
    times = [window["t"] for window in result.timeline]
    assert times == sorted(times)
    assert sum(window["ops"] for window in result.timeline) == result.operations


def test_operation_accounting_is_complete():
    result = _run(sessions=4)
    assert result.operations == result.reads + result.writes
    assert result.operations == _spec().operation_count
    assert result.commits == result.writes
    assert result.achieved_rate > 0.0


def test_arrival_mode_validation():
    spec = _spec(ops=10)
    engine = _engine()
    try:
        with pytest.raises(ValueError):
            run_sessions(engine, spec, 100.0, arrival="bursty")
        with pytest.raises(ValueError):
            run_sessions(engine, spec, -5.0)
        with pytest.raises(ValueError):
            run_sessions(engine, spec, 100.0, sessions=0)
    finally:
        engine.close()


def test_diurnal_arrivals_run_clean():
    result = _run(sessions=4, arrival="diurnal", spec=_spec(ops=160))
    assert result.operations == 160
    assert result.arrival == "diurnal"


def test_helper_discovery_finds_the_stasis_substrate():
    engine = _engine()
    try:
        assert len(commit_queues(engine)) == 1
        assert len(logical_logs(engine)) == 1
    finally:
        engine.close()
    sharded = build_engine(
        "sharded", EngineConfig(c0_bytes=32 * 1024, cache_pages=16), shards=3
    )
    try:
        assert len(commit_queues(sharded)) == 3
        assert len(logical_logs(sharded)) == 3
    finally:
        sharded.close()
    bitcask = build_engine("bitcask", EngineConfig())
    try:
        assert commit_queues(bitcask) == []
        assert logical_logs(bitcask) == []
    finally:
        bitcask.close()
