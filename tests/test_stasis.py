"""Unit tests for the Stasis storage facade."""

import pytest

from repro.errors import RecoveryError
from repro.sim import DiskModel
from repro.storage import DurabilityMode, Stasis
from repro.storage.recovery import recover


def test_default_construction():
    stasis = Stasis()
    assert stasis.page_size == 4096
    assert stasis.clock.now == 0.0


def test_manifest_commit_and_recovery():
    stasis = Stasis()
    stasis.commit_manifest({"version": 1})
    stasis.commit_manifest({"version": 2})
    assert stasis.recover_manifest() == {"version": 2}


def test_recover_without_manifest_raises():
    stasis = Stasis()
    with pytest.raises(RecoveryError):
        stasis.recover_manifest()


def test_crash_preserves_committed_manifest():
    stasis = Stasis()
    stasis.commit_manifest({"version": 1})
    stasis.crash()
    assert stasis.recover_manifest() == {"version": 1}


def test_crash_drops_buffer_pool():
    stasis = Stasis()
    stasis.buffer.put(0, "dirty")
    stasis.crash()
    assert 0 not in stasis.buffer
    assert 0 not in stasis.pagefile


def test_checkpoint_truncates_wal():
    stasis = Stasis()
    for version in range(10):
        stasis.commit_manifest({"version": version})
    stasis.checkpoint_wal()
    records = list(stasis.wal.records())
    assert len(records) == 1
    assert records[0].payload == {"version": 9}
    assert stasis.recover_manifest() == {"version": 9}


def test_wal_stays_bounded_across_many_merges():
    # Without checkpointing, every merge's manifest record would
    # accumulate in the WAL forever; the trees checkpoint at major
    # merges so recovery replay stays bounded.
    import random

    from repro.core import BLSM, BLSMOptions

    tree = BLSM(BLSMOptions(c0_bytes=8 * 1024, buffer_pool_pages=16))
    rng = random.Random(1)
    for i in range(6000):
        tree.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    durable_manifests = sum(1 for _ in tree.stasis.wal.records())
    # Dozens of merges ran; the WAL holds only the records since the
    # last checkpoint, not one per merge since the beginning.
    assert durable_manifests < 40


def test_recover_helper_replays_logical_log():
    stasis = Stasis(durability=DurabilityMode.SYNC)
    stasis.commit_manifest({"version": 1})
    stasis.logical_log.log(0, "put", b"a", b"1")
    stasis.logical_log.log(1, "put", b"b", b"2")
    stasis.crash()
    seen = []
    manifest = recover(stasis, seen.append)
    assert manifest == {"version": 1}
    assert [record.key for record in seen] == [b"a", b"b"]


def test_logs_live_on_separate_device():
    stasis = Stasis()
    stasis.commit_manifest({"v": 1})
    assert stasis.log_disk.stats.bytes_written > 0
    assert stasis.data_disk.stats.bytes_written == 0


def test_io_summary_keys():
    stasis = Stasis(disk_model=DiskModel.ssd())
    summary = stasis.io_summary()
    for key in ("data_seeks", "data_bytes_read", "busy_seconds"):
        assert key in summary
