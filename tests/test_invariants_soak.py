"""Soak tests: long mixed workloads with periodic deep invariant checks.

These run tens of thousands of operations against each engine and
verify structural invariants the unit tests cannot see — version
ordering across levels, space accounting, partition tiling, range
confinement — at multiple points during the run and at the end.
"""

import random

import pytest

from repro.core import BLSM, BLSMOptions, PartitionedBLSM
from repro.testing import check_blsm_invariants, check_partitioned_invariants


@pytest.mark.parametrize("seed", [0, 1])
def test_blsm_soak(seed):
    tree = BLSM(BLSMOptions(c0_bytes=24 * 1024, buffer_pool_pages=32))
    rng = random.Random(seed)
    model: dict[bytes, bytes] = {}
    for i in range(15000):
        action = rng.random()
        key = b"key%06d" % rng.randrange(3000)
        if action < 0.65:
            value = b"v%06d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.80:
            tree.delete(key)
            model.pop(key, None)
        elif action < 0.90 and key in model:
            tree.apply_delta(key, b"+D")
            model[key] += b"+D"
        else:
            assert tree.get(key) == model.get(key)
        if i % 5000 == 4999:
            check_blsm_invariants(tree)
    check_blsm_invariants(tree)
    mismatches = sum(1 for k, v in model.items() if tree.get(k) != v)
    assert mismatches == 0
    assert list(tree.scan(b"")) == sorted(model.items())
    tree.compact()
    check_blsm_invariants(tree)
    assert list(tree.scan(b"")) == sorted(model.items())


@pytest.mark.parametrize("seed", [0, 1])
def test_partitioned_soak(seed):
    tree = PartitionedBLSM(
        BLSMOptions(c0_bytes=24 * 1024, buffer_pool_pages=32),
        max_partition_bytes=48 * 1024,
    )
    rng = random.Random(seed)
    model: dict[bytes, bytes] = {}
    for i in range(15000):
        action = rng.random()
        key = b"key%06d" % rng.randrange(3000)
        if action < 0.7:
            value = b"v%06d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.85:
            tree.delete(key)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
        if i % 5000 == 4999:
            check_partitioned_invariants(tree)
    check_partitioned_invariants(tree)
    assert tree.partition_count > 1
    mismatches = sum(1 for k, v in model.items() if tree.get(k) != v)
    assert mismatches == 0
    assert list(tree.scan(b"")) == sorted(model.items())


def test_blsm_soak_with_all_options_enabled():
    from repro.storage import DurabilityMode

    options = BLSMOptions(
        c0_bytes=24 * 1024,
        buffer_pool_pages=32,
        delta_read_repair=True,
        persist_bloom_filters=True,
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    rng = random.Random(9)
    model: dict[bytes, bytes] = {}
    for i in range(8000):
        action = rng.random()
        key = b"key%06d" % rng.randrange(1500)
        if action < 0.6:
            value = b"v%06d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.75:
            tree.delete(key)
            model.pop(key, None)
        elif action < 0.85 and key in model:
            tree.apply_delta(key, b"+D")
            model[key] += b"+D"
        else:
            assert tree.get(key) == model.get(key)
    check_blsm_invariants(tree)
    # Crash and recover with everything on; contents must survive.
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert sum(1 for k, v in model.items() if recovered.get(k) != v) == 0
    check_blsm_invariants(recovered)
