"""Unit tests for workload specifications."""

import pytest

from repro.errors import WorkloadError
from repro.ycsb import WorkloadSpec, standard_workload
from repro.ycsb.workload import write_ratio_workload


def test_valid_spec():
    spec = WorkloadSpec(
        record_count=100,
        operation_count=100,
        read_proportion=0.6,
        blind_write_proportion=0.4,
    )
    assert spec.write_fraction == pytest.approx(0.4)


def test_proportions_must_sum_to_one():
    with pytest.raises(WorkloadError):
        WorkloadSpec(
            record_count=1, operation_count=1, read_proportion=0.5
        )


def test_load_only_spec_skips_proportion_check():
    spec = WorkloadSpec(record_count=100, operation_count=0)
    assert spec.write_fraction == 0.0


def test_scan_length_validation():
    with pytest.raises(WorkloadError):
        WorkloadSpec(
            record_count=1,
            operation_count=1,
            scan_proportion=1.0,
            scan_length_min=5,
            scan_length_max=2,
        )


def test_negative_counts_rejected():
    with pytest.raises(WorkloadError):
        WorkloadSpec(record_count=-1, operation_count=0)


def test_value_bytes_positive():
    with pytest.raises(WorkloadError):
        WorkloadSpec(record_count=1, operation_count=0, value_bytes=0)


@pytest.mark.parametrize("name", ["a", "b", "c", "d", "e", "f"])
def test_standard_workloads_are_valid(name):
    spec = standard_workload(name, record_count=10, operation_count=10)
    assert spec.record_count == 10


def test_standard_workload_a_mix():
    spec = standard_workload("a", 10, 10)
    assert spec.read_proportion == 0.5
    assert spec.update_proportion == 0.5
    assert spec.request_distribution == "zipfian"


def test_standard_workload_e_scans():
    spec = standard_workload("e", 10, 10)
    assert spec.scan_proportion == 0.95
    assert spec.scan_length_max == 100


def test_unknown_standard_workload():
    with pytest.raises(WorkloadError):
        standard_workload("z", 10, 10)


def test_write_ratio_workload_blind_and_rmw():
    blind = write_ratio_workload(0.3, 10, 10, blind=True)
    assert blind.blind_write_proportion == pytest.approx(0.3)
    assert blind.read_proportion == pytest.approx(0.7)
    rmw = write_ratio_workload(0.3, 10, 10, blind=False)
    assert rmw.update_proportion == pytest.approx(0.3)


def test_write_ratio_bounds():
    with pytest.raises(WorkloadError):
        write_ratio_workload(1.5, 10, 10, blind=True)
