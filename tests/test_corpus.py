"""Replay every trace under tests/corpus/ as a regression suite.

Each corpus file is a minimized (or hand-written) repro of a semantic
corner: once a bug is fixed, its trace lives here forever so the fix
cannot regress even after the fuzz seeds drift.  The files are plain
``repro-trace-v1`` JSON — readable, editable, self-contained.
"""

import os

import pytest

from repro.testing import Trace, replay_corpus_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

CORPUS_FILES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def test_corpus_is_seeded():
    # The corpus ships with at least the three hand-written repros:
    # crash-during-merge, delta-on-deleted-key, cross-shard-batch.
    assert len(CORPUS_FILES) >= 3
    assert "crash-during-merge.json" in CORPUS_FILES
    assert "delta-on-deleted-key.json" in CORPUS_FILES
    assert "cross-shard-batch.json" in CORPUS_FILES


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_trace_replays_clean(name):
    path = os.path.join(CORPUS_DIR, name)
    failures = replay_corpus_file(path)
    assert not failures, f"{name}: " + "; ".join(failures)


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_trace_roundtrips(name):
    # Every corpus file parses, and re-serializing is lossless — the
    # format can evolve only by bumping TRACE_FORMAT, not by silently
    # reinterpreting existing files.
    path = os.path.join(CORPUS_DIR, name)
    trace = Trace.load(path)
    assert len(trace) > 0
    assert Trace.from_json(trace.to_json()).to_json() == trace.to_json()
    assert trace.meta.get("mode") in ("differential", "crash")
