"""Behavioural tests for the LevelDB-like leveled LSM engine."""

import random

import pytest

from repro.baselines import LevelDBEngine
from repro.errors import EngineClosedError


def small_engine(**overrides):
    defaults = dict(
        memtable_bytes=8 * 1024,
        file_bytes=16 * 1024,
        level_base_bytes=32 * 1024,
        buffer_pool_pages=64,
    )
    defaults.update(overrides)
    return LevelDBEngine(**defaults)


def test_put_get_roundtrip():
    engine = small_engine()
    engine.put(b"k", b"v")
    assert engine.get(b"k") == b"v"
    assert engine.get(b"missing") is None


def test_memtable_flush_creates_l0_files():
    engine = small_engine()
    for i in range(200):
        engine.put(b"key%04d" % i, bytes(64))
    assert engine.io_summary()["l0_files"] > 0 or engine._levels


def test_model_equivalence_under_churn():
    engine = small_engine()
    rng = random.Random(6)
    model = {}
    for i in range(4000):
        action = rng.random()
        key = b"key%05d" % rng.randrange(1500)
        if action < 0.75:
            value = b"v%05d" % i
            engine.put(key, value)
            model[key] = value
        elif action < 0.85:
            engine.delete(key)
            model.pop(key, None)
        elif key in model:
            engine.apply_delta(key, b"+D")
            model[key] += b"+D"
    mismatches = sum(1 for k, v in model.items() if engine.get(k) != v)
    assert mismatches == 0


def test_scan_matches_model():
    engine = small_engine()
    rng = random.Random(8)
    model = {}
    for i in range(3000):
        key = b"key%05d" % rng.randrange(1200)
        value = b"v%d" % i
        engine.put(key, value)
        model[key] = value
    expected = sorted(model.items())[:300]
    lo = expected[0][0]
    got = list(engine.scan(lo, limit=300))
    assert got == expected[:300]


def test_levels_form_and_grow():
    engine = small_engine()
    rng = random.Random(9)
    for i in range(6000):
        engine.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    summary = engine.io_summary()
    assert summary["levels"]  # at least L1 exists
    assert engine.level_bytes(1) > 0


def test_reads_probe_multiple_components():
    # Without Bloom filters an absent in-range key probes L0 files and
    # one file per level: O(levels) seeks (Table 1).
    engine = small_engine(buffer_pool_pages=2)
    rng = random.Random(10)
    for i in range(5000):
        engine.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    stats = engine.stasis.data_disk.stats
    before = stats.seeks
    n = 50
    for i in range(n):
        engine.get(b"key%06dx" % rng.randrange(10**6))
    assert (stats.seeks - before) / n > 1.5


def test_l0_stop_trigger_causes_stall():
    engine = small_engine(
        l0_compaction_trigger=2, l0_slowdown_trigger=3, l0_stop_trigger=4,
        compaction_share=0.0,  # starve background work to force the stop
    )
    rng = random.Random(11)
    for i in range(4000):
        engine.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    assert engine.stop_events > 0
    assert engine.stall_seconds > 0


def test_slowdown_trigger_sleeps():
    engine = small_engine(
        l0_compaction_trigger=8,  # compaction hardly ever starts
        l0_slowdown_trigger=2,
        l0_stop_trigger=100,
        compaction_share=0.0,
    )
    rng = random.Random(12)
    for i in range(1500):
        engine.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    assert engine.slowdown_events > 0


def test_tombstones_eventually_collected():
    engine = small_engine()
    for i in range(300):
        engine.put(b"key%03d" % i, bytes(64))
    for i in range(300):
        engine.delete(b"key%03d" % i)
    # Push everything down: repeated filler writes drive compactions.
    for i in range(3000):
        engine.put(b"zz%06d" % i, bytes(64))
    assert engine.get(b"key000") is None
    assert list(engine.scan(b"key", b"kez")) == []


def test_blind_delta_is_zero_seek():
    engine = small_engine()
    engine.put(b"k", b"base")
    seeks = engine.stasis.data_disk.stats.seeks
    engine.apply_delta(b"k", b"+d")
    assert engine.stasis.data_disk.stats.seeks == seeks
    assert engine.get(b"k") == b"base+d"


def test_insert_if_not_exists_works_but_seeks():
    engine = small_engine(buffer_pool_pages=2)
    rng = random.Random(13)
    for i in range(4000):
        engine.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    assert engine.insert_if_not_exists(b"key0000001x", b"v")
    assert not engine.insert_if_not_exists(b"key0000001x", b"w")
    stats = engine.stasis.data_disk.stats
    before = stats.seeks
    engine.insert_if_not_exists(b"key%06dy" % rng.randrange(10**6), b"v")
    assert stats.seeks > before  # the existence check paid real I/O


def test_closed_engine_rejects_operations():
    engine = small_engine()
    engine.close()
    with pytest.raises(EngineClosedError):
        engine.put(b"k", b"v")


def test_compaction_preserves_data_across_many_levels():
    engine = small_engine(memtable_bytes=4 * 1024, file_bytes=8 * 1024,
                          level_base_bytes=16 * 1024)
    model = {}
    rng = random.Random(14)
    for i in range(8000):
        key = b"key%05d" % rng.randrange(4000)
        value = b"v%d" % i
        engine.put(key, value)
        model[key] = value
    assert len(engine.io_summary()["levels"]) >= 2
    sample = rng.sample(sorted(model), 500)
    assert all(engine.get(k) == model[k] for k in sample)
