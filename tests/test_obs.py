"""Tests for the observability core: registry, trace ring, spans, e2e."""

import pytest

from repro.baselines import (
    BitCaskEngine,
    BLSMEngine,
    BTreeEngine,
    LevelDBEngine,
    PartitionedBLSMEngine,
)
from repro.core import BLSMOptions
from repro.obs import (
    EngineRuntime,
    MetricsRegistry,
    TraceRecorder,
    events_within,
    merge_seconds_by_level,
    reconstruct_stalls,
    stall_causes,
    format_summary,
    summarize_trace,
)
from repro.sim import DiskModel, VirtualClock
from repro.ycsb import WorkloadSpec, load_phase, run_workload


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("disk.hdd.seeks")
        second = registry.counter("disk.hdd.seeks")
        assert first is second

    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("x") == pytest.approx(3.5)

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_directions(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fill")
        gauge.set(0.9)
        gauge.set(0.1)
        assert registry.value("fill") == pytest.approx(0.1)

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_value_on_histogram_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        with pytest.raises(TypeError):
            registry.value("lat")

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("missing", default=7.0) == 7.0

    def test_names_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("disk.a.seeks")
        registry.counter("disk.b.seeks")
        registry.gauge("memtable.fill")
        assert registry.names("disk.") == ["disk.a.seeks", "disk.b.seeks"]
        assert "memtable.fill" in registry.names()

    def test_histogram_percentiles_bounded_error(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in [0.001] * 98 + [0.1, 1.0]:
            histogram.observe(value)
        assert histogram.count == 100
        # p50 lands in 0.001's bucket: within one bucket ratio (~12%).
        assert histogram.percentile(50) == pytest.approx(0.001, rel=0.15)
        assert histogram.percentile(100) == pytest.approx(1.0)
        assert histogram.max == pytest.approx(1.0)
        assert histogram.mean == pytest.approx((0.098 + 0.1 + 1.0) / 100)

    def test_histogram_handles_zero_and_overflow(self):
        histogram = MetricsRegistry().histogram("lat", max_value=1.0)
        histogram.observe(0.0)
        histogram.observe(50.0)  # beyond max_value: overflow bucket
        assert histogram.count == 2
        assert histogram.percentile(100) == pytest.approx(50.0)

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 3.0
        assert snapshot["g"] == 0.5
        assert snapshot["h"]["count"] == 1.0
        # Detached: mutating the live registry must not change it.
        registry.counter("c").inc()
        assert snapshot["c"] == 3.0


# ---------------------------------------------------------------------------
# TraceRecorder
# ---------------------------------------------------------------------------


class TestTraceRecorder:
    def test_ring_evicts_oldest_first(self):
        recorder = TraceRecorder(VirtualClock(), capacity=4)
        for i in range(6):
            recorder.emit("tick", n=i)
        retained = recorder.events()
        assert [e.get("n") for e in retained] == [2, 3, 4, 5]
        assert recorder.emitted == 6
        assert recorder.dropped == 2

    def test_events_filters_by_type(self):
        recorder = TraceRecorder(VirtualClock())
        recorder.emit("a")
        recorder.emit("b")
        recorder.emit("a")
        assert len(recorder.events("a")) == 2
        assert len(recorder.events()) == 3

    def test_disabled_recorder_emits_nothing(self):
        recorder = TraceRecorder(VirtualClock())
        recorder.enabled = False
        assert recorder.emit("tick") is None
        assert recorder.events() == []

    def test_clear_resets_dropped(self):
        recorder = TraceRecorder(VirtualClock(), capacity=2)
        for _ in range(5):
            recorder.emit("tick")
        recorder.clear()
        assert recorder.events() == []
        assert recorder.dropped == 0

    def test_events_stamped_with_virtual_time(self):
        clock = VirtualClock()
        recorder = TraceRecorder(clock)
        recorder.emit("first")
        clock.advance(1.5)
        recorder.emit("second")
        first, second = recorder.events()
        assert first.time == pytest.approx(0.0)
        assert second.time == pytest.approx(1.5)

    def test_span_nesting_under_virtual_clock(self):
        clock = VirtualClock()
        recorder = TraceRecorder(clock)
        with recorder.span("outer", cause="x"):
            clock.advance(1.0)
            with recorder.span("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        events = {(e.etype, e.get("span_id")): e for e in recorder.events()}
        outer_begin = events[("outer_begin", 0)]
        inner_begin = events[("inner_begin", 1)]
        inner_end = events[("inner_end", 1)]
        outer_end = events[("outer_end", 0)]
        assert outer_begin.get("parent_id") is None
        assert inner_begin.get("parent_id") == 0
        assert inner_end.get("duration") == pytest.approx(2.0)
        assert outer_end.get("duration") == pytest.approx(3.5)
        assert outer_begin.get("cause") == "x"

    def test_span_closes_on_exception(self):
        recorder = TraceRecorder(VirtualClock())
        with pytest.raises(RuntimeError):
            with recorder.span("work"):
                raise RuntimeError("boom")
        assert len(recorder.events("work_end")) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(VirtualClock(), capacity=0)


# ---------------------------------------------------------------------------
# EngineRuntime
# ---------------------------------------------------------------------------


class TestEngineRuntime:
    def test_owns_clock_metrics_trace(self):
        runtime = EngineRuntime()
        assert runtime.trace.clock is runtime.clock
        runtime.clock.advance(2.0)
        assert runtime.now == pytest.approx(2.0)

    def test_wraps_existing_clock(self):
        clock = VirtualClock()
        clock.advance(1.0)
        runtime = EngineRuntime(clock=clock)
        assert runtime.clock is clock
        assert runtime.now == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Summary helpers
# ---------------------------------------------------------------------------


class TestSummary:
    def _stalling_trace(self):
        clock = VirtualClock()
        recorder = TraceRecorder(clock)
        recorder.emit("memtable_full", fill=1.0)
        with recorder.span("stall", cause="merge_backpressure"):
            clock.advance(0.25)
            recorder.emit("merge_progress", level="c0c1", seconds=0.2)
        clock.advance(1.0)
        recorder.emit("merge_progress", level="c1c2", seconds=0.7)
        return recorder.events()

    def test_reconstruct_stalls_pairs_spans(self):
        stalls = reconstruct_stalls(self._stalling_trace())
        assert len(stalls) == 1
        stall = stalls[0]
        assert stall.cause == "merge_backpressure"
        assert stall.duration == pytest.approx(0.25)
        assert stall.contains(stall.start) and stall.contains(stall.end)

    def test_reconstruct_drops_unpaired_begin(self):
        recorder = TraceRecorder(VirtualClock())
        recorder.emit("stall_begin", span_id=9, cause="x")
        assert reconstruct_stalls(recorder.events()) == []

    def test_events_within_interval(self):
        events = self._stalling_trace()
        (stall,) = reconstruct_stalls(events)
        inside = events_within(events, stall.start, stall.end)
        assert any(e.etype == "merge_progress" for e in inside)
        # The late c1c2 progress event falls outside the stall.
        assert all(e.get("level") != "c1c2" for e in inside)

    def test_stall_causes_ranked(self):
        stalls = reconstruct_stalls(self._stalling_trace())
        (cause, count, seconds) = stall_causes(stalls)[0]
        assert cause == "merge_backpressure"
        assert count == 1
        assert seconds == pytest.approx(0.25)

    def test_merge_seconds_by_level(self):
        seconds = merge_seconds_by_level(self._stalling_trace())
        assert seconds["c0c1"] == pytest.approx(0.2)
        assert seconds["c1c2"] == pytest.approx(0.7)

    def test_format_summary_lines(self):
        lines = format_summary(self._stalling_trace())
        text = "\n".join(lines)
        assert "merge_backpressure" in text
        assert "merge time by level" in text
        assert "c0c1" in text

    def test_summarize_empty_trace(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["stalls"] == []
        assert "none recorded" in "\n".join(format_summary([]))


# ---------------------------------------------------------------------------
# End-to-end: engines emit through one runtime
# ---------------------------------------------------------------------------


def _small_blsm(scheduler: str = "naive") -> BLSMEngine:
    return BLSMEngine(
        BLSMOptions(
            c0_bytes=16 * 1024,
            buffer_pool_pages=16,
            scheduler=scheduler,
        )
    )


def _load(engine, records=300, ops=0, seed=11):
    mix = (
        {"read_proportion": 0.5, "blind_write_proportion": 0.5}
        if ops > 0
        else {}
    )
    spec = WorkloadSpec(
        record_count=records, operation_count=ops, value_bytes=100, **mix
    )
    result = load_phase(engine, spec, seed=seed)
    if ops > 0:
        result = run_workload(engine, spec, seed=seed + 1)
    return result


class TestEndToEnd:
    def test_ycsb_run_emits_disk_merge_memtable_events(self):
        engine = _small_blsm()
        _load(engine)
        assert engine.trace("disk_io"), "disk layer must emit events"
        assert engine.trace("merge_progress"), "merges must emit events"
        assert engine.trace("memtable_full"), "memtable must emit events"
        engine.close()

    def test_memtable_rotation_events_without_snowshovel(self):
        # Snowshoveling drains C0 in place; only the freeze-and-swap
        # path (snowshovel off) rotates memtables.
        engine = BLSMEngine(
            BLSMOptions(
                c0_bytes=16 * 1024,
                buffer_pool_pages=16,
                scheduler="naive",
                snowshovel=False,
            )
        )
        _load(engine)
        rotations = engine.trace("memtable_rotate")
        assert rotations
        assert all(e.get("kind") == "freeze" for e in rotations)
        assert engine.metrics()["memtable.rotations"] == len(rotations)
        engine.close()

    def test_stall_interval_attributed_to_merge_backpressure(self):
        """Acceptance: reconstruct an insert stall from the trace and
        correlate it with memtable-full, merge-progress and disk-busy
        events on one monotonic virtual timeline."""
        engine = _small_blsm(scheduler="naive")
        _load(engine)
        events = engine.trace()
        times = [e.time for e in events]
        assert times == sorted(times), "virtual timestamps are monotonic"
        stalls = reconstruct_stalls(events)
        assert stalls, "the naive scheduler must stall on a full C0"
        assert all(s.cause == "merge_backpressure" for s in stalls)
        stall = max(stalls, key=lambda s: s.duration)
        assert stall.duration > 0
        correlated = events_within(events, stall.start, stall.end)
        etypes = {e.etype for e in correlated}
        assert "memtable_full" in etypes
        assert "merge_progress" in etypes
        assert "disk_io" in etypes
        engine.close()

    def test_stall_metrics_agree_with_trace(self):
        engine = _small_blsm(scheduler="naive")
        _load(engine)
        stalls = reconstruct_stalls(engine.trace())
        metrics = engine.metrics()
        assert metrics["writes.stalls"] == len(stalls)
        histogram = engine.runtime.metrics.get("writes.stall_seconds")
        assert histogram.count == len(stalls)
        assert histogram.sum == pytest.approx(
            sum(s.duration for s in stalls)
        )
        assert metrics["memtable.full_events"] >= len(stalls)
        engine.close()

    def test_spring_gear_emits_backpressure_transitions(self):
        engine = _small_blsm(scheduler="spring_gear")
        _load(engine, records=600)
        engaged = engine.trace("backpressure_engaged")
        assert engaged, "filling C0 must engage the spring"
        assert all(e.get("pressure") > 0 for e in engaged)
        engine.close()

    def test_ycsb_latency_histograms_registered(self):
        engine = _small_blsm()
        result = _load(engine, records=200, ops=100)
        runtime = engine.runtime
        names = runtime.metrics.names("ycsb.latency.")
        assert names, "the runner must register latency histograms"
        total = sum(runtime.metrics.get(n).count for n in names)
        assert total >= 100
        assert result.metrics["ycsb.latency.insert"]["count"] >= 200
        engine.close()

    def test_bloom_metrics_populated(self):
        engine = _small_blsm()
        _load(engine)
        engine.tree.drain()
        assert engine.get(b"__definitely_absent__") is None
        metrics = engine.metrics()
        assert metrics["bloom.negatives"] >= 1
        engine.close()


class TestUniformEngineMetrics:
    """Every engine reports through the same MetricsRegistry API."""

    def _engines(self):
        options = BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=16)
        yield BLSMEngine(options)
        yield PartitionedBLSMEngine(
            BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=16)
        )
        yield BTreeEngine(disk_model=DiskModel.hdd(), buffer_pool_pages=8)
        yield LevelDBEngine(
            disk_model=DiskModel.hdd(),
            memtable_bytes=8 * 1024,
            file_bytes=16 * 1024,
            level_base_bytes=32 * 1024,
            buffer_pool_pages=16,
        )
        yield BitCaskEngine()

    def test_all_engines_expose_runtime_and_disk_metrics(self):
        for engine in self._engines():
            assert engine.runtime is not None, engine.name
            for i in range(40):
                engine.put(b"key%04d" % i, b"v" * 64)
            assert engine.get(b"key0000") is not None
            engine.flush()
            metrics = engine.metrics()
            disk_writes = [
                name
                for name, value in metrics.items()
                if name.startswith("disk.")
                and name.endswith(".bytes_written")
                and not isinstance(value, dict)
                and value > 0
            ]
            assert disk_writes, f"{engine.name} wrote nothing observable"
            engine.close()

    def test_runtime_clock_is_engine_clock(self):
        for engine in self._engines():
            assert engine.runtime.clock is engine.clock, engine.name
            engine.close()
