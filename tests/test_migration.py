"""Crash-safe online shard migration: journal, protocol, recovery.

Covers the tentpole claims of the migration subsystem: every durable
transition is journaled before it takes effect, a crash at any step
recovers to a consistent ownership map, readers never observe staged
rows mid-copy, stale leases are fenced after the switch, and the
rebalancer closes the loop from load metrics to live split/merge plans.
Property tests compose journal fault schedules with in-flight
migrations and interleaved traffic, asserting oracle parity and the
mid-migration structural invariants after recovery.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import random

from repro.baselines import WriteBatch
from repro.core import BLSMOptions
from repro.errors import (
    CrashPoint,
    IOFaultError,
    MigrationError,
    RetryDeadlineError,
    ShardFanoutError,
    StaleOwnerError,
    TransientIOError,
)
from repro.faults import FaultPlan, FaultRule, RetryExecutor, RetryPolicy
from repro.faults.crashpoints import (
    enumerate_migration_crash_points,
    format_migration_report,
)
from repro.shard import (
    HotShardDetector,
    MigrationController,
    MigrationJournal,
    MigrationPlan,
    MigrationThrottle,
    RangePartitioner,
    Rebalancer,
    ShardedEngine,
    attach_migration,
    crash_and_recover,
    live_migration_bench,
    plan_merge,
    plan_split,
    shard_range,
)
from repro.shard.migration import _replay_journal
from repro.sim.clock import VirtualClock
from repro.storage.logical_log import DurabilityMode
from repro.testing import check_sharded_invariants
from repro.testing.differential import default_fuzz_configs, run_trace
from repro.testing.trace import TraceOp, generate_trace


def small_options(**overrides):
    defaults = dict(
        c0_bytes=16 * 1024,
        buffer_pool_pages=16,
        durability=DurabilityMode.SYNC,
    )
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def make_fleet(
    boundaries=(b"key-000060",), shards=2, chunk_keys=8, **overrides
):
    """A range-partitioned fleet with an attached, unthrottled controller."""
    engine = ShardedEngine(
        small_options(**overrides),
        shards=shards,
        partitioner=RangePartitioner(list(boundaries)),
    )
    controller = attach_migration(
        engine, chunk_keys=chunk_keys, throttle=MigrationThrottle(1.0)
    )
    return engine, controller


def key(i):
    return b"key-%06d" % i


def load_keys(engine, count=120, start=0):
    """Batch-load ``count`` sequential keys; returns the model dict."""
    model = {}
    for base in range(start, start + count, 32):
        batch = WriteBatch()
        for i in range(base, min(start + count, base + 32)):
            batch.put(key(i), b"v%06d" % i)
            model[key(i)] = b"v%06d" % i
        engine.apply_batch(batch)
    return model


def verify_model(engine, model):
    assert list(engine.scan(b"")) == sorted(model.items())


def step_until(controller, state, limit=10_000):
    """Step the controller until it reaches ``state``; returns step count."""
    steps = 0
    while controller.state != state:
        controller.step()
        steps += 1
        assert steps < limit, f"never reached state {state!r}"
    return steps


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def test_shard_range_tiles_the_keyspace():
    part = RangePartitioner([b"g", b"p"])
    assert shard_range(part, 0) == (b"", b"g")
    assert shard_range(part, 1) == (b"g", b"p")
    assert shard_range(part, 2) == (b"p", None)


def test_plan_split_interior_donates_upper_half_rightward():
    engine, _ = make_fleet()
    load_keys(engine, 60)  # all on shard 0, below the boundary
    plan = plan_split(engine, 0)
    assert plan is not None
    assert (plan.kind, plan.source, plan.target) == ("split", 0, 1)
    assert plan.lo == key(30) and plan.hi == b"key-000060"
    assert plan.new_boundaries == (key(30),)
    engine.close()


def test_plan_split_last_shard_donates_lower_half_leftward():
    engine, _ = make_fleet()
    load_keys(engine, 60, start=100)  # all on shard 1, above the boundary
    plan = plan_split(engine, 1)
    assert plan is not None
    assert (plan.source, plan.target) == (1, 0)
    assert plan.lo == b"" or plan.lo < plan.hi
    assert plan.new_boundaries == (key(130),)
    engine.close()


def test_plan_split_returns_none_when_unsplittable():
    engine, _ = make_fleet()
    assert plan_split(engine, 0) is None  # empty shard
    assert plan_split(engine, 7) is None  # out of range
    hashed = ShardedEngine(small_options(), shards=2)
    assert plan_split(hashed, 0) is None  # hash partitioner
    engine.close()
    hashed.close()


def test_plan_merge_interior_keeps_a_sliver():
    # Boundaries must stay strictly increasing, so an interior shard
    # cannot donate its entire range: the plan keeps keys below
    # lo + b"\x00" and moves the rest.
    engine, _ = make_fleet(boundaries=(b"g", b"p"), shards=3)
    plan = plan_merge(engine, 1)
    assert plan is not None
    assert (plan.kind, plan.source, plan.target) == ("merge", 1, 2)
    assert plan.lo == b"g\x00" and plan.hi == b"p"
    assert plan.new_boundaries == (b"g", b"g\x00")
    engine.close()


def test_plan_merge_last_shard_cuts_past_its_last_live_key():
    engine, _ = make_fleet()
    load_keys(engine, 10, start=100)  # shard 1
    plan = plan_merge(engine, 1)
    assert plan is not None
    assert (plan.source, plan.target) == (1, 0)
    assert plan.hi == key(109) + b"\x00"
    assert plan.new_boundaries == (key(109) + b"\x00",)
    engine.close()


def test_plan_merge_returns_none_when_degenerate():
    engine, _ = make_fleet()
    assert plan_merge(engine, 1) is None  # last shard with no live keys
    engine.close()


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


def test_journal_force_makes_records_durable_and_charges_time():
    clock = VirtualClock()
    journal = MigrationJournal(clock=clock, force_seconds=1e-3)
    journal.append({"type": "init", "boundaries": [], "epoch": 0})
    journal.append({"type": "plan", "id": 1})
    assert len(journal.records) == 2
    assert journal.forces == 2
    assert clock.now == pytest.approx(2e-3)


def test_journal_crash_drops_only_the_volatile_tail():
    journal = MigrationJournal()
    journal.append({"type": "init"})
    journal._records.append({"type": "plan", "id": 1})  # never forced
    assert journal.crash() == 1
    assert [r["type"] for r in journal.records] == ["init"]
    assert journal.crash() == 0  # idempotent


def test_journal_retries_transient_faults_until_durable():
    plan = FaultPlan(
        [FaultRule(kind="transient", device="migration-journal", every=1, count=2)]
    )
    journal = MigrationJournal(fault_plan=plan)
    journal.append({"type": "init"})
    assert len(journal.records) == 1
    assert plan.fired_by_kind["transient"] == 2


def test_journal_persistent_fault_surfaces_typed():
    plan = FaultPlan(
        [FaultRule(kind="transient", device="migration-journal", every=1)]
    )
    journal = MigrationJournal(fault_plan=plan)
    with pytest.raises(IOFaultError):
        journal.append({"type": "init"})
    assert journal.records == []  # the failed append never became durable


def test_journal_deadline_bounds_persistent_retries():
    plan = FaultPlan(
        [FaultRule(kind="transient", device="migration-journal", every=1)]
    )
    journal = MigrationJournal(
        fault_plan=plan,
        retry_policy=RetryPolicy(
            max_attempts=50, base_backoff_seconds=0.4, deadline_seconds=1.0
        ),
    )
    with pytest.raises(RetryDeadlineError):
        journal.append({"type": "init"})
    # The executor never sleeps past the budget edge.
    assert journal.clock.now <= 1.0 + 50 * journal.force_seconds


def test_journal_crash_fault_kills_the_process_at_the_force():
    plan = FaultPlan([FaultRule(kind="crash", at_access=1, count=1)])
    journal = MigrationJournal(fault_plan=plan)
    with pytest.raises(CrashPoint):
        journal.append({"type": "init"})
    journal.crash()
    assert journal.records == []


def test_replay_journal_reconstructs_each_phase():
    journal = MigrationJournal()
    journal.append({"type": "init", "boundaries": [b"m"], "epoch": 0})
    plan_record = {
        "type": "plan", "id": 3, "kind": "split", "source": 0, "target": 1,
        "lo": b"f", "hi": b"m", "new_boundaries": [b"f"],
    }
    journal.append(plan_record)
    boundaries, previous, epoch, pending, next_id = _replay_journal(journal)
    assert boundaries == [b"m"] and previous is None and epoch == 0
    assert pending is not None and pending[1] == "copy"
    assert pending[0].plan_id == 3 and next_id == 4

    journal.append(
        {"type": "switch", "id": 3, "source": 0, "boundaries": [b"f"], "epoch": 1}
    )
    boundaries, previous, epoch, pending, _ = _replay_journal(journal)
    assert boundaries == [b"f"] and previous == [b"m"] and epoch == 1
    assert pending is not None and pending[1] == "retire"

    journal.append({"type": "prune", "id": 3, "pruned": 1})
    boundaries, previous, epoch, pending, _ = _replay_journal(journal)
    assert boundaries == [b"f"] and previous is None and epoch == 1
    assert pending is None


def test_replay_journal_aborted_plan_leaves_no_pending():
    journal = MigrationJournal()
    journal.append({"type": "init", "boundaries": [b"m"], "epoch": 0})
    journal.append(
        {"type": "plan", "id": 1, "kind": "split", "source": 0, "target": 1,
         "lo": b"f", "hi": b"m", "new_boundaries": [b"f"]}
    )
    journal.append({"type": "abort", "id": 1})
    _, _, _, pending, _ = _replay_journal(journal)
    assert pending is None


# ----------------------------------------------------------------------
# Controller lifecycle
# ----------------------------------------------------------------------


def test_start_rejects_malformed_plans():
    engine, controller = make_fleet(boundaries=(b"g", b"p"), shards=3)

    def plan(**overrides):
        fields = dict(
            plan_id=0, kind="split", source=0, target=1,
            lo=b"c", hi=b"g", new_boundaries=(b"c", b"p"),
        )
        fields.update(overrides)
        return MigrationPlan(**fields)

    with pytest.raises(MigrationError):  # not neighbours
        controller.start(plan(target=2, new_boundaries=(b"c", b"p")))
    with pytest.raises(MigrationError):  # same shard
        controller.start(plan(target=0))
    with pytest.raises(MigrationError):  # out of range
        controller.start(plan(source=5, target=4))
    with pytest.raises(MigrationError):  # empty donated range
        controller.start(plan(lo=b"g", hi=b"g"))
    with pytest.raises(MigrationError):  # wrong boundary count
        controller.start(plan(new_boundaries=(b"c",)))
    assert controller.state == "idle"
    engine.close()


def test_start_rejects_concurrent_migrations():
    engine, controller = make_fleet()
    load_keys(engine, 40)
    first = plan_split(engine, 0)
    controller.start(first)
    with pytest.raises(MigrationError):
        controller.start(plan_split(engine, 0) or first)
    engine.close()


def test_live_split_under_traffic_stays_oracle_correct():
    engine, controller = make_fleet()
    model = load_keys(engine, 120)
    plan = controller.start(plan_split(engine, 0))
    assert plan.plan_id >= 1
    rng = random.Random(7)
    ops = 0
    while controller.active:
        tag = controller.step()
        assert tag != "idle"
        # Interleave foreground traffic into the moving range.
        i = rng.randrange(120)
        if rng.random() < 0.3:
            engine.delete(key(i))
            model.pop(key(i), None)
        else:
            engine.put(key(i), b"w%06d" % ops)
            model[key(i)] = b"w%06d" % ops
        probe = key(rng.randrange(120))
        assert engine.get(probe) == model.get(probe)
        if ops % 8 == 0:
            check_sharded_invariants(engine)
        ops += 1
    assert controller.completed == 1
    assert engine.epoch == 1
    assert engine.partitioner.history_depth == 0
    assert tuple(engine.partitioner.boundaries) == plan.new_boundaries
    verify_model(engine, model)
    check_sharded_invariants(engine)
    engine.close()


def test_split_then_merge_round_trip():
    engine, controller = make_fleet()
    model = load_keys(engine, 80)
    controller.start(plan_split(engine, 0))
    controller.run_to_completion()
    merge = plan_merge(engine, 0)
    assert merge is not None
    controller.start(merge)
    controller.run_to_completion()
    assert controller.completed == 2
    assert engine.epoch == 2
    verify_model(engine, model)
    check_sharded_invariants(engine)
    engine.close()


def test_scan_mask_hides_staged_rows_mid_copy():
    engine, controller = make_fleet(chunk_keys=4)
    model = load_keys(engine, 60)
    controller.start(plan_split(engine, 0))
    # Advance partway through the copy so the target holds staged rows.
    for _ in range(4):
        controller.step()
    assert controller.state == "copy"
    mask = controller.mask_range()
    assert mask is not None and mask[0] == 1
    # Delete a staged key on the source: the target's staged copy must
    # not resurrect it through a scan, even with a limit.
    dead = key(40)
    engine.delete(dead)
    model.pop(dead, None)
    expected = sorted(model.items())
    assert list(engine.scan(b"", None, 10)) == expected[:10]
    assert list(engine.scan(b"")) == expected
    assert engine.get(dead) is None
    controller.run_to_completion()
    verify_model(engine, model)
    engine.close()


def test_catch_up_double_writes_and_requeues_deltas():
    engine, controller = make_fleet(chunk_keys=8)
    load_keys(engine, 60)
    plan = controller.start(plan_split(engine, 0))
    # During copy, mutations of the moving range only mark keys dirty.
    hot = plan.lo
    engine.put(hot, b"during-copy")
    assert hot in controller.dirty_keys()
    step_until(controller, "catch_up")
    # During catch-up a put double-writes and leaves the dirty set...
    engine.put(hot, b"during-catchup")
    assert hot not in controller.dirty_keys()
    staged = engine._on_shard(
        plan.target, lambda s: s.get(hot), "migrate_probe"
    )
    assert staged == b"during-catchup"
    # ...while a delta stays source-only and re-enters it (the target
    # may lack the base version; a staged dangling delta is garbage).
    engine.apply_delta(hot, b"+D")
    assert hot in controller.dirty_keys()
    controller.run_to_completion()
    assert engine.get(hot) == b"during-catchup+D"
    engine.close()


def test_abort_clears_staged_rows_and_allows_restart():
    engine, controller = make_fleet(chunk_keys=4)
    model = load_keys(engine, 60)
    plan = controller.start(plan_split(engine, 0))
    for _ in range(4):
        controller.step()
    controller.abort()
    assert controller.state == "idle"
    staged = engine._on_shard(
        plan.target, lambda s: list(s.scan(plan.lo, plan.hi)), "probe"
    )
    assert staged == []
    verify_model(engine, model)
    # The fleet is reusable: a fresh migration completes normally.
    controller.start(plan_split(engine, 0))
    controller.run_to_completion()
    verify_model(engine, model)
    engine.close()


def test_abort_after_switch_is_rejected():
    engine, controller = make_fleet()
    load_keys(engine, 40)
    controller.start(plan_split(engine, 0))
    step_until(controller, "retire")
    with pytest.raises(MigrationError):
        controller.abort()
    controller.run_to_completion()
    engine.close()


def test_controller_requires_range_partitioner():
    hashed = ShardedEngine(small_options(), shards=2)
    with pytest.raises(MigrationError):
        attach_migration(hashed)
    hashed.close()


# ----------------------------------------------------------------------
# Epoch fencing
# ----------------------------------------------------------------------


def test_stale_lease_is_fenced_after_the_switch():
    engine, controller = make_fleet()
    load_keys(engine, 60)
    moving = key(45)  # upper half of shard 0: donated by the split
    lease = engine.lease(moving)
    lease.put(moving, b"pre-switch")  # valid before the switch
    controller.start(plan_split(engine, 0))
    controller.run_to_completion()
    with pytest.raises(StaleOwnerError):
        lease.put(moving, b"post-switch")
    with pytest.raises(StaleOwnerError):
        lease.delete(moving)
    assert engine.get(moving) == b"pre-switch"
    # A fresh lease sees the new epoch and works.
    engine.lease(moving).put(moving, b"fresh")
    assert engine.get(moving) == b"fresh"
    engine.close()


def test_lease_rejects_rerouted_keys():
    engine, _ = make_fleet()
    lease = engine.lease(key(5))  # shard 0
    with pytest.raises(StaleOwnerError):
        lease.put(key(999999), b"x")  # routes to shard 1
    engine.close()


# ----------------------------------------------------------------------
# Throttle, detector, rebalancer
# ----------------------------------------------------------------------


def test_throttle_validates_fraction():
    with pytest.raises(ValueError):
        MigrationThrottle(0.0)
    with pytest.raises(ValueError):
        MigrationThrottle(1.5)


def test_throttle_defers_only_under_foreground_pressure():
    engine, _ = make_fleet()
    throttle = MigrationThrottle(0.01)
    throttle.begin(engine)
    engine.clock.advance(1.0)
    throttle.charge(0.9)  # way over a 1% share
    # No foreground batches since begin(): migrate at full speed.
    assert not throttle.should_defer(engine)
    engine.put(key(1), b"v")  # foreground arrives
    assert throttle.should_defer(engine)
    # The defer consumed the foreground observation; an idle interval
    # lets migration proceed again.
    assert not throttle.should_defer(engine)
    engine.close()


def test_hot_shard_detector_needs_enough_traffic():
    engine, _ = make_fleet()
    detector = HotShardDetector(engine, min_ops=64)
    for i in range(10):
        engine.put(key(i), b"v")
    assert detector.observe() == []  # too thin to judge
    for i in range(70):
        engine.put(key(i % 40), b"v")
    shares = detector.observe()
    assert shares and shares[0] > 0.9
    engine.close()


def test_rebalancer_splits_the_hot_shard():
    engine, controller = make_fleet()
    load_keys(engine, 80)
    rebalancer = Rebalancer(engine, controller, hot_share=0.5)
    for i in range(80):
        engine.put(key(i % 50), b"hot")  # hammer shard 0
    plan = rebalancer.maybe_rebalance()
    assert plan is not None and plan.kind == "split" and plan.source == 0
    assert controller.active
    # In-flight migration: further calls are no-ops.
    assert rebalancer.maybe_rebalance() is None
    controller.run_to_completion()
    engine.close()


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


def test_crash_mid_copy_restarts_the_copy_from_scratch():
    engine, controller = make_fleet(chunk_keys=4)
    model = load_keys(engine, 60)
    controller.start(plan_split(engine, 0))
    for _ in range(3):
        controller.step()
    assert controller.state == "copy"
    recovered = crash_and_recover(engine)
    assert recovered.migration is not None
    assert recovered.migration.state == "copy"
    assert recovered.epoch == 0  # never switched
    check_sharded_invariants(recovered)
    recovered.migration.run_to_completion()
    assert recovered.migration.completed == 1
    assert recovered.partitioner.history_depth == 0
    verify_model(recovered, model)
    check_sharded_invariants(recovered)
    recovered.close()


def test_crash_after_switch_rolls_forward_through_retire():
    engine, controller = make_fleet(chunk_keys=4)
    model = load_keys(engine, 60)
    plan = controller.start(plan_split(engine, 0))
    step_until(controller, "retire")
    recovered = crash_and_recover(engine)
    assert recovered.migration.state == "retire"
    assert recovered.epoch == 1
    assert recovered._fence_epochs[plan.source] == 1
    # The pre-switch mapping is kept as history so reads still reach the
    # un-retired source copies.
    assert recovered.partitioner.history_depth == 1
    verify_model(recovered, model)
    check_sharded_invariants(recovered)
    recovered.migration.run_to_completion()
    assert recovered.partitioner.history_depth == 0
    verify_model(recovered, model)
    recovered.close()


def test_crash_with_no_migration_in_flight_recovers_idle():
    engine, controller = make_fleet()
    model = load_keys(engine, 40)
    controller.start(plan_split(engine, 0))
    controller.run_to_completion()
    recovered = crash_and_recover(engine)
    assert recovered.migration.state == "idle"
    assert recovered.epoch == 1
    assert recovered.partitioner.history_depth == 0
    verify_model(recovered, model)
    recovered.close()


def test_migration_crash_point_enumeration_is_clean():
    report = enumerate_migration_crash_points(ops=40, seed=0)
    assert report.ok, format_migration_report(report)
    assert report.points_tested > 0
    assert report.crashes_triggered > 0
    assert report.recoveries_verified == report.points_tested


# ----------------------------------------------------------------------
# Resilient fan-out (flush/close aggregate per-shard failures)
# ----------------------------------------------------------------------


class _BoomShard:
    """Wraps a shard so flush/close raise while recording other calls."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def flush(self):
        raise RuntimeError("device on fire")

    def close(self):
        raise RuntimeError("device on fire")


def test_flush_visits_every_shard_and_aggregates_failures():
    engine = ShardedEngine(small_options(), shards=3)
    flushed = []
    for index, shard in enumerate(engine.shards):
        if index != 1:
            shard.flush = (lambda i: lambda orig=shard: flushed.append(i))(index)
    engine.shards[1] = _BoomShard(engine.shards[1])
    with pytest.raises(ShardFanoutError) as excinfo:
        engine.flush()
    assert set(excinfo.value.errors) == {1}
    assert isinstance(excinfo.value.errors[1], RuntimeError)
    assert sorted(flushed) == [0, 2]  # healthy shards still flushed
    engine.shards[1] = engine.shards[1]._inner
    engine.close()


def test_close_closes_every_shard_despite_failures():
    engine = ShardedEngine(small_options(), shards=3)
    closed = []
    for index, shard in enumerate(engine.shards):
        if index != 2:
            shard.close = (
                lambda i, orig: lambda: (closed.append(i), orig())
            )(index, shard.close)
    inner = engine.shards[2]
    engine.shards[2] = _BoomShard(inner)
    with pytest.raises(ShardFanoutError):
        engine.close()
    assert engine._closed  # the engine is closed even after the error
    assert sorted(closed) == [0, 1]  # healthy shards still closed
    inner.close()
    engine.close()  # idempotent: no second raise


def test_prune_placement_history_is_noop_for_hash_partitioning():
    engine = ShardedEngine(small_options(), shards=2)
    assert engine.prune_placement_history() == 0
    engine.close()


# ----------------------------------------------------------------------
# Fuzzer surface
# ----------------------------------------------------------------------


def test_handle_migration_op_without_controller_is_a_noop():
    engine = ShardedEngine(small_options(), shards=2)
    assert engine.handle_migration_op("split") == "no-controller"
    engine.close()


def test_handle_migration_op_drives_a_split_to_completion():
    engine, controller = make_fleet()
    model = load_keys(engine, 60)
    tag = engine.handle_migration_op("split", key(10), budget=4)
    assert controller.active and tag not in ("idle", "no-controller")
    guard = 0
    while controller.active:
        engine.handle_migration_op("step", budget=8)
        guard += 1
        assert guard < 1000
    assert controller.completed == 1
    verify_model(engine, model)
    engine.close()


def test_trace_migrate_op_round_trips_and_validates():
    op = TraceOp.migrate("split", key=b"k", budget=3)
    assert TraceOp.from_dict(op.to_dict()) == op
    with pytest.raises(ValueError):
        TraceOp.migrate("explode")


def test_differential_migrating_config_matches_oracle():
    configs = default_fuzz_configs(
        engines=["sharded"], shards=2, include_faulted=False
    )
    config = next(c for c in configs if c.label == "sharded-range-2")
    trace = generate_trace(400, seed=11, migrate_fraction=0.05)
    assert any(op.kind == "migrate" for op in trace)
    divergence = run_trace(
        config.build(), trace, batched=config.batched, config=config.label
    )
    assert divergence is None, divergence.describe()


# ----------------------------------------------------------------------
# Retry deadline and jitter (the journal's retry substrate)
# ----------------------------------------------------------------------


def test_retry_deadline_raises_typed_error():
    clock = VirtualClock()
    policy = RetryPolicy(
        max_attempts=50, base_backoff_seconds=0.4, deadline_seconds=1.0
    )
    attempts = []

    def always_fails():
        attempts.append(1)
        raise TransientIOError("nope")

    with pytest.raises(RetryDeadlineError) as excinfo:
        RetryExecutor(policy, clock).run(always_fails, "unit")
    assert excinfo.value.what == "unit"
    # Backoffs are capped at the budget edge: the clock never runs past
    # the deadline, and far fewer than max_attempts were issued.
    assert clock.now <= 1.0
    assert 2 < len(attempts) < 50


def test_retry_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(
        max_attempts=2, base_backoff_seconds=1e-3, jitter=0.5
    )

    def run_once(seed):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise TransientIOError("once")

        RetryExecutor(policy, clock, seed=seed).run(flaky)
        return clock.now

    # Bounded by [1 - jitter, 1 + jitter] around the nominal backoff...
    assert 0.5e-3 <= run_once(1) <= 1.5e-3
    # ...deterministic per seed, and actually varying across seeds.
    assert run_once(2) == run_once(2)
    assert len({run_once(seed) for seed in range(8)}) > 1


def test_retry_policy_validates_deadline_and_jitter():
    with pytest.raises(ValueError):
        RetryPolicy(deadline_seconds=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# Bench smoke (the BENCH_7 surface)
# ----------------------------------------------------------------------


def test_live_migration_bench_smoke():
    result = live_migration_bench(
        records=400, batches=24, batch=16, shards=2, windows=4,
        c0_bytes=24 * 1024, cache_pages=16, chunk_keys=32,
    )
    assert result["quiescent"]["verified"]
    assert result["migrating"]["verified"]
    assert result["p99_ratio"] >= 0.0
    migration = result["migrating"]["migration"]
    assert migration["completed"] >= 1
    assert migration["history_depth"] == 0


# ----------------------------------------------------------------------
# Property tests: fault schedules composed with in-flight migrations
# ----------------------------------------------------------------------

settings.register_profile(
    "repro-migration",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-migration")


def _drive_traffic(engine, model, rng, ops):
    """Apply ``ops`` random mutations/reads, model kept in lockstep."""
    for _ in range(ops):
        i = rng.randrange(90)
        roll = rng.random()
        if roll < 0.5:
            value = b"p%06d" % rng.randrange(1 << 20)
            engine.put(key(i), value)
            model[key(i)] = value
        elif roll < 0.7:
            engine.delete(key(i))
            model.pop(key(i), None)
        elif roll < 0.8:
            if key(i) in model:
                engine.apply_delta(key(i), b"+d")
                model[key(i)] += b"+d"
        else:
            assert engine.get(key(i)) == model.get(key(i))


@given(seed=st.integers(0, 2**16), kind=st.sampled_from(["split", "merge"]))
def test_property_migration_under_traffic_keeps_oracle_parity(seed, kind):
    """A live split or merge under random traffic never changes answers,
    and the mid-migration structural invariants hold at every step."""
    engine, controller = make_fleet(chunk_keys=8)
    rng = random.Random(seed)
    model = load_keys(engine, 90)
    planner = plan_split if kind == "split" else plan_merge
    source = 0 if kind == "split" else 1
    plan = planner(engine, source)
    if plan is None:
        engine.close()
        return
    controller.start(plan)
    steps = 0
    while controller.active:
        controller.step()
        _drive_traffic(engine, model, rng, 2)
        if steps % 5 == 0:
            check_sharded_invariants(engine)
        steps += 1
        assert steps < 5000
    assert controller.completed == 1
    assert engine.partitioner.history_depth == 0
    verify_model(engine, model)
    check_sharded_invariants(engine)
    engine.close()


@given(
    crash_access=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_property_journal_crash_recovers_to_consistent_ownership(
    crash_access, seed
):
    """Kill the process at the N-th journal force mid-migration, under
    traffic; recovery must yield a consistent ownership map, full acked
    parity, and a migration that resumes to completion."""
    journal_plan = FaultPlan.crash_at(crash_access, armed=False)
    engine = ShardedEngine(
        small_options(),
        shards=2,
        partitioner=RangePartitioner([b"key-000060"]),
    )
    controller = MigrationController(
        engine,
        journal=MigrationJournal(fault_plan=journal_plan),
        chunk_keys=8,
        throttle=MigrationThrottle(1.0),
    )
    rng = random.Random(seed)
    model = load_keys(engine, 90)
    journal_plan.arm()
    crashed = False
    try:
        plan = plan_split(engine, 0)
        if plan is not None:
            controller.start(plan)
        guard = 0
        while controller.active:
            controller.step()
            _drive_traffic(engine, model, rng, 2)
            guard += 1
            assert guard < 5000
    except CrashPoint:
        crashed = True
    recovered = crash_and_recover(engine)
    # Acked writes all survive (SYNC shards; the journal fault only ever
    # kills the process, it never loses an acknowledged mutation).
    check_sharded_invariants(recovered)
    for k, v in model.items():
        assert recovered.get(k) == v
    resumed = recovered.migration
    assert resumed is not None
    if resumed.active:
        resumed.run_to_completion()
    recovered.prune_placement_history()
    assert recovered.partitioner.history_depth == 0
    verify_model(recovered, model)
    check_sharded_invariants(recovered)
    if crashed:
        assert journal_plan.fired_by_kind.get("crash", 0) >= 1
    recovered.close()


def test_scan_mask_preserves_limits_through_chunked_refills():
    # The chunked scan applies the migration mask as a two-window
    # sub-fetch on the target shard; every limit must see exactly the
    # same prefix the oracle does, mid-copy, including limits that force
    # repeated refills straddling the masked range.
    engine, controller = make_fleet(chunk_keys=4)
    model = load_keys(engine, 120)
    controller.start(plan_split(engine, 0))
    for _ in range(4):
        controller.step()
    assert controller.state == "copy"
    assert controller.mask_range() is not None
    expected = sorted(model.items())
    for limit in (1, 3, 7, 25, 60, 119, 120, 200):
        assert list(engine.scan(b"", None, limit)) == expected[:limit], (
            f"limit={limit} diverged mid-copy"
        )
    lo, hi = key(10), key(90)
    window = [(k, v) for k, v in expected if lo <= k < hi]
    for limit in (5, 17, None):
        got = list(engine.scan(lo, hi, limit))
        want = window if limit is None else window[:limit]
        assert got == want, f"bounded scan limit={limit} diverged mid-copy"
    controller.run_to_completion()
    verify_model(engine, model)
    engine.close()
