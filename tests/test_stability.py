"""Tests for the performance-stability harness (BENCH_9)."""

import json

import pytest

from repro.analysis.stability import (
    bounded_latency_check,
    stability_compare_rules,
    stability_table,
)
from repro.cli import main
from repro.obs.report import load_report, validate_payload
from repro.ycsb.stability import (
    STABILITY_MATRIX,
    run_stability,
    run_stability_matrix,
    stability_report,
)

CONTRAST = ("spring_gear", "gear", "unthrottled")


@pytest.fixture(scope="module")
def matrix_results():
    """One shared contrast run (defaults-scale, ~2s total)."""
    return run_stability_matrix(
        [STABILITY_MATRIX[name] for name in CONTRAST],
        duration_seconds=4.0,
        rate=2000.0,
        sessions=8,
        windows=24,
        records=600,
        seed=0,
    )


def test_matrix_runs_every_config(matrix_results):
    assert [r.config.name for r in matrix_results] == list(CONTRAST)
    for result in matrix_results:
        assert result.sessions.operations == 8000
        assert result.timeline, result.config.name
        assert result.sessions.probes, result.config.name


def test_timeline_has_latency_and_stall_channels(matrix_results):
    for result in matrix_results:
        windows_with_writes = [
            row for row in result.timeline if row.get("write_n", 0) > 0
        ]
        assert windows_with_writes
        row = windows_with_writes[0]
        for key in ("t", "write_p50", "write_p99", "write_p999",
                    "queue_p99", "queue_p999"):
            assert key in row, (result.config.name, key)
        # Stall/backpressure deltas merge into the same rows.
        assert any("stall_count" in r for r in result.timeline)
        assert any("queue_depth" in r for r in result.timeline)


def test_spring_gear_ceiling_strictly_below_unthrottled(matrix_results):
    by_name = {r.config.name: r for r in matrix_results}
    spring = by_name["spring_gear"].write_p999_ceiling
    naive = by_name["unthrottled"].write_p999_ceiling
    assert 0.0 < spring < naive
    assert bounded_latency_check(spring, naive)


def test_unthrottled_baseline_actually_stalls(matrix_results):
    by_name = {r.config.name: r for r in matrix_results}
    assert by_name["unthrottled"].stall_count > 0
    assert by_name["unthrottled"].stall_seconds > 0.0
    assert by_name["spring_gear"].stall_count == 0


def test_stability_report_is_schema_valid(matrix_results):
    report = stability_report(matrix_results, {"seed": 0})
    assert validate_payload(report.to_dict()) == []
    assert report.bench == "stability"
    for name in CONTRAST:
        block = report.value(f"configs.{name}")
        assert block["timeline"]
        assert block["write_p999_ceiling"] > 0
    bounded = report.value("bounded_latency")
    assert bounded["bounded"] is True
    assert bounded["ceiling_ratio"] > 1.0


def test_stability_table_renders(matrix_results):
    report = stability_report(matrix_results, {"seed": 0})
    table = stability_table(report)
    for name in CONTRAST:
        assert name in table
    assert "BOUNDED" in table


def test_compare_rules_track_baseline_configs(matrix_results):
    report = stability_report(matrix_results, {"seed": 0})
    rules = stability_compare_rules(report, tolerance=0.3)
    paths = {rule.path for rule in rules}
    for name in CONTRAST:
        assert f"configs.{name}.write_p999_ceiling" in paths
        assert f"configs.{name}.achieved_rate" in paths
    assert "bounded_latency.ceiling_ratio" in paths
    assert all(rule.tolerance == 0.3 for rule in rules)


def test_single_config_run_has_no_bounded_block():
    result = run_stability(
        STABILITY_MATRIX["spring_gear"],
        duration_seconds=1.0,
        rate=1000.0,
        sessions=4,
        windows=6,
        records=200,
    )
    report = stability_report([result], {})
    assert "bounded_latency" not in report.metrics


# ----------------------------------------------------------------------
# CLI: repro stability / repro report
# ----------------------------------------------------------------------


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_stability_emits_envelope_and_passes_gate(capsys, tmp_path):
    out_path = tmp_path / "BENCH_9.json"
    code, out = run_cli(
        capsys,
        "stability", "--configs", "spring_gear,gear,unthrottled",
        "--json", str(out_path), "--assert-bounded", "--quiet",
    )
    assert code == 0
    assert "BOUNDED" in out
    assert "gates: all passed" in out
    report = load_report(str(out_path))
    assert validate_payload(report.to_dict()) == []
    assert len(report.metrics["configs"]) == 3


def test_cli_stability_rejects_unknown_config(capsys):
    with pytest.raises(SystemExit, match="unknown stability config"):
        main(["stability", "--configs", "warp_drive"])


def test_cli_report_validates_and_compares(capsys, tmp_path):
    out_path = tmp_path / "BENCH_9.json"
    code, _ = run_cli(
        capsys,
        "stability", "--configs", "spring_gear,unthrottled",
        "--duration", "2", "--rate", "1500", "--sessions", "4",
        "--windows", "12", "--json", str(out_path), "--quiet",
    )
    assert code == 0

    code, out = run_cli(capsys, "report", str(out_path))
    assert code == 0
    assert "OK" in out and "bench=stability" in out

    # Identical report → perf gate passes.
    code, out = run_cli(
        capsys, "report", "--compare", str(out_path), str(out_path)
    )
    assert code == 0
    assert "no regressions" in out

    # Planted tail-latency regression → perf gate fails (the self-test
    # proving the CI gate bites on a real degradation).
    payload = json.loads(out_path.read_text())
    block = payload["metrics"]["configs"]["spring_gear"]
    block["write_p999_ceiling"] *= 2.0
    regressed = tmp_path / "BENCH_9.regressed.json"
    regressed.write_text(json.dumps(payload))
    code, out = run_cli(
        capsys, "report", "--compare", str(out_path), str(regressed)
    )
    assert code == 1
    assert "FAIL" in out
    assert "write_p999_ceiling" in out


def test_cli_report_flags_invalid_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"bench": "mystery", "x": 1}')
    code, out = run_cli(capsys, "report", str(bad))
    assert code == 1
    assert "INVALID" in out
