"""Tests for the deterministic multi-device concurrency layer.

Covers the ``busy_until`` queueing semantics on :class:`SimDisk`, the
:class:`Timeline` background-worker model, RAID-0 striping via
:class:`StripedDisk`, and the engine-level acceptance criterion: with a
dedicated log device and background merges, a seeded write-heavy run
shows strictly lower p99 write latency than single-device synchronous
mode at equal-or-higher throughput — deterministically.
"""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.errors import DeviceFullError
from repro.faults import FaultPlan, FaultRule
from repro.obs import EngineRuntime
from repro.sim import DiskModel, SimDisk, StripedDisk, Timeline, VirtualClock
from repro.storage import DurabilityMode

MIB = 1024 * 1024


class TestBusyHorizon:
    def test_foreground_access_on_idle_device_has_no_wait(self):
        clock = VirtualClock()
        disk = SimDisk(DiskModel.hdd(), clock)
        latency = disk.write(0, 1 * MIB)
        expected = DiskModel.hdd().write_access_seconds + (
            1 * MIB / DiskModel.hdd().seq_write_bandwidth
        )
        assert latency == pytest.approx(expected)
        assert clock.now == pytest.approx(expected)
        assert disk.stats.queue_wait_seconds == 0.0
        assert disk.busy_until == pytest.approx(clock.now)

    def test_background_access_leaves_clock_untouched(self):
        clock = VirtualClock()
        disk = SimDisk(DiskModel.hdd(), clock)
        worker = Timeline("merge")
        with clock.running_on(worker):
            latency = disk.write(0, 4 * MIB)
        assert clock.now == 0.0
        assert worker.now == pytest.approx(latency)
        assert disk.busy_until == pytest.approx(latency)
        assert disk.stats.bg_busy_seconds == pytest.approx(latency)

    def test_foreground_queues_behind_background_horizon(self):
        clock = VirtualClock()
        disk = SimDisk(DiskModel.hdd(), clock)
        worker = Timeline("merge")
        with clock.running_on(worker):
            disk.write(0, 4 * MIB)
        horizon = disk.busy_until
        assert horizon > 0.0
        # The next synchronous request, issued at clock time 0, starts
        # only when the device drains: latency = queue wait + service.
        latency = disk.read(8 * MIB, 4096)
        service = DiskModel.hdd().read_access_seconds + (
            4096 / DiskModel.hdd().seq_read_bandwidth
        )
        assert latency == pytest.approx(horizon + service)
        assert clock.now == pytest.approx(horizon + service)
        assert disk.stats.queue_wait_seconds == pytest.approx(horizon)

    def test_wait_and_busy_split_by_requester(self):
        runtime = EngineRuntime()
        disk = SimDisk(DiskModel.hdd(), runtime.clock, runtime=runtime)
        worker = Timeline("merge")
        with runtime.clock.running_on(worker):
            disk.write(0, 2 * MIB)
        disk.read(4 * MIB, 4096)
        metrics = runtime.metrics
        bg = metrics.value(f"disk.{disk.name}.bg_busy_seconds")
        fg = metrics.value(f"disk.{disk.name}.fg_busy_seconds")
        wait = metrics.value(f"disk.{disk.name}.fg_wait_seconds")
        assert bg > 0.0 and fg > 0.0
        assert bg + fg == pytest.approx(
            metrics.value(f"disk.{disk.name}.busy_seconds")
        )
        assert wait == pytest.approx(bg)  # queued behind the whole merge

    def test_device_summary_reports_utilization_and_backlog(self):
        runtime = EngineRuntime()
        disk = SimDisk(DiskModel.hdd(), runtime.clock, runtime=runtime)
        worker = Timeline("merge")
        with runtime.clock.running_on(worker):
            disk.write(0, 2 * MIB)
        rows = runtime.device_summary()
        assert len(rows) == 1
        row = rows[0]
        # Clock never moved, so the window is the device horizon and the
        # device was busy for all of it (minus nothing — one access).
        assert row["utilization"] == pytest.approx(1.0)
        assert row["backlog_seconds"] == pytest.approx(disk.busy_until)
        assert row["bg_busy_seconds"] > 0.0
        assert row["fg_busy_seconds"] == pytest.approx(0.0)


class TestTimeline:
    def test_monotone_advance(self):
        timeline = Timeline("w")
        assert timeline.advance_to(2.0) == 2.0
        assert timeline.advance_to(1.0) == 2.0  # never moves back
        assert timeline.now == 2.0

    def test_catch_up_and_busy(self):
        clock = VirtualClock()
        timeline = Timeline("w")
        clock.advance(5.0)
        assert not timeline.busy(clock)
        assert timeline.catch_up(clock) == 5.0
        timeline.advance_to(7.5)
        assert timeline.busy(clock)
        assert timeline.lag(clock) == pytest.approx(2.5)
        clock.advance_to(8.0)
        assert not timeline.busy(clock)
        assert timeline.lag(clock) == 0.0

    def test_running_on_nests_and_restores(self):
        clock = VirtualClock()
        outer, inner = Timeline("outer"), Timeline("inner")
        assert clock.active_timeline is None
        with clock.running_on(outer):
            assert clock.active_timeline is outer
            with clock.running_on(inner):
                assert clock.active_timeline is inner
            assert clock.active_timeline is outer
        assert clock.active_timeline is None


class TestStripedDisk:
    def test_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            StripedDisk(DiskModel.hdd_member(), clock, stripes=1)
        with pytest.raises(ValueError):
            StripedDisk(DiskModel.hdd_member(), clock, stripes=2, chunk_bytes=0)

    def test_split_round_robin(self):
        clock = VirtualClock()
        disk = StripedDisk(
            DiskModel.hdd_member(), clock, stripes=2, chunk_bytes=4096
        )
        # Four logical chunks deal 0,1,0,1 across the two members, each
        # landing at the member offset of its stripe row.
        runs = disk._split(0, 16384)
        assert runs == [
            (0, 0, 4096),
            (1, 0, 4096),
            (0, 4096, 4096),
            (1, 4096, 4096),
        ]
        # A misaligned access touches only the chunks it covers.
        assert disk._split(6144, 4096) == [(1, 2048, 2048), (0, 4096, 2048)]

    def test_sequential_bandwidth_scales_with_stripes(self):
        model = DiskModel.hdd_member()
        clock_one = VirtualClock()
        single = SimDisk(model, clock_one)
        clock_two = VirtualClock()
        striped = StripedDisk(model, clock_two, stripes=2, chunk_bytes=512 * 1024)
        single_latency = single.write(0, 8 * MIB)
        striped_latency = striped.write(0, 8 * MIB)
        # Both members stream half the bytes in parallel.
        assert striped_latency < 0.6 * single_latency

    def test_completion_is_slowest_member(self):
        clock = VirtualClock()
        disk = StripedDisk(
            DiskModel.hdd_member(), clock, stripes=3, chunk_bytes=4096
        )
        disk.write(0, 10 * 4096)
        assert disk.busy_until == pytest.approx(
            max(member.busy_until for member in disk.members)
        )
        assert clock.now == pytest.approx(disk.busy_until)

    def test_members_not_double_registered(self):
        runtime = EngineRuntime()
        disk = StripedDisk(
            DiskModel.hdd_member(),
            runtime.clock,
            stripes=2,
            runtime=runtime,
            name="data",
        )
        assert runtime.disks == [disk]
        assert [m.name for m in disk.members] == ["data.m0", "data.m1"]

    def test_capacity_enforced_on_logical_space(self):
        clock = VirtualClock()
        disk = StripedDisk(
            DiskModel.hdd_member(),
            clock,
            stripes=2,
            chunk_bytes=4096,
            capacity_bytes=64 * 1024,
        )
        disk.write(0, 64 * 1024)
        with pytest.raises(DeviceFullError):
            disk.write(64 * 1024, 1)

    def test_byte_totals_match_logical_access(self):
        clock = VirtualClock()
        disk = StripedDisk(
            DiskModel.hdd_member(), clock, stripes=2, chunk_bytes=4096
        )
        disk.write(1024, 3 * 4096)
        assert disk.stats.bytes_written == 3 * 4096
        assert (
            sum(m.stats.bytes_written for m in disk.members) == 3 * 4096
        )


def _write_heavy_run(options, n_ops=4000, seed=11):
    """Seeded write-heavy workload; per-op latency is the clock delta."""
    tree = BLSM(options)
    clock = tree.stasis.clock
    rng = random.Random(seed)
    latencies = []
    for i in range(n_ops):
        key = ("user%07d" % rng.randrange(2500)).encode()
        value = bytes(rng.randrange(256, 512))
        before = clock.now
        tree.put(key, value)
        latencies.append(clock.now - before)
    elapsed = clock.now
    summary = tree.stasis.io_summary()
    tree.close()
    return latencies, elapsed, summary


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


class TestBackgroundMergeAcceptance:
    """ISSUE acceptance: separate log device + background merges beat
    single-device synchronous mode on p99 write latency at equal or
    higher throughput, reproducibly."""

    SYNC = dict(
        c0_bytes=64 * 1024,
        scheduler="spring_gear",
        durability=DurabilityMode.SYNC,
    )
    OVERLAPPED = dict(
        c0_bytes=64 * 1024,
        scheduler="spring_gear",
        durability=DurabilityMode.SYNC,
        background_merges=True,
        log_disk_model=DiskModel.hdd(),
    )

    def test_p99_and_throughput_improve(self):
        sync_lat, sync_elapsed, _ = _write_heavy_run(BLSMOptions(**self.SYNC))
        bg_lat, bg_elapsed, bg_summary = _write_heavy_run(
            BLSMOptions(**self.OVERLAPPED)
        )
        assert _p99(bg_lat) < _p99(sync_lat)
        sync_throughput = len(sync_lat) / sync_elapsed
        bg_throughput = len(bg_lat) / bg_elapsed
        assert bg_throughput >= sync_throughput
        # The win comes from actually overlapping merge I/O.
        assert bg_summary["bg_busy_seconds"] > 0.0

    def test_same_seed_runs_are_identical(self):
        first = _write_heavy_run(BLSMOptions(**self.OVERLAPPED))
        second = _write_heavy_run(BLSMOptions(**self.OVERLAPPED))
        assert first[0] == second[0]  # every single latency
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_io_summary_reports_attribution(self):
        _, _, summary = _write_heavy_run(
            BLSMOptions(**self.OVERLAPPED), n_ops=1500
        )
        for key in (
            "fg_busy_seconds",
            "bg_busy_seconds",
            "fg_wait_seconds",
            "data_utilization",
            "log_utilization",
        ):
            assert key in summary
        assert 0.0 <= summary["data_utilization"] <= 1.0
        assert 0.0 <= summary["log_utilization"] <= 1.0


class TestEngineIntegration:
    def test_striped_data_device_runs_and_helps_merges(self):
        base = BLSMOptions(c0_bytes=128 * 1024)
        striped = BLSMOptions(c0_bytes=128 * 1024, data_stripes=2)
        _, base_elapsed, _ = _write_heavy_run(base, n_ops=2000)
        _, striped_elapsed, _ = _write_heavy_run(striped, n_ops=2000)
        # Merge I/O streams from both members in parallel.
        assert striped_elapsed < base_elapsed

    def test_fault_injection_rejected_on_striped_data(self):
        plan = FaultPlan(
            [FaultRule(kind="transient", probability=0.5)], seed=3
        )
        with pytest.raises(ValueError):
            BLSMOptions(data_stripes=2, fault_plan=plan)

    def test_recovery_with_background_merges(self):
        options = BLSMOptions(
            c0_bytes=64 * 1024,
            background_merges=True,
            log_disk_model=DiskModel.single_hdd(),
        )
        tree = BLSM(options)
        rng = random.Random(4)
        model = {}
        for i in range(1200):
            key = b"k%06d" % rng.randrange(400)
            value = b"v%06d" % i
            tree.put(key, value)
            model[key] = value
        tree.drain()
        stasis = tree.stasis
        stasis.crash()
        recovered = BLSM.recover(stasis, options)
        mismatches = {
            k: (v, recovered.get(k))
            for k, v in model.items()
            if recovered.get(k) != v
        }
        assert not mismatches
        # The recovered tree keeps merging on background timelines.
        for i in range(800):
            recovered.put(b"post%05d" % i, b"x" * 100)
        recovered.drain()
        assert recovered.get(b"post00000") == b"x" * 100
        recovered.close()

    def test_drain_completes_with_background_merges(self):
        options = BLSMOptions(
            c0_bytes=64 * 1024, background_merges=True
        )
        tree = BLSM(options)
        for i in range(1500):
            tree.put(b"key%06d" % (i % 500), b"y" * 120)
        tree.drain()
        assert tree.c0_fill_fraction == pytest.approx(0.0, abs=1e-9)
        tree.close()
