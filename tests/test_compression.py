"""Tests for Rose-style compression (Section 6)."""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.records import Record
from repro.sstable import SSTableBuilder
from repro.storage import DurabilityMode, Stasis


def test_builder_rejects_bad_ratio():
    stasis = Stasis()
    with pytest.raises(ValueError):
        SSTableBuilder(stasis, tree_id=1, compression_ratio=0.0)
    with pytest.raises(ValueError):
        SSTableBuilder(stasis, tree_id=1, compression_ratio=1.5)


def test_options_reject_bad_ratio():
    with pytest.raises(ValueError):
        BLSMOptions(compression_ratio=0.0)


def test_compressed_component_uses_fewer_pages():
    tables = {}
    for ratio in (1.0, 0.5):
        stasis = Stasis()
        builder = SSTableBuilder(
            stasis, tree_id=1, expected_keys=200, compression_ratio=ratio
        )
        for i in range(200):
            builder.add(Record.base(b"key%04d" % i, b"v" * 500, i))
        tables[ratio] = builder.finish()
    assert tables[0.5].npages < tables[1.0].npages
    assert tables[0.5].nbytes < tables[1.0].nbytes


def test_compressed_values_read_back_intact():
    stasis = Stasis()
    builder = SSTableBuilder(
        stasis, tree_id=1, expected_keys=100, compression_ratio=0.3
    )
    for i in range(100):
        builder.add(Record.base(b"key%04d" % i, b"payload-%04d" % i, i))
    table = builder.finish()
    for i in range(100):
        assert table.get(b"key%04d" % i).value == b"payload-%04d" % i
    assert len(list(table.iter_records())) == 100


def test_compression_reduces_merge_io():
    written = {}
    for ratio in (1.0, 0.5):
        tree = BLSM(
            BLSMOptions(
                c0_bytes=32 * 1024,
                buffer_pool_pages=32,
                compression_ratio=ratio,
            )
        )
        rng = random.Random(4)
        for i in range(3000):
            tree.put(b"key%06d" % rng.randrange(10**6), bytes(200))
        tree.drain()
        written[ratio] = tree.stasis.data_disk.stats.bytes_written
    assert written[0.5] < 0.75 * written[1.0]


def test_compressed_tree_is_model_correct():
    tree = BLSM(
        BLSMOptions(
            c0_bytes=16 * 1024, buffer_pool_pages=32, compression_ratio=0.4
        )
    )
    rng = random.Random(5)
    model = {}
    for i in range(3000):
        key = b"key%05d" % rng.randrange(1500)
        value = b"v%05d" % i
        tree.put(key, value)
        model[key] = value
    assert all(tree.get(k) == v for k, v in model.items())
    assert list(tree.scan(b"")) == sorted(model.items())


def test_compressed_tree_survives_crash():
    options = BLSMOptions(
        c0_bytes=16 * 1024,
        compression_ratio=0.5,
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    model = {}
    for i in range(1500):
        key = b"key%05d" % (i % 700)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert all(recovered.get(k) == v for k, v in model.items())
