"""Tests for operation-trace recording and replay."""

import io

import pytest

from repro.baselines import BLSMEngine
from repro.core import BLSMOptions
from repro.ycsb import WorkloadSpec
from repro.ycsb.generator import Operation, OpKind
from repro.ycsb.trace import (
    read_trace,
    record_workload_trace,
    replay_trace,
    write_trace,
)


def spec():
    return WorkloadSpec(
        record_count=100,
        operation_count=400,
        read_proportion=0.4,
        blind_write_proportion=0.3,
        insert_proportion=0.1,
        scan_proportion=0.1,
        delete_proportion=0.1,
        value_bytes=50,
    )


def test_roundtrip_preserves_operations():
    ops = [
        Operation(OpKind.READ, b"key\x00\xff"),
        Operation(OpKind.BLIND_WRITE, b"k", b"value\x01"),
        Operation(OpKind.SCAN, b"start", scan_length=7),
        Operation(OpKind.DELETE, b"gone"),
        Operation(OpKind.INSERT, b"new", b""),
    ]
    buffer = io.StringIO()
    assert write_trace(ops, buffer) == 5
    buffer.seek(0)
    assert list(read_trace(buffer)) == ops


def test_record_and_replay_matches_live_run():
    buffer = io.StringIO()
    count = record_workload_trace(spec(), buffer, seed=3)
    assert count == 400

    def engine():
        e = BLSMEngine(BLSMOptions(c0_bytes=16 * 1024, buffer_pool_pages=16))
        from repro.ycsb import load_phase

        load_phase(e, spec(), seed=3)
        return e

    live = engine()
    from repro.ycsb import run_workload

    live_result = run_workload(live, spec(), seed=3)
    replayed = engine()
    buffer.seek(0)
    ops, stats = replay_trace(replayed, buffer)
    assert ops == 400
    # Identical operation streams produce identical end states...
    assert list(replayed.scan(b"")) == list(live.scan(b""))
    # ... and identical total device time.
    assert stats.count == live_result.all_latencies().count


def test_blank_lines_and_comments_skipped():
    buffer = io.StringIO("# a comment\n\nread\t6b\n")
    ops = list(read_trace(buffer))
    assert ops == [Operation(OpKind.READ, b"k")]


def test_malformed_lines_rejected():
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("bogus-kind\t6b\n")))
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("read\tzz-not-hex\n")))
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("blind_write\t6b\n")))  # no value
    with pytest.raises(ValueError):
        list(read_trace(io.StringIO("scan\t6b\n")))  # no length


def test_trace_file_roundtrip(tmp_path):
    path = tmp_path / "workload.trace"
    with open(path, "w") as handle:
        record_workload_trace(spec(), handle, seed=9)
    engine = BLSMEngine(BLSMOptions(c0_bytes=16 * 1024))
    with open(path) as handle:
        ops, stats = replay_trace(engine, handle)
    assert ops == 400
    assert stats.count == 400
