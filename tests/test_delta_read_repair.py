"""Tests for delta read-repair (Section 5.6's optimization)."""

import random

from repro.core import BLSM, BLSMOptions
from repro.storage import DurabilityMode


def repairing_tree(**overrides):
    defaults = dict(
        c0_bytes=64 * 1024, buffer_pool_pages=16, delta_read_repair=True
    )
    defaults.update(overrides)
    return BLSM(BLSMOptions(**defaults))


def test_repair_preserves_value():
    tree = repairing_tree()
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.drain()
    tree.apply_delta(b"k", b"+2")
    assert tree.get(b"k") == b"base+1+2"
    assert tree.get(b"k") == b"base+1+2"  # repaired read agrees


def test_repair_installs_base_in_c0():
    tree = repairing_tree()
    tree.put(b"k", b"base")
    tree.compact()  # base in C2
    tree.apply_delta(b"k", b"+1")
    tree.drain()  # delta in C1 (a different component); C0 empty
    assert tree._memtable.get(b"k") is None
    assert tree.get(b"k") == b"base+1"
    repaired = tree._memtable.get(b"k")
    assert repaired is not None and repaired.is_base
    assert repaired.value == b"base+1"


def test_second_read_skips_disk():
    tree = repairing_tree(buffer_pool_pages=2)
    tree.put(b"k", b"base")
    tree.compact()
    tree.apply_delta(b"k", b"+1")
    tree.drain()
    tree.get(b"k")  # repairs
    seeks = tree.stasis.data_disk.stats.seeks
    assert tree.get(b"k") == b"base+1"
    assert tree.stasis.data_disk.stats.seeks == seeks  # served from C0


def test_no_repair_for_plain_base_reads():
    tree = repairing_tree()
    tree.put(b"k", b"v")
    tree.drain()
    assert tree.get(b"k") == b"v"
    assert tree._memtable.get(b"k") is None  # nothing to repair


def test_repair_disabled_by_default():
    tree = BLSM(BLSMOptions(c0_bytes=64 * 1024))
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.drain()
    assert tree.get(b"k") == b"base+1"
    assert tree._memtable.get(b"k") is None


def test_repair_survives_subsequent_writes():
    tree = repairing_tree()
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.drain()
    tree.get(b"k")  # repair lands in C0
    tree.apply_delta(b"k", b"+2")  # newer delta folds onto the repair
    assert tree.get(b"k") == b"base+1+2"


def test_repair_is_crash_safe():
    # The repair is derived data and not logged: after a crash the
    # original base + delta chain still resolves identically.
    options = BLSMOptions(
        c0_bytes=64 * 1024,
        delta_read_repair=True,
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    tree.drain()
    assert tree.get(b"k") == b"base+1"  # repairs into C0 (unlogged)
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert recovered.get(b"k") == b"base+1"


def test_partitioned_repair_matches_model():
    from repro.core import PartitionedBLSM

    tree = PartitionedBLSM(
        BLSMOptions(
            c0_bytes=16 * 1024, buffer_pool_pages=16, delta_read_repair=True
        ),
        max_partition_bytes=32 * 1024,
    )
    tree.put(b"k", b"base")
    tree.drain()
    tree.apply_delta(b"k", b"+1")
    assert tree.get(b"k") == b"base+1"
    repaired = tree._memtable.get(b"k")
    assert repaired is not None and repaired.is_base
    assert tree.get(b"k") == b"base+1"


def test_repair_under_random_workload_matches_model():
    tree = repairing_tree()
    rng = random.Random(6)
    model = {}
    for i in range(4000):
        key = b"k%04d" % rng.randrange(500)
        action = rng.random()
        if action < 0.5:
            value = b"v%d" % i
            tree.put(key, value)
            model[key] = value
        elif action < 0.8 and key in model:
            tree.apply_delta(key, b"+D")
            model[key] += b"+D"
        else:
            assert tree.get(key) == model.get(key)
    assert all(tree.get(k) == v for k, v in model.items())
