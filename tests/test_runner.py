"""Tests for the closed-loop YCSB runner."""

import pytest

from repro.baselines import BLSMEngine, BTreeEngine
from repro.core import BLSMOptions
from repro.ycsb import WorkloadSpec, load_phase, run_workload
from repro.ycsb.generator import Operation, OpKind
from repro.ycsb.runner import execute


def blsm(**overrides):
    defaults = dict(c0_bytes=64 * 1024, buffer_pool_pages=32)
    defaults.update(overrides)
    return BLSMEngine(BLSMOptions(**defaults))


def spec_with(**overrides):
    defaults = dict(
        record_count=300,
        operation_count=600,
        read_proportion=0.5,
        blind_write_proportion=0.5,
        value_bytes=100,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def test_load_phase_populates_engine():
    engine = blsm()
    spec = spec_with()
    result = load_phase(engine, spec)
    assert result.operations == 300
    # Spot-check a loaded key via the generator's own naming.
    from repro.ycsb.generator import make_key

    assert engine.get(make_key(0, ordered=False)) is not None


def test_run_workload_executes_all_ops():
    engine = blsm()
    spec = spec_with()
    load_phase(engine, spec)
    result = run_workload(engine, spec)
    assert result.operations == 600
    assert result.elapsed_seconds > 0
    assert result.throughput > 0


def test_latencies_split_by_kind():
    engine = blsm()
    spec = spec_with()
    load_phase(engine, spec)
    result = run_workload(engine, spec)
    assert OpKind.READ in result.latencies
    assert OpKind.BLIND_WRITE in result.latencies
    pooled = result.all_latencies()
    assert pooled.count == 600


def test_timeseries_collection():
    engine = blsm()
    spec = spec_with()
    load_phase(engine, spec)
    result = run_workload(engine, spec, timeseries_window=0.01)
    assert result.timeseries is not None
    assert sum(w.ops for w in result.timeseries.windows) == 600


def test_io_delta_reported():
    engine = blsm()
    spec = spec_with()
    load_phase(engine, spec)
    result = run_workload(engine, spec)
    assert result.io["data_seeks"] >= 0


def test_summary_shape():
    engine = blsm()
    spec = spec_with(operation_count=10)
    load_phase(engine, spec)
    summary = run_workload(engine, spec).summary()
    assert summary["engine"] == "bLSM"
    assert summary["operations"] == 10


def test_bulk_load_path():
    engine = BTreeEngine(buffer_pool_pages=64)
    spec = WorkloadSpec(
        record_count=200, operation_count=0, ordered_inserts=True,
        value_bytes=100,
    )
    result = load_phase(engine, spec, use_bulk_load=True)
    assert result.operations == 200
    from repro.ycsb.generator import make_key

    assert engine.get(make_key(5, ordered=True)) is not None


def test_bulk_load_requires_support():
    engine = blsm()
    spec = WorkloadSpec(record_count=10, operation_count=0)
    with pytest.raises(ValueError):
        load_phase(engine, spec, use_bulk_load=True)


def test_check_exists_load_uses_iine():
    engine = blsm()
    spec = spec_with(check_exists_on_insert=True)
    load_phase(engine, spec)
    from repro.ycsb.generator import make_key

    assert engine.get(make_key(10, ordered=False)) is not None


def test_execute_each_kind():
    engine = blsm()
    engine.put(b"k", b"v")
    execute(engine, Operation(OpKind.READ, b"k"))
    execute(engine, Operation(OpKind.BLIND_WRITE, b"k", b"v2"))
    execute(engine, Operation(OpKind.UPDATE, b"k", b"v3"))
    execute(engine, Operation(OpKind.RMW, b"k", b"v4"))
    execute(engine, Operation(OpKind.INSERT, b"k2", b"w"))
    execute(engine, Operation(OpKind.SCAN, b"k", scan_length=2))
    execute(engine, Operation(OpKind.DELETE, b"k"))
    assert engine.get(b"k") is None
    assert engine.get(b"k2") == b"w"


def test_concurrency_inflates_latency_not_throughput():
    # The paper's 128 unthrottled workers saturate a serial device:
    # throughput is unchanged, latency multiplies with queue depth.
    results = {}
    for workers in (1, 16):
        engine = blsm(buffer_pool_pages=4)
        spec = spec_with(read_proportion=1.0, blind_write_proportion=0.0)
        load_phase(engine, spec, seed=4)
        engine.tree.compact()
        results[workers] = run_workload(
            engine, spec, seed=4, concurrency=workers
        )
    assert results[16].throughput == pytest.approx(
        results[1].throughput, rel=0.01
    )
    p50_1 = results[1].all_latencies().percentile(50)
    p50_16 = results[16].all_latencies().percentile(50)
    assert p50_16 > 8 * p50_1


def test_hundreds_of_ms_latency_at_paper_concurrency():
    # Section 5.1: "with hard disks, this setup leads to latencies in
    # the 100's of milliseconds across all three systems".
    engine = blsm(buffer_pool_pages=4, c0_bytes=16 * 1024)
    spec = spec_with(
        record_count=600,
        operation_count=600,
        read_proportion=1.0,
        blind_write_proportion=0.0,
    )
    load_phase(engine, spec, seed=5)
    engine.tree.compact()
    result = run_workload(engine, spec, seed=5, concurrency=128)
    assert 0.05 < result.all_latencies().percentile(50) < 2.0


def test_invalid_concurrency_rejected():
    engine = blsm()
    with pytest.raises(ValueError):
        run_workload(engine, spec_with(), concurrency=0)


def test_deterministic_runs():
    results = []
    for _ in range(2):
        engine = blsm()
        spec = spec_with()
        load_phase(engine, spec, seed=3)
        results.append(run_workload(engine, spec, seed=3).elapsed_seconds)
    assert results[0] == results[1]
