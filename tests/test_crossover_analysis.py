"""Unit tests for the update-in-place/log-structured crossover model."""

import pytest

from repro.analysis import (
    crossover_object_bytes,
    crossover_table,
    log_structured_write_seconds,
    update_in_place_write_seconds,
)
from repro.sim import DiskModel


def test_update_in_place_cost_is_two_seeks_plus_transfer():
    model = DiskModel.single_hdd()
    cost = update_in_place_write_seconds(1000, model)
    assert cost == pytest.approx(
        2 * 5e-3 + 2 * 1000 / model.seq_write_bandwidth
    )


def test_log_structured_cost_is_amplified_bandwidth():
    model = DiskModel.single_hdd()
    cost = log_structured_write_seconds(1000, model, write_amplification=10)
    assert cost == pytest.approx(10 * 1000 / model.seq_write_bandwidth)


def test_section22_arithmetic():
    # §2.2: a 1000-byte update-in-place write has amplification ~1000
    # relative to one sequential copy on the single-HDD model.
    model = DiskModel.single_hdd()
    uip = update_in_place_write_seconds(1000, model)
    one_copy = 1000 / model.seq_write_bandwidth
    assert uip / one_copy == pytest.approx(1000, rel=0.1)


def test_costs_cross_at_the_crossover():
    model = DiskModel.hdd()
    wa = 8.0
    size = crossover_object_bytes(model, wa)
    below = int(size / 2)
    above = int(size * 2)
    assert log_structured_write_seconds(
        below, model, wa
    ) < update_in_place_write_seconds(below, model)
    assert log_structured_write_seconds(
        above, model, wa
    ) > update_in_place_write_seconds(above, model)


def test_low_amplification_never_crosses():
    assert crossover_object_bytes(DiskModel.hdd(), 1.5) == float("inf")


def test_invalid_amplification():
    with pytest.raises(ValueError):
        log_structured_write_seconds(100, DiskModel.hdd(), 0.5)


def test_crossover_shrinks_with_amplification():
    model = DiskModel.hdd()
    assert crossover_object_bytes(model, 32) < crossover_object_bytes(model, 8)


def test_table_shape():
    rows = crossover_table([4.0, 8.0])
    assert len(rows) == 3
    names = [name for name, _, _ in rows]
    assert "hdd" in names and "ssd" in names
    for _, access, sizes in rows:
        assert access > 0
        assert len(sizes) == 2
