"""Leader-based group commit: queue mechanics and the crash matrix.

Covers the :class:`~repro.storage.group_commit.GroupCommitQueue` unit
surface (leader election, follower acknowledgement, amortization
accounting, crash semantics) and the ALICE-style crash matrix over the
GROUP commit path — every force boundary with partially drained commit
groups, verified prefix-consistent after recovery.
"""

import pytest

from repro.core.options import BLSMOptions
from repro.core.tree import BLSM
from repro.faults.crashpoints import enumerate_group_commit_crash_points
from repro.storage.logical_log import DurabilityMode
from repro.testing.differential import default_fuzz_configs


def _group_tree(**overrides) -> BLSM:
    options = BLSMOptions(
        c0_bytes=64 * 1024,
        buffer_pool_pages=16,
        durability=DurabilityMode.GROUP,
        **overrides,
    )
    return BLSM(options)


def _batch(serial: int, ops: int = 1):
    return [
        ("put", b"key-%06d" % (serial * 10 + i), b"value-%06d" % serial)
        for i in range(ops)
    ]


# ---------------------------------------------------------------------------
# Queue mechanics
# ---------------------------------------------------------------------------


def test_single_commit_elects_itself_leader():
    tree = _group_tree()
    ticket = tree.write_batch(_batch(0, ops=2), session=3)
    assert ticket.leader
    assert ticket.durable
    assert ticket.group_size == 1
    assert ticket.session == 3
    assert ticket.durable_lsn >= ticket.last_seqno
    tree.close()


def test_stacked_submits_form_a_group():
    # The first wait=False submit finds the log writer idle and forces
    # alone; everything submitted while that force is in flight stacks
    # into the next group — one force acknowledges all of them together.
    tree = _group_tree()
    queue = tree.stasis.group_commit
    tickets = [
        tree.write_batch(_batch(serial), wait=False) for serial in range(6)
    ]
    leader_alone, stacked = tickets[0], tickets[1:]
    assert leader_alone.leader and leader_alone.group_size == 1
    assert all(not t.durable for t in stacked)
    queue.wait(stacked[-1])
    assert all(t.durable for t in stacked)
    # One leader, the rest followers, all sharing one force's outcome.
    assert sum(1 for t in stacked if t.leader) == 1
    assert {t.group_size for t in stacked} == {len(stacked)}
    assert {t.durable_at for t in stacked} == {stacked[0].durable_at}
    assert {t.durable_lsn for t in stacked} == {stacked[0].durable_lsn}
    assert queue.group_sizes.get(len(stacked)) == 1
    tree.close()


def test_followers_inherit_durability_ordering():
    # Acked tickets form a seqno-prefix: a resolved ticket's durable LSN
    # covers every earlier ticket's records too.
    tree = _group_tree()
    tickets = [
        tree.write_batch(_batch(serial, ops=2), wait=False)
        for serial in range(8)
    ]
    tree.stasis.group_commit.drain()
    for ticket in tickets:
        assert ticket.durable
        assert ticket.durable_lsn >= ticket.last_seqno
    durable_ats = [t.durable_at for t in tickets]
    assert durable_ats == sorted(durable_ats)
    tree.close()


def test_group_commit_amortizes_forces():
    tree = _group_tree()
    queue = tree.stasis.group_commit
    for serial in range(20):
        tree.write_batch(_batch(serial), wait=False)
    queue.drain()
    assert queue.commits == 20
    assert queue.forces < queue.commits
    assert queue.forces_per_commit < 1.0
    assert queue.pending == 0
    tree.close()


def test_empty_commit_range_rejected():
    tree = _group_tree()
    with pytest.raises(ValueError):
        tree.stasis.group_commit.submit(5, 4, 1)
    tree.close()


def test_crash_abandons_unacked_tickets():
    tree = _group_tree()
    queue = tree.stasis.group_commit
    acked = tree.write_batch(_batch(0))
    # The first wait=False submit forces alone on the idle log writer;
    # the next two arrive while that force is in flight and stay queued.
    first = tree.write_batch(_batch(1), wait=False)
    stuck = [
        tree.write_batch(_batch(serial), wait=False) for serial in (2, 3)
    ]
    assert queue.pending == len(stuck)
    tree.stasis.crash()
    assert queue.pending == 0
    assert acked.durable and first.durable
    # Unacked tickets stay unresolved forever: the process died before
    # any force covered them.
    assert all(not t.durable for t in stuck)


def test_wait_charges_queueing_delay_to_the_clock():
    tree = _group_tree()
    clock = tree.stasis.clock
    tree.write_batch(_batch(0))
    ticket = tree.write_batch(_batch(1), wait=False)
    before = clock.now
    tree.stasis.group_commit.wait(ticket)
    assert ticket.durable_at is not None
    assert clock.now >= ticket.durable_at
    assert clock.now >= before
    assert ticket.queue_delay >= 0.0
    tree.close()


# ---------------------------------------------------------------------------
# Crash matrix + fuzz coverage
# ---------------------------------------------------------------------------


def test_group_commit_crash_matrix():
    # Kill the GROUP commit path at every 2nd device access; recovery
    # must be prefix-consistent and no shorter than the acked tickets.
    report = enumerate_group_commit_crash_points(batches=40, every=2)
    assert report.crashes_triggered > 0
    assert report.recoveries_verified == report.crashes_triggered
    assert report.ok, [outcome.detail for outcome in report.failures]


def test_fuzz_matrix_includes_group_commit_config():
    labels = {config.label for config in default_fuzz_configs()}
    assert "blsm-group" in labels
