"""Tests for the shared bench-report envelope, gates and perf gate."""

import json
from pathlib import Path

import pytest

from repro.obs.report import (
    SCHEMA,
    VERSION,
    BenchReport,
    CompareRule,
    Gate,
    ReportError,
    compare_reports,
    comparison_passed,
    evaluate_gates,
    format_comparison,
    format_gate_table,
    gates_passed,
    load_report,
    metric_value,
    new_report,
    upgrade_legacy,
    validate_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def sample_report() -> BenchReport:
    return new_report(
        "demo",
        {"seed": 7, "rate": 1000.0},
        {
            "group": {"forces_per_commit": 0.2, "queueing": {"p99": 0.004}},
            "force_ratio": 5.5,
        },
    )


# ----------------------------------------------------------------------
# Envelope round-trip and validation
# ----------------------------------------------------------------------


def test_envelope_round_trip(tmp_path):
    report = sample_report()
    payload = report.to_dict()
    assert payload["schema"] == SCHEMA
    assert payload["version"] == VERSION
    assert validate_payload(payload) == []
    again = BenchReport.from_dict(payload)
    assert again.bench == report.bench
    assert again.config == report.config
    assert again.metrics == report.metrics

    path = tmp_path / "demo.json"
    report.save(str(path))
    loaded = load_report(str(path))
    assert loaded.metrics == report.metrics
    assert loaded.meta.get("git_rev")


def test_validation_rejects_bad_payloads():
    assert validate_payload({"schema": "nope", "version": 1, "bench": "x"})
    assert validate_payload(
        {"schema": SCHEMA, "version": VERSION + 1, "bench": "x"}
    )
    assert validate_payload({"schema": SCHEMA, "version": VERSION})
    assert validate_payload(
        {"schema": SCHEMA, "version": VERSION, "bench": "x", "metrics": []}
    )
    with pytest.raises(ReportError):
        BenchReport.from_dict({"schema": "nope", "version": 1, "bench": "x"})


def test_metric_value_dotted_paths():
    report = sample_report()
    assert report.value("force_ratio") == 5.5
    assert report.value("group.queueing.p99") == 0.004
    assert report.value("group.missing", default=None) is None
    with pytest.raises(KeyError, match="missing"):
        metric_value(report.metrics, "group.missing.deeper")


# ----------------------------------------------------------------------
# Legacy snapshots (the committed BENCH_6/7/8 files)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name, bench",
    [
        ("BENCH_6.json", "compaction-policy-sweep"),
        ("BENCH_7.json", "live-migration"),
        ("BENCH_8.json", "sessions-group-commit"),
    ],
)
def test_legacy_snapshots_load(name, bench):
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not committed")
    report = load_report(str(path))
    assert report.bench == bench
    assert report.meta.get("legacy") is True
    assert report.config
    assert report.metrics


def test_legacy_policy_list_becomes_dict():
    report = upgrade_legacy(
        {
            "bench": "compaction-policy-sweep",
            "config": {"records": 10},
            "policies": [
                {"policy": "leveled", "write_amp": 3.0},
                {"policy": "tiered", "write_amp": 1.5},
            ],
            "crossover": {},
        }
    )
    assert report.value("policies.tiered.write_amp") == 1.5


def test_legacy_migration_config_split():
    report = upgrade_legacy(
        {
            "bench": "live-migration",
            "records": 2400,
            "shards": 4,
            "seed": 0,
            "p99_ratio": 0.9,
            "quiescent": {"read_p99": 0.001},
        }
    )
    assert report.config["records"] == 2400
    assert "records" not in report.metrics
    assert report.value("p99_ratio") == 0.9


def test_unrecognized_legacy_raises():
    with pytest.raises(ReportError):
        upgrade_legacy({"bench": "mystery-bench", "x": 1})


# ----------------------------------------------------------------------
# Declarative gates
# ----------------------------------------------------------------------


def test_gates_pass_and_fail():
    report = sample_report()
    results = evaluate_gates(
        report,
        [
            Gate("force ratio", "force_ratio", ">=", 4.0, unit="x"),
            Gate("forces/commit", "group.forces_per_commit", "<=", 0.25),
            Gate("queue p99", "group.queueing.p99", "<=", 0.001,
                 scale=1e3, unit="ms"),
        ],
    )
    assert [r.passed for r in results] == [True, True, False]
    assert not gates_passed(results)
    table = "\n".join(format_gate_table(results))
    assert "PASS" in table and "FAIL" in table
    assert "1 of 3 FAILED" in table


def test_missing_gate_metric_fails_not_passes():
    report = sample_report()
    results = evaluate_gates(
        report, [Gate("ghost", "no.such.metric", ">=", 1.0)]
    )
    assert not results[0].passed
    assert "no.such.metric" in results[0].error


def test_non_numeric_gate_metric_fails():
    report = sample_report()
    results = evaluate_gates(report, [Gate("block", "group", ">=", 1.0)])
    assert not results[0].passed
    assert "not numeric" in results[0].error


def test_unknown_gate_op_rejected():
    with pytest.raises(ValueError):
        Gate("bad", "x", "!=", 1.0)


# ----------------------------------------------------------------------
# Baseline comparison (the CI perf gate)
# ----------------------------------------------------------------------


def comparable(p999: float, rate: float) -> BenchReport:
    return new_report(
        "stability",
        {"seed": 0},
        {
            "configs": {
                "spring_gear": {
                    "write_p999_ceiling": p999,
                    "achieved_rate": rate,
                }
            }
        },
    )


RULES = [
    CompareRule("configs.spring_gear.write_p999_ceiling", "lower", 0.25),
    CompareRule("configs.spring_gear.achieved_rate", "higher", 0.25),
]


def test_identical_reports_pass():
    rows = compare_reports(comparable(0.02, 2000.0), comparable(0.02, 2000.0), RULES)
    assert comparison_passed(rows)
    assert "no regressions" in "\n".join(format_comparison(rows))


def test_planted_tail_latency_regression_fails():
    # The self-test the CI perf gate rests on: a 50% p99.9 degradation
    # must trip the 25%-tolerance gate.
    rows = compare_reports(comparable(0.02, 2000.0), comparable(0.03, 2000.0), RULES)
    assert not comparison_passed(rows)
    failed = [row for row in rows if not row.passed]
    assert failed[0].rule.path == "configs.spring_gear.write_p999_ceiling"
    assert failed[0].change == pytest.approx(0.5)


def test_planted_throughput_regression_fails():
    rows = compare_reports(comparable(0.02, 2000.0), comparable(0.02, 1000.0), RULES)
    assert not comparison_passed(rows)


def test_improvement_passes():
    rows = compare_reports(comparable(0.02, 2000.0), comparable(0.01, 3000.0), RULES)
    assert comparison_passed(rows)


def test_bench_mismatch_fails():
    other = new_report("sessions-group-commit", {}, {})
    rows = compare_reports(comparable(0.02, 2000.0), other, RULES)
    assert not comparison_passed(rows)
    assert "mismatch" in rows[0].error


def test_metric_missing_from_current_fails():
    current = new_report("stability", {}, {"configs": {}})
    rows = compare_reports(comparable(0.02, 2000.0), current, RULES)
    assert not comparison_passed(rows)


def test_zero_baseline_tolerates_zero_and_flags_growth():
    base = new_report("stability", {}, {"lat": 0.0})
    same = new_report("stability", {}, {"lat": 0.0})
    worse = new_report("stability", {}, {"lat": 0.5})
    rule = [CompareRule("lat", "lower", 0.25)]
    assert comparison_passed(compare_reports(base, same, rule))
    assert not comparison_passed(compare_reports(base, worse, rule))


def test_compare_rule_validation():
    with pytest.raises(ValueError):
        CompareRule("x", "sideways")
    with pytest.raises(ValueError):
        CompareRule("x", "lower", tolerance=-0.1)
