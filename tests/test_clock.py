"""Unit tests for the virtual clock."""

import pytest

from repro.sim import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now == pytest.approx(1.75)


def test_advance_returns_new_time():
    clock = VirtualClock()
    assert clock.advance(2.0) == pytest.approx(2.0)


def test_advance_zero_is_allowed():
    clock = VirtualClock()
    clock.advance(0.0)
    assert clock.now == 0.0


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_repr_mentions_time():
    clock = VirtualClock()
    clock.advance(1.0)
    assert "1.0" in repr(clock)
