"""Unit tests for the record model and version resolution."""

import pytest

from repro.records import (
    RECORD_HEADER_BYTES,
    Record,
    RecordKind,
    apply_delta,
    fold,
    resolve,
)


def test_constructors_and_kinds():
    base = Record.base(b"k", b"v", 1)
    delta = Record.delta(b"k", b"d", 2)
    tomb = Record.tombstone(b"k", 3)
    assert base.is_base and not base.is_delta
    assert delta.is_delta
    assert tomb.is_tombstone and tomb.value == b""


def test_nbytes_includes_header():
    record = Record.base(b"abc", b"xyzw", 0)
    assert record.nbytes == RECORD_HEADER_BYTES + 3 + 4


def test_apply_delta_appends():
    assert apply_delta(b"base", b"+d") == b"base+d"


def test_resolve_single_base():
    assert resolve([Record.base(b"k", b"v", 1)]) == b"v"


def test_resolve_tombstone_is_none():
    assert resolve([Record.tombstone(b"k", 5)]) is None


def test_resolve_deltas_fold_onto_base_in_order():
    versions = [
        Record.delta(b"k", b"+2", 3),  # newest first
        Record.delta(b"k", b"+1", 2),
        Record.base(b"k", b"v", 1),
    ]
    assert resolve(versions) == b"v+1+2"


def test_resolve_stops_at_tombstone_under_deltas():
    versions = [
        Record.delta(b"k", b"+1", 3),
        Record.tombstone(b"k", 2),
        Record.base(b"k", b"v", 1),
    ]
    assert resolve(versions) is None


def test_resolve_dangling_delta_is_none():
    assert resolve([Record.delta(b"k", b"+1", 1)]) is None


def test_resolve_empty_is_none():
    assert resolve([]) is None


def test_fold_base_supersedes():
    newer = Record.base(b"k", b"new", 2)
    older = Record.base(b"k", b"old", 1)
    assert fold(newer, older) == newer


def test_fold_tombstone_supersedes():
    newer = Record.tombstone(b"k", 2)
    older = Record.base(b"k", b"old", 1)
    assert fold(newer, older).is_tombstone


def test_fold_delta_onto_base_gives_base():
    folded = fold(Record.delta(b"k", b"+d", 2), Record.base(b"k", b"v", 1))
    assert folded.is_base
    assert folded.value == b"v+d"
    assert folded.seqno == 2


def test_fold_delta_onto_delta_stays_delta():
    folded = fold(Record.delta(b"k", b"+2", 3), Record.delta(b"k", b"+1", 2))
    assert folded.is_delta
    assert folded.value == b"+1+2"


def test_fold_delta_onto_tombstone_stays_tombstone():
    # The deletion must keep shadowing older versions in deeper
    # components; a fold that kept only the delta would let reads walk
    # past it and resurrect an older base.
    folded = fold(Record.delta(b"k", b"+d", 2), Record.tombstone(b"k", 1))
    assert folded.is_tombstone
    assert folded.seqno == 2


def test_fold_tracks_coverage():
    base = Record.base(b"k", b"v", 5)
    assert base.coverage_start == 5
    folded = fold(Record.delta(b"k", b"+1", 6), base)
    assert folded.coverage_start == 5
    folded = fold(Record.delta(b"k", b"+2", 9), folded)
    assert folded.coverage_start == 5
    assert folded.seqno == 9
    # A superseding base resets coverage to itself.
    newer = fold(Record.base(b"k", b"fresh", 12), folded)
    assert newer.coverage_start == 12


def test_fold_replay_duplicate_is_noop():
    older = Record.base(b"k", b"v+d", 7, first_seqno=5)
    duplicate = Record.delta(b"k", b"+d", 7)
    assert fold(duplicate, older) is older


def test_resolve_skips_deltas_already_in_base():
    # A replayed delta with seqno <= the base's is already incorporated.
    versions = [
        Record.delta(b"k", b"+d", 7),
        Record.base(b"k", b"v+d", 7, first_seqno=5),
    ]
    assert resolve(versions) == b"v+d"


def test_fold_mismatched_keys_rejected():
    with pytest.raises(ValueError):
        fold(Record.base(b"a", b"", 2), Record.base(b"b", b"", 1))


def test_fold_then_resolve_matches_resolve_of_chain():
    # Folding during merges must not change what reads resolve.
    chain = [
        Record.delta(b"k", b"+3", 4),
        Record.delta(b"k", b"+2", 3),
        Record.base(b"k", b"v", 2),
        Record.base(b"k", b" old", 1),
    ]
    folded = chain[-1]
    for newer in reversed(chain[:-1]):
        folded = fold(newer, folded)
    assert resolve([folded]) == resolve(chain)


def test_record_kind_values_stable():
    # The manifest persists records; enum values are a durability format.
    assert RecordKind.BASE == 0
    assert RecordKind.DELTA == 1
    assert RecordKind.TOMBSTONE == 2
