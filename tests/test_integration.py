"""Integration tests: whole-system scenarios across modules."""

import random

from repro.baselines import BLSMEngine, BTreeEngine, LevelDBEngine
from repro.core import BLSM, BLSMOptions
from repro.sim import DiskModel
from repro.ycsb import (
    OpKind,
    WorkloadSpec,
    load_phase,
    run_workload,
    standard_workload,
)


def small_blsm(**overrides):
    defaults = dict(c0_bytes=64 * 1024, buffer_pool_pages=64)
    defaults.update(overrides)
    return BLSMEngine(BLSMOptions(**defaults))


def all_engines():
    return [
        small_blsm(),
        BTreeEngine(buffer_pool_pages=32, page_size=4096),
        LevelDBEngine(
            memtable_bytes=16 * 1024,
            file_bytes=32 * 1024,
            level_base_bytes=64 * 1024,
            buffer_pool_pages=32,
        ),
    ]


def test_all_engines_agree_on_workload_contents():
    final_states = []
    for engine in all_engines():
        spec = WorkloadSpec(
            record_count=400,
            operation_count=800,
            read_proportion=0.4,
            blind_write_proportion=0.4,
            insert_proportion=0.1,
            delete_proportion=0.1,
            value_bytes=64,
        )
        load_phase(engine, spec, seed=17)
        run_workload(engine, spec, seed=17)
        final_states.append(list(engine.scan(b"")))
    assert final_states[0] == final_states[1] == final_states[2]


def test_standard_workloads_run_on_blsm():
    for name in "abcdef":
        engine = small_blsm()
        spec = standard_workload(
            name, record_count=200, operation_count=300, value_bytes=64
        )
        load_phase(engine, spec)
        result = run_workload(engine, spec)
        assert result.operations == 300


def test_blsm_insert_heavy_has_no_read_io():
    # The load phase is blind inserts: an LSM must not read the disk.
    engine = small_blsm(c0_bytes=32 * 1024)
    spec = WorkloadSpec(record_count=2000, operation_count=0, value_bytes=100)
    load_phase(engine, spec)
    assert engine.io_summary()["data_seeks"] < 50  # only merge chunk seeks


def test_btree_load_is_seek_bound():
    engine = BTreeEngine(buffer_pool_pages=4)
    spec = WorkloadSpec(record_count=1500, operation_count=0, value_bytes=100)
    load_phase(engine, spec)
    engine.flush()
    # Random-order inserts on a tiny pool: seeks scale with inserts
    # (early inserts hit the few-leaf cache, so somewhat under 2x).
    assert engine.seeks() > 1000


def test_ssd_is_faster_than_hdd_for_reads():
    results = {}
    for model in (DiskModel.hdd(), DiskModel.ssd()):
        engine = small_blsm(disk_model=model, c0_bytes=16 * 1024,
                            buffer_pool_pages=4)
        spec = WorkloadSpec(
            record_count=1000, operation_count=500,
            read_proportion=1.0, value_bytes=100,
        )
        load_phase(engine, spec)
        engine.tree.compact()
        results[model.name] = run_workload(engine, spec).throughput
    assert results["ssd"] > 10 * results["hdd"]


def test_workload_shift_recovers_throughput():
    # Figure 9 in miniature: saturating uniform writes, then a Zipfian
    # read-heavy phase; the read phase must stabilize.
    engine = small_blsm(c0_bytes=32 * 1024)
    write_spec = WorkloadSpec(
        record_count=1500, operation_count=0, value_bytes=100
    )
    load_phase(engine, write_spec)
    serve_spec = WorkloadSpec(
        record_count=1500,
        operation_count=1000,
        read_proportion=0.8,
        blind_write_proportion=0.2,
        request_distribution="zipfian",
        value_bytes=100,
    )
    result = run_workload(engine, serve_spec, timeseries_window=0.05)
    throughputs = [t for t in result.timeseries.throughputs() if t > 0]
    assert len(throughputs) >= 2
    assert max(result.latencies[OpKind.READ]._samples) < 1.0


def test_mixed_engine_scan_heavy_workload():
    for engine in all_engines():
        spec = standard_workload(
            "e", record_count=300, operation_count=200, value_bytes=64
        )
        load_phase(engine, spec)
        result = run_workload(engine, spec)
        assert result.operations == 200


def test_full_lifecycle_load_serve_crash_recover_serve():
    from repro.storage import DurabilityMode

    options = BLSMOptions(
        c0_bytes=32 * 1024,
        buffer_pool_pages=32,
        durability=DurabilityMode.SYNC,
    )
    engine = BLSMEngine(options)
    rng = random.Random(1)
    model = {}
    for i in range(2500):
        key = b"user%06d" % rng.randrange(1200)
        value = b"v%06d" % i
        engine.put(key, value)
        model[key] = value
    stasis = engine.tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, options)
    assert all(recovered.get(k) == v for k, v in model.items())
    for i in range(500):
        key = b"user%06d" % rng.randrange(1200)
        recovered.put(key, b"post-crash")
        model[key] = b"post-crash"
    assert all(recovered.get(k) == v for k, v in model.items())
