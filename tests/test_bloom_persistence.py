"""Tests for persisted Bloom filters (Section 4.4.3)."""

import random

import pytest

from repro.bloom import BloomFilter
from repro.core import BLSM, BLSMOptions, PartitionedBLSM
from repro.storage import DurabilityMode


def options(**overrides):
    defaults = dict(
        c0_bytes=32 * 1024,
        buffer_pool_pages=64,
        durability=DurabilityMode.SYNC,
        persist_bloom_filters=True,
    )
    defaults.update(overrides)
    return BLSMOptions(**defaults)


def test_bloom_roundtrip_bytes():
    bloom = BloomFilter.for_capacity(500)
    for i in range(500):
        bloom.add(b"key%d" % i)
    clone = BloomFilter.from_bytes(
        bloom.nbits, bloom.nhashes, bloom.to_bytes(), bloom.ninserted
    )
    assert all(b"key%d" % i in clone for i in range(500))
    assert clone.ninserted == 500


def test_bloom_from_bytes_validates_length():
    with pytest.raises(ValueError):
        BloomFilter.from_bytes(64, 3, b"too-short-or-long" * 10)


def test_components_get_bloom_extents():
    tree = BLSM(options())
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(32))
    tree.drain()
    components = [
        c for c in (tree._c1, tree._c1_prime, tree._c2) if c is not None
    ]
    assert components
    assert all(c.bloom_extent is not None for c in components)


def test_recovery_loads_persisted_filters_without_scan():
    opts = options()
    tree = BLSM(opts)
    for i in range(3000):
        tree.put(b"key%05d" % (i % 1500), bytes(64))
    tree.drain()
    component_bytes = tree.component_sizes()["c1"] + tree.component_sizes()["c2"]
    stasis = tree.stasis
    stasis.crash()
    read_before = stasis.data_disk.stats.bytes_read
    recovered = BLSM.recover(stasis, opts)
    recovery_read = stasis.data_disk.stats.bytes_read - read_before
    # Loading filters reads far less than rescanning the components.
    assert recovery_read < component_bytes / 4
    assert recovered._c1 is None or recovered._c1.bloom is not None


def test_recovered_filters_behave_identically():
    opts = options()
    tree = BLSM(opts)
    rng = random.Random(3)
    keys = [b"key%06d" % rng.randrange(10**6) for _ in range(2000)]
    for key in keys:
        tree.put(key, bytes(32))
    tree.drain()
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    for key in rng.sample(keys, 200):
        assert recovered.get(key) is not None
    seeks_before = stasis.data_disk.stats.seeks
    for i in range(100):
        recovered.get(b"key%06dabsent" % i)
    # Filters loaded from disk still reject absent keys for free.
    assert stasis.data_disk.stats.seeks - seeks_before <= 5


def test_free_releases_bloom_extent():
    opts = options()
    tree = BLSM(opts)
    for i in range(2000):
        tree.put(b"key%05d" % i, bytes(32))
    tree.drain()
    # Every allocated extent must be reachable from the manifest; after
    # compaction the old components' bloom extents must be freed too.
    tree.compact()
    from repro.core.components import component_extents, describe_component

    live = set()
    for component in (tree._c1, tree._c1_prime, tree._c2):
        live.update(component_extents(describe_component(component)))
    assert set(tree.stasis.regions.allocated_extents) == live


def test_partitioned_tree_persists_and_recovers_filters():
    opts = options()
    tree = PartitionedBLSM(opts, max_partition_bytes=64 * 1024)
    model = {}
    for i in range(4000):
        key = b"key%05d" % (i % 2000)
        value = b"v%d" % i
        tree.put(key, value)
        model[key] = value
    tree.drain()
    stasis = tree.stasis
    stasis.crash()
    read_before = stasis.data_disk.stats.bytes_read
    recovered = PartitionedBLSM.recover(
        stasis, opts, max_partition_bytes=64 * 1024
    )
    recovery_read = stasis.data_disk.stats.bytes_read - read_before
    disk_bytes = recovered.stats()["disk_bytes"]
    assert recovery_read < max(1, disk_bytes) / 4
    assert all(recovered.get(k) == v for k, v in model.items())


def test_unpersisted_recovery_still_works():
    opts = options(persist_bloom_filters=False)
    tree = BLSM(opts)
    for i in range(1500):
        tree.put(b"key%05d" % i, bytes(64))
    tree.drain()
    stasis = tree.stasis
    stasis.crash()
    recovered = BLSM.recover(stasis, opts)
    assert recovered.get(b"key00042") is not None
    assert recovered._c1 is None or recovered._c1.bloom is not None
