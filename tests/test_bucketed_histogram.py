"""Tests for the memory-bounded bucketed histogram."""

import random

import pytest

from repro.ycsb import BucketedHistogram, LatencyStats


def test_empty():
    hist = BucketedHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(99) == 0.0


def test_basic_stats():
    hist = BucketedHistogram()
    for value in (0.001, 0.002, 0.003):
        hist.record(value)
    assert hist.count == 3
    assert hist.mean == pytest.approx(0.002)
    assert hist.max == 0.003


def test_percentiles_track_exact_within_bucket_error():
    hist = BucketedHistogram(buckets_per_decade=40)
    exact = LatencyStats()
    rng = random.Random(3)
    for _ in range(20000):
        value = rng.lognormvariate(-7.0, 1.5)  # latency-shaped
        hist.record(value)
        exact.record(value)
    ratio = 10 ** (1 / 40)
    for p in (50, 90, 99, 99.9):
        estimate = hist.percentile(p)
        truth = exact.percentile(p)
        assert truth / ratio <= estimate <= truth * ratio * 1.01, p


def test_memory_is_bounded():
    hist = BucketedHistogram()
    buckets_before = len(hist._counts)
    for i in range(50000):
        hist.record((i % 1000 + 1) * 1e-6)
    assert len(hist._counts) == buckets_before


def test_out_of_range_values_clamp():
    hist = BucketedHistogram(min_latency=1e-6, max_latency=1.0)
    hist.record(1e-12)  # below range
    hist.record(100.0)  # above range
    assert hist.count == 2
    assert hist.percentile(0) <= 1e-6
    assert hist.percentile(100) == 100.0  # capped at observed max


def test_merge():
    a = BucketedHistogram()
    b = BucketedHistogram()
    for i in range(100):
        a.record(0.001)
        b.record(0.010)
    a.merge(b)
    assert a.count == 200
    assert a.percentile(25) == pytest.approx(0.001, rel=0.15)
    assert a.percentile(75) == pytest.approx(0.010, rel=0.15)


def test_merge_rejects_mismatched_geometry():
    a = BucketedHistogram(buckets_per_decade=10)
    b = BucketedHistogram(buckets_per_decade=20)
    with pytest.raises(ValueError):
        a.merge(b)


def test_invalid_construction():
    with pytest.raises(ValueError):
        BucketedHistogram(min_latency=0)
    with pytest.raises(ValueError):
        BucketedHistogram(buckets_per_decade=0)


def test_invalid_percentile():
    with pytest.raises(ValueError):
        BucketedHistogram().percentile(-1)
