"""Unit tests for the operation generator."""

from collections import Counter

from repro.ycsb import OperationGenerator, OpKind, WorkloadSpec
from repro.ycsb.generator import make_key, make_value


def test_make_key_ordered_vs_hashed():
    ordered = [make_key(i, ordered=True) for i in range(10)]
    assert ordered == sorted(ordered)
    hashed = [make_key(i, ordered=False) for i in range(100)]
    assert hashed != sorted(hashed)
    assert len(set(hashed)) == 100  # no collisions at this scale


def test_make_value_size():
    import random

    assert len(make_value(random.Random(0), 100)) == 100


def test_load_keys_count_and_uniqueness():
    spec = WorkloadSpec(record_count=500, operation_count=0)
    generator = OperationGenerator(spec)
    keys = list(generator.load_keys())
    assert len(keys) == 500
    assert len(set(keys)) == 500


def test_operation_count_and_mix():
    spec = WorkloadSpec(
        record_count=100,
        operation_count=5000,
        read_proportion=0.7,
        blind_write_proportion=0.3,
    )
    ops = list(OperationGenerator(spec, seed=1).operations())
    assert len(ops) == 5000
    mix = Counter(op.kind for op in ops)
    assert 0.6 < mix[OpKind.READ] / 5000 < 0.8
    assert 0.2 < mix[OpKind.BLIND_WRITE] / 5000 < 0.4


def test_requests_target_loaded_keys():
    spec = WorkloadSpec(
        record_count=50, operation_count=500, read_proportion=1.0
    )
    generator = OperationGenerator(spec, seed=2)
    loaded = set(generator.load_keys())
    for op in generator.operations():
        assert op.key in loaded


def test_inserts_extend_the_keyspace():
    spec = WorkloadSpec(
        record_count=10, operation_count=100, insert_proportion=1.0
    )
    generator = OperationGenerator(spec, seed=3)
    loaded = set(generator.load_keys())
    new_keys = [op.key for op in generator.operations()]
    assert len(set(new_keys)) == 100
    assert not (set(new_keys) & loaded)


def test_scan_lengths_in_bounds():
    spec = WorkloadSpec(
        record_count=100,
        operation_count=300,
        scan_proportion=1.0,
        scan_length_min=2,
        scan_length_max=7,
    )
    for op in OperationGenerator(spec, seed=4).operations():
        assert op.kind is OpKind.SCAN
        assert 2 <= op.scan_length <= 7


def test_writes_carry_values_of_configured_size():
    spec = WorkloadSpec(
        record_count=10,
        operation_count=50,
        blind_write_proportion=1.0,
        value_bytes=77,
    )
    for op in OperationGenerator(spec, seed=5).operations():
        assert len(op.value) == 77


def test_deterministic_given_seed():
    spec = WorkloadSpec(
        record_count=20,
        operation_count=100,
        read_proportion=0.5,
        blind_write_proportion=0.5,
    )
    a = list(OperationGenerator(spec, seed=9).operations())
    b = list(OperationGenerator(spec, seed=9).operations())
    assert a == b


def test_reads_and_deletes_have_no_value():
    spec = WorkloadSpec(
        record_count=20,
        operation_count=60,
        read_proportion=0.5,
        delete_proportion=0.5,
    )
    for op in OperationGenerator(spec, seed=6).operations():
        assert op.value is None
