"""Unit tests for the buffer manager (CLOCK and LRU eviction)."""

import pytest

from repro.sim import DiskModel, SimDisk, VirtualClock
from repro.storage import BufferManager, EvictionPolicy, PageFile


def make_buffer(capacity=4, policy=EvictionPolicy.CLOCK):
    clock = VirtualClock()
    disk = SimDisk(DiskModel.hdd(), clock)
    pagefile = PageFile(disk, page_size=4096)
    return BufferManager(pagefile, capacity, policy), pagefile


def test_miss_reads_from_device():
    buffer, pagefile = make_buffer()
    pagefile.write_page(0, "a")
    assert buffer.get(0) == "a"
    assert buffer.misses == 1


def test_hit_is_free():
    buffer, pagefile = make_buffer()
    pagefile.write_page(0, "a")
    buffer.get(0)
    busy = pagefile.disk.stats.busy_seconds
    assert buffer.get(0) == "a"
    assert buffer.hits == 1
    assert pagefile.disk.stats.busy_seconds == busy


def test_capacity_is_enforced():
    buffer, pagefile = make_buffer(capacity=2)
    for i in range(5):
        pagefile.write_page(i, f"p{i}")
        buffer.get(i)
    assert len(buffer) <= 2
    assert buffer.evictions == 3


def test_dirty_eviction_writes_back():
    buffer, pagefile = make_buffer(capacity=1)
    buffer.put(0, "dirty")
    pagefile.write_page(1, "other")
    buffer.get(1)  # evicts page 0
    assert buffer.dirty_writebacks == 1
    assert pagefile.peek(0) == "dirty"


def test_clean_eviction_skips_writeback():
    buffer, pagefile = make_buffer(capacity=1)
    pagefile.write_page(0, "a")
    pagefile.write_page(1, "b")
    buffer.get(0)
    buffer.get(1)
    assert buffer.dirty_writebacks == 0


def test_put_overwrites_resident_payload():
    buffer, pagefile = make_buffer()
    buffer.put(0, "v1")
    buffer.put(0, "v2")
    assert buffer.get(0) == "v2"
    assert len(buffer) == 1


def test_flush_page_clears_dirty_bit():
    buffer, pagefile = make_buffer()
    buffer.put(0, "dirty")
    buffer.flush_page(0)
    assert pagefile.peek(0) == "dirty"
    buffer.flush_page(0)  # second flush is a no-op
    assert buffer.dirty_writebacks == 1


def test_flush_all_writes_in_page_order():
    buffer, pagefile = make_buffer(capacity=8)
    for page_id in (5, 1, 3):
        buffer.put(page_id, f"p{page_id}")
    written = buffer.flush_all()
    assert written == 3
    assert pagefile.peek(1) == "p1"
    assert pagefile.peek(5) == "p5"


def test_clock_second_chance():
    buffer, pagefile = make_buffer(capacity=3, policy=EvictionPolicy.CLOCK)
    for i in range(3):
        pagefile.write_page(i, f"p{i}")
        buffer.get(i)
    pagefile.write_page(3, "p3")
    buffer.get(3)  # sweep clears all bits, evicts page 0
    assert 0 not in buffer
    buffer.get(1)  # second chance: re-set page 1's reference bit
    pagefile.write_page(4, "p4")
    buffer.get(4)  # victim must be an unreferenced frame, not page 1
    assert 1 in buffer


def test_lru_evicts_least_recent():
    buffer, pagefile = make_buffer(capacity=2, policy=EvictionPolicy.LRU)
    pagefile.write_page(0, "p0")
    pagefile.write_page(1, "p1")
    pagefile.write_page(2, "p2")
    buffer.get(0)
    buffer.get(1)
    buffer.get(0)  # 0 is now most recent
    buffer.get(2)  # evicts 1
    assert 0 in buffer
    assert 1 not in buffer


def test_invalidate_drops_without_writeback():
    buffer, pagefile = make_buffer()
    buffer.put(0, "dirty")
    buffer.invalidate(0)
    assert 0 not in buffer
    assert 0 not in pagefile
    assert buffer.dirty_writebacks == 0


def test_drop_all_simulates_crash():
    buffer, pagefile = make_buffer()
    buffer.put(0, "lost")
    buffer.drop_all()
    assert len(buffer) == 0
    assert 0 not in pagefile


def test_hit_rate():
    buffer, pagefile = make_buffer()
    pagefile.write_page(0, "a")
    buffer.get(0)
    buffer.get(0)
    buffer.get(0)
    assert buffer.hit_rate == pytest.approx(2 / 3)


def test_invalid_capacity_rejected():
    clock = VirtualClock()
    pagefile = PageFile(SimDisk(DiskModel.hdd(), clock))
    with pytest.raises(ValueError):
        BufferManager(pagefile, 0)


def test_flush_nonresident_page_raises():
    buffer, _ = make_buffer()
    from repro.errors import StorageError

    with pytest.raises(StorageError):
        buffer.flush_page(99)
