"""Behavioural tests for the bLSM tree."""

import random

import pytest

from repro.core import BLSM, BLSMOptions
from repro.errors import EngineClosedError


def small_tree(**overrides):
    defaults = dict(c0_bytes=64 * 1024, buffer_pool_pages=64)
    defaults.update(overrides)
    return BLSM(BLSMOptions(**defaults))


def test_put_get_roundtrip():
    tree = small_tree()
    tree.put(b"k", b"v")
    assert tree.get(b"k") == b"v"
    assert tree.get(b"missing") is None


def test_overwrite_wins():
    tree = small_tree()
    tree.put(b"k", b"v1")
    tree.put(b"k", b"v2")
    assert tree.get(b"k") == b"v2"


def test_delete_hides_key():
    tree = small_tree()
    tree.put(b"k", b"v")
    tree.delete(b"k")
    assert tree.get(b"k") is None


def test_delete_survives_drain_and_compact():
    tree = small_tree()
    tree.put(b"k", b"v")
    tree.drain()
    tree.delete(b"k")
    tree.drain()
    assert tree.get(b"k") is None
    tree.compact()
    assert tree.get(b"k") is None


def test_deltas_fold_across_levels():
    tree = small_tree()
    tree.put(b"k", b"base")
    tree.drain()  # base now on disk
    tree.apply_delta(b"k", b"+1")
    tree.apply_delta(b"k", b"+2")
    assert tree.get(b"k") == b"base+1+2"
    tree.drain()
    assert tree.get(b"k") == b"base+1+2"


def test_dangling_delta_unreadable():
    tree = small_tree()
    tree.apply_delta(b"ghost", b"+1")
    assert tree.get(b"ghost") is None


def test_insert_if_not_exists_semantics():
    tree = small_tree()
    assert tree.insert_if_not_exists(b"k", b"v1") is True
    assert tree.insert_if_not_exists(b"k", b"v2") is False
    assert tree.get(b"k") == b"v1"


def test_insert_if_not_exists_after_delete():
    tree = small_tree()
    tree.put(b"k", b"v")
    tree.drain()
    tree.delete(b"k")
    assert tree.insert_if_not_exists(b"k", b"v2") is True
    assert tree.get(b"k") == b"v2"


def test_read_modify_write():
    tree = small_tree()
    tree.put(b"counter", b"1")
    result = tree.read_modify_write(b"counter", lambda v: v + b"1")
    assert result == b"11"
    assert tree.get(b"counter") == b"11"


def test_scan_merges_all_levels():
    tree = small_tree()
    tree.put(b"a", b"old-a")
    tree.put(b"c", b"old-c")
    tree.drain()
    tree.put(b"b", b"mem-b")
    tree.put(b"c", b"mem-c")  # shadows disk version
    got = list(tree.scan(b"a", b"z"))
    assert got == [(b"a", b"old-a"), (b"b", b"mem-b"), (b"c", b"mem-c")]


def test_scan_limit():
    tree = small_tree()
    for i in range(20):
        tree.put(b"k%02d" % i, b"v")
    got = list(tree.scan(b"k05", limit=3))
    assert [k for k, _ in got] == [b"k05", b"k06", b"k07"]


def test_scan_skips_deleted():
    tree = small_tree()
    for key in (b"a", b"b", b"c"):
        tree.put(key, b"v")
    tree.drain()
    tree.delete(b"b")
    assert [k for k, _ in tree.scan(b"a", b"z")] == [b"a", b"c"]


def test_promotion_creates_c2():
    tree = small_tree(c0_bytes=16 * 1024)
    rng = random.Random(0)
    for i in range(6000):
        tree.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    tree.compact()
    sizes = tree.component_sizes()
    assert sizes["c2"] > 0
    assert sizes["c0"] == sizes["c1"] == sizes["c1_prime"] == 0


def test_r_grows_with_data():
    tree = small_tree(c0_bytes=8 * 1024, min_r=2.0, max_r=10.0)
    rng = random.Random(0)
    for i in range(8000):
        tree.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    assert tree.r > 2.0


def test_reads_prefer_newest_level():
    tree = small_tree()
    tree.put(b"k", b"v-c2-era")
    tree.compact()
    tree.put(b"k", b"v-c1-era")
    tree.drain()
    tree.put(b"k", b"v-c0")
    assert tree.get(b"k") == b"v-c0"


def test_blind_writes_do_not_seek():
    tree = small_tree(c0_bytes=1 << 20)
    seeks_before = tree.stasis.data_disk.stats.seeks
    for i in range(100):
        tree.put(b"key%03d" % i, bytes(64))
    assert tree.stasis.data_disk.stats.seeks == seeks_before


def test_insert_if_not_exists_absent_key_is_zero_seek():
    # The Section 3.1.2 claim: the C2 Bloom filter answers the
    # existence check without touching disk.
    tree = small_tree(c0_bytes=8 * 1024)
    rng = random.Random(0)
    for i in range(4000):
        tree.put(b"key%06d" % rng.randrange(10**6), bytes(64))
    tree.compact()
    seeks_before = tree.stasis.data_disk.stats.seeks
    inserted = tree.insert_if_not_exists(b"zz-definitely-new", b"v")
    assert inserted
    assert tree.stasis.data_disk.stats.seeks == seeks_before


def test_point_read_from_c2_is_one_seek():
    tree = small_tree(c0_bytes=8 * 1024, buffer_pool_pages=2)
    keys = [b"key%06d" % i for i in range(2000)]
    for key in keys:
        tree.put(key, bytes(64))
    tree.compact()
    seeks_before = tree.stasis.data_disk.stats.seeks
    assert tree.get(keys[1000]) is not None
    assert tree.stasis.data_disk.stats.seeks - seeks_before <= 1


def test_without_bloom_filters_reads_probe_every_level():
    with_bloom = small_tree(c0_bytes=8 * 1024)
    without = small_tree(c0_bytes=8 * 1024, with_bloom_filters=False,
                         buffer_pool_pages=2)
    rng = random.Random(0)
    keys = [b"key%06d" % rng.randrange(10**6) for _ in range(4000)]
    for tree in (with_bloom, without):
        for key in keys:
            tree.put(key, bytes(64))
    for tree in (with_bloom, without):
        before = tree.stasis.data_disk.stats.seeks
        for i in range(50):
            # In-range but absent: only a Bloom filter avoids the probe.
            tree.get(b"key%06dabsent" % rng.randrange(10**6))
        tree.absent_seeks = tree.stasis.data_disk.stats.seeks - before
    assert without.absent_seeks > 5 * max(1, with_bloom.absent_seeks)


def test_closed_tree_rejects_operations():
    tree = small_tree()
    tree.put(b"k", b"v")
    tree.close()
    with pytest.raises(EngineClosedError):
        tree.put(b"x", b"y")
    with pytest.raises(EngineClosedError):
        tree.get(b"k")
    tree.close()  # idempotent


def test_stats_surface():
    tree = small_tree()
    tree.put(b"k", b"v")
    stats = tree.stats()
    for field in ("c0", "c1", "c2", "r", "clock_seconds", "next_seqno"):
        assert field in stats


def test_space_reclaimed_after_compaction():
    # Overwriting the same keys repeatedly must not leak disk space.
    tree = small_tree(c0_bytes=16 * 1024)
    for round_ in range(5):
        for i in range(500):
            tree.put(b"key%04d" % i, bytes(64))
        tree.drain()
    tree.compact()
    live = tree.component_sizes()["c2"]
    allocated_pages = sum(
        e.length for e in tree.stasis.regions.allocated_extents
    )
    assert allocated_pages * 4096 < 3 * live + 64 * 4096


def test_bloom_filters_do_not_help_scans():
    # Section 3.3's opening claim: "Scan operations do not benefit from
    # Bloom filters and must examine each tree component."
    seeks = {}
    for with_bloom in (True, False):
        tree = small_tree(
            c0_bytes=8 * 1024,
            with_bloom_filters=with_bloom,
            buffer_pool_pages=2,
        )
        for i in range(3000):
            tree.put(b"key%05d" % (i % 1500), bytes(64))
        before = tree.stasis.data_disk.stats.seeks
        for start in range(0, 1500, 100):
            list(tree.scan(b"key%05d" % start, limit=3))
        seeks[with_bloom] = tree.stasis.data_disk.stats.seeks - before
    assert seeks[True] == seeks[False]


def test_repr_is_informative():
    tree = small_tree()
    tree.put(b"k", b"v")
    text = repr(tree)
    assert "BLSM(" in text and "c0=" in text and "r=" in text


def test_key_count_estimate():
    tree = small_tree()
    for i in range(10):
        tree.put(b"k%d" % i, b"v")
    assert tree.key_count_estimate() == 10
