"""Unit tests for the C0 memtable."""

import pytest

from repro.memtable import MemTable
from repro.records import Record


def test_put_and_get():
    table = MemTable(1024)
    record = Record.base(b"k", b"v", 1)
    table.put(record)
    assert table.get(b"k") == record


def test_byte_accounting_on_insert_and_overwrite():
    table = MemTable(10_000)
    table.put(Record.base(b"k", b"v" * 10, 1))
    first = table.nbytes
    table.put(Record.base(b"k", b"v" * 50, 2))
    assert table.nbytes == first + 40
    assert len(table) == 1


def test_fill_fraction():
    table = MemTable(100)
    table.put(Record.base(b"k", b"v" * 34, 1))  # 16 + 1 + 34 = 51 bytes
    assert table.fill_fraction == pytest.approx(0.51)


def test_newer_write_supersedes():
    table = MemTable(1024)
    table.put(Record.base(b"k", b"old", 1))
    table.put(Record.base(b"k", b"new", 2))
    assert table.get(b"k").value == b"new"


def test_delta_folds_onto_resident_base():
    table = MemTable(1024)
    table.put(Record.base(b"k", b"v", 1))
    table.put(Record.delta(b"k", b"+d", 2))
    record = table.get(b"k")
    assert record.is_base
    assert record.value == b"v+d"


def test_delta_without_base_stays_delta():
    table = MemTable(1024)
    table.put(Record.delta(b"k", b"+d", 1))
    assert table.get(b"k").is_delta


def test_tombstone_supersedes():
    table = MemTable(1024)
    table.put(Record.base(b"k", b"v", 1))
    table.put(Record.tombstone(b"k", 2))
    assert table.get(b"k").is_tombstone


def test_remove_updates_bytes():
    table = MemTable(1024)
    table.put(Record.base(b"k", b"v", 1))
    removed = table.remove(b"k")
    assert removed is not None
    assert table.nbytes == 0
    assert table.is_empty


def test_remove_missing_returns_none():
    table = MemTable(1024)
    assert table.remove(b"nope") is None


def test_iteration_sorted():
    table = MemTable(10_000)
    for i in (5, 1, 3, 2, 4):
        table.put(Record.base(b"%d" % i, b"", i))
    assert [r.key for r in table] == [b"1", b"2", b"3", b"4", b"5"]


def test_iter_from_and_scan():
    table = MemTable(10_000)
    for i in range(10):
        table.put(Record.base(b"%02d" % i, b"", i))
    assert [r.key for r in table.iter_from(b"07")] == [b"07", b"08", b"09"]
    assert [r.key for r in table.scan(b"03", b"06")] == [b"03", b"04", b"05"]
    assert [r.key for r in table.scan(b"08", None)] == [b"08", b"09"]


def test_first_and_ceiling_key():
    table = MemTable(1024)
    assert table.first_key() is None
    table.put(Record.base(b"m", b"", 1))
    table.put(Record.base(b"c", b"", 2))
    assert table.first_key() == b"c"
    assert table.ceiling_key(b"d") == b"m"
    assert table.ceiling_key(b"z") is None


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        MemTable(0)
