"""Crash recovery for the baseline engines (B-Tree and LevelDB)."""

import random

from repro.baselines import BTreeEngine, LevelDBEngine
from repro.storage import DurabilityMode, Stasis


def btree_stasis():
    return Stasis(page_size=4096, buffer_pool_pages=64,
                  durability=DurabilityMode.SYNC)


class TestBTreeRecovery:
    def test_recover_empty(self):
        stasis = btree_stasis()
        engine = BTreeEngine.recover(stasis)
        assert engine.get(b"anything") is None

    def test_replay_without_checkpoint(self):
        stasis = btree_stasis()
        engine = _btree_over(stasis)
        model = {}
        rng = random.Random(1)
        for i in range(1200):
            key = b"key%04d" % rng.randrange(500)
            value = b"v%04d" % i
            engine.put(key, value)
            model[key] = value
        stasis.crash()
        recovered = BTreeEngine.recover(stasis)
        assert all(recovered.get(k) == v for k, v in model.items())

    def test_checkpoint_bounds_replay(self):
        stasis = btree_stasis()
        engine = _btree_over(stasis)
        for i in range(800):
            engine.put(b"key%04d" % i, b"old")
        engine.checkpoint()
        assert stasis.logical_log.durable_records == 0
        engine.put(b"post", b"crash-me")
        stasis.crash()
        recovered = BTreeEngine.recover(stasis)
        assert recovered.get(b"key0042") == b"old"
        assert recovered.get(b"post") == b"crash-me"

    def test_deletes_replayed(self):
        stasis = btree_stasis()
        engine = _btree_over(stasis)
        engine.put(b"k", b"v")
        engine.checkpoint()
        engine.delete(b"k")
        stasis.crash()
        recovered = BTreeEngine.recover(stasis)
        assert recovered.get(b"k") is None

    def test_recovered_engine_keeps_working(self):
        stasis = btree_stasis()
        engine = _btree_over(stasis)
        engine.put(b"a", b"1")
        engine.checkpoint()
        stasis.crash()
        recovered = BTreeEngine.recover(stasis)
        recovered.put(b"b", b"2")
        assert recovered.get(b"a") == b"1"
        assert recovered.get(b"b") == b"2"
        assert [k for k, _ in recovered.scan(b"")] == [b"a", b"b"]


def _btree_over(stasis: Stasis) -> BTreeEngine:
    return BTreeEngine(stasis=stasis)


def leveldb_over(stasis=None):
    return LevelDBEngine(
        memtable_bytes=8 * 1024,
        file_bytes=16 * 1024,
        level_base_bytes=32 * 1024,
        buffer_pool_pages=32,
        durability=DurabilityMode.SYNC,
        stasis=stasis,
    )


class TestLevelDBRecovery:
    def test_recover_empty(self):
        engine = leveldb_over()
        stasis = engine.stasis
        stasis.crash()
        recovered = LevelDBEngine.recover(
            stasis, memtable_bytes=8 * 1024, file_bytes=16 * 1024,
            level_base_bytes=32 * 1024, buffer_pool_pages=32,
            durability=DurabilityMode.SYNC,
        )
        assert recovered.get(b"anything") is None

    def test_recover_files_and_memtable(self):
        engine = leveldb_over()
        stasis = engine.stasis
        rng = random.Random(2)
        model = {}
        for i in range(3000):
            key = b"key%05d" % rng.randrange(1500)
            value = b"v%05d" % i
            engine.put(key, value)
            model[key] = value
        stasis.crash()
        recovered = LevelDBEngine.recover(
            stasis, memtable_bytes=8 * 1024, file_bytes=16 * 1024,
            level_base_bytes=32 * 1024, buffer_pool_pages=32,
            durability=DurabilityMode.SYNC,
        )
        mismatches = sum(
            1 for k, v in model.items() if recovered.get(k) != v
        )
        assert mismatches == 0
        assert list(recovered.scan(b"")) == sorted(model.items())

    def test_log_rotates_at_flush(self):
        engine = leveldb_over()
        for i in range(600):  # several memtable flushes
            engine.put(b"key%04d" % i, bytes(64))
        # Only the current memtable's writes remain in the log.
        resident = len(engine._memtable)
        assert engine.stasis.logical_log.durable_records <= resident

    def test_torn_compaction_leaves_no_leaks(self):
        engine = leveldb_over()
        stasis = engine.stasis
        rng = random.Random(3)
        for i in range(2500):
            engine.put(b"key%05d" % rng.randrange(1200), bytes(64))
        stasis.crash()
        recovered = LevelDBEngine.recover(
            stasis, memtable_bytes=8 * 1024, file_bytes=16 * 1024,
            level_base_bytes=32 * 1024, buffer_pool_pages=32,
            durability=DurabilityMode.SYNC,
        )
        from repro.core.components import (
            component_extents,
            describe_component,
        )

        live = set()
        tables = recovered._l0 + [
            t for level in recovered._levels for t in level
        ]
        for table in tables:
            live.update(component_extents(describe_component(table)))
        assert set(stasis.regions.allocated_extents) == live

    def test_recovered_engine_keeps_working(self):
        engine = leveldb_over()
        stasis = engine.stasis
        engine.put(b"a", b"1")
        stasis.crash()
        recovered = LevelDBEngine.recover(
            stasis, memtable_bytes=8 * 1024, file_bytes=16 * 1024,
            level_base_bytes=32 * 1024, buffer_pool_pages=32,
            durability=DurabilityMode.SYNC,
        )
        for i in range(1500):
            recovered.put(b"more%04d" % i, bytes(64))
        assert recovered.get(b"a") == b"1"
        assert recovered.get(b"more0000") is not None
