"""Deep fuzzing, gated behind ``-m slow``.

The default test run keeps these out (they multiply the suite's wall
time); run them before a release:

    pytest tests/test_deep_fuzz.py -m slow
"""

import random

import pytest

from repro.baselines import (
    BitCaskEngine,
    BLSMEngine,
    BTreeEngine,
    LevelDBEngine,
    PartitionedBLSMEngine,
)
from repro.core import BLSM, BLSMOptions
from repro.storage import DurabilityMode
from repro.testing import (
    check_blsm_invariants,
    check_partitioned_invariants,
    run_model_workload,
    verify_against_model,
)

pytestmark = pytest.mark.slow


def engine_matrix():
    yield "blsm", BLSMEngine(
        BLSMOptions(c0_bytes=48 * 1024, buffer_pool_pages=32)
    )
    yield "blsm-all-options", BLSMEngine(
        BLSMOptions(
            c0_bytes=48 * 1024,
            buffer_pool_pages=32,
            delta_read_repair=True,
            persist_bloom_filters=True,
            compression_ratio=0.6,
            durability=DurabilityMode.SYNC,
        )
    )
    yield "blsm-extras", BLSMEngine(
        BLSMOptions(
            c0_bytes=48 * 1024, scheduler="naive", extra_components=True
        )
    )
    yield "partitioned", PartitionedBLSMEngine(
        BLSMOptions(c0_bytes=48 * 1024, buffer_pool_pages=32),
        max_partition_bytes=96 * 1024,
    )
    yield "btree", BTreeEngine(buffer_pool_pages=32, page_size=4096)
    yield "leveldb", LevelDBEngine(
        memtable_bytes=16 * 1024,
        file_bytes=32 * 1024,
        level_base_bytes=64 * 1024,
        buffer_pool_pages=32,
    )
    yield "bitcask", BitCaskEngine(garbage_threshold=0.5)


@pytest.mark.parametrize("name,engine", engine_matrix())
def test_hundred_thousand_op_soak(name, engine):
    model = run_model_workload(
        engine, operations=100_000, keyspace=8000, seed=42
    )
    verify_against_model(engine, model)
    if name.startswith("blsm"):
        check_blsm_invariants(engine.tree)
    if name == "partitioned":
        check_partitioned_invariants(engine.tree)


def test_crash_storm():
    options = BLSMOptions(
        c0_bytes=24 * 1024,
        delta_read_repair=True,
        persist_bloom_filters=True,
        durability=DurabilityMode.SYNC,
    )
    tree = BLSM(options)
    rng = random.Random(7)
    model: dict[bytes, bytes] = {}
    for crash_round in range(30):
        for _ in range(rng.randrange(200, 1200)):
            key = b"key%05d" % rng.randrange(1500)
            roll = rng.random()
            if roll < 0.55:
                value = b"v%08d" % rng.randrange(10**8)
                tree.put(key, value)
                model[key] = value
            elif roll < 0.7:
                tree.delete(key)
                model.pop(key, None)
            elif roll < 0.85 and key in model:
                tree.apply_delta(key, b"+D")
                model[key] += b"+D"
            else:
                assert tree.get(key) == model.get(key)
        tree.step_m01(rng.randrange(1, 50_000))  # random merge freeze-point
        stasis = tree.stasis
        stasis.crash()
        tree = BLSM.recover(stasis, options)
        bad = sum(1 for k, v in model.items() if tree.get(k) != v)
        assert bad == 0, crash_round
    check_blsm_invariants(tree)
