"""Tests for the fault-injection layer: plans, faulty devices, retries,
checksummed logs and pages, and engine-level hardening."""

import pytest

from repro.core import BLSM, BLSMOptions
from repro.errors import (
    CorruptionError,
    CrashPoint,
    DeviceFullError,
    IOFaultError,
    TransientIOError,
)
from repro.faults import FaultPlan, FaultRule, FaultyDisk, RetryExecutor, RetryPolicy
from repro.obs import EngineRuntime
from repro.sim import DiskModel, VirtualClock
from repro.storage import (
    DurabilityMode,
    LogicalLog,
    PageFile,
    Stasis,
    WriteAheadLog,
)


def faulty(plan, model=None, runtime=None):
    runtime = runtime if runtime is not None else EngineRuntime()
    return (
        FaultyDisk(
            model or DiskModel.hdd(), runtime.clock, plan=plan, runtime=runtime
        ),
        runtime,
    )


# ---------------------------------------------------------------------------
# FaultPlan / FaultRule semantics
# ---------------------------------------------------------------------------


def test_rule_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultRule(kind="meteor")


def test_rule_filters_by_device_and_op():
    rule = FaultRule(kind="transient", device="log", op="write")
    assert rule.matches("hdd-log", "write")
    assert not rule.matches("hdd-log", "read")
    assert not rule.matches("hdd-data", "write")


def test_plan_at_access_fires_once():
    plan = FaultPlan.crash_at(3, armed=True)
    fired = [plan.note_access("d", "write") for _ in range(5)]
    assert [len(f) for f in fired] == [0, 0, 1, 0, 0]


def test_disarmed_plan_neither_counts_nor_fires():
    plan = FaultPlan.crash_at(1, armed=False)
    assert plan.note_access("d", "write") == []
    assert plan.access_count == 0
    plan.arm()
    assert len(plan.note_access("d", "write")) == 1


def test_probabilistic_plan_is_deterministic_per_seed():
    def fire_pattern(seed):
        plan = FaultPlan.transient(probability=0.3, seed=seed)
        return [bool(plan.note_access("d", "read")) for _ in range(50)]

    assert fire_pattern(7) == fire_pattern(7)
    assert fire_pattern(7) != fire_pattern(8)


def test_rule_count_bounds_fires():
    plan = FaultPlan([FaultRule(kind="transient", every=2, count=2)])
    fires = sum(bool(plan.note_access("d", "read")) for _ in range(20))
    assert fires == 2


# ---------------------------------------------------------------------------
# FaultyDisk behaviours
# ---------------------------------------------------------------------------


def test_transient_fault_raises_and_charges_time():
    disk, runtime = faulty(FaultPlan.transient(every=1))
    with pytest.raises(TransientIOError):
        disk.read(0, 4096)
    assert runtime.clock.now > 0.0  # the failed access wasted device time
    assert runtime.metrics.value("faults.transient_errors") == 1


def test_crash_fault_is_base_exception():
    disk, _ = faulty(FaultPlan.crash_at(1, armed=True))
    with pytest.raises(CrashPoint):
        disk.write(0, 4096)
    assert not issubclass(CrashPoint, Exception)


def test_torn_write_persists_prefix():
    disk, runtime = faulty(FaultPlan.torn_write(at_access=1, torn_fraction=0.5))
    with pytest.raises(CrashPoint) as exc:
        disk.write(0, 4096)
    assert exc.value.persisted_bytes == 2048
    assert disk.stats.bytes_written == 2048
    assert runtime.metrics.value("faults.torn_writes") == 1


def test_latency_spike_advances_clock():
    disk, runtime = faulty(FaultPlan.latency(extra_seconds=0.5, every=1))
    plain = FaultyDisk(DiskModel.hdd(), VirtualClock())
    base = plain.read(0, 4096)
    disk.read(0, 4096)
    assert runtime.clock.now == pytest.approx(base + 0.5)
    assert runtime.metrics.value("faults.latency_spikes") == 1


def test_corrupt_rule_marks_range_and_clean_write_heals():
    disk, _ = faulty(FaultPlan.corrupt(at_access=1, op="write"))
    disk.write(0, 4096)
    assert disk.corrupted(0, 4096)
    assert disk.corrupted(4000, 8)
    assert not disk.corrupted(4096, 4096)
    disk.write(0, 4096)  # rewrite heals
    assert not disk.corrupted(0, 4096)


def test_clear_corruption_splits_ranges():
    disk, _ = faulty(FaultPlan())
    disk.mark_corrupt(0, 100)
    disk.clear_corruption(40, 20)
    assert disk.corrupted(0, 40)
    assert not disk.corrupted(40, 20)
    assert disk.corrupted(60, 40)


def test_capacity_limit_raises_typed_error():
    clock = VirtualClock()
    from repro.sim import SimDisk

    disk = SimDisk(DiskModel.hdd(), clock, capacity_bytes=8192)
    disk.write(0, 8192)  # exactly full is fine
    with pytest.raises(DeviceFullError) as exc:
        disk.write(8192, 1)
    assert exc.value.capacity_bytes == 8192
    disk.read(0, 1 << 20)  # reads are unaffected


def test_capacity_must_be_positive():
    from repro.sim import SimDisk

    with pytest.raises(ValueError):
        SimDisk(DiskModel.hdd(), VirtualClock(), capacity_bytes=0)


# ---------------------------------------------------------------------------
# RetryPolicy / RetryExecutor
# ---------------------------------------------------------------------------


def test_retry_absorbs_transient_faults_and_charges_backoff():
    runtime = EngineRuntime()
    disk, _ = faulty(FaultPlan.transient(every=3, count=1), runtime=runtime)
    policy = RetryPolicy(max_attempts=3, base_backoff_seconds=0.01)
    executor = RetryExecutor(policy, runtime.clock, runtime=runtime)
    disk.read(0, 4096)
    disk.read(4096, 4096)
    before = runtime.clock.now
    executor.run(lambda: disk.read(8192, 4096))  # 3rd access faults once
    assert runtime.metrics.value("retry.retries") == 1
    assert runtime.metrics.value("retry.backoff_seconds") == pytest.approx(0.01)
    assert runtime.clock.now > before + 0.01


def test_retry_exhaustion_raises_io_fault_error():
    runtime = EngineRuntime()
    disk, _ = faulty(FaultPlan.transient(every=1), runtime=runtime)
    executor = RetryExecutor(
        RetryPolicy(max_attempts=3, base_backoff_seconds=1e-4),
        runtime.clock,
        runtime=runtime,
    )
    with pytest.raises(IOFaultError):
        executor.run(lambda: disk.read(0, 4096))
    assert runtime.metrics.value("retry.exhausted") == 1
    assert runtime.metrics.value("faults.transient_errors") == 3


def test_retry_never_swallows_crash_points():
    runtime = EngineRuntime()
    disk, _ = faulty(FaultPlan.crash_at(1, armed=True), runtime=runtime)
    executor = RetryExecutor(RetryPolicy(), runtime.clock, runtime=runtime)
    with pytest.raises(CrashPoint):
        executor.run(lambda: disk.write(0, 4096))


def test_backoff_grows_exponentially():
    policy = RetryPolicy(max_attempts=4, base_backoff_seconds=1.0, multiplier=2.0)
    assert [policy.backoff_seconds(i) for i in range(3)] == [1.0, 2.0, 4.0]


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


# ---------------------------------------------------------------------------
# Checksummed WAL: torn tails
# ---------------------------------------------------------------------------


def make_wal(plan):
    runtime = EngineRuntime()
    disk = FaultyDisk(
        DiskModel.hdd(), runtime.clock, plan=plan, runtime=runtime
    )
    return WriteAheadLog(disk), runtime


def test_wal_torn_force_truncates_tail_at_replay():
    plan = FaultPlan(armed=False)
    wal, runtime = make_wal(plan)
    wal.append("a", "first", nbytes=100)
    wal.force()
    wal.append("b", "second", nbytes=100)
    wal.append("c", "third", nbytes=100)
    plan.add(FaultRule(kind="torn", op="write", at_access=1, torn_fraction=0.25))
    plan.arm()
    with pytest.raises(CrashPoint):
        wal.force()  # tears mid-"b": 50 of 200 pending bytes persist
    plan.disarm()
    replayed = [record.kind for record in wal.records()]
    assert replayed == ["a"]  # torn "b" and lost "c" are both gone
    assert wal.torn_truncations == 1
    assert runtime.metrics.value("wal.torn_tail_truncations") == 1


def test_wal_corrupt_record_raises():
    plan = FaultPlan(armed=False)
    wal, _ = make_wal(plan)
    wal.append("manifest", {"root": 1}, nbytes=64)
    wal.force()
    wal.disk.mark_corrupt(0, 64)
    with pytest.raises(CorruptionError):
        list(wal.records())


# ---------------------------------------------------------------------------
# Checksummed logical log: torn records dropped
# ---------------------------------------------------------------------------


def test_logical_log_drops_torn_record_at_replay():
    plan = FaultPlan(armed=False)
    runtime = EngineRuntime()
    disk = FaultyDisk(DiskModel.hdd(), runtime.clock, plan=plan, runtime=runtime)
    log = LogicalLog(disk, DurabilityMode.ASYNC, group_commit_bytes=1 << 30)
    log.log(0, "put", b"a" * 26, b"v")  # 51 bytes with overhead
    log.log(1, "put", b"b" * 26, b"v")
    plan.add(FaultRule(kind="torn", op="write", at_access=1, torn_fraction=0.7))
    plan.arm()
    with pytest.raises(CrashPoint):
        log.force()  # first record persists whole, second is torn
    plan.disarm()
    seqnos = [record.seqno for record in log.replay()]
    assert seqnos == [0]
    assert log.torn_records_dropped == 1
    assert runtime.metrics.value("log.torn_records_dropped") == 1


def test_logical_log_corrupt_range_raises():
    runtime = EngineRuntime()
    disk = FaultyDisk(DiskModel.hdd(), runtime.clock, plan=FaultPlan(armed=False))
    log = LogicalLog(disk, DurabilityMode.SYNC)
    log.log(0, "put", b"key", b"value")
    disk.mark_corrupt(0, 8)
    with pytest.raises(CorruptionError):
        list(log.replay())


# ---------------------------------------------------------------------------
# Checksummed pages
# ---------------------------------------------------------------------------


def test_pagefile_detects_corrupted_page():
    runtime = EngineRuntime()
    disk = FaultyDisk(DiskModel.hdd(), runtime.clock, plan=FaultPlan(), runtime=runtime)
    pagefile = PageFile(disk, page_size=4096)
    pagefile.write_page(3, ("payload",))
    disk.mark_corrupt(3 * 4096, 4096)
    with pytest.raises(CorruptionError):
        pagefile.read_page(3)
    assert runtime.metrics.value("pagefile.corrupt_reads") == 1
    assert pagefile.corrupt_reads == 1


def test_pagefile_rewrite_heals_corruption():
    disk = FaultyDisk(DiskModel.hdd(), VirtualClock(), plan=FaultPlan())
    pagefile = PageFile(disk, page_size=4096)
    pagefile.write_page(0, "old")
    disk.mark_corrupt(0, 4096)
    pagefile.write_page(0, "new")  # clean rewrite heals the range
    assert pagefile.read_page(0) == "new"


def test_pagefile_read_run_verifies_every_page():
    disk = FaultyDisk(DiskModel.hdd(), VirtualClock(), plan=FaultPlan())
    pagefile = PageFile(disk, page_size=4096)
    pagefile.write_run(0, ["p0", "p1", "p2"])
    disk.mark_corrupt(1 * 4096, 4096)
    with pytest.raises(CorruptionError):
        pagefile.read_run(0, 3)


def test_pagefile_torn_run_keeps_whole_prefix_pages():
    plan = FaultPlan(armed=False)
    disk = FaultyDisk(DiskModel.hdd(), VirtualClock(), plan=plan)
    pagefile = PageFile(disk, page_size=4096)
    plan.add(
        FaultRule(kind="torn", op="write", at_access=1, torn_fraction=0.55)
    )
    plan.arm()
    with pytest.raises(CrashPoint):
        pagefile.write_run(0, ["p0", "p1", "p2", "p3"])  # tears inside p2
    plan.disarm()
    assert pagefile.read_page(0) == "p0"
    assert pagefile.read_page(1) == "p1"
    with pytest.raises(CorruptionError):
        pagefile.read_page(2)  # the straddling page is torn
    assert 3 not in pagefile  # never reached the device


def test_pagefile_transient_reads_are_retried():
    runtime = EngineRuntime()
    plan = FaultPlan.transient(every=2, count=1)
    disk = FaultyDisk(DiskModel.hdd(), runtime.clock, plan=plan, runtime=runtime)
    executor = RetryExecutor(RetryPolicy(), runtime.clock, runtime=runtime)
    pagefile = PageFile(disk, page_size=4096, retry=executor)
    pagefile.write_page(0, "v")  # access 1
    assert pagefile.read_page(0) == "v"  # access 2 faults, retried
    assert runtime.metrics.value("retry.retries") == 1


# ---------------------------------------------------------------------------
# Stasis wiring and engine-level hardening
# ---------------------------------------------------------------------------


def test_stasis_builds_faulty_disks_from_plan():
    plan = FaultPlan()
    stasis = Stasis(fault_plan=plan)
    assert isinstance(stasis.data_disk, FaultyDisk)
    assert isinstance(stasis.log_disk, FaultyDisk)
    assert stasis.data_disk.plan is plan and stasis.log_disk.plan is plan
    assert stasis.retry is not None  # defaulted with a plan present
    assert stasis.pagefile.retry is stasis.retry
    assert stasis.wal.retry is stasis.retry


def test_stasis_healthy_by_default():
    stasis = Stasis()
    assert not isinstance(stasis.data_disk, FaultyDisk)
    assert stasis.retry is None


def test_engine_completes_workload_under_transient_faults():
    plan = FaultPlan.transient(probability=0.05, seed=11)
    options = BLSMOptions(
        c0_bytes=16 * 1024,
        buffer_pool_pages=16,
        durability=DurabilityMode.SYNC,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=6, base_backoff_seconds=1e-4),
    )
    tree = BLSM(options)
    for i in range(600):
        tree.put(b"k%04d" % (i % 150), b"v%06d" % i)
    metrics = tree.stasis.runtime.metrics
    assert metrics.value("faults.transient_errors") > 0
    assert metrics.value("retry.retries") > 0
    assert metrics.value("retry.backoff_seconds") > 0.0
    assert metrics.value("retry.exhausted") == 0
    for i in range(150):
        assert tree.get(b"k%04d" % i) is not None


def test_engine_exhausted_retries_surface_as_io_fault():
    # Every access fails; built disarmed so construction stays healthy.
    plan = FaultPlan([FaultRule(kind="transient", every=1)], armed=False)
    options = BLSMOptions(
        c0_bytes=16 * 1024,
        durability=DurabilityMode.SYNC,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=2, base_backoff_seconds=1e-5),
    )
    tree = BLSM(options)
    tree.put(b"warm", b"x")  # healthy write while disarmed
    plan.arm()
    with pytest.raises(IOFaultError):
        for i in range(50):
            tree.put(b"k%d" % i, b"v")


def test_torn_wal_force_recovers_previous_manifest():
    plan = FaultPlan(armed=False)
    options = BLSMOptions(
        c0_bytes=8 * 1024, durability=DurabilityMode.SYNC, fault_plan=plan
    )
    tree = BLSM(options)
    model = {}
    for i in range(400):
        key = b"user%04d" % (i % 120)
        tree.put(key, b"v%06d" % i)
        model[key] = b"v%06d" % i
    plan.add(
        FaultRule(
            kind="torn", op="write", device="log", every=1,
            torn_fraction=0.3, count=1,
        )
    )
    plan.arm()
    crashed = False
    try:
        for i in range(400, 1200):
            key = b"user%04d" % (i % 120)
            tree.put(key, b"v%06d" % i)
            model[key] = b"v%06d" % i
    except CrashPoint:
        crashed = True
        del model[key]  # the in-flight write was never acknowledged
    assert crashed
    plan.disarm()
    tree.stasis.crash()
    recovered = BLSM.recover(tree.stasis, options)
    for k, v in model.items():
        got = recovered.get(k)
        assert got == v or (got is None and k not in model)

def test_jittered_retry_replay_is_bit_for_bit_deterministic():
    # The jitter seed travels with the RetryPolicy: replaying the same
    # faulted trace under the same policy must reproduce the identical
    # backoff schedule, virtual-clock timeline, and final state digest.
    def run(policy_seed):
        from repro.baselines.blsm_engine import BLSMEngine

        engine = BLSMEngine(
            BLSMOptions(
                c0_bytes=16 * 1024,
                buffer_pool_pages=16,
                durability=DurabilityMode.SYNC,
                fault_plan=FaultPlan.transient(probability=0.05, seed=7),
                retry=RetryPolicy(
                    max_attempts=6,
                    base_backoff_seconds=1e-4,
                    jitter=0.5,
                    seed=policy_seed,
                ),
            )
        )
        for i in range(500):
            engine.put(b"k%04d" % (i % 150), b"v%06d" % i)
        digest = engine.state_digest()
        metrics = engine.tree.stasis.runtime.metrics
        outcome = (
            digest,
            engine.clock.now,
            metrics.value("retry.retries"),
            metrics.value("retry.backoff_seconds"),
        )
        engine.close()
        return outcome

    first = run(policy_seed=3)
    second = run(policy_seed=3)
    assert first[2] > 0, "fault plan never fired; the test proves nothing"
    assert first == second
    # A different policy seed draws a different jitter sequence: same
    # logical state, different backoff schedule (the jitter is real).
    other = run(policy_seed=4)
    assert other[0] == first[0]
    assert other[3] != first[3]
