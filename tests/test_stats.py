"""Unit tests for I/O statistics counters."""

import pytest

from repro.sim import IOStats


def test_defaults_are_zero():
    stats = IOStats()
    assert stats.seeks == 0
    assert stats.total_bytes == 0
    assert stats.busy_seconds == 0.0


def test_snapshot_is_independent():
    stats = IOStats(seeks=1, bytes_read=100)
    snap = stats.snapshot()
    stats.seeks += 5
    stats.bytes_read += 50
    assert snap.seeks == 1
    assert snap.bytes_read == 100


def test_delta_subtracts_counters():
    earlier = IOStats(seeks=2, read_ops=3, bytes_read=100, busy_seconds=0.5)
    later = IOStats(seeks=7, read_ops=10, bytes_read=450, busy_seconds=2.0)
    delta = later.delta(earlier)
    assert delta.seeks == 5
    assert delta.read_ops == 7
    assert delta.bytes_read == 350
    assert delta.busy_seconds == pytest.approx(1.5)


def test_total_bytes_sums_both_directions():
    stats = IOStats(bytes_read=10, bytes_written=30)
    assert stats.total_bytes == 40


def test_addition_combines_counters():
    a = IOStats(seeks=1, write_ops=2, bytes_written=10)
    b = IOStats(seeks=3, write_ops=4, bytes_written=20)
    c = a + b
    assert c.seeks == 4
    assert c.write_ops == 6
    assert c.bytes_written == 30
