"""Bloom filters (Section 3.1, Section 4.4.3)."""

from repro.bloom.filter import BloomFilter

__all__ = ["BloomFilter"]
