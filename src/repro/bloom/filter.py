"""Bloom filter based on double hashing (Kirsch & Mitzenmacher).

The paper's filters (Section 4.4.3) use double hashing: two independent
64-bit hashes ``h1, h2`` derive all ``k`` probe positions as
``h1 + i * h2 (mod m)``, which provides the same asymptotic false-positive
rate as ``k`` independent hash functions at a fraction of the cost.

Sizing follows Section 3.1: the engine tracks the number of keys in each
tree component and sizes the filter for a false-positive rate below 1 %
(about 10 bits per item, ``k = 7``).  Updates are monotonic — bits only
flip from 0 to 1 — and the on-disk trees are append-only, so deletion
support is unnecessary.
"""

from __future__ import annotations

import hashlib
import math

_blake2b = hashlib.blake2b

_MIN_BITS = 64


def optimal_bits(capacity: int, false_positive_rate: float) -> int:
    """Bits needed for ``capacity`` items at the target false-positive rate."""
    if capacity <= 0:
        return _MIN_BITS
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError(
            f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
        )
    bits = -capacity * math.log(false_positive_rate) / (math.log(2) ** 2)
    return max(_MIN_BITS, int(math.ceil(bits)))


def optimal_hash_count(bits: int, capacity: int) -> int:
    """Number of probes minimizing the false-positive rate."""
    if capacity <= 0:
        return 1
    return max(1, round(bits / capacity * math.log(2)))


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys."""

    __slots__ = ("_bits", "_nbits", "_nhashes", "_ninserted")

    def __init__(self, nbits: int, nhashes: int) -> None:
        if nbits <= 0 or nhashes <= 0:
            raise ValueError(
                f"nbits and nhashes must be positive, got {nbits}, {nhashes}"
            )
        self._nbits = nbits
        self._nhashes = nhashes
        self._bits = bytearray((nbits + 7) // 8)
        self._ninserted = 0

    @classmethod
    def for_capacity(
        cls, capacity: int, false_positive_rate: float = 0.01
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` keys at the target FPR (<1 % default)."""
        nbits = optimal_bits(capacity, false_positive_rate)
        return cls(nbits, optimal_hash_count(nbits, max(1, capacity)))

    @property
    def nbits(self) -> int:
        return self._nbits

    @property
    def nhashes(self) -> int:
        return self._nhashes

    @property
    def ninserted(self) -> int:
        return self._ninserted

    @property
    def nbytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def add(self, key: bytes) -> None:
        """Insert a key.  Monotonic: bits only ever flip from 0 to 1."""
        # h1 + i*h2 computed incrementally with locals bound outside the
        # loop: adds and probes run per merged record and per point read,
        # so the k-probe loop is hot.  Bit positions are identical to the
        # closed form (h1 + i*h2 mod m).
        digest = _blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full-period
        bits = self._bits
        nbits = self._nbits
        for _ in range(self._nhashes):
            bit = h1 % nbits
            bits[bit >> 3] |= 1 << (bit & 7)
            h1 += h2
        self._ninserted += 1

    def __contains__(self, key: bytes) -> bool:
        digest = _blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full-period
        bits = self._bits
        nbits = self._nbits
        for _ in range(self._nhashes):
            bit = h1 % nbits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
            h1 += h2
        return True

    def to_bytes(self) -> bytes:
        """The raw bit array, for persistence (Section 4.4.3)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls, nbits: int, nhashes: int, data: bytes, ninserted: int = 0
    ) -> "BloomFilter":
        """Reconstruct a filter from persisted bits."""
        bloom = cls(nbits, nhashes)
        if len(data) != len(bloom._bits):
            raise ValueError(
                f"expected {len(bloom._bits)} bytes of bits, got {len(data)}"
            )
        bloom._bits = bytearray(data)
        bloom._ninserted = ninserted
        return bloom

    def expected_false_positive_rate(self) -> float:
        """Predicted FPR given how many keys have actually been inserted."""
        if self._ninserted == 0:
            return 0.0
        fill = 1.0 - math.exp(-self._nhashes * self._ninserted / self._nbits)
        return fill**self._nhashes

    @staticmethod
    def _hash_pair(key: bytes) -> tuple[int, int]:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full-period
        return h1, h2

    def __repr__(self) -> str:
        return (
            f"BloomFilter(nbits={self._nbits}, nhashes={self._nhashes}, "
            f"ninserted={self._ninserted})"
        )
