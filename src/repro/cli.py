"""Command-line interface: run workloads and print the paper's tables.

Examples::

    python -m repro workload --engine blsm --workload a \\
        --records 2000 --ops 5000 --disk hdd
    python -m repro workload --engine leveldb --read 0.2 --blind-write 0.8
    python -m repro amplification           # Figure 2's series
    python -m repro cache-table             # Table 2 (Appendix A)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import cache_gb_table, figure2_series
from repro.analysis.five_minute import STANDARD_DEVICES
from repro.baselines import KVEngine
from repro.engines import (
    CRASH_ENGINE_NAMES,
    ENGINE_NAMES,
    EngineConfig,
    build_engine,
)
from repro.obs.report import (
    CompareRule,
    Gate,
    ReportError,
    compare_reports,
    comparison_passed,
    evaluate_gates,
    format_comparison,
    format_gate_table,
    gates_passed,
    load_report,
    new_report,
)
from repro.sim import DiskModel
from repro.ycsb import (
    OpKind,
    WorkloadSpec,
    load_phase,
    run_batched_workload,
    run_workload,
    standard_workload,
)

ENGINES = ENGINE_NAMES  # single source of truth: repro.engines
DISKS = ("hdd", "ssd", "single-hdd")
PARTITIONERS = ("hash", "range")


def _disk(name: str) -> DiskModel:
    if name == "hdd":
        return DiskModel.hdd()
    if name == "ssd":
        return DiskModel.ssd()
    return DiskModel.single_hdd()


def _fault_plan(args: argparse.Namespace):
    """A FaultPlan from the ``--fault-*`` flags, or ``None``."""
    transient = getattr(args, "fault_transient", 0.0)
    latency = getattr(args, "fault_latency", 0.0)
    if transient <= 0.0 and latency <= 0.0:
        return None
    from repro.faults import FaultPlan, FaultRule

    seed = getattr(args, "fault_seed", 0)
    plan = FaultPlan(seed=seed)
    if transient > 0.0:
        plan.add(FaultRule(kind="transient", probability=transient))
    if latency > 0.0:
        plan.add(
            FaultRule(kind="latency", extra_seconds=latency, probability=0.01)
        )
    return plan


def _engine(
    name: str,
    disk: DiskModel,
    c0_bytes: int,
    cache_pages: int,
    durability: str = "async",
    compression: float = 1.0,
    scheduler: str = "spring_gear",
    fault_plan=None,
    log_disk: DiskModel | None = None,
    data_stripes: int = 1,
    background_merges: bool = False,
    shards: int = 4,
    partitioner: str = "hash",
    partitioner_sample: tuple[bytes, ...] | None = None,
) -> KVEngine:
    """Build an engine via the registry; flag misuse exits, not tracebacks."""
    config = EngineConfig(
        disk=disk,
        c0_bytes=c0_bytes,
        cache_pages=cache_pages,
        durability=durability,
        compression=compression,
        scheduler=scheduler,
        fault_plan=fault_plan,
        log_disk=log_disk,
        data_stripes=data_stripes,
        background_merges=background_merges,
        shards=shards,
        partitioner=partitioner,
        partitioner_sample=partitioner_sample,
    )
    try:
        return build_engine(name, config)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _workload_spec(args: argparse.Namespace) -> WorkloadSpec:
    if args.workload is not None:
        return standard_workload(
            args.workload, args.records, args.ops, value_bytes=args.value_bytes
        )
    proportions = {
        "read_proportion": args.read,
        "update_proportion": args.update,
        "blind_write_proportion": args.blind_write,
        "insert_proportion": args.insert,
        "scan_proportion": args.scan,
    }
    total = sum(proportions.values())
    if total <= 0:
        proportions = {"read_proportion": 0.5, "blind_write_proportion": 0.5}
        total = 1.0
    normalized = {name: p / total for name, p in proportions.items()}
    return WorkloadSpec(
        record_count=args.records,
        operation_count=args.ops,
        request_distribution=args.distribution,
        value_bytes=args.value_bytes,
        **normalized,
    )


def _placement(args: argparse.Namespace) -> dict:
    """Device-placement kwargs from --log-device/--data-stripes/... flags."""
    log_device = getattr(args, "log_device", None)
    return {
        "log_disk": _disk(log_device) if log_device else None,
        "data_stripes": getattr(args, "data_stripes", 1),
        "background_merges": getattr(args, "background_merges", False),
    }


def _sharding(args: argparse.Namespace, spec: WorkloadSpec) -> dict:
    """Sharding kwargs from --shards/--partitioner flags.

    A range partitioner needs balanced boundaries, so it is seeded with
    the workload's own load keys (the sample every deployment would
    have: the keys it is about to load).
    """
    partitioner = getattr(args, "partitioner", "hash")
    sample: tuple[bytes, ...] | None = None
    if partitioner == "range":
        from repro.ycsb.generator import OperationGenerator

        sample = tuple(OperationGenerator(spec).load_keys())
    return {
        "shards": getattr(args, "shards", 4),
        "partitioner": partitioner,
        "partitioner_sample": sample,
    }


def _cmd_workload(args: argparse.Namespace) -> int:
    disk = _disk(args.disk)
    spec = _workload_spec(args)
    engine = _engine(
        args.engine, disk, args.c0_bytes, args.cache_pages,
        durability=args.durability, compression=args.compression,
        scheduler=args.scheduler, fault_plan=_fault_plan(args),
        **_placement(args), **_sharding(args, spec),
    )
    print(
        f"engine={engine.name} disk={disk.name} records={spec.record_count} "
        f"ops={spec.operation_count} dist={spec.request_distribution}"
    )
    load = load_phase(engine, spec, seed=args.seed)
    print(f"load : {load.throughput:12,.0f} ops/s (virtual)")
    if spec.operation_count > 0:
        window = (
            args.timeseries if getattr(args, "timeseries", 0) > 0 else None
        )
        result = run_workload(
            engine, spec, seed=args.seed + 1, timeseries_window=window
        )
        if result.timeseries is not None:
            from repro.ycsb.ascii_plot import render_timeseries

            for line in render_timeseries(
                "ops/s", result.timeseries.throughputs()
            ):
                print(line)
        latency = result.all_latencies()
        print(
            f"run  : {result.throughput:12,.0f} ops/s   "
            f"p50 {latency.percentile(50) * 1e6:8.1f} us   "
            f"p99 {latency.percentile(99) * 1e6:8.1f} us   "
            f"max {latency.max * 1e3:8.2f} ms"
        )
        for kind in OpKind:
            stats = result.latencies.get(kind)
            if stats is None:
                continue
            print(
                f"  {kind.value:12s} n={stats.count:<8d} "
                f"mean {stats.mean * 1e6:8.1f} us  "
                f"p99 {stats.percentile(99) * 1e6:8.1f} us"
            )
    summary = engine.io_summary()
    print(
        f"io   : seeks={summary['data_seeks']} "
        f"read={summary['data_bytes_read'] / 1e6:.1f}MB "
        f"written={summary['data_bytes_written'] / 1e6:.1f}MB"
    )
    engine.close()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Run the same workload against every engine, print a table."""
    disk = _disk(args.disk)
    spec = _workload_spec(args)
    print(
        f"{'engine':12s}{'load ops/s':>12s}{'run ops/s':>12s}"
        f"{'p99 (ms)':>10s}{'max (ms)':>10s}{'seeks':>8s}"
    )
    for name in ENGINES:
        engine = _engine(name, disk, args.c0_bytes, args.cache_pages)
        load = load_phase(engine, spec, seed=args.seed)
        seeks_before = engine.seeks()
        if spec.operation_count > 0:
            result = run_workload(engine, spec, seed=args.seed + 1)
            latency = result.all_latencies()
            run_ops = result.throughput
            p99 = latency.percentile(99) * 1e3
            worst = latency.max * 1e3
        else:
            run_ops = p99 = worst = 0.0
        print(
            f"{engine.name:12s}{load.throughput:12,.0f}{run_ops:12,.0f}"
            f"{p99:10.2f}{worst:10.2f}{engine.seeks() - seeks_before:8d}"
        )
        engine.close()
    return 0


def _cmd_amplification(args: argparse.Namespace) -> int:
    series = figure2_series(max_ratio=args.max_ratio, points_per_unit=1)
    labels = list(series)
    print(f"{'data/RAM':>9s}" + "".join(f"{label:>8s}" for label in labels))
    for i in range(len(series["bloom"])):
        ratio = series["bloom"][i][0]
        row = f"{ratio:9.0f}"
        for label in labels:
            row += f"{series[label][i][1]:8.2f}"
        print(row)
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.ycsb.trace import record_workload_trace

    spec = _workload_spec(args)
    with open(args.output, "w") as handle:
        count = record_workload_trace(spec, handle, seed=args.seed)
    print(f"recorded {count} operations to {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.ycsb.trace import replay_trace

    disk = _disk(args.disk)
    engine = _engine(args.engine, disk, args.c0_bytes, args.cache_pages)
    with open(args.trace) as handle:
        operations, stats = replay_trace(engine, handle)
    elapsed = engine.clock.now
    throughput = operations / elapsed if elapsed > 0 else 0.0
    print(
        f"replayed {operations} ops on {engine.name} in "
        f"{elapsed * 1e3:.1f} ms (virtual) -> {throughput:,.0f} ops/s"
    )
    print(
        f"latency p50 {stats.percentile(50) * 1e6:.1f} us  "
        f"p99 {stats.percentile(99) * 1e6:.1f} us  "
        f"max {stats.max * 1e3:.2f} ms"
    )
    engine.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a workload and dump or summarize its observability trace."""
    from repro.obs import (
        format_device_summary,
        format_fault_summary,
        format_shard_summary,
        format_summary,
    )

    disk = _disk(args.disk)
    spec = _workload_spec(args)
    engine = _engine(
        args.engine, disk, args.c0_bytes, args.cache_pages,
        durability=args.durability, compression=args.compression,
        scheduler=args.scheduler, fault_plan=_fault_plan(args),
        **_placement(args), **_sharding(args, spec),
    )
    load_phase(engine, spec, seed=args.seed)
    if spec.operation_count > 0:
        run_workload(engine, spec, seed=args.seed + 1)
    runtime = engine.runtime
    if runtime is None:
        print(f"{engine.name} exposes no observability runtime")
        engine.close()
        return 1
    events = runtime.trace.events()
    if args.dump:
        if args.last > 0:
            events = events[-args.last:]
        for event in events:
            print(event.format())
    else:
        for line in format_summary(events):
            print(line)
        for line in format_device_summary(runtime):
            print(line)
        for line in format_shard_summary(engine):
            print(line)
        for line in format_fault_summary(runtime.metrics):
            print(line)
        if runtime.trace.dropped:
            print(
                f"(ring dropped {runtime.trace.dropped} older events; "
                f"capacity {runtime.trace.capacity})"
            )
    engine.close()
    return 0


def _cmd_crashtest(args: argparse.Namespace) -> int:
    """Crash-point enumeration: crash at every Nth I/O boundary, recover,
    verify acknowledged writes (ALICE-style, docs/fault-injection.md)."""
    from repro.faults.crashpoints import enumerate_crash_points, format_report

    progress = None if args.quiet else (lambda line: print(line, flush=True))
    report = enumerate_crash_points(
        engine=args.engine,
        ops=args.ops,
        every=args.every,
        seed=args.seed,
        progress=progress,
    )
    print(format_report(report))
    return 0 if report.ok else 1


def _cmd_migrate(args: argparse.Namespace) -> int:
    """Online shard migration: crash matrix and live-traffic benchmark.

    With ``--crash-matrix``: enumerate a crash at every migration
    journal-force and step boundary, recover, verify acked writes plus
    fleet invariants, resume to completion (the robustness gate).  With
    ``--bench``: run the live split-under-Zipfian-traffic benchmark and
    report p99 timelines against a quiescent baseline; ``--json`` writes
    the machine-readable result (the shared
    :class:`~repro.obs.report.BenchReport` envelope) and
    ``--assert-p99-ratio`` turns it into the bounded-stall CI gate.
    Neither flag runs both.
    """
    run_matrix = args.crash_matrix or not args.bench
    run_bench = args.bench or not args.crash_matrix
    progress = None if args.quiet else (lambda line: print(line, flush=True))
    status = 0
    if run_matrix:
        from repro.faults.crashpoints import (
            enumerate_migration_crash_points,
            format_migration_report,
        )

        report = enumerate_migration_crash_points(
            ops=args.ops, seed=args.seed, progress=progress
        )
        print(format_migration_report(report))
        if not report.ok:
            status = 1
    if run_bench:
        from repro.shard.migration import live_migration_bench

        result = live_migration_bench(
            records=args.records,
            batches=args.batches,
            shards=args.shards,
            seed=args.seed,
        )
        migration = result["migrating"]["migration"]
        print(
            f"live migration bench: {args.records} records, "
            f"{args.batches} batches, {args.shards} shards"
        )
        print(
            f"  quiescent p99 (read/write): "
            f"{result['quiescent']['read_p99'] * 1e3:.3f} / "
            f"{result['quiescent']['write_p99'] * 1e3:.3f} ms"
        )
        print(
            f"  migrating p99 (read/write): "
            f"{result['migrating']['read_p99'] * 1e3:.3f} / "
            f"{result['migrating']['write_p99'] * 1e3:.3f} ms"
        )
        print(
            f"  migrations completed: {migration['completed']} "
            f"({migration['copied_keys']} keys copied, "
            f"{migration['retired_keys']} retired, "
            f"{migration['steps']} steps, "
            f"{migration['deferred_steps']} deferred)"
        )
        print(f"  p99 ratio (migrating/quiescent): {result['p99_ratio']:.2f}")
        config_keys = (
            "records", "batches", "batch", "value_bytes", "shards", "seed",
            "hot_fraction",
        )
        config = {
            key: result[key] for key in config_keys if key in result
        }
        report = new_report(
            "live-migration",
            config,
            {
                key: value
                for key, value in result.items()
                if key != "bench" and key not in config
            },
        )
        if args.json:
            report.save(args.json)
            print(f"  wrote {args.json}")
        gates = [
            Gate(
                "migrations completed under traffic",
                "migrating.migration.completed", ">=", 1.0,
            ),
        ]
        if args.assert_p99_ratio:
            gates.append(
                Gate(
                    "migrating/quiescent p99 ratio",
                    "p99_ratio", "<=", args.assert_p99_ratio, unit="x",
                )
            )
        gate_results = evaluate_gates(report, gates)
        for line in format_gate_table(gate_results):
            print(f"  {line}")
        if not gates_passed(gate_results):
            status = 1
    return status


def _cmd_sessions(args: argparse.Namespace) -> int:
    """Multi-session open-loop bench: group commit vs per-write syncing.

    Drives N concurrent sessions against one engine in ``group``
    durability (writes commit through the leader-based queue with
    ``wait=False``), then the identical offered load against ``sync``
    (every write forces).  Reports queueing-delay percentiles and their
    timeline, ack latency, forces per commit/op, and the group-size
    histogram.  ``--json`` writes the machine-readable result (the
    shared :class:`~repro.obs.report.BenchReport` envelope);
    ``--assert-force-ratio`` / ``--assert-forces-per-commit`` /
    ``--assert-queueing-p99`` compile into declarative
    :class:`~repro.obs.report.Gate` rows and turn the run into the CI
    gate.
    """
    from repro.ycsb import run_sessions

    disk = _disk(args.disk)
    spec = WorkloadSpec(
        record_count=args.records,
        operation_count=args.ops,
        read_proportion=args.read,
        blind_write_proportion=1.0 - args.read,
        request_distribution="uniform",
        value_bytes=args.value_bytes,
    )

    def measure(durability: str):
        engine = _engine(
            args.engine,
            disk,
            args.c0_bytes,
            args.cache_pages,
            durability=durability,
            **_sharding(args, spec),
        )
        load_phase(engine, spec, seed=args.seed)
        result = run_sessions(
            engine,
            spec,
            args.rate,
            sessions=args.sessions,
            arrival=args.arrival,
            seed=args.seed + 1,
        )
        engine.close()
        return result

    group = measure("group")
    sync = measure("sync")
    ratio = (
        sync.forces_per_op / group.forces_per_op
        if group.forces_per_op > 0
        else float("inf")
    )
    print(
        f"sessions bench: engine={args.engine} sessions={args.sessions} "
        f"rate={args.rate:g}/s arrival={args.arrival} ops={args.ops} "
        f"({args.read:.0%} reads) disk={disk.name}"
    )
    for label, r in (("group", group), ("sync ", sync)):
        print(
            f"  {label}: forces/commit={r.forces_per_commit:.3f} "
            f"forces/op={r.forces_per_op:.3f} "
            f"queue p99={r.queueing.percentile(99.0) * 1e3:.3f} ms "
            f"p99.9={r.queueing.percentile(99.9) * 1e3:.3f} ms "
            f"ack p99={r.ack_latency.percentile(99.0) * 1e3:.3f} ms "
            f"achieved={r.achieved_rate:,.0f}/s"
        )
    sizes = sorted(group.group_sizes.items())
    histogram = " ".join(f"{size}x{count}" for size, count in sizes)
    print(f"  group sizes: {histogram}")
    print(f"  force ratio (sync/group): {ratio:.2f}x")
    report = new_report(
        "sessions-group-commit",
        {
            "engine": args.engine,
            "disk": disk.name,
            "records": args.records,
            "ops": args.ops,
            "value_bytes": args.value_bytes,
            "read_proportion": args.read,
            "sessions": args.sessions,
            "offered_rate": args.rate,
            "arrival": args.arrival,
            "c0_bytes": args.c0_bytes,
            "cache_pages": args.cache_pages,
            "seed": args.seed,
        },
        {
            "group": group.summary(),
            "sync": sync.summary(),
            "force_ratio": ratio,
        },
    )
    if args.json:
        report.save(args.json)
        print(f"  wrote {args.json}")
    gates: list[Gate] = []
    if args.assert_force_ratio > 0:
        gates.append(
            Gate(
                "force ratio (sync/group)",
                "force_ratio", ">=", args.assert_force_ratio, unit="x",
            )
        )
    if args.assert_forces_per_commit > 0:
        gates.append(
            Gate(
                "group forces/commit",
                "group.forces_per_commit", "<=",
                args.assert_forces_per_commit,
            )
        )
    if args.assert_queueing_p99 > 0:
        gates.append(
            Gate(
                "group queueing p99",
                "group.queueing.p99", "<=", args.assert_queueing_p99,
                scale=1e3, unit="ms",
            )
        )
    gate_results = evaluate_gates(report, gates)
    for line in format_gate_table(gate_results):
        print(f"  {line}")
    return 0 if gates_passed(gate_results) else 1


def _bench_policies(args: argparse.Namespace) -> int:
    """The compaction design-space sweep (``repro bench --policy ...``).

    Runs the identical workload — ``--records`` distinct loads then
    ``--ops`` uniform point reads — through every requested policy and
    reports, per policy: load and read throughput, measured write
    amplification (device bytes written per logical byte ingested) and
    read seeks per operation.  Bloom filters are disabled so the
    leveled-vs-tiered read-cost difference is visible rather than
    hidden behind filters; each tree drains its merge debt before the
    read phase so policies are compared at equal, settled data volume.

    ``--json`` writes the machine-readable result (the shared
    :class:`~repro.obs.report.BenchReport` envelope, policies keyed by
    name); ``--assert-crossover`` turns the sweep into the CI gate that
    tiered write-amp is strictly below leveled's while leveled reads
    strictly fewer seeks; and ``--assert-blsm3-floor`` guards the paper
    tree's read throughput against regressions.
    """
    import random

    from repro.analysis.amplification import policy_table
    from repro.baselines.compaction_engine import CompactionEngine
    from repro.core.compaction.policy import POLICY_NAMES
    from repro.core.options import BLSMOptions

    disk = _disk(args.disk)
    names = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
    keys = [b"user%08d" % i for i in range(args.records)]
    value = bytes(args.value_bytes)
    rows: list[dict] = []
    for policy in names:
        options = BLSMOptions(
            compaction_policy=policy,
            c0_bytes=args.c0_bytes,
            buffer_pool_pages=args.cache_pages,
            disk_model=disk,
            with_bloom_filters=False,
            level_ratio=args.level_ratio,
            tier_fanout=args.fanout,
            seed=args.seed,
        )
        engine = CompactionEngine(options)
        rng = random.Random(args.seed)
        load_order = list(keys)
        rng.shuffle(load_order)
        logical_bytes = 0
        started = engine.clock.now
        for key in load_order:
            engine.put(key, value)
            logical_bytes += len(key) + len(value)
        engine.tree.drain()  # settle merge debt: equal data volume
        load_seconds = engine.clock.now - started
        loaded = engine.io_summary()
        write_amp = loaded["data_bytes_written"] / max(1, logical_bytes)
        read_started = engine.clock.now
        seeks_before = engine.seeks()
        for _ in range(args.ops):
            assert engine.get(rng.choice(keys)) is not None
        read_seconds = engine.clock.now - read_started
        read_seeks = (engine.seeks() - seeks_before) / max(1, args.ops)
        view = engine.level_view()
        rows.append(
            {
                "policy": policy,
                "load_ops_per_s": args.records / max(1e-9, load_seconds),
                "read_ops_per_s": args.ops / max(1e-9, read_seconds),
                "write_amp": write_amp,
                "read_seeks_per_op": read_seeks,
                "logical_bytes": logical_bytes,
                "data_bytes_written": int(loaded["data_bytes_written"]),
                "level_runs": [len(level) for level in view["levels"]],
            }
        )
        engine.close()
    print(
        f"policy sweep: records={args.records} ops={args.ops} "
        f"value={args.value_bytes}B c0={args.c0_bytes}B disk={disk.name} "
        f"ratio={args.level_ratio:g} fanout={args.fanout} (bloom off)"
    )
    header = (
        f"{'policy':14s}{'load ops/s':>12s}{'read ops/s':>12s}"
        f"{'write-amp':>11s}{'seeks/op':>10s}  runs/level"
    )
    print(header)
    for row in rows:
        print(
            f"{row['policy']:14s}{row['load_ops_per_s']:12,.0f}"
            f"{row['read_ops_per_s']:12,.0f}{row['write_amp']:11.2f}"
            f"{row['read_seeks_per_op']:10.2f}  {row['level_runs']}"
        )
    by_policy = {row["policy"]: row for row in rows}
    checks: dict[str, bool] = {}
    if "leveled" in by_policy and "tiered" in by_policy:
        checks["tiered_write_amp_below_leveled"] = (
            by_policy["tiered"]["write_amp"]
            < by_policy["leveled"]["write_amp"]
        )
        checks["leveled_seeks_below_tiered"] = (
            by_policy["leveled"]["read_seeks_per_op"]
            < by_policy["tiered"]["read_seeks_per_op"]
        )
        checks["equal_data_volume"] = (
            by_policy["leveled"]["logical_bytes"]
            == by_policy["tiered"]["logical_bytes"]
        )
    report = new_report(
        "compaction-policy-sweep",
        {
            "records": args.records,
            "ops": args.ops,
            "value_bytes": args.value_bytes,
            "c0_bytes": args.c0_bytes,
            "cache_pages": args.cache_pages,
            "disk": disk.name,
            "level_ratio": args.level_ratio,
            "fanout": args.fanout,
            "seed": args.seed,
            "with_bloom_filters": False,
        },
        {
            "policies": by_policy,
            "crossover": checks,
            "analytic": policy_table(
                names, ratio=args.level_ratio, fanout=args.fanout
            ),
        },
    )
    if args.json:
        report.save(args.json)
        print(f"wrote {args.json}")
    gates: list[Gate] = []
    failed = False
    if args.assert_crossover:
        if not checks:
            print("FAIL: crossover assertion needs leveled and tiered runs")
            failed = True
        for name in checks:
            gates.append(
                Gate(f"crossover: {name}", f"crossover.{name}", "==", 1.0)
            )
    if args.assert_blsm3_floor > 0:
        gates.append(
            Gate(
                "blsm3 read throughput floor",
                "policies.blsm3.read_ops_per_s", ">=",
                args.assert_blsm3_floor, unit="ops/s",
            )
        )
    gate_results = evaluate_gates(report, gates)
    for line in format_gate_table(gate_results):
        print(line)
    return 1 if failed or not gates_passed(gate_results) else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Batched uniform-read throughput (YCSB C issued in client batches).

    Measures the tentpole claim of the sharded engine: a batch fans out
    across shards and costs the *max* of the per-shard device time, so N
    shards approach N-fold throughput on uniform reads.  With
    ``--baseline`` it runs the identical workload on a single-tree
    engine and prints the speedup; ``--assert-speedup X`` turns the run
    into a pass/fail gate (CI uses ``--baseline-stripes`` to give the
    baseline the same total device budget as the shards).
    """
    if args.policy != "none":
        return _bench_policies(args)
    disk = _disk(args.disk)
    spec = WorkloadSpec(
        record_count=args.records,
        operation_count=args.ops,
        read_proportion=1.0,
        request_distribution="uniform",
        value_bytes=args.value_bytes,
    )

    def measure(name: str, **overrides):
        engine = _engine(
            name, disk, args.c0_bytes, args.cache_pages, **overrides
        )
        load_phase(engine, spec, seed=args.seed, batch_size=args.batch)
        result = run_batched_workload(
            engine, spec, seed=args.seed + 1, batch_size=args.batch
        )
        return engine, result

    engine, result = measure(args.engine, **_sharding(args, spec))
    print(
        f"engine={engine.name} disk={disk.name} records={spec.record_count} "
        f"ops={spec.operation_count} batch={args.batch}"
    )
    batch = result.batch
    detail = ""
    if batch is not None and batch.batches > 0:
        detail = (
            f"   {batch.batches} batches, "
            f"mean batch {batch.latency.mean * 1e3:.2f} ms"
        )
    print(f"run  : {result.throughput:12,.0f} ops/s{detail}")
    from repro.obs import format_shard_summary

    for line in format_shard_summary(engine):
        print(line)
    engine.close()
    config = {
        "engine": args.engine,
        "disk": disk.name,
        "records": args.records,
        "ops": args.ops,
        "value_bytes": args.value_bytes,
        "batch": args.batch,
        "shards": args.shards,
        "partitioner": args.partitioner,
        "c0_bytes": args.c0_bytes,
        "cache_pages": args.cache_pages,
        "baseline": args.baseline,
        "baseline_stripes": args.baseline_stripes,
        "seed": args.seed,
    }
    metrics: dict = {
        "run": {
            "engine": engine.name,
            "throughput": result.throughput,
            "batch": batch.summary() if batch is not None else {},
        },
    }
    if args.baseline != "none":
        base_engine, base_result = measure(
            args.baseline, data_stripes=args.baseline_stripes
        )
        if base_result.throughput > 0:
            speedup = result.throughput / base_result.throughput
        else:
            speedup = float("inf")
        print(
            f"base : {base_result.throughput:12,.0f} ops/s "
            f"({base_engine.name}, {args.baseline_stripes} data device(s))"
        )
        print(f"speedup: {speedup:.2f}x")
        base_engine.close()
        metrics["baseline"] = {
            "engine": base_engine.name,
            "throughput": base_result.throughput,
            "stripes": args.baseline_stripes,
        }
        metrics["speedup"] = speedup
    report = new_report("sharded-batch-read", config, metrics)
    if args.json:
        report.save(args.json)
        print(f"wrote {args.json}")
    gates: list[Gate] = []
    if args.assert_speedup > 0:
        gates.append(
            Gate(
                "sharded speedup over baseline",
                "speedup", ">=", args.assert_speedup, unit="x",
            )
        )
    gate_results = evaluate_gates(report, gates)
    for line in format_gate_table(gate_results):
        print(line)
    return 0 if gates_passed(gate_results) else 1


def _cmd_stability(args: argparse.Namespace) -> int:
    """Performance-stability harness (``repro stability``, BENCH_9).

    Sweeps the scheduler/policy matrix under an extended open-loop
    sessions run, sampling windowed p50/p99/p99.9 write latency,
    queueing delay, commit-queue depth and the stall/backpressure
    counters into per-config time-series (docs/benchmarking.md).
    ``--json`` writes the shared BenchReport envelope (the committed
    ``BENCH_9.json``); ``--assert-bounded`` gates on the paper's
    bounded-latency claim — the spring-and-gear p99.9 write-latency
    ceiling strictly below the unthrottled baseline's.
    """
    from repro.analysis.stability import stability_table
    from repro.ycsb.stability import (
        STABILITY_MATRIX,
        run_stability_matrix,
        stability_report,
    )

    if args.configs == "all":
        configs = list(STABILITY_MATRIX.values())
    else:
        names = [name.strip() for name in args.configs.split(",") if name.strip()]
        unknown = [name for name in names if name not in STABILITY_MATRIX]
        if unknown:
            raise SystemExit(
                f"unknown stability config(s) {', '.join(unknown)}; "
                f"expected one of {', '.join(STABILITY_MATRIX)}"
            )
        configs = [STABILITY_MATRIX[name] for name in names]
    print(
        f"stability bench: duration={args.duration:g}s rate={args.rate:g}/s "
        f"sessions={args.sessions} arrival={args.arrival} "
        f"windows={args.windows} configs={','.join(c.name for c in configs)}"
    )
    progress = None if args.quiet else (lambda line: print(line, flush=True))
    results = run_stability_matrix(
        configs,
        progress=progress,
        duration_seconds=args.duration,
        rate=args.rate,
        sessions=args.sessions,
        arrival=args.arrival,
        records=args.records,
        value_bytes=args.value_bytes,
        read_proportion=args.read,
        c0_bytes=args.c0_bytes,
        cache_pages=args.cache_pages,
        windows=args.windows,
        seed=args.seed,
    )
    report = stability_report(
        results,
        {
            "configs": [c.name for c in configs],
            "duration_seconds": args.duration,
            "rate": args.rate,
            "sessions": args.sessions,
            "arrival": args.arrival,
            "records": args.records,
            "value_bytes": args.value_bytes,
            "read_proportion": args.read,
            "c0_bytes": args.c0_bytes,
            "cache_pages": args.cache_pages,
            "windows": args.windows,
            "seed": args.seed,
        },
    )
    print(stability_table(report))
    if args.json:
        report.save(args.json)
        print(f"wrote {args.json}")
    gates: list[Gate] = []
    if args.assert_bounded:
        gates.append(
            Gate(
                "bounded write latency (p99.9 ceiling)",
                "bounded_latency.bounded", "==", 1.0,
            )
        )
    if args.assert_ceiling > 0:
        gates.append(
            Gate(
                "spring_gear p99.9 ceiling",
                "configs.spring_gear.write_p999_ceiling", "<=",
                args.assert_ceiling, scale=1e3, unit="ms",
            )
        )
    gate_results = evaluate_gates(report, gates)
    for line in format_gate_table(gate_results):
        print(line)
    return 0 if gates_passed(gate_results) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Hot-path CPU profiler (``repro profile``, BENCH_10).

    Measures simulated operations per host CPU-second on the default
    YCSB mix, swept across the registered memtable backends
    (``--memtable all`` — the Szanto-style structure ablation), with
    optional per-subsystem phase microbenches.  ``--json`` writes the
    shared BenchReport envelope (the committed ``BENCH_10.json``);
    ``--assert-min-ops`` is the conservative CI floor and
    ``--assert-speedup`` gates the optimization acceptance (best
    configuration vs the committed pre-optimization baseline).
    """
    from repro.memtable import MEMTABLE_NAMES
    from repro.ycsb.profile import (
        memtable_microbench,
        profile_memtables,
        profile_phases,
        profile_report,
    )

    if args.memtable == "all":
        kinds = list(MEMTABLE_NAMES)
    else:
        kinds = [name.strip() for name in args.memtable.split(",") if name.strip()]
        unknown = [name for name in kinds if name not in MEMTABLE_NAMES]
        if unknown:
            raise SystemExit(
                f"unknown memtable(s) {', '.join(unknown)}; "
                f"expected one of {', '.join(MEMTABLE_NAMES)}"
            )
    print(
        f"profile bench: workload={args.workload} records={args.records} "
        f"ops={args.ops} trials={args.trials} "
        f"memtables={','.join(kinds)}"
    )
    progress = None if args.quiet else (lambda line: print(line, flush=True))
    results = profile_memtables(
        kinds,
        progress=progress,
        workload=args.workload,
        records=args.records,
        operations=args.ops,
        seed=args.seed,
        trials=args.trials,
        observability=args.observability,
        spin_us=args.spin_us,
    )
    micro = {
        kind: memtable_microbench(kind, n=args.records, seed=args.seed)
        for kind in kinds
    }
    phases = profile_phases(seed=args.seed) if args.phases else None
    report = profile_report(
        results,
        {
            "workload": args.workload,
            "records": args.records,
            "operations": args.ops,
            "trials": args.trials,
            "seed": args.seed,
            "memtables": kinds,
            "observability": args.observability,
        },
        micro=micro,
        phases=phases,
    )
    print(
        f"{'memtable':10s}{'ops/cpu-s':>12s}{'speedup':>9s}"
        f"{'insert':>9s}{'read':>9s}{'scan':>9s}{'drain':>9s}  (ns/op)"
    )
    for result in sorted(
        results, key=lambda r: r.ops_per_cpu_second, reverse=True
    ):
        costs = micro[result.memtable]
        print(
            f"{result.memtable:10s}{result.ops_per_cpu_second:>12,.0f}"
            f"{result.speedup_vs_baseline:>8.2f}x"
            f"{costs['insert_ns']:>9.0f}{costs['point_read_ns']:>9.0f}"
            f"{costs['scan_ns']:>9.0f}{costs['drain_ns']:>9.0f}"
        )
    if phases:
        print("phases: " + "  ".join(
            f"{name.removesuffix('_ns')}={value:.0f}ns"
            for name, value in phases.items()
        ))
    if args.json:
        report.save(args.json)
        print(f"wrote {args.json}")
    gates: list[Gate] = []
    if args.assert_min_ops > 0:
        gates.append(
            Gate(
                "ops/CPU-second floor (best)",
                "best.ops_per_cpu_second", ">=", args.assert_min_ops,
            )
        )
    if args.assert_speedup > 0:
        gates.append(
            Gate(
                "speedup vs pre-PR baseline (best)",
                "best.speedup_vs_baseline", ">=", args.assert_speedup,
                unit="x",
            )
        )
    gate_results = evaluate_gates(report, gates)
    for line in format_gate_table(gate_results):
        print(line)
    return 0 if gates_passed(gate_results) else 1


def _compare_rules(baseline, tolerance: float) -> list[CompareRule]:
    """The default perf-gate rule set for a baseline report's bench."""
    bench = baseline.bench
    if bench == "profile":
        from repro.ycsb.profile import profile_compare_rules

        return profile_compare_rules(baseline, tolerance)
    if bench == "stability":
        from repro.analysis.stability import stability_compare_rules

        return stability_compare_rules(baseline, tolerance)
    if bench == "compaction-policy-sweep":
        rules: list[CompareRule] = []
        for name in baseline.metrics.get("policies", {}):
            rules.append(
                CompareRule(
                    f"policies.{name}.read_ops_per_s", "higher", tolerance
                )
            )
            rules.append(
                CompareRule(f"policies.{name}.write_amp", "lower", tolerance)
            )
        return rules
    if bench == "sessions-group-commit":
        return [
            CompareRule("force_ratio", "higher", tolerance),
            CompareRule("group.forces_per_commit", "lower", tolerance),
            CompareRule("group.ack_latency.p99", "lower", tolerance),
        ]
    if bench == "live-migration":
        return [CompareRule("p99_ratio", "lower", tolerance)]
    return []


def _cmd_report(args: argparse.Namespace) -> int:
    """Bench-report toolbox: validate envelopes, diff against baselines.

    ``repro report PATH...`` loads each file (upgrading legacy
    BENCH_6/7/8 shapes transparently) and reports whether it parses.
    ``repro report --compare BASELINE CURRENT`` is the CI perf gate:
    it derives the bench's default comparison rules and fails on
    throughput or tail-latency drift beyond ``--tolerance``.
    """
    import json as _json

    if args.compare:
        base_path, cur_path = args.compare
        baseline = load_report(base_path)
        current = load_report(cur_path)
        rules = _compare_rules(baseline, args.tolerance)
        if not rules:
            raise SystemExit(
                f"no default comparison rules for bench {baseline.bench!r}"
            )
        print(
            f"perf gate: {cur_path} vs baseline {base_path} "
            f"(bench={baseline.bench}, tolerance {args.tolerance:.0%})"
        )
        rows = compare_reports(baseline, current, rules)
        for line in format_comparison(rows):
            print(line)
        return 0 if comparison_passed(rows) else 1
    if not args.paths:
        raise SystemExit(
            "repro report: give PATHs to validate, or "
            "--compare BASELINE CURRENT"
        )
    status = 0
    for path in args.paths:
        try:
            report = load_report(path)
        except (ReportError, OSError, _json.JSONDecodeError) as error:
            print(f"{path}: INVALID — {error}")
            status = 1
            continue
        legacy = " (legacy, upgraded)" if report.meta.get("legacy") else ""
        print(
            f"{path}: OK — bench={report.bench}{legacy}, "
            f"{len(report.metrics)} metric block(s)"
        )
    return status


def _cmd_cache_table(args: argparse.Namespace) -> int:
    print(
        f"{'Access Frequency':18s}"
        + "".join(f"{device.name:>12s}" for device in STANDARD_DEVICES)
    )
    for label, cells in cache_gb_table():
        row = f"{label:18s}"
        for cell in cells:
            row += f"{'-':>12s}" if cell is None else f"{cell:12.3f}"
        print(row)
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """Model-check every engine and verify tree invariants.

    A fast release gate: drives each engine with the same random
    operation stream against a dictionary model, deep-checks the bLSM
    trees' structural invariants, and round-trips a crash/recover.
    """
    from repro.core import BLSM, BLSMOptions
    from repro.storage import DurabilityMode
    from repro.testing import (
        check_blsm_invariants,
        crash_recover_check,
        run_model_workload,
        verify_against_model,
    )

    failures = 0
    for name in ENGINES:
        engine = _engine(name, _disk("hdd"), 16 * 1024, 16)
        try:
            model = run_model_workload(
                engine, operations=args.operations, seed=args.seed
            )
            verify_against_model(engine, model)
            if hasattr(engine, "tree") and isinstance(engine.tree, BLSM):
                check_blsm_invariants(engine.tree)
            print(f"  {engine.name:10s} OK  ({len(model)} live keys)")
        except AssertionError as error:
            failures += 1
            print(f"  {engine.name:10s} FAILED: {error}")
    options = BLSMOptions(
        c0_bytes=16 * 1024, durability=DurabilityMode.SYNC
    )
    tree = BLSM(options)
    model = {}
    for i in range(args.operations // 4):
        key = b"key%05d" % (i % 400)
        tree.put(key, b"v%d" % i)
        model[key] = b"v%d" % i
    try:
        crash_recover_check(tree, model)
        print(f"  {'recovery':10s} OK  (crash + replay verified)")
    except AssertionError as error:
        failures += 1
        print(f"  {'recovery':10s} FAILED: {error}")
    print("selfcheck:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential conformance fuzzing (docs/correctness.md).

    Generates seeded traces and replays each through every registry
    engine — plus a multi-shard config and a fault-plan config — against
    the dictionary oracle; ``--faults crash``/``all`` add the crash-
    schedule composition sweep.  Any divergence is minimized and filed
    into ``--corpus-out``; ``--corpus DIR`` instead replays an existing
    corpus as a regression suite.
    """
    from repro.testing import format_fuzz_report, fuzz, replay_corpus

    progress = None if args.quiet else (lambda line: print(line, flush=True))
    if args.corpus is not None:
        results = replay_corpus(args.corpus, progress=progress)
        failed = 0
        for path, failures in results:
            status = "OK" if not failures else f"{len(failures)} FAILURES"
            print(f"  {path}: {status}")
            for failure in failures:
                print(f"    {failure}")
            failed += bool(failures)
        print(
            f"corpus: {len(results)} trace(s), "
            f"{'all OK' if failed == 0 else f'{failed} failing'}"
        )
        return 0 if failed == 0 else 1
    engines = args.engines.split(",") if args.engines else None
    report = fuzz(
        rounds=args.rounds,
        ops=args.ops,
        seed=args.seed,
        engines=engines,
        shards=args.shards,
        faults=args.faults,
        crash_every=args.crash_every,
        crash_ops=args.crash_ops,
        budget_seconds=args.budget_seconds or None,
        corpus_dir=args.corpus_out,
        progress=progress,
    )
    print(format_fuzz_report(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bLSM (SIGMOD 2012) reproduction: run workloads on "
        "simulated devices and print the paper's analytical tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    workload = sub.add_parser("workload", help="run a YCSB-style workload")
    workload.add_argument("--engine", choices=ENGINES, default="blsm")
    workload.add_argument("--disk", choices=DISKS, default="hdd")
    workload.add_argument(
        "--workload", choices=list("abcdef"), default=None,
        help="a standard YCSB mix (overrides the proportion flags)",
    )
    workload.add_argument("--records", type=int, default=2000)
    workload.add_argument("--ops", type=int, default=2000)
    workload.add_argument("--value-bytes", type=int, default=1000)
    workload.add_argument("--read", type=float, default=0.0)
    workload.add_argument("--update", type=float, default=0.0)
    workload.add_argument("--blind-write", type=float, default=0.0)
    workload.add_argument("--insert", type=float, default=0.0)
    workload.add_argument("--scan", type=float, default=0.0)
    workload.add_argument(
        "--distribution",
        choices=("uniform", "zipfian", "zipfian_clustered", "latest"),
        default="uniform",
    )
    workload.add_argument("--c0-bytes", type=int, default=512 * 1024)
    workload.add_argument("--cache-pages", type=int, default=64)
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument(
        "--durability", choices=("sync", "async", "none"), default="async",
        help="logical-log mode for the LSM engines",
    )
    workload.add_argument(
        "--compression", type=float, default=1.0, metavar="RATIO",
        help="on-disk bytes per logical byte for the bLSM engines",
    )
    workload.add_argument(
        "--timeseries", type=float, default=0.0, metavar="WINDOW_S",
        help="print a windowed throughput sparkline (window in seconds)",
    )
    workload.add_argument(
        "--scheduler", choices=("naive", "gear", "spring_gear"),
        default="spring_gear",
        help="merge scheduler for the bLSM engines",
    )
    workload.add_argument(
        "--log-device", choices=DISKS, default=None, dest="log_device",
        help="put the logs on a separate device of this model (the "
        "paper's dedicated log disk; bLSM engines only)",
    )
    workload.add_argument(
        "--data-stripes", type=int, default=1, metavar="N",
        help="stripe the data device over N RAID-0 members "
        "(bLSM engines only)",
    )
    workload.add_argument(
        "--background-merges", action="store_true",
        help="run merge I/O on background timelines instead of charging "
        "it to the writer (bLSM engines only)",
    )
    workload.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard count for the sharded engine",
    )
    workload.add_argument(
        "--partitioner", choices=PARTITIONERS, default="hash",
        help="key placement policy for the sharded engine (range seeds "
        "its boundaries from the workload's load keys)",
    )
    workload.add_argument(
        "--fault-transient", type=float, default=0.0, metavar="PROB",
        help="inject retryable I/O errors with this per-access probability "
        "(bLSM engines; absorbed by retry-with-backoff)",
    )
    workload.add_argument(
        "--fault-latency", type=float, default=0.0, metavar="SECONDS",
        help="inject a latency spike of SECONDS on ~1%% of accesses",
    )
    workload.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the injected-fault schedule",
    )
    workload.set_defaults(fn=_cmd_workload)

    compare = sub.add_parser(
        "compare", help="run one workload against every engine"
    )
    for source in workload._actions:
        if source.dest in ("help", "engine"):
            continue
        compare._add_action(source)
    compare.set_defaults(fn=_cmd_compare)

    amplification = sub.add_parser(
        "amplification", help="print Figure 2's read-amplification series"
    )
    amplification.add_argument("--max-ratio", type=int, default=16)
    amplification.set_defaults(fn=_cmd_amplification)

    cache = sub.add_parser(
        "cache-table", help="print Table 2 (Appendix A's cache sizing)"
    )
    cache.set_defaults(fn=_cmd_cache_table)

    record = sub.add_parser(
        "record", help="write a workload's operation stream to a trace file"
    )
    for source in workload._actions:
        if source.dest in ("help", "engine", "disk", "c0_bytes",
                           "cache_pages", "timeseries"):
            continue
        record._add_action(source)
    record.add_argument("--output", required=True, help="trace file path")
    record.set_defaults(fn=_cmd_record)

    replay = sub.add_parser(
        "replay", help="replay a recorded trace against an engine"
    )
    replay.add_argument("--trace", required=True, help="trace file path")
    replay.add_argument("--engine", choices=ENGINES, default="blsm")
    replay.add_argument("--disk", choices=DISKS, default="hdd")
    replay.add_argument("--c0-bytes", type=int, default=512 * 1024)
    replay.add_argument("--cache-pages", type=int, default=64)
    replay.set_defaults(fn=_cmd_replay)

    trace = sub.add_parser(
        "trace",
        help="run a workload and summarize its observability event stream",
    )
    for source in workload._actions:
        if source.dest in ("help", "timeseries"):
            continue
        trace._add_action(source)
    trace.add_argument(
        "--dump", action="store_true",
        help="print raw events instead of the summary",
    )
    trace.add_argument(
        "--last", type=int, default=0, metavar="N",
        help="with --dump, print only the newest N events",
    )
    trace.set_defaults(fn=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="batched uniform-read throughput; sharded scale-out gate",
    )
    bench.add_argument("--engine", choices=ENGINES, default="sharded")
    bench.add_argument("--disk", choices=DISKS, default="hdd")
    bench.add_argument("--records", type=int, default=3000)
    bench.add_argument("--ops", type=int, default=2000)
    bench.add_argument("--value-bytes", type=int, default=1000)
    bench.add_argument(
        "--batch", type=int, default=64, metavar="N",
        help="operations per client batch (multi_get/apply_batch size)",
    )
    bench.add_argument("--shards", type=int, default=4, metavar="N")
    bench.add_argument(
        "--partitioner", choices=PARTITIONERS, default="hash"
    )
    bench.add_argument("--c0-bytes", type=int, default=64 * 1024)
    bench.add_argument("--cache-pages", type=int, default=16)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--baseline", choices=ENGINES + ("none",), default="blsm",
        help="single-tree engine to compare against (none skips it)",
    )
    bench.add_argument(
        "--baseline-stripes", type=int, default=1, metavar="N",
        help="data devices for the baseline (match --shards to give it "
        "the same total device budget)",
    )
    bench.add_argument(
        "--assert-speedup", type=float, default=0.0, metavar="X",
        help="exit 1 unless engine throughput >= X times the baseline's",
    )
    bench.add_argument(
        "--policy",
        choices=("none", "blsm3", "leveled", "tiered", "lazy-leveled", "all"),
        default="none",
        help="run the compaction design-space sweep instead of the "
        "sharded gate ('all' sweeps every policy in one invocation)",
    )
    bench.add_argument(
        "--level-ratio", type=float, default=4.0, metavar="T",
        help="geometric level size ratio for the policy sweep",
    )
    bench.add_argument(
        "--fanout", type=int, default=4, metavar="K",
        help="tiered/lazy-leveled runs per level for the policy sweep",
    )
    bench.add_argument(
        "--json", default="", metavar="PATH",
        help="write machine-readable results (BENCH_*.json format)",
    )
    bench.add_argument(
        "--assert-crossover", action="store_true",
        help="exit 1 unless tiered write-amp < leveled and leveled "
        "read seeks < tiered at equal data volume",
    )
    bench.add_argument(
        "--assert-blsm3-floor", type=float, default=0.0, metavar="OPS",
        help="exit 1 if the blsm3 policy's read throughput drops below "
        "OPS ops/s (CI regression guard)",
    )
    bench.set_defaults(fn=_cmd_bench)

    selfcheck = sub.add_parser(
        "selfcheck", help="model-check every engine (fast release gate)"
    )
    selfcheck.add_argument("--operations", type=int, default=3000)
    selfcheck.add_argument("--seed", type=int, default=0)
    selfcheck.set_defaults(fn=_cmd_selfcheck)

    crashtest = sub.add_parser(
        "crashtest",
        help="crash at every Nth I/O boundary, recover, verify durability",
    )
    crashtest.add_argument(
        "--engine", choices=CRASH_ENGINE_NAMES, default="blsm"
    )
    crashtest.add_argument(
        "--ops", type=int, default=500,
        help="scripted workload length (puts and deletes)",
    )
    crashtest.add_argument(
        "--every", type=int, default=1,
        help="test every Nth device-access boundary",
    )
    crashtest.add_argument("--seed", type=int, default=0)
    crashtest.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    crashtest.set_defaults(fn=_cmd_crashtest)

    migrate = sub.add_parser(
        "migrate",
        help="online shard migration: crash matrix and live-traffic bench",
    )
    migrate.add_argument(
        "--crash-matrix", action="store_true",
        help="enumerate crashes at every migration journal/step boundary",
    )
    migrate.add_argument(
        "--bench", action="store_true",
        help="run the live split-under-traffic p99 benchmark",
    )
    migrate.add_argument(
        "--ops", type=int, default=120,
        help="crash-matrix scripted workload length",
    )
    migrate.add_argument(
        "--records", type=int, default=2400,
        help="bench: records loaded before the workload",
    )
    migrate.add_argument(
        "--batches", type=int, default=160,
        help="bench: workload batches (reads and writes alternate)",
    )
    migrate.add_argument(
        "--shards", type=int, default=4, help="bench: fleet size"
    )
    migrate.add_argument("--seed", type=int, default=0)
    migrate.add_argument(
        "--json", default=None, metavar="PATH",
        help="bench: write the machine-readable result to PATH",
    )
    migrate.add_argument(
        "--assert-p99-ratio", type=float, default=0.0, metavar="R",
        help="bench: fail unless migrating p99 <= R x quiescent p99",
    )
    migrate.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    migrate.set_defaults(fn=_cmd_migrate)

    sessions = sub.add_parser(
        "sessions",
        help="multi-session open-loop bench: group commit vs per-write sync",
    )
    sessions.add_argument("--engine", choices=ENGINES, default="blsm")
    sessions.add_argument("--disk", choices=DISKS, default="hdd")
    sessions.add_argument(
        "--sessions", type=int, default=8, help="concurrent open-loop sessions"
    )
    sessions.add_argument(
        "--rate", type=float, default=4000.0,
        help="total offered rate, ops per virtual second",
    )
    sessions.add_argument(
        "--arrival", choices=("uniform", "poisson", "diurnal"),
        default="poisson",
    )
    sessions.add_argument("--records", type=int, default=400)
    sessions.add_argument("--ops", type=int, default=1200)
    sessions.add_argument("--value-bytes", type=int, default=100)
    sessions.add_argument(
        "--read", type=float, default=0.25,
        help="read proportion (rest are blind writes)",
    )
    sessions.add_argument("--c0-bytes", type=int, default=256 * 1024)
    sessions.add_argument("--cache-pages", type=int, default=64)
    sessions.add_argument("--shards", type=int, default=4)
    sessions.add_argument(
        "--partitioner", choices=PARTITIONERS, default="hash"
    )
    sessions.add_argument("--seed", type=int, default=0)
    sessions.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable result to PATH",
    )
    sessions.add_argument(
        "--assert-force-ratio", type=float, default=0.0, metavar="R",
        help="fail unless sync forces/op >= R x group forces/op",
    )
    sessions.add_argument(
        "--assert-forces-per-commit", type=float, default=0.0, metavar="F",
        help="fail if the group run exceeds F forces per commit",
    )
    sessions.add_argument(
        "--assert-queueing-p99", type=float, default=0.0, metavar="SECONDS",
        help="fail if the group run's queueing-delay p99 exceeds SECONDS",
    )
    sessions.set_defaults(fn=_cmd_sessions)

    stability = sub.add_parser(
        "stability",
        help="performance-stability harness: scheduler matrix, p99.9 "
        "ceilings, stall/backpressure timelines",
    )
    stability.add_argument(
        "--configs", default="all", metavar="A,B,...",
        help="stability matrix cells to run (default: all of "
        "spring_gear,gear,unthrottled,leveled,tiered)",
    )
    stability.add_argument(
        "--duration", type=float, default=4.0, metavar="SECONDS",
        help="offered-load duration in virtual seconds",
    )
    stability.add_argument(
        "--rate", type=float, default=2000.0,
        help="total offered rate, ops per virtual second",
    )
    stability.add_argument(
        "--sessions", type=int, default=8,
        help="concurrent open-loop sessions",
    )
    stability.add_argument(
        "--arrival", choices=("uniform", "poisson", "diurnal"),
        default="poisson",
    )
    stability.add_argument("--records", type=int, default=600)
    stability.add_argument("--value-bytes", type=int, default=100)
    stability.add_argument(
        "--read", type=float, default=0.1,
        help="read proportion (rest are blind writes)",
    )
    stability.add_argument("--c0-bytes", type=int, default=48 * 1024)
    stability.add_argument("--cache-pages", type=int, default=32)
    stability.add_argument(
        "--windows", type=int, default=24,
        help="timeline windows across the run",
    )
    stability.add_argument("--seed", type=int, default=0)
    stability.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the BenchReport envelope to PATH (BENCH_9.json)",
    )
    stability.add_argument(
        "--assert-bounded", action="store_true",
        help="fail unless the spring_gear p99.9 write-latency ceiling "
        "is strictly below the unthrottled baseline's",
    )
    stability.add_argument(
        "--assert-ceiling", type=float, default=0.0, metavar="SECONDS",
        help="fail if the spring_gear p99.9 ceiling exceeds SECONDS",
    )
    stability.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    stability.set_defaults(fn=_cmd_stability)

    profile = sub.add_parser(
        "profile",
        help="hot-path CPU profiler: ops per CPU-second, memtable "
        "ablation, per-subsystem phase costs",
    )
    profile.add_argument(
        "--memtable", default="skiplist", metavar="KIND",
        help="memtable backend(s): a name, comma list, or 'all' "
        "(skiplist, array, dict)",
    )
    profile.add_argument(
        "--workload", default="a", choices=tuple("abcdef"),
        help="standard YCSB mix to drive (default: a)",
    )
    profile.add_argument("--records", type=int, default=2000)
    profile.add_argument(
        "--ops", type=int, default=10000,
        help="measured-phase operations",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--trials", type=int, default=3,
        help="repetitions per configuration; best trial is reported "
        "(CPU noise only ever slows a trial)",
    )
    profile.add_argument(
        "--observability", action="store_true",
        help="profile with metrics/tracing ON (default: off, the raw "
        "hot path)",
    )
    profile.add_argument(
        "--phases", action="store_true",
        help="also microbench per-subsystem costs (generation, bloom, "
        "disk charge, metrics dispatch)",
    )
    # The planted-regression shim: burns CPU per measured op so the
    # gate self-test can manufacture a real hot-path regression.
    profile.add_argument(
        "--spin-us", type=float, default=0.0, help=argparse.SUPPRESS
    )
    profile.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the BenchReport envelope to PATH (BENCH_10.json)",
    )
    profile.add_argument(
        "--assert-min-ops", type=float, default=0.0, metavar="RATE",
        help="fail if the best configuration sustains fewer simulated "
        "ops per CPU-second (conservative CI floor)",
    )
    profile.add_argument(
        "--assert-speedup", type=float, default=0.0, metavar="X",
        help="fail if the best configuration's speedup over the "
        "committed pre-optimization baseline is below X",
    )
    profile.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    profile.set_defaults(fn=_cmd_profile)

    report = sub.add_parser(
        "report",
        help="validate bench-report files; diff a run against a baseline",
    )
    report.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="report files to validate (legacy BENCH_* shapes upgrade "
        "transparently)",
    )
    report.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
        help="perf gate: fail on regressions of CURRENT vs BASELINE",
    )
    report.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed relative drift per metric (default 0.25)",
    )
    report.set_defaults(fn=_cmd_report)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing: one trace, every engine",
    )
    fuzz.add_argument(
        "--ops", type=int, default=2000,
        help="operations per generated trace",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--rounds", type=int, default=1,
        help="traces to generate (seed, seed+1, ...)",
    )
    fuzz.add_argument(
        "--budget-seconds", type=float, default=0.0, metavar="S",
        help="stop starting new rounds after S wall-clock seconds",
    )
    fuzz.add_argument(
        "--engines", default=None, metavar="A,B,...",
        help="comma-separated registry engines (default: all)",
    )
    fuzz.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard count for the sharded config (min 2)",
    )
    fuzz.add_argument(
        "--faults", choices=("none", "plans", "crash", "all"),
        default="plans",
        help="fault schedule: plans = semantically-invisible fault-plan "
        "config in the matrix; crash = crash-composition sweep; all = both",
    )
    fuzz.add_argument(
        "--crash-every", type=int, default=40, metavar="N",
        help="crash-sweep boundary stride (with --faults crash/all)",
    )
    fuzz.add_argument(
        "--crash-ops", type=int, default=120, metavar="N",
        help="companion crash-trace length (with --faults crash/all)",
    )
    fuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="replay every trace in DIR as a regression suite "
        "instead of fuzzing",
    )
    fuzz.add_argument(
        "--corpus-out", default=None, metavar="DIR",
        help="file minimized repros for any divergence into DIR",
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    fuzz.set_defaults(fn=_cmd_fuzz)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
