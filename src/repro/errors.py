"""Exception hierarchy for the bLSM reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """Raised when the storage substrate is used incorrectly."""


class PageNotFoundError(StorageError):
    """Raised when a page id does not exist on the simulated device."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist on this device")
        self.page_id = page_id


class RegionError(StorageError):
    """Raised on invalid region (extent) allocation or deallocation."""


class LogError(StorageError):
    """Raised when a log is used incorrectly (bad LSN, closed log, ...)."""


class RecoveryError(StorageError):
    """Raised when crash recovery cannot reconstruct a consistent state."""


class DeviceFullError(StorageError):
    """Raised when a write would exceed a device's configured capacity."""

    def __init__(self, offset: int, nbytes: int, capacity_bytes: int) -> None:
        super().__init__(
            f"write of {nbytes} bytes at offset {offset} exceeds device "
            f"capacity of {capacity_bytes} bytes"
        )
        self.offset = offset
        self.nbytes = nbytes
        self.capacity_bytes = capacity_bytes


class IOFaultError(StorageError):
    """Raised when device I/O fails and cannot (or can no longer) be retried.

    This is what callers see when a :class:`TransientIOError` survives a
    :class:`~repro.faults.retry.RetryExecutor`'s full retry budget — the
    failure is surfaced as a hard, typed error instead of silent data loss.
    """


class TransientIOError(IOFaultError):
    """A retryable device fault (injected by a faulty device).

    An immediate retry of the same access may succeed; a
    :class:`~repro.faults.retry.RetryExecutor` converts repeated failures
    into an :class:`IOFaultError`.
    """


class RetryDeadlineError(IOFaultError):
    """Raised when retries exhaust a policy's virtual-clock deadline.

    Distinct from the attempt-count exhaustion path so callers can tell
    "the device answered N times with errors" apart from "we ran out of
    time budget while backing off" — a persistent fault under an
    unbounded attempt budget surfaces here instead of retrying forever.
    """

    def __init__(self, what: str, deadline_seconds: float, attempts: int) -> None:
        super().__init__(
            f"{what}: retry deadline of {deadline_seconds}s exceeded "
            f"after {attempts} attempt(s)"
        )
        self.what = what
        self.deadline_seconds = deadline_seconds
        self.attempts = attempts


class CorruptionError(StorageError):
    """Raised when a checksum mismatch reveals corrupted durable data."""


class CrashPoint(BaseException):
    """A simulated whole-process crash raised from inside a device access.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    that ordinary ``except Exception`` error handling — including retry
    loops — can never swallow a simulated process death.  ``persisted_bytes``
    reports how much of the interrupted write reached the platter before
    the crash (0 for a crash before any transfer); log implementations use
    it to mark records as durable, torn, or lost.
    """

    def __init__(self, persisted_bytes: int = 0, access_index: int = -1) -> None:
        super().__init__(
            f"simulated crash ({persisted_bytes} bytes persisted"
            + (f", access #{access_index}" if access_index >= 0 else "")
            + ")"
        )
        self.persisted_bytes = persisted_bytes
        self.access_index = access_index


class EngineError(ReproError):
    """Raised when a key-value engine is driven incorrectly."""


class EngineClosedError(EngineError):
    """Raised when an operation is attempted on a closed engine."""

    def __init__(self) -> None:
        super().__init__("engine has been closed")


class DuplicateKeyError(EngineError):
    """Raised by ``insert_unique`` when the key already exists."""

    def __init__(self, key: bytes) -> None:
        super().__init__(f"key already exists: {key!r}")
        self.key = key


class ShardFanoutError(EngineError):
    """One or more shards failed during a fleet-wide fan-out.

    ``flush``/``close`` on a sharded engine must visit *every* shard even
    when an early one raises (abandoning the rest would leave durable
    state behind on healthy shards); the per-shard failures are collected
    here so none is silently swallowed.
    """

    def __init__(self, op: str, errors: dict[int, Exception]) -> None:
        detail = "; ".join(
            f"shard {index}: {type(error).__name__}: {error}"
            for index, error in sorted(errors.items())
        )
        super().__init__(f"{op} failed on {len(errors)} shard(s): {detail}")
        self.op = op
        self.errors = dict(errors)


class MigrationError(EngineError):
    """Raised when a shard migration is planned or driven incorrectly."""


class StaleOwnerError(MigrationError):
    """A write through a lease whose shard lost ownership (epoch fence).

    After a migration's ownership switch the cluster epoch advances and
    the source shard is fenced; a client still holding a pre-switch lease
    gets this instead of a silently misplaced write.
    """

    def __init__(self, shard: int, lease_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"shard {shard} lease at epoch {lease_epoch} is fenced "
            f"(cluster epoch is now {current_epoch})"
        )
        self.shard = shard
        self.lease_epoch = lease_epoch
        self.current_epoch = current_epoch


class WorkloadError(ReproError):
    """Raised when a YCSB workload specification is invalid."""
