"""Exception hierarchy for the bLSM reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """Raised when the storage substrate is used incorrectly."""


class PageNotFoundError(StorageError):
    """Raised when a page id does not exist on the simulated device."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist on this device")
        self.page_id = page_id


class RegionError(StorageError):
    """Raised on invalid region (extent) allocation or deallocation."""


class LogError(StorageError):
    """Raised when a log is used incorrectly (bad LSN, closed log, ...)."""


class RecoveryError(StorageError):
    """Raised when crash recovery cannot reconstruct a consistent state."""


class EngineError(ReproError):
    """Raised when a key-value engine is driven incorrectly."""


class EngineClosedError(EngineError):
    """Raised when an operation is attempted on a closed engine."""

    def __init__(self) -> None:
        super().__init__("engine has been closed")


class DuplicateKeyError(EngineError):
    """Raised by ``insert_unique`` when the key already exists."""

    def __init__(self, key: bytes) -> None:
        super().__init__(f"key already exists: {key!r}")
        self.key = key


class WorkloadError(ReproError):
    """Raised when a YCSB workload specification is invalid."""
