"""bLSM: the paper's primary contribution (Sections 3 and 4).

A three-level LSM-Tree (C0 in memory; C1, C1', C2 on disk) with Bloom
filters on every on-disk component, early-terminating reads, zero-seek
insert-if-not-exists, snowshoveling, and a pluggable merge scheduler
(naive, gear, or spring-and-gear).
"""

from repro.core.compaction import (
    POLICY_NAMES,
    CompactionPolicy,
    CompactionTree,
    LevelManager,
    MergePlan,
    make_policy,
    make_tree,
)
from repro.core.options import BLSMOptions
from repro.core.partitioned import PartitionedBLSM
from repro.core.scheduler import (
    GearScheduler,
    MergeScheduler,
    NaiveScheduler,
    SpringGearScheduler,
    make_scheduler,
)
from repro.core.tree import BLSM

__all__ = [
    "BLSM",
    "BLSMOptions",
    "CompactionPolicy",
    "CompactionTree",
    "GearScheduler",
    "LevelManager",
    "MergePlan",
    "MergeScheduler",
    "NaiveScheduler",
    "PartitionedBLSM",
    "POLICY_NAMES",
    "SpringGearScheduler",
    "make_policy",
    "make_scheduler",
    "make_tree",
]
