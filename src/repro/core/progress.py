"""Merge progress estimators (Section 4.1).

The gear scheduler synchronizes merges with the processes that fill each
tree component using two estimators:

* ``inprogress_i = bytes read by merge_i / (|C'_{i-1}| + |C_i|)`` — the
  fraction of the current merge's input already consumed.  Crucially this
  is *smooth*: any merge activity increases it, and the byte cost of a
  fixed increase never varies by more than a small constant factor.  (The
  paper notes that estimators focused on the larger input tree got stuck
  during runs of non-overlapping data and caused routine stalls.)

* ``outprogress_i = (inprogress_i + floor(|C_i| / |RAM|_i)) / ceil(R)`` —
  where the merge is within the R passes it takes to fill the downstream
  component; the clock-analogy "what hour the analog clock shows".
"""

from __future__ import annotations

import math


def inprogress(bytes_read: int, input_bytes: int) -> float:
    """Fraction of the merge's input consumed, clamped to [0, 1].

    Args:
        bytes_read: record bytes the merge has consumed from both inputs.
        input_bytes: total input size ``|C'_{i-1}| + |C_i}|`` at merge
            start.  A zero-byte merge is complete by definition.
    """
    if input_bytes <= 0:
        return 1.0
    return min(1.0, bytes_read / input_bytes)


def outprogress(
    inprogress_value: float, tree_bytes: int, ram_bytes: int, r: float
) -> float:
    """Progress of a component towards being full, in [0, 1].

    Args:
        inprogress_value: the current merge's :func:`inprogress`.
        tree_bytes: current size of the component being filled.
        ram_bytes: the size quantum of one upstream merge (``|RAM|_i``).
        r: target size ratio between this component and the next.
    """
    if ram_bytes <= 0:
        raise ValueError(f"ram_bytes must be positive, got {ram_bytes}")
    passes_done = math.floor(tree_bytes / ram_bytes)
    denominator = max(1.0, math.ceil(r))
    return min(1.0, (inprogress_value + passes_done) / denominator)
