"""Partitioned bLSM (Sections 2.3.2, 3.3, 4.2.2 — the paper's next step).

"Partitioning is the best way to allow LSM-Trees to leverage write skew:
breaking the LSM-Tree into smaller trees and merging the trees according
to their update rates concentrates merge activity on frequently updated
key ranges" (Section 2.3.2).  The paper's prototype defers this ("we
have not yet implemented partitioning"); this module implements it on
top of the same substrate, composed with the spring scheduler exactly as
Section 4.3 envisions.

Design:

* One global C0 (memtable) absorbs all writes, as in Figure 3.
* The keyspace is divided into disjoint range *partitions*; each owns a
  two-component stack C1ᵖ (recent merges) and C2ᵖ (bulk), with its own
  C0:C1ᵖ and C1ᵖ:C2ᵖ merges.
* A **greedy partition selector** (Figure 3's policy) starts the merge
  with the best ratio of C0 bytes freed to merge I/O — skewed writes
  concentrate C0 in hot ranges, so hot partitions merge often and cold
  partitions rarely, and distribution shifts never force a bulk copy of
  disjoint cold data (the stall source of Section 4.2.2).
* The **spring** applies as before: merges pause below the low water
  mark and writes feel proportional backpressure as C0 fills; only one
  merge runs at a time (the device is serial).
* Oversized partitions split during their C1ᵖ:C2ᵖ merge — the merge
  emits multiple output components, each seeding a new partition.
* Scans touch at most **two** components per partition they cross
  (Section 3.3's two-seek scans), because only the partition currently
  being merged has an extra in-flight component.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.components import (
    component_extents,
    describe_component,
    rebuild_component,
)
from repro.core.merge import MergeProcess, RangeSnowshovelSource
from repro.core.options import BLSMOptions
from repro.errors import EngineClosedError
from repro.memtable.memtable import MemTable
from repro.records import Record, resolve
from repro.sim.clock import Timeline
from repro.sstable.iterator import kway_merge
from repro.sstable.reader import SSTable
from repro.storage.stasis import Stasis

_OP_PUT = "put"
_OP_DELETE = "delete"
_OP_DELTA = "delta"


@dataclass
class Partition:
    """One key-range partition: ``[lo, hi)`` with a two-level stack."""

    lo: bytes
    hi: bytes | None  # None = unbounded
    c1: SSTable | None = None
    c2: SSTable | None = None
    m01: MergeProcess | None = None
    m12: MergeProcess | None = None
    merge_rounds: int = 0
    """C0:C1 merges completed since the last C1:C2 merge."""
    last_run_bytes: int = 0
    """C0 bytes the most recent C0:C1ᵖ merge consumed — the partition's
    observed share of the write stream, which sizes its promotion
    threshold under skew."""

    @property
    def disk_bytes(self) -> int:
        total = self.c1.nbytes if self.c1 is not None else 0
        if self.c2 is not None:
            total += self.c2.nbytes
        return total

    @property
    def merging(self) -> bool:
        return self.m01 is not None or self.m12 is not None

    def covers(self, key: bytes) -> bool:
        return key >= self.lo and (self.hi is None or key < self.hi)


class PartitionedBLSM:
    """A range-partitioned bLSM tree with greedy merge selection."""

    def __init__(
        self,
        options: BLSMOptions | None = None,
        stasis: Stasis | None = None,
        max_partition_bytes: int | None = None,
    ) -> None:
        self.options = options if options is not None else BLSMOptions()
        opts = self.options
        if stasis is not None:
            self.stasis = stasis
        else:
            self.stasis = Stasis(
                disk_model=opts.disk_model,
                page_size=opts.page_size,
                buffer_pool_pages=opts.buffer_pool_pages,
                eviction_policy=opts.eviction_policy,
                durability=opts.durability,
                fault_plan=opts.fault_plan,
                retry=opts.retry,
                capacity_bytes=opts.capacity_bytes,
                log_disk_model=opts.log_disk_model,
                data_stripes=opts.data_stripes,
                stripe_chunk_bytes=opts.stripe_chunk_bytes,
                observability=opts.observability,
            )
        self.max_partition_bytes = (
            max_partition_bytes
            if max_partition_bytes is not None
            else 4 * opts.c0_bytes
        )
        self._memtable = MemTable(
            opts.c0_bytes, seed=opts.seed, kind=opts.memtable
        )
        self._partitions: list[Partition] = [Partition(lo=b"", hi=None)]
        self._next_seqno = 0
        self._next_tree_id = 1
        self._merge_epoch = 0
        self._closed = False
        # One merge runs at a time (the greedy selector serializes them),
        # so one background timeline models the merge worker.
        self._bg: Timeline | None = (
            Timeline("merge-worker") if opts.background_merges else None
        )
        self._init_obs()
        self.stasis.commit_manifest(self._manifest())

    def _init_obs(self) -> None:
        """Bind this tree's instrumentation to the runtime's registry."""
        self.runtime = self.stasis.runtime
        metrics = self.runtime.metrics
        self._gauge_fill = metrics.gauge("memtable.fill")
        self._gauge_pressure = metrics.gauge("scheduler.pressure")
        self._ctr_memtable_full = metrics.counter("memtable.full_events")
        self._ctr_stalls = metrics.counter("writes.stalls")
        self._hist_stall = metrics.histogram("writes.stall_seconds")
        self._merge_obs = {
            level: (
                metrics.counter(f"merge.{level}.passes"),
                metrics.counter(f"merge.{level}.bytes"),
                metrics.counter(f"merge.{level}.seconds"),
            )
            for level in ("c0c1", "c1c2")
        }

    # ------------------------------------------------------------------
    # Write API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._write(Record.base(key, value, self._take_seqno()), _OP_PUT)

    def delete(self, key: bytes) -> None:
        self._write(Record.tombstone(key, self._take_seqno()), _OP_DELETE)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        self._write(Record.delta(key, delta, self._take_seqno()), _OP_DELTA)

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        if self.get(key) is not None:
            return False
        self.put(key, value)
        return True

    def read_modify_write(
        self, key: bytes, update: Callable[[bytes | None], bytes]
    ) -> bytes:
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        versions: list[Record] = []
        if self._collect(self._memtable.get(key), versions):
            return resolve(versions)
        partition = self._partition_for(key)
        if partition.m01 is not None and self._collect(
            partition.m01.overlay_get(key), versions
        ):
            return resolve(versions)
        for component in (partition.c1, partition.c2):
            if component is None:
                continue
            if self._collect(component.get(key), versions):
                break
        value = resolve(versions)
        if (
            self.options.delta_read_repair
            and value is not None
            and len(versions) > 1
            and versions[0].is_delta
        ):
            # Section 5.6's repair, as in BLSM.get: logged, so exact log
            # retention keeps the writes it subsumes reconstructible.
            self._write(Record.base(key, value, self._take_seqno()), _OP_PUT)
        return value

    def scan(
        self,
        lo: bytes,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan: two seeks per crossed partition (Section 3.3).

        Partitions are opened lazily, one range at a time, so a short
        scan touches only the components of the partition it lands in —
        the two-seek property partitioning exists to provide.  Scans
        are epoch-validated like :meth:`BLSM.scan`: a merge committing
        while the caller holds a paused scan triggers a transparent
        restart from the scan cursor against the current components.
        """
        self._check_open()
        cursor = lo
        emitted = 0
        while True:
            if hi is not None and cursor >= hi:
                return
            epoch = self._merge_epoch
            partition = self._partitions[self._partition_index(cursor)]
            bound = partition.hi
            if hi is not None and (bound is None or hi < bound):
                bound = hi
            restart = False
            for group in kway_merge(
                self._partition_sources(partition, cursor, bound)
            ):
                value = resolve(group)
                if value is None:
                    continue
                yield group[0].key, value
                cursor = group[0].key + b"\x00"
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
                if self._merge_epoch != epoch:
                    restart = True
                    break
            if restart:
                continue  # re-resolve the partition from the cursor
            if partition.hi is None:
                return  # the last partition is exhausted
            cursor = max(cursor, partition.hi)

    def _partition_sources(
        self, partition: Partition, lo: bytes, hi: bytes | None
    ) -> list[Iterator[Record]]:
        sources: list[Iterator[Record]] = [self._memtable.scan(lo, hi)]
        if partition.m01 is not None:
            sources.append(partition.m01.overlay_scan(lo, hi))
        for component in (partition.c1, partition.c2):
            if component is not None:
                sources.append(component.scan(lo, hi))
        return sources

    # ------------------------------------------------------------------
    # Scheduler (spring + greedy partition selection)
    # ------------------------------------------------------------------

    def _write(self, record: Record, op: str) -> None:
        self._check_open()
        value = record.value if op != _OP_DELETE else None
        self.stasis.logical_log.log(record.seqno, op, record.key, value)
        self._memtable.put(record)
        self._on_write(record.nbytes)

    def _on_write(self, nbytes: int) -> None:
        opts = self.options
        fill = self._memtable.fill_fraction
        self._gauge_fill.set(fill)
        if fill <= opts.low_water:
            self._gauge_pressure.set(0.0)
            return
        pressure = min(
            1.0, (fill - opts.low_water) / (opts.high_water - opts.low_water)
        )
        self._gauge_pressure.set(pressure)
        amplification = self._write_amplification_estimate()
        budget = min(
            opts.max_tick_bytes, int(2.0 * pressure * amplification * nbytes) + 1
        )
        self.merge_step(budget)
        if self._memtable.fill_fraction >= 1.0:
            self._ctr_memtable_full.inc()
            self.runtime.trace.emit(
                "memtable_full",
                fill=self._memtable.fill_fraction,
                c0_bytes=self._memtable.nbytes,
            )
            started = self.stasis.clock.now
            with self.runtime.trace.span("stall", cause="merge_backpressure"):
                while self._memtable.fill_fraction > opts.high_water:
                    if self.merge_step(opts.max_tick_bytes):
                        continue
                    if self._wait_for_background():
                        continue  # wait for the busy merge worker
                    break
            self._ctr_stalls.inc()
            self._hist_stall.observe(self.stasis.clock.now - started)

    def merge_step(self, budget_bytes: int) -> int:
        """Advance the active merge, starting the best one when idle.

        With background merges, work is dispatched to the merge worker's
        timeline; while the worker is still servicing previously
        dispatched I/O, nothing is dispatched and 0 is returned.
        """
        if budget_bytes <= 0:
            return 0
        timeline = self._bg
        if timeline is not None and timeline.busy(self.stasis.clock):
            return 0
        active = self._active_merge()
        if active is None:
            active = self._start_best_merge()
        if active is None:
            return 0
        partition, process = active
        level = "c1c2" if process is partition.m12 else "c0c1"
        if timeline is None:
            started = self.stasis.clock.now
            worked = process.step(budget_bytes)
            seconds = self.stasis.clock.now - started
        else:
            timeline.catch_up(self.stasis.clock)
            started = timeline.now
            with self.stasis.clock.running_on(timeline):
                worked = process.step(budget_bytes)
                if process.done:
                    self._finish_merge(partition, process)
            seconds = timeline.now - started
        if worked:
            _passes, ctr_bytes, ctr_seconds = self._merge_obs[level]
            ctr_bytes.inc(worked)
            ctr_seconds.inc(seconds)
            trace = self.runtime.trace
            if trace.enabled:  # skip the kwargs build when tracing is off
                trace.emit(
                    "merge_progress",
                    level=level,
                    worked=worked,
                    seconds=seconds,
                    inprogress=process.inprogress,
                )
        if timeline is None and process.done:
            self._finish_merge(partition, process)
        return worked

    def _wait_for_background(self) -> bool:
        """Advance the clock to the merge worker's completion, if busy."""
        timeline = self._bg
        if timeline is None or not timeline.busy(self.stasis.clock):
            return False
        self.stasis.clock.advance_to(timeline.now)
        return True

    def _active_merge(self) -> tuple[Partition, MergeProcess] | None:
        for partition in self._partitions:
            if partition.m12 is not None:
                return partition, partition.m12
            if partition.m01 is not None:
                return partition, partition.m01
        return None

    def _start_best_merge(self) -> tuple[Partition, MergeProcess] | None:
        """Figure 3's greedy policy: free the most C0 per byte of I/O.

        Promotions (C1ᵖ:C2ᵖ merges) take priority for partitions whose
        C1 has grown past its share, to keep per-partition stacks at two
        components.
        """
        overdue = self._most_overdue_promotion()
        if overdue is not None:
            return overdue, self._start_m12(overdue)
        c0_by_partition = self._c0_bytes_by_partition()
        best: Partition | None = None
        best_score = 0.0
        for partition, c0_bytes in zip(self._partitions, c0_by_partition):
            if c0_bytes <= 0:
                continue
            c1_bytes = partition.c1.nbytes if partition.c1 is not None else 0
            cost = 2.0 * (c0_bytes + c1_bytes)  # read + write both inputs
            score = c0_bytes / cost
            if score > best_score:
                best, best_score = partition, score
        if best is None:
            return None
        return best, self._start_m01(best)

    def _most_overdue_promotion(self) -> Partition | None:
        worst: Partition | None = None
        worst_ratio = 1.0
        for partition in self._partitions:
            if partition.c1 is None:
                continue
            ratio = partition.c1.nbytes / self._promotion_threshold(partition)
            if ratio > worst_ratio:
                worst, worst_ratio = partition, ratio
        return worst

    def _promotion_threshold(self, partition: Partition) -> float:
        """The C1ᵖ size at which promoting minimizes amortized merge cost.

        Section 2.3.1's optimization, applied per partition: with a run
        of ``run`` C0 bytes per pass and a bulk of ``|C2ᵖ|``, total merge
        I/O is minimized when ``|C1ᵖ| = sqrt(run * |C2ᵖ|)`` — cold
        partitions (tiny runs) promote rarely, hot ones often, which is
        exactly how partitioning leverages write skew.
        """
        # A bulk load's giant streamed run is not the steady-state run
        # size; cap the estimate at two C0s (the snowshovel expectation).
        run = max(1.0, float(partition.last_run_bytes or self._c0_share()))
        run = min(run, 2.0 * self.options.c0_bytes)
        c2 = float(partition.c2.nbytes) if partition.c2 is not None else 0.0
        optimum = math.sqrt(run * max(run, c2))
        # Never promote below one run; never defer past R runs.
        return min(max(optimum, run), self._target_r() * max(run, self._c0_share()))

    def _c0_bytes_by_partition(self) -> list[int]:
        totals = [0] * len(self._partitions)
        index = 0
        for record in self._memtable:
            while (
                self._partitions[index].hi is not None
                and record.key >= self._partitions[index].hi
            ):
                index += 1
            totals[index] += record.nbytes
        return totals

    def _c0_share(self) -> float:
        """Expected C0 bytes per partition under uniform load."""
        return self.options.c0_bytes / max(1, len(self._partitions))

    def _target_r(self) -> float:
        data = sum(partition.disk_bytes for partition in self._partitions)
        ratio = math.sqrt(max(1.0, data / self.options.c0_bytes))
        return min(self.options.max_r, max(self.options.min_r, ratio))

    def _write_amplification_estimate(self) -> float:
        """Per-byte merge I/O under the greedy policy.

        Partitioning caps each merge's inputs at one partition's stack,
        so the estimate uses the *average* partition rather than the
        whole tree.
        """
        share = max(1.0, self._c0_share())
        average_c1 = sum(
            p.c1.nbytes if p.c1 is not None else 0 for p in self._partitions
        ) / max(1, len(self._partitions))
        amp01 = 2.0 * (share + average_c1) / share
        average_c2 = sum(
            p.c2.nbytes if p.c2 is not None else 0 for p in self._partitions
        ) / max(1, len(self._partitions))
        promo = max(1.0, self._target_r() * share)
        amp12 = 2.0 * (promo + average_c2) / promo
        return amp01 + amp12

    # ------------------------------------------------------------------
    # Merge lifecycle
    # ------------------------------------------------------------------

    def _start_m01(self, partition: Partition) -> MergeProcess:
        source = RangeSnowshovelSource(
            self._memtable, partition.lo, partition.hi
        )
        c0_bytes = self._range_bytes(partition)
        c1_bytes = partition.c1.nbytes if partition.c1 is not None else 0
        c1_keys = partition.c1.key_count if partition.c1 is not None else 0
        # A partition with no C2 writes bottom-level output, so the merge
        # may split it directly into new partitions — this is how bulk
        # loads (one giant snowshovel run) partition the keyspace.
        bottom = partition.c2 is None
        # Paused scans must restart to pick up the merge overlay (the
        # range snowshovel moves live memtable records into it).
        self._merge_epoch += 1
        partition.m01 = MergeProcess(
            self.stasis,
            newer=source,
            older=partition.c1,
            tree_id=self._take_tree_id(),
            input_bytes=c0_bytes + c1_bytes,
            expected_keys=len(self._memtable) + c1_keys,
            drop_tombstones=bottom,
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            merge_chunk_bytes=self.options.merge_chunk_bytes,
            split_output_bytes=self.max_partition_bytes if bottom else None,
            tree_id_source=self._take_tree_id if bottom else None,
            compression_ratio=self.options.compression_ratio,
        )
        self._merge_obs["c0c1"][0].inc()
        self.runtime.trace.emit(
            "merge_start",
            level="c0c1",
            input_bytes=partition.m01.input_bytes,
            partition=partition.lo.hex(),
        )
        return partition.m01

    def _start_m12(self, partition: Partition) -> MergeProcess:
        assert partition.c1 is not None
        c2_bytes = partition.c2.nbytes if partition.c2 is not None else 0
        c2_keys = partition.c2.key_count if partition.c2 is not None else 0
        chunk_pages = max(
            1, self.options.merge_chunk_bytes // self.stasis.page_size
        )
        partition.m12 = MergeProcess(
            self.stasis,
            newer=_frozen(partition.c1, chunk_pages),
            older=partition.c2,
            tree_id=self._take_tree_id(),
            input_bytes=partition.c1.nbytes + c2_bytes,
            expected_keys=partition.c1.key_count + c2_keys,
            drop_tombstones=True,
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            merge_chunk_bytes=self.options.merge_chunk_bytes,
            split_output_bytes=self.max_partition_bytes,
            tree_id_source=self._take_tree_id,
            compression_ratio=self.options.compression_ratio,
        )
        self._merge_obs["c1c2"][0].inc()
        self.runtime.trace.emit(
            "merge_start",
            level="c1c2",
            input_bytes=partition.m12.input_bytes,
            partition=partition.lo.hex(),
        )
        return partition.m12

    def _finish_merge(self, partition: Partition, process: MergeProcess) -> None:
        self._merge_epoch += 1  # paused scans must re-resolve components
        self.runtime.trace.emit(
            "merge_finish",
            level="c0c1" if process is partition.m01 else "c1c2",
            output_bytes=sum(t.nbytes for t in process.outputs),
            partition=partition.lo.hex(),
        )
        if process is partition.m01:
            old_c1 = partition.c1
            partition.m01 = None
            partition.merge_rounds += 1
            run_bytes = process.newer_bytes_read
            if process.output is not None or not process.outputs:
                # Ordinary (non-splitting) pass: the output is the new C1.
                partition.c1 = process.output
                partition.last_run_bytes = run_bytes
                self._maybe_persist_bloom(partition.c1)
            else:
                # Bottom-level pass: outputs land as C2 of (possibly
                # several) partitions, splitting an oversized range.
                partition.c1 = None
                for table in process.outputs:
                    self._maybe_persist_bloom(table)
                self._install_split_outputs(
                    partition, process.outputs, run_bytes
                )
            self.stasis.commit_manifest(self._manifest())
            if old_c1 is not None:
                old_c1.free()
            self._truncate_logical_log()
        else:
            assert process is partition.m12
            old_c1, old_c2 = partition.c1, partition.c2
            outputs = process.outputs
            partition.m12 = None
            partition.merge_rounds = 0
            partition.c1 = None
            for table in outputs:
                self._maybe_persist_bloom(table)
            self._install_split_outputs(
                partition, outputs, partition.last_run_bytes
            )
            self.stasis.commit_manifest(self._manifest())
            # C1ᵖ:C2ᵖ merges are rare per partition: checkpoint the WAL
            # so manifest replay stays bounded.
            self.stasis.checkpoint_wal()
            if old_c1 is not None:
                old_c1.free()
            if old_c2 is not None:
                old_c2.free()

    def _install_split_outputs(
        self,
        partition: Partition,
        outputs: list[SSTable],
        run_bytes: int,
    ) -> None:
        """Replace a partition with one partition per output component.

        A single output refreshes the partition's C2 in place; several
        split it, with boundaries at each output's first key.  The
        partition's observed C0 share is divided among the children.
        """
        index = self._partitions.index(partition)
        if not outputs:
            partition.c2 = None
            return
        share = max(1, run_bytes // len(outputs))
        replacements: list[Partition] = []
        for i, table in enumerate(outputs):
            lo = partition.lo if i == 0 else outputs[i].min_key
            hi = (
                partition.hi
                if i == len(outputs) - 1
                else outputs[i + 1].min_key
            )
            assert lo is not None
            replacements.append(
                Partition(lo=lo, hi=hi, c2=table, last_run_bytes=share)
            )
        self._partitions[index : index + 1] = replacements

    def _range_bytes(self, partition: Partition) -> int:
        total = 0
        for record in self._memtable.iter_from(partition.lo):
            if partition.hi is not None and record.key >= partition.hi:
                break
            total += record.nbytes
        return total

    def _truncate_logical_log(self) -> None:
        """Exact log retention (see :meth:`BLSM._truncate_logical_log`)."""
        coverage = {
            record.key: (record.coverage_start, record.seqno)
            for record in self._memtable
        }
        self.stasis.logical_log.retain_ranges(coverage)

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Push all of C0 into the partitions' stacks."""
        self._check_open()
        while not self._memtable.is_empty or self._active_merge() is not None:
            if self.merge_step(1 << 30) == 0 and not self._wait_for_background():
                break

    def flush_log(self) -> None:
        self.stasis.logical_log.force()

    def close(self) -> None:
        if self._closed:
            return
        self.flush_log()
        self.stasis.wal.force()
        self._closed = True

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def c0_fill_fraction(self) -> float:
        return self._memtable.fill_fraction

    def partition_ranges(self) -> list[tuple[bytes, bytes | None]]:
        """The current partition boundaries, in key order."""
        return [(p.lo, p.hi) for p in self._partitions]

    def components_in_range(self, lo: bytes, hi: bytes | None) -> int:
        """On-disk components a scan of ``[lo, hi)`` must consult."""
        count = 0
        start = self._partition_index(lo)
        for partition in self._partitions[start:]:
            if hi is not None and partition.lo >= hi:
                break
            count += sum(
                1 for c in (partition.c1, partition.c2) if c is not None
            )
        return count

    def stats(self) -> dict[str, Any]:
        summary = self.stasis.io_summary()
        summary["partitions"] = len(self._partitions)
        summary["c0"] = self._memtable.nbytes
        summary["disk_bytes"] = sum(p.disk_bytes for p in self._partitions)
        summary["clock_seconds"] = self.stasis.clock.now
        return summary

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        stasis: Stasis,
        options: BLSMOptions | None = None,
        max_partition_bytes: int | None = None,
    ) -> "PartitionedBLSM":
        """Rebuild from the newest committed manifest plus log replay."""
        tree = cls.__new__(cls)
        tree.options = options if options is not None else BLSMOptions()
        tree.stasis = stasis
        tree.max_partition_bytes = (
            max_partition_bytes
            if max_partition_bytes is not None
            else 4 * tree.options.c0_bytes
        )
        tree._memtable = MemTable(
            tree.options.c0_bytes,
            seed=tree.options.seed,
            kind=tree.options.memtable,
        )
        tree._merge_epoch = 0
        tree._closed = False
        tree._bg = (
            Timeline("merge-worker")
            if tree.options.background_merges
            else None
        )
        tree._init_obs()
        manifest = stasis.recover_manifest()
        tree._next_seqno = manifest["next_seqno"]
        tree._next_tree_id = manifest["next_tree_id"]
        tree._partitions = [
            Partition(
                lo=desc["lo"],
                hi=desc["hi"],
                c1=tree._rebuild_component(desc["c1"]),
                c2=tree._rebuild_component(desc["c2"]),
            )
            for desc in manifest["partitions"]
        ]
        tree._free_orphan_extents()
        for record in stasis.logical_log.replay():
            if record.op == _OP_DELETE:
                tree._memtable.put(Record.tombstone(record.key, record.seqno))
            elif record.op == _OP_DELTA:
                tree._memtable.put(
                    Record.delta(record.key, record.value, record.seqno)
                )
            else:
                tree._memtable.put(
                    Record.base(record.key, record.value, record.seqno)
                )
            tree._next_seqno = max(tree._next_seqno, record.seqno + 1)
        return tree

    def __repr__(self) -> str:
        return (
            f"PartitionedBLSM(partitions={len(self._partitions)}, "
            f"c0={self._memtable.nbytes}, "
            f"disk={sum(p.disk_bytes for p in self._partitions)}, "
            f"t={self.stasis.clock.now:.3f}s)"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    def _take_seqno(self) -> int:
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _take_tree_id(self) -> int:
        tree_id = self._next_tree_id
        self._next_tree_id += 1
        return tree_id

    @staticmethod
    def _collect(record: Record | None, versions: list[Record]) -> bool:
        if record is None:
            return False
        versions.append(record)
        return not record.is_delta

    def _partition_index(self, key: bytes) -> int:
        los = [partition.lo for partition in self._partitions]
        return max(0, bisect.bisect_right(los, key) - 1)

    def _partition_for(self, key: bytes) -> Partition:
        partition = self._partitions[self._partition_index(key)]
        assert partition.covers(key)
        return partition

    def _manifest(self) -> dict[str, Any]:
        return {
            "next_seqno": self._next_seqno,
            "next_tree_id": self._next_tree_id,
            "partitions": tuple(
                {
                    "lo": p.lo,
                    "hi": p.hi,
                    "c1": self._describe(p.c1),
                    "c2": self._describe(p.c2),
                }
                for p in self._partitions
            ),
        }

    def _maybe_persist_bloom(self, component: SSTable | None) -> None:
        if component is not None and self.options.persist_bloom_filters:
            from repro.sstable.bloom_store import persist_bloom

            persist_bloom(self.stasis, component)

    def _describe(self, component: SSTable | None) -> dict[str, Any] | None:
        return describe_component(component)

    def _rebuild_component(self, desc: dict[str, Any] | None) -> SSTable | None:
        return rebuild_component(self.stasis, desc, self.options)

    def _free_orphan_extents(self) -> None:
        live = set()
        for partition in self._partitions:
            for component in (partition.c1, partition.c2):
                live.update(component_extents(describe_component(component)))
        for extent in self.stasis.regions.allocated_extents:
            if extent not in live:
                for page_id in range(extent.start, extent.end):
                    self.stasis.pagefile.free_page(page_id)
                self.stasis.regions.free(extent)


def _frozen(table: SSTable, chunk_pages: int):
    from repro.core.merge import FrozenSource

    return FrozenSource(table.iter_records(chunk_pages=chunk_pages))
