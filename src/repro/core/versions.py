"""MVCC version sets: pinned, immutable read views over tree components.

The bLSM trees' components are already immutable once built — SSTables
never change after ``finish()``, and the update-in-place memtable swaps
whole :class:`~repro.records.Record` objects rather than mutating them.
That makes snapshot isolation cheap: a reader *pins* the component set
it can see, merges install new components for later readers, and a
superseded component's ``free()`` is deferred until the last pin drops.

Three pieces:

* :class:`VersionSet` — per-tree registry of pinned components and
  *zombies* (components a merge retired while still pinned).  The tree
  calls :meth:`VersionSet.retire` wherever it used to call
  ``table.free()``; the free happens immediately when unpinned, or at
  last-unpin otherwise.  ``deferred_frees`` counts how often a snapshot
  actually held a component past its retirement — the direct evidence
  that a read survived a merge install without blocking or restarting.
* :class:`_RamSource` — an O(size) copy of an in-RAM source (memtable,
  frozen C0', merge overlay) taken at snapshot time.  RAM sources must
  be copied, not pinned: the memtable keeps changing under writers.
* :class:`TreeSnapshot` — the read view itself: copied RAM sources plus
  pinned on-disk components, in recency order.  ``get``/``multi_get``/
  ``scan`` walk exactly the source order the live tree would have walked
  at snapshot time; disk reads charge the virtual clock normally.

Scans built on snapshots never restart: the epoch-validation loop the
trees used (Section 4.4.1's logical timestamps) re-resolved the
component set after every merge install, forcing a re-descent from the
cursor.  A snapshot scan holds its sources for the scan's whole life,
so a merge or memtable switch underneath it is invisible.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.records import Record, resolve
from repro.sstable.iterator import kway_merge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.runtime import EngineRuntime
    from repro.sstable.reader import SSTable


class VersionSet:
    """Pin registry deferring component frees past live snapshots."""

    def __init__(self, runtime: "EngineRuntime | None" = None) -> None:
        self._runtime = runtime
        # id(table) -> (table, pin_count); identity keys because SSTable
        # instances are the unit of pinning and carry no usable hash.
        self._pins: dict[int, tuple[Any, int]] = {}
        self._zombies: dict[int, Any] = {}  # retired while pinned
        self.deferred_frees = 0
        self.completed_frees = 0

    @property
    def pinned_count(self) -> int:
        """Distinct components currently pinned by live snapshots."""
        return len(self._pins)

    @property
    def zombie_count(self) -> int:
        """Retired components kept alive only by snapshot pins."""
        return len(self._zombies)

    def pin(self, table: Any) -> None:
        """Hold ``table``'s storage live until the matching unpin."""
        key = id(table)
        entry = self._pins.get(key)
        self._pins[key] = (table, entry[1] + 1 if entry else 1)

    def unpin(self, table: Any) -> None:
        """Drop one pin; frees the table if it was retired meanwhile."""
        key = id(table)
        entry = self._pins.get(key)
        if entry is None:
            return
        table_obj, count = entry
        if count > 1:
            self._pins[key] = (table_obj, count - 1)
            return
        del self._pins[key]
        zombie = self._zombies.pop(key, None)
        if zombie is not None:
            zombie.free()
            self.completed_frees += 1
            if self._runtime is not None:
                self._runtime.metrics.counter("versions.zombie_frees").inc()

    def retire(self, table: Any) -> None:
        """Free ``table`` now, or defer the free while snapshots pin it.

        Drop-in replacement for the ``table.free()`` calls at merge
        install sites: the manifest no longer references the component,
        but a pinned snapshot may still be reading it.
        """
        if table is None:
            return
        key = id(table)
        if key in self._pins:
            self._zombies[key] = table
            self.deferred_frees += 1
            if self._runtime is not None:
                self._runtime.metrics.counter("versions.deferred_frees").inc()
        else:
            table.free()
            self.completed_frees += 1

    def crash(self) -> None:
        """Volatile state is lost: pins and zombies evaporate.

        Zombie extents are *not* freed — the crashed process never got
        to it, and recovery's orphan-extent sweep reclaims them from the
        manifest, same as any torn merge's output.
        """
        self._pins.clear()
        self._zombies.clear()


class _RamSource:
    """A point-in-time copy of one in-RAM record source."""

    __slots__ = ("_keys", "_records", "_by_key")

    def __init__(self, records: Iterable[Record]) -> None:
        ordered = sorted(records, key=lambda record: record.key)
        self._records = ordered
        self._keys = [record.key for record in ordered]
        self._by_key = {record.key: record for record in ordered}

    def get(self, key: bytes) -> Record | None:
        return self._by_key.get(key)

    def scan(self, lo: bytes, hi: bytes | None) -> Iterator[Record]:
        start = bisect_left(self._keys, lo)
        for record in self._records[start:]:
            if hi is not None and record.key >= hi:
                return
            yield record


class TreeSnapshot:
    """An immutable, consistent read view over one tree.

    ``ram_sources`` are already-copied RAM sources and ``tables`` the
    on-disk components, both in recency order (newest first) — the same
    order the live tree's read path walks.  The constructor pins every
    table in ``versions``; :meth:`close` (or context-manager exit)
    releases the pins, triggering any frees a merge deferred.
    """

    def __init__(
        self,
        versions: VersionSet,
        ram_sources: Sequence[_RamSource],
        tables: Sequence["SSTable"],
        engine: str = "tree",
    ) -> None:
        self.engine = engine
        self._versions = versions
        self._ram = list(ram_sources)
        self._tables = list(tables)
        self._released = False
        for table in self._tables:
            versions.pin(table)

    def get(self, key: bytes) -> bytes | None:
        """Point lookup against the snapshot's component set.

        Same termination rule as the live read path: collect versions
        newest-to-oldest, stop at the first base record or tombstone,
        fold deltas (Section 3.1.1).  Disk probes are charged normally.
        """
        versions: list[Record] = []
        for source in self._ram:
            record = source.get(key)
            if record is not None:
                versions.append(record)
                if not record.is_delta:
                    return resolve(versions)
        for table in self._tables:
            record = table.get(key)
            if record is not None:
                versions.append(record)
                if not record.is_delta:
                    break
        return resolve(versions)

    def multi_get(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Batched point lookups; results align with ``keys``."""
        return [self.get(key) for key in keys]

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan over the pinned component set.

        Never restarts: the sources cannot change under the scan, no
        matter how many merges install or memtables switch while the
        caller holds it paused.
        """
        sources: list[Iterator[Record]] = [
            source.scan(lo, hi) for source in self._ram
        ]
        sources.extend(table.scan(lo, hi) for table in self._tables)
        emitted = 0
        for group in kway_merge(sources):
            value = resolve(group)
            if value is None:
                continue
            yield group[0].key, value
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def close(self) -> None:
        """Release the pinned components (idempotent)."""
        if self._released:
            return
        self._released = True
        for table in self._tables:
            self._versions.unpin(table)

    def __enter__(self) -> "TreeSnapshot":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return (
            f"TreeSnapshot({self.engine}, ram={len(self._ram)}, "
            f"tables={len(self._tables)}, {state})"
        )


def ram_source(records: Iterable[Record]) -> _RamSource:
    """Copy an in-RAM record source for inclusion in a snapshot."""
    return _RamSource(records)
