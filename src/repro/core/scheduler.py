"""Merge schedulers (Sections 3.2, 4.1, 4.3).

A *level scheduler* decides which level's merge runs next and how fast, so
that every tree component finishes merging exactly when the component
upstream of it fills.  The paper contrasts three policies, all implemented
here against the same tree interface:

* :class:`NaiveScheduler` — no pacing.  Merges run only when C0 is full,
  and the application blocks for the entire downstream merge: the
  unbounded write pauses that make base LSM-Trees impractical.

* :class:`GearScheduler` — couples merge progress like clock gears: the
  C0:C1 merge's ``inprogress`` is kept at C0's fill fraction, and the
  C1:C2 merge's ``inprogress`` is kept at the C0:C1 merge's
  ``outprogress``, so every hand "reaches 12" together (Section 4.1).

* :class:`SpringGearScheduler` — replaces the brittle upstream coupling
  with a spring: C0's fill is kept between a low and a high water mark;
  merges pause when C0 empties, and writes feel proportional backpressure
  as C0 fills (Section 4.3).  This composes with snowshoveling, which the
  plain gear scheduler cannot (Section 4.2.2).

Schedulers run on the write path: ``on_write`` is invoked after each
application write and performs merge work (advancing the shared virtual
clock) plus any deliberate stall.  The latency a write observes is exactly
the clock advance across its call — merge work a scheduler fails to
spread out shows up as a latency spike, just as in the paper's Figure 7.

Schedulers are written against a *merge host* surface, not a concrete
tree class: any object exposing ``c0_fill_fraction``, the two gears'
``m01_*``/``m12_*`` progress and input-size properties,
``write_amplification_estimate()``, ``step_m01``/``step_m12`` and
``force_drain`` can attach.  :class:`repro.core.tree.BLSM` maps the
gears onto its C0:C1 and C1':C2 merges;
:class:`repro.core.compaction.tree.CompactionTree` maps them onto its
level-0-sourced and deeper policy merges, which is how one scheduler
implementation paces every compaction policy (docs/compaction.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compaction.tree import CompactionTree
    from repro.core.tree import BLSM

    MergeHost = Union["BLSM", "CompactionTree"]


class MergeScheduler(ABC):
    """Base class wiring a scheduler to its merge host."""

    def __init__(self) -> None:
        self._tree: "MergeHost | None" = None

    def attach(self, tree: "MergeHost") -> None:
        self._tree = tree

    @property
    def tree(self) -> "MergeHost":
        if self._tree is None:
            raise RuntimeError("scheduler is not attached to a tree")
        return self._tree

    @property
    def runtime(self):
        """The attached tree's observability runtime."""
        return self.tree.runtime

    @abstractmethod
    def on_write(self, nbytes: int) -> None:
        """Schedule merge work after an application write of ``nbytes``."""


class NaiveScheduler(MergeScheduler):
    """No pacing: block on full C0 until a whole merge pass completes.

    This reproduces the behaviour of the base LSM-Tree algorithm
    (Section 2.3.1): write latency is unbounded because a single write can
    wait for a full rewrite of C1 — and transitively of C2.
    """

    def on_write(self, nbytes: int) -> None:
        tree = self.tree
        if tree.c0_fill_fraction >= 1.0:
            tree.force_drain(target_fill=0.0, chunk=1 << 30)


class GearScheduler(MergeScheduler):
    """Progress-coupled pacing (Section 4.1).

    After each write the scheduler computes each merge's progress deficit
    and performs just enough work to close it, capped per tick so one
    write never absorbs an unbounded amount of merge work (the cap is the
    scheduler's latency bound; deficits carry over to the next write).
    """

    def __init__(self, max_tick_bytes: int = 512 * 1024) -> None:
        super().__init__()
        self.max_tick_bytes = max_tick_bytes
        self._gauges: tuple = ()

    def on_write(self, nbytes: int) -> None:
        tree = self.tree
        budget = self.max_tick_bytes
        if not self._gauges:
            metrics = self.runtime.metrics
            self._gauges = (
                metrics.gauge("scheduler.deficit01"),
                metrics.gauge("scheduler.deficit12"),
            )
        # Gear 1: keep the C0:C1 merge at C0's fill fraction.
        deficit01 = tree.c0_fill_fraction - tree.m01_inprogress
        self._gauges[0].set(max(0.0, deficit01))
        if deficit01 > 0:
            work = min(budget, int(deficit01 * tree.m01_input_bytes) + 1)
            budget -= tree.step_m01(work)
        # Gear 2: keep the C1:C2 merge at the C0:C1 merge's outprogress.
        deficit12 = tree.m01_outprogress - tree.m12_inprogress
        self._gauges[1].set(max(0.0, deficit12))
        if deficit12 > 0 and budget > 0:
            work = min(budget, int(deficit12 * tree.m12_input_bytes) + 1)
            tree.step_m12(work)
        if tree.c0_fill_fraction >= 1.0:
            tree.force_drain(target_fill=0.95, chunk=self.max_tick_bytes)


class SpringGearScheduler(MergeScheduler):
    """Water-mark pacing with proportional backpressure (Section 4.3).

    C0's fill fraction *is* the progress indicator: below the low water
    mark all merges pause (C0 is allowed to refill, absorbing load
    spikes); between the marks, merge work per write scales with how far
    C0 has filled; above the high water mark the write stalls until
    merges bring C0 back down.  The downstream C1:C2 merge keeps the gear
    coupling, paced off the C0:C1 merge's outprogress.
    """

    def __init__(
        self,
        low_water: float = 0.35,
        high_water: float = 0.90,
        max_tick_bytes: int = 512 * 1024,
    ) -> None:
        super().__init__()
        if not 0.0 <= low_water < high_water <= 1.0:
            raise ValueError(
                f"require 0 <= low < high <= 1, got {low_water}, {high_water}"
            )
        self.low_water = low_water
        self.high_water = high_water
        self.max_tick_bytes = max_tick_bytes
        self._engaged = False
        self._gauge_pressure = None

    def _set_pressure(self, pressure: float) -> None:
        """Record spring pressure; emit an event on each transition."""
        runtime = self.runtime
        # Bind the gauge once: this runs on every write, and a registry
        # lookup per write is measurable on the hot path.
        gauge = self._gauge_pressure
        if gauge is None:
            gauge = self._gauge_pressure = runtime.metrics.gauge(
                "scheduler.pressure"
            )
        gauge.set(pressure)
        if pressure > 0.0 and not self._engaged:
            self._engaged = True
            runtime.metrics.counter("scheduler.backpressure_engagements").inc()
            runtime.trace.emit("backpressure_engaged", pressure=pressure)
        elif pressure == 0.0 and self._engaged:
            self._engaged = False
            runtime.trace.emit("backpressure_released")

    def on_write(self, nbytes: int) -> None:
        tree = self.tree
        fill = tree.c0_fill_fraction
        if fill <= self.low_water:
            # spring unwound: pause merges, let C0 absorb writes
            self._set_pressure(0.0)
            return
        pressure = min(
            1.0, (fill - self.low_water) / (self.high_water - self.low_water)
        )
        self._set_pressure(pressure)
        # Steady state: each written byte must eventually push an
        # amplified volume of merge I/O.  Scale that volume by the spring
        # pressure, with headroom (the 2x) so the merge can catch up after
        # an idle spell instead of only ever breaking even.  One budget is
        # shared across all steps below: max_tick_bytes is the per-tick
        # latency bound, not a per-step cap.
        amplification = tree.write_amplification_estimate()
        budget = min(
            self.max_tick_bytes, int(2.0 * pressure * amplification * nbytes) + 1
        )
        worked = tree.step_m01(budget)
        remaining = self.max_tick_bytes - worked
        deficit12 = tree.m01_outprogress - tree.m12_inprogress
        if deficit12 > 0 and remaining > 0:
            work = min(remaining, int(deficit12 * tree.m12_input_bytes) + 1)
            remaining -= tree.step_m12(work)
        if worked == 0 and fill >= self.high_water and remaining > 0:
            # C0:C1 could not run (typically blocked on promotion while
            # the C1:C2 merge finishes); drive the blocker.
            tree.step_m12(remaining)
        if tree.c0_fill_fraction >= 1.0:
            tree.force_drain(
                target_fill=self.high_water, chunk=self.max_tick_bytes
            )


def make_scheduler(
    name: str,
    low_water: float = 0.35,
    high_water: float = 0.90,
    max_tick_bytes: int = 512 * 1024,
) -> MergeScheduler:
    """Build a scheduler by name: ``naive``, ``gear`` or ``spring_gear``."""
    if name == "naive":
        return NaiveScheduler()
    if name == "gear":
        return GearScheduler(max_tick_bytes=max_tick_bytes)
    if name == "spring_gear":
        return SpringGearScheduler(
            low_water=low_water,
            high_water=high_water,
            max_tick_bytes=max_tick_bytes,
        )
    raise ValueError(f"unknown scheduler {name!r}")
