"""Manifest descriptors for on-disk components.

The manifest (committed through the physical WAL, Section 4.4.2) stores
one descriptor per live component: its blocks, extents, counters and —
when filter persistence is enabled — where its Bloom filter lives.
Recovery turns descriptors back into :class:`SSTable` objects, loading
the persisted filter or rebuilding it with a full component scan (the
paper's prototype behaviour, Section 4.4.3).
"""

from __future__ import annotations

from typing import Any

from repro.bloom import BloomFilter
from repro.core.options import BLSMOptions
from repro.sstable.bloom_store import bloom_descriptor, load_bloom
from repro.sstable.reader import SSTable
from repro.storage.region import Extent
from repro.storage.stasis import Stasis


def describe_component(table: SSTable | None) -> dict[str, Any] | None:
    """The manifest entry for one component (``None`` for an empty slot)."""
    if table is None:
        return None
    return {
        "tree_id": table.tree_id,
        "blocks": tuple(table.blocks),
        "extents": tuple(table.extents),
        "key_count": table.key_count,
        "nbytes": table.nbytes,
        "max_key": table.max_key,
        "bloom": bloom_descriptor(table),
    }


def rebuild_component(
    stasis: Stasis, desc: dict[str, Any] | None, options: BLSMOptions
) -> SSTable | None:
    """Reconstruct a component (and its filter) from a descriptor."""
    if desc is None:
        return None
    table = SSTable(
        stasis,
        blocks=list(desc["blocks"]),
        extents=list(desc["extents"]),
        key_count=desc["key_count"],
        nbytes=desc["nbytes"],
        bloom=None,
        tree_id=desc["tree_id"],
        max_key=desc["max_key"],
    )
    bloom_desc = desc.get("bloom")
    if bloom_desc is not None:
        # Persisted filter: one small sequential read.
        table.bloom = load_bloom(stasis, bloom_desc)
        table.bloom_extent = bloom_desc["extent"]
    elif options.with_bloom_filters and desc["key_count"] > 0:
        # Prototype behaviour: rebuild by scanning the whole component.
        bloom = BloomFilter.for_capacity(
            desc["key_count"], options.bloom_false_positive_rate
        )
        for record in table.iter_records():
            bloom.add(record.key)
        table.bloom = bloom
    return table


def component_extents(desc: dict[str, Any] | None) -> set[Extent]:
    """Every extent a descriptor pins (data plus persisted filter)."""
    if desc is None:
        return set()
    live = set(desc["extents"])
    bloom_desc = desc.get("bloom")
    if bloom_desc is not None:
        live.add(bloom_desc["extent"])
    return live
