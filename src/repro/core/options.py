"""Configuration for a bLSM tree."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.sim.disk import DiskModel
from repro.storage.buffer import EvictionPolicy
from repro.storage.logical_log import DurabilityMode

MIB = 1024 * 1024


@dataclass
class BLSMOptions:
    """All tunables of a :class:`~repro.core.tree.BLSM` instance.

    Defaults mirror the paper's configuration at a laptop-friendly scale:
    most memory goes to C0 (the paper gives C0 8 GB of a 10 GB budget,
    Section 5.1), pages are 4 KB (Appendix A), Bloom filters target a
    sub-1 % false-positive rate (Section 3.1), snowshoveling is on
    (Section 4.2) and merges are paced by the spring-and-gear scheduler
    (Section 4.3).
    """

    c0_bytes: int = 4 * MIB
    """Capacity of the in-memory component C0."""

    page_size: int = 4096
    """Data page size (Appendix A argues for 4 KB)."""

    buffer_pool_pages: int = 256
    """Page cache size; the paper gives bLSM 2 GB of cache vs 8 GB C0."""

    disk_model: DiskModel = field(default_factory=DiskModel.hdd)
    """Device profile both data and log devices are built from."""

    log_disk_model: DiskModel | None = None
    """Separate device profile for the log device (the paper's dedicated
    log disk, Section 5.1).  ``None`` shares :attr:`disk_model`."""

    data_stripes: int = 1
    """Number of member devices in the data array.  1 uses a single
    :class:`~repro.sim.disk.SimDisk`; >= 2 builds a RAID-0
    :class:`~repro.sim.disk.StripedDisk` (Section 5.1's arrays)."""

    stripe_chunk_bytes: int = 512 * 1024
    """RAID-0 stripe chunk size (the paper's arrays use 512 KB stripes)."""

    background_merges: bool = False
    """Run merge I/O on per-merge background timelines (the paper's merge
    threads, Section 5.1) instead of charging it synchronously to the
    writer.  Foreground writes then feel merges only through device
    queueing and C0-fill backpressure; see docs/concurrency.md."""

    eviction_policy: EvictionPolicy = EvictionPolicy.CLOCK
    """Buffer-pool replacement policy (CLOCK per Section 4.4.2)."""

    durability: DurabilityMode = DurabilityMode.ASYNC
    """Logical-log mode; the paper's benchmarks do not sync at commit."""

    with_bloom_filters: bool = True
    """Protect C1/C1'/C2 with Bloom filters (Section 3.1)."""

    bloom_false_positive_rate: float = 0.01
    """Target FPR; 10 bits/key gives 1 % (Section 3.1)."""

    snowshovel: bool = True
    """Consume C0 via replacement selection instead of freezing C0'."""

    delta_read_repair: bool = False
    """Reads that fold deltas re-insert the merged base record into C0
    (Section 5.6's suggestion), so later reads of the key stop at C0
    instead of re-collecting the delta chain from disk."""

    compression_ratio: float = 1.0
    """On-disk bytes per logical record byte (Rose-style compression,
    Section 6): 1.0 disables compression; 0.5 halves merge bandwidth.
    Reads are unaffected (decompression is CPU, not device time)."""

    persist_bloom_filters: bool = False
    """Write each component's Bloom filter to disk when its merge
    commits.  The paper's prototype does not persist filters
    (Section 4.4.3) and rebuilds them by scanning components at
    recovery; persisting trades a small sequential write per merge
    (~1.25 bytes/key) for a far cheaper recovery."""

    scheduler: str = "spring_gear"
    """Merge scheduler: ``naive``, ``gear`` or ``spring_gear``."""

    extra_components: bool = False
    """The Section 3.2 workaround instead of stalling: when C0 is full
    and the C0:C1 merge cannot proceed, flush C0 to an *extra*
    overlapping component (HBase's disabled compaction, Cassandra 1.0's
    overlapping range partitions).  Writes never block, but every extra
    component adds a seek to scans — the degradation the paper uses to
    argue for level scheduling instead."""

    min_r: float = 2.0
    """Lower clamp on the size ratio R between adjacent levels."""

    max_r: float = 10.0
    """Upper clamp on R."""

    low_water: float = 0.35
    """C0 fill below which downstream merges pause (spring and gear)."""

    high_water: float = 0.90
    """C0 fill above which writes are fully backpressured."""

    merge_chunk_bytes: int = 256 * 1024
    """Merge I/O batch size (the paper's arrays use 512 KB stripes)."""

    max_tick_bytes: int = 512 * 1024
    """Cap on merge work performed inside a single write.

    This is the scheduler's write-latency bound: ~2 ms of device time at
    HDD bandwidth.  Deficits beyond the cap carry over to later writes.
    """

    seed: int = 0
    """Seed for the memtable's skip list."""

    memtable: str = "skiplist"
    """Ordered-map structure backing C0: ``skiplist`` (the paper's and
    LevelDB's structure), ``array`` (sorted array + bisect) or ``dict``
    (hash map, sorted on freeze/drain) — the Szanto-style data-structure
    ablation swept by ``repro profile --memtable all``."""

    observability: bool = True
    """Record per-access device metrics and trace events.  ``False``
    skips the per-operation metrics/trace dispatch entirely (the hot
    path's no-op fast path); simulated timing, I/O accounting
    (:class:`~repro.sim.stats.IOStats`) and all answers are identical."""

    fault_plan: FaultPlan | None = None
    """When set, both devices inject faults from this plan (the devices
    become :class:`~repro.faults.disk.FaultyDisk` instances sharing it)."""

    retry: RetryPolicy | None = None
    """Retry/backoff policy for transient device faults.  ``None`` means
    no retries on a healthy substrate; with a ``fault_plan`` set, Stasis
    defaults to ``RetryPolicy()`` unless an explicit policy is given."""

    capacity_bytes: int | None = None
    """Optional data-device capacity; overflowing writes raise
    :class:`~repro.errors.DeviceFullError`."""

    compaction_policy: str = "blsm3"
    """On-disk layout policy (the design-space axis): ``blsm3`` is the
    paper's three-level tree, served by :class:`~repro.core.tree.BLSM`
    unchanged; ``leveled``, ``tiered`` and ``lazy-leveled`` build a
    :class:`~repro.core.compaction.tree.CompactionTree` over the
    generalized :class:`~repro.core.compaction.manager.LevelManager`."""

    level_ratio: float = 4.0
    """Geometric size ratio between adjacent levels of a policy tree:
    ``max_bytes(level) = level_base_bytes * level_ratio^level``.  (The
    ``blsm3`` policy keeps its own adaptive R, clamped by
    :attr:`min_r`/:attr:`max_r`.)"""

    level_base_bytes: int | None = None
    """Level-1 byte budget of a policy tree.  ``None`` derives
    ``level0_trigger * c0_bytes`` — one L0's worth of memtable flushes."""

    level0_trigger: int = 4
    """Level-0 run count that makes the L0 merge due (policy trees)."""

    level0_stop_trigger: int = 12
    """Level-0 run count at which the writer hard-stalls and drains
    merges inline (LevelDB's stop trigger; policy trees only)."""

    tier_fanout: int = 4
    """Runs a tiered (or lazy-leveled upper) level stacks before its
    runs merge into one run in the next level."""

    def __post_init__(self) -> None:
        if self.c0_bytes <= 0:
            raise ValueError("c0_bytes must be positive")
        if not 0.0 <= self.low_water < self.high_water <= 1.0:
            raise ValueError(
                "require 0 <= low_water < high_water <= 1, got "
                f"{self.low_water}, {self.high_water}"
            )
        if self.min_r < 1.0 or self.max_r < self.min_r:
            raise ValueError(
                f"require 1 <= min_r <= max_r, got {self.min_r}, {self.max_r}"
            )
        if self.scheduler not in ("naive", "gear", "spring_gear"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError(
                f"compression_ratio must be in (0, 1], got {self.compression_ratio}"
            )
        if self.data_stripes < 1:
            raise ValueError(
                f"data_stripes must be >= 1, got {self.data_stripes}"
            )
        if self.stripe_chunk_bytes <= 0:
            raise ValueError(
                f"stripe_chunk_bytes must be positive, got {self.stripe_chunk_bytes}"
            )
        from repro.memtable.backends import MEMTABLE_NAMES

        if self.memtable not in MEMTABLE_NAMES:
            raise ValueError(
                f"unknown memtable {self.memtable!r}; "
                f"expected one of {MEMTABLE_NAMES}"
            )
        from repro.core.compaction.policy import POLICY_NAMES

        if self.compaction_policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown compaction policy {self.compaction_policy!r}; "
                f"expected one of {POLICY_NAMES}"
            )
        if self.level_ratio <= 1.0:
            raise ValueError(
                f"level_ratio must exceed 1, got {self.level_ratio}"
            )
        if self.level_base_bytes is not None and self.level_base_bytes <= 0:
            raise ValueError(
                f"level_base_bytes must be positive, got {self.level_base_bytes}"
            )
        if self.level0_trigger < 1:
            raise ValueError(
                f"level0_trigger must be >= 1, got {self.level0_trigger}"
            )
        if self.level0_stop_trigger < self.level0_trigger:
            raise ValueError(
                "level0_stop_trigger must be >= level0_trigger, got "
                f"{self.level0_stop_trigger} < {self.level0_trigger}"
            )
        if self.tier_fanout < 2:
            raise ValueError(
                f"tier_fanout must be >= 2, got {self.tier_fanout}"
            )
        if self.data_stripes > 1 and self.fault_plan is not None:
            raise ValueError(
                "fault injection is not supported on a striped data device "
                "(the crash-point harness needs one serial access sequence)"
            )


def derive_shard_options(options: BLSMOptions, index: int) -> BLSMOptions:
    """Per-shard copy of ``options`` for one member of a sharded fleet.

    Each shard is an independent tree over its own device set; the only
    field that must differ is the skip-list ``seed`` (identical seeds
    would make every shard's memtable towers — and hence CPU-side
    behaviour — eerily correlated).  A shared ``fault_plan`` is
    rejected: its access counter assumes one serial device-access
    sequence, which N independent shard device sets do not produce.
    """
    if options.fault_plan is not None:
        raise ValueError(
            "fault injection is not supported on a sharded engine "
            "(the crash-point harness needs one serial access sequence)"
        )
    return replace(options, seed=options.seed + index)
