"""The bLSM tree (Figure 1 and Sections 3-4).

Structure: an in-memory component C0 (a memtable) and three on-disk slots.

* ``C1`` — the component the continuous C0:C1 merge rebuilds.  Each merge
  *pass* consumes one snowshovel run of C0 (or a frozen C0' when
  snowshoveling is off) together with the current C1 and writes a new C1.
* ``C1'`` — a full C1 promoted for merging downstream; it exists only to
  support the ongoing C1:C2 merge (Section 3.3).
* ``C2`` — the largest component; tombstones are garbage-collected when
  they reach it.

Reads walk C0, C1, C1', C2 (newest to oldest), skip components whose
Bloom filter rejects the key, and terminate at the first base record or
tombstone (Section 3.1.1).  ``insert_if_not_exists`` is zero-seek in the
common case because the largest component's Bloom filter answers the
existence check (Section 3.1.2).

Merges run incrementally on the write path under a pluggable scheduler;
all I/O advances the shared virtual clock, so a scheduler that lets a
merge fall behind produces exactly the write-latency spikes the paper
measures.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator

from repro.core.components import (
    component_extents,
    describe_component,
    rebuild_component,
)
from repro.core.merge import FrozenSource, MergeProcess, SnowshovelSource  # noqa: F401
from repro.core.options import BLSMOptions
from repro.core.progress import outprogress
from repro.core.scheduler import make_scheduler
from repro.core.versions import TreeSnapshot, VersionSet, ram_source
from repro.errors import EngineClosedError
from repro.memtable.memtable import MemTable
from repro.records import Record, resolve
from repro.sim.clock import Timeline
from repro.sstable.reader import SSTable
from repro.storage.group_commit import CommitTicket
from repro.storage.recovery import recover as storage_recover
from repro.storage.region import Extent
from repro.storage.stasis import Stasis

_OP_PUT = "put"
_OP_DELETE = "delete"
_OP_DELTA = "delta"


class BLSM:
    """A three-level log structured merge tree with Bloom filters."""

    def __init__(
        self,
        options: BLSMOptions | None = None,
        stasis: Stasis | None = None,
    ) -> None:
        self.options = options if options is not None else BLSMOptions()
        opts = self.options
        if stasis is not None:
            self.stasis = stasis
        else:
            self.stasis = Stasis(
                disk_model=opts.disk_model,
                page_size=opts.page_size,
                buffer_pool_pages=opts.buffer_pool_pages,
                eviction_policy=opts.eviction_policy,
                durability=opts.durability,
                fault_plan=opts.fault_plan,
                retry=opts.retry,
                capacity_bytes=opts.capacity_bytes,
                log_disk_model=opts.log_disk_model,
                data_stripes=opts.data_stripes,
                stripe_chunk_bytes=opts.stripe_chunk_bytes,
                observability=opts.observability,
            )
        self._memtable = MemTable(
            self._c0_capacity, seed=opts.seed, kind=opts.memtable
        )
        self._frozen: MemTable | None = None  # C0' (non-snowshovel mode)
        self._c1: SSTable | None = None
        self._c1_prime: SSTable | None = None
        self._c2: SSTable | None = None
        self._extras: list[SSTable] = []  # §3.2 workaround components
        self._m01: MergeProcess | None = None
        self._m01_extra: SSTable | None = None
        self._m12: MergeProcess | None = None
        self._promotion_pending = False
        self._next_seqno = 0
        self._next_tree_id = 1
        self._r = opts.min_r
        self._merge_epoch = 0
        self._closed = False
        self._init_timelines()
        self._init_obs()
        self.scheduler = make_scheduler(
            opts.scheduler, opts.low_water, opts.high_water, opts.max_tick_bytes
        )
        self.scheduler.attach(self)
        self.stasis.commit_manifest(self._manifest())

    def _init_timelines(self) -> None:
        """Create the per-merge background timelines (Section 5.1's merge
        threads) when ``options.background_merges`` is set.

        Each merge level gets its own :class:`~repro.sim.clock.Timeline`:
        merge I/O dispatched to it advances the timeline and the device
        busy horizons instead of the writer's clock.  A worker whose
        timeline is ahead of the clock is *busy* — new merge work is not
        dispatched to it, which bounds merge progress by device speed and
        keeps C0-fill backpressure meaningful (docs/concurrency.md).
        """
        if self.options.background_merges:
            self._bg01: Timeline | None = Timeline("merge-c0c1")
            self._bg12: Timeline | None = Timeline("merge-c1c2")
        else:
            self._bg01 = None
            self._bg12 = None

    def _wait_for_background(self) -> bool:
        """Advance the clock to the next background completion, if any.

        This is the stall path's genuine *waiting*: the foreground has
        nothing it can do until a merge worker frees up, so virtual time
        passes without any foreground service being charged.  Returns
        whether there was anything to wait for.
        """
        clock = self.stasis.clock
        horizons = [
            timeline.now
            for timeline in (self._bg01, self._bg12)
            if timeline is not None and timeline.busy(clock)
        ]
        if not horizons:
            return False
        clock.advance_to(min(horizons))
        return True

    def _init_obs(self) -> None:
        """Bind this tree's instrumentation to the runtime's registry."""
        self.runtime = self.stasis.runtime
        self.versions = VersionSet(self.runtime)
        metrics = self.runtime.metrics
        self._ctr_rotations = metrics.counter("memtable.rotations")
        self._ctr_memtable_full = metrics.counter("memtable.full_events")
        self._gauge_fill = metrics.gauge("memtable.fill")
        self._ctr_stalls = metrics.counter("writes.stalls")
        self._hist_stall = metrics.histogram("writes.stall_seconds")
        self._merge_obs = {
            level: (
                metrics.counter(f"merge.{level}.passes"),
                metrics.counter(f"merge.{level}.bytes"),
                metrics.counter(f"merge.{level}.seconds"),
            )
            for level in ("c0c1", "c1c2")
        }

    def _note_merge_progress(
        self, level: str, worked: int, seconds: float, inprogress: float
    ) -> None:
        _passes, ctr_bytes, ctr_seconds = self._merge_obs[level]
        ctr_bytes.inc(worked)
        ctr_seconds.inc(seconds)
        trace = self.runtime.trace
        if trace.enabled:  # skip the kwargs build when tracing is off
            trace.emit(
                "merge_progress",
                level=level,
                worked=worked,
                seconds=seconds,
                inprogress=inprogress,
            )

    # ------------------------------------------------------------------
    # Public write API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Blind write of a full base record: zero seeks (Table 1)."""
        self._write(Record.base(key, value, self._take_seqno()), _OP_PUT)

    def delete(self, key: bytes) -> None:
        """Write a tombstone; physical space is reclaimed by merges."""
        self._write(Record.tombstone(key, self._take_seqno()), _OP_DELETE)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Zero-seek partial update; folded onto the base record by reads
        and merges (Section 3.1.1)."""
        self._write(Record.delta(key, delta, self._take_seqno()), _OP_DELTA)

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Insert ``key`` only if absent; returns whether it inserted.

        The existence check consults C0 and then the Bloom filters of
        C1/C1'/C2; for a genuinely new key this costs zero seeks with
        probability ~(1 - FPR)^3 (Section 3.1.2).
        """
        if self.get(key) is not None:
            return False
        self.put(key, value)
        return True

    def read_modify_write(
        self, key: bytes, update: Callable[[bytes | None], bytes]
    ) -> bytes:
        """Read the current value, apply ``update``, write the result.

        One seek for the read; the write is blind (Table 1: one seek
        total vs. a B-Tree's two).
        """
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    def write_batch(
        self,
        ops: Iterable[tuple[str, bytes, bytes | None]],
        session: int = 0,
        wait: bool = True,
    ) -> CommitTicket:
        """Apply a batch of mutations and commit them as one ticket.

        The batch's records are applied to C0 and staged in the logical
        log, then committed through the Stasis group-commit queue: under
        :class:`~repro.storage.logical_log.DurabilityMode.GROUP` the
        ticket resolves when a leader's force covers the batch (several
        sessions' batches share one force); under SYNC/ASYNC each write
        forced per its mode already, so the ticket is trivially durable.
        With ``wait=False`` the ticket is returned unresolved and the
        caller acknowledges the commit at ``ticket.durable_at`` once a
        later force (or a drain) resolves it.
        """
        self._check_open()
        first = self._next_seqno
        count = 0
        for op, key, value in ops:
            if op == "put":
                assert value is not None
                self.put(key, value)
            elif op == "delete":
                self.delete(key)
            elif op == "delta":
                assert value is not None
                self.apply_delta(key, value)
            else:
                raise ValueError(f"unknown batch op {op!r}")
            count += 1
        if count == 0:
            now = self.stasis.clock.now
            return CommitTicket(
                session=session,
                first_seqno=first,
                last_seqno=first - 1,
                ops=0,
                enqueued_at=now,
                leader=True,
                group_size=1,
                durable_at=now,
                durable_lsn=self.stasis.logical_log.durable_seqno,
            )
        return self.stasis.group_commit.commit(
            first, self._next_seqno - 1, count, session=session, wait=wait
        )

    # ------------------------------------------------------------------
    # Public read API
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Point lookup; at most ``1 + N/100`` seeks (Section 3.1)."""
        self._check_open()
        versions: list[Record] = []
        if self._collect(self._memtable.get(key), versions):
            return resolve(versions)
        if self._frozen is not None and self._collect(
            self._frozen.get(key), versions
        ):
            return resolve(versions)
        if self._m01 is not None and self._collect(
            self._m01.overlay_get(key), versions
        ):
            return resolve(versions)
        stopped = False
        for extra in self._extras:  # newest first (§3.2 workaround)
            if self._collect(extra.get(key), versions):
                stopped = True
                break
        if not stopped:
            for component in (self._c1, self._c1_prime, self._c2):
                if component is None:
                    continue
                if self._collect(component.get(key), versions):
                    break
        value = resolve(versions)
        if (
            self.options.delta_read_repair
            and value is not None
            and len(versions) > 1
            and versions[0].is_delta
        ):
            # Section 5.6: a read that had to fold deltas inserts the
            # merged tuple into C0, so the next read stops there.  The
            # repair is logged like any write: it may fold over (and
            # therefore subsume) logged deltas still resident in C0, and
            # exact log retention would otherwise drop those deltas with
            # nothing durable to replace them.
            self._write(Record.base(key, value, self._take_seqno()), _OP_PUT)
        return value

    def scan(
        self,
        lo: bytes,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan: merge every component (Section 3.3's 2-3 seeks).

        The scan runs against a pinned :class:`TreeSnapshot`, so merges
        completing (or the memtable switching) while the caller holds
        the scan paused are invisible: no restart, no stall, no row ever
        observed twice.  The epoch-restart loop this replaces re-walked
        the component set from the cursor at every merge install —
        Section 4.4.1's logical-timestamp validation — which blocked
        paused scans behind merge progress.
        """
        self._check_open()
        with self.snapshot() as snap:
            yield from snap.scan(lo, hi, limit)

    def snapshot(self) -> TreeSnapshot:
        """Pin a consistent point-in-time read view of the tree.

        RAM sources (C0, frozen C0', the snowshovel overlay) are copied;
        on-disk components are pinned in the :class:`VersionSet`, which
        defers their ``free()`` past the snapshot's lifetime.  Taking a
        snapshot costs O(|C0|) copying and no I/O; reads through it
        charge the device clock exactly like live reads.
        """
        self._check_open()
        ram = [ram_source(self._memtable)]
        if self._frozen is not None:
            ram.append(ram_source(self._frozen))
        if self._m01 is not None:
            ram.append(ram_source(self._m01.overlay.values()))
        tables = list(self._extras)  # newest first (§3.2 workaround)
        tables.extend(
            component
            for component in (self._c1, self._c1_prime, self._c2)
            if component is not None
        )
        return TreeSnapshot(self.versions, ram, tables, engine="blsm")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush_log(self) -> None:
        """Force the logical log (durability barrier).

        Pending group-commit tickets resolve first — a flush must not
        leave a session's acknowledged-later batch behind its barrier.
        """
        self.stasis.group_commit.drain()
        self.stasis.logical_log.force()

    def drain(self) -> None:
        """Push all of C0 into C1 (complete outstanding C0:C1 passes).

        With background merges, steps that find their worker busy return
        0; the loop then *waits* (advances the clock to the worker's
        completion) rather than concluding no progress is possible.
        """
        self._check_open()
        while True:
            if self.step_m01(1 << 30):
                continue
            if self._memtable.is_empty and self._frozen is None and self._m01 is None:
                return
            if self.step_m12(1 << 30) == 0:
                if self.step_m01(1 << 30) == 0:
                    if self._wait_for_background():
                        continue
                    return

    def compact(self) -> None:
        """Merge everything into a single C2 component (major compaction)."""
        self.drain()
        while self._m12 is not None or self._c1_prime is not None:
            if self.step_m12(1 << 30) == 0 and not self._wait_for_background():
                break
        if self._c1 is not None:
            self._c1_prime = self._c1
            self._c1 = None
            while self._m12 is not None or self._c1_prime is not None:
                if self.step_m12(1 << 30) == 0 and not self._wait_for_background():
                    break

    def close(self) -> None:
        """Force logs and mark the tree closed."""
        if self._closed:
            return
        self.flush_log()
        self.stasis.wal.force()
        self._closed = True

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------

    @property
    def c0_fill_fraction(self) -> float:
        """Fill of the active memtable; the spring's displacement."""
        return self._memtable.fill_fraction

    @property
    def m01_inprogress(self) -> float:
        """The C0:C1 merge's smooth progress estimator (Section 4.1)."""
        if self._m01 is not None:
            return self._m01.inprogress
        return 0.0 if self._m01_can_start() else 1.0

    @property
    def m01_outprogress(self) -> float:
        """Where C1 stands within the R passes that fill it (Section 4.1)."""
        c1_bytes = self._c1.nbytes if self._c1 is not None else 0
        return outprogress(
            self.m01_inprogress, c1_bytes, self._c0_capacity, self._r
        )

    @property
    def m12_inprogress(self) -> float:
        """The C1':C2 merge's smooth progress estimator (Section 4.1)."""
        if self._m12 is not None:
            return self._m12.inprogress
        return 0.0 if self._c1_prime is not None else 1.0

    @property
    def m01_input_bytes(self) -> int:
        """Total input of the active (or next) C0:C1 merge, in bytes."""
        if self._m01 is not None:
            return self._m01.input_bytes
        c1_bytes = self._c1.nbytes if self._c1 is not None else 0
        return max(1, self._c0_source_bytes() + c1_bytes)

    @property
    def m12_input_bytes(self) -> int:
        """Total input of the active (or next) C1':C2 merge, in bytes."""
        if self._m12 is not None:
            return self._m12.input_bytes
        c1p = self._c1_prime.nbytes if self._c1_prime is not None else 0
        c2 = self._c2.nbytes if self._c2 is not None else 0
        return max(1, c1p + c2)

    def write_amplification_estimate(self) -> float:
        """Bytes of merge I/O each written byte eventually costs.

        Used by the spring-and-gear scheduler to convert a write into a
        merge-work budget.  Derived from current component sizes: each
        C0:C1 pass reads and writes ``run + |C1|`` bytes to consume
        ``run`` bytes of C0; each promotion reads and writes
        ``|C1'| + |C2|`` to consume ``R * C0`` bytes.
        """
        run_bytes = self._expected_run_bytes()
        c1_bytes = self._c1.nbytes if self._c1 is not None else 0
        amp01 = 2.0 * (run_bytes + c1_bytes) / run_bytes
        promo_bytes = max(1.0, self._r * self._c0_capacity)
        c2_bytes = self._c2.nbytes if self._c2 is not None else 0
        amp12 = 2.0 * (promo_bytes + c2_bytes) / promo_bytes
        return amp01 + amp12

    def step_m01(self, budget_bytes: int) -> int:
        """Run up to ``budget_bytes`` of C0:C1 merge work.

        With background merges, the work is dispatched to the C0:C1
        worker's timeline; if that worker is still servicing previously
        dispatched I/O (its timeline is ahead of the clock), nothing is
        dispatched and 0 is returned — the scheduler's deficit carries
        over, exactly as when a synchronous step runs out of budget.
        """
        if budget_bytes <= 0:
            return 0
        timeline = self._bg01
        if timeline is not None and timeline.busy(self.stasis.clock):
            return 0
        if self._m01 is None and not self._start_m01():
            return 0
        assert self._m01 is not None
        if timeline is None:
            started = self.stasis.clock.now
            worked = self._m01.step(budget_bytes)
            elapsed = self.stasis.clock.now - started
        else:
            timeline.catch_up(self.stasis.clock)
            started = timeline.now
            with self.stasis.clock.running_on(timeline):
                worked = self._m01.step(budget_bytes)
                if self._m01.done:
                    self._finish_m01()
            elapsed = timeline.now - started
        if worked:
            self._note_merge_progress(
                "c0c1",
                worked,
                elapsed,
                self._m01.inprogress if self._m01 is not None else 1.0,
            )
        if self._m01 is not None and self._m01.done:
            self._finish_m01()
        return worked

    def step_m12(self, budget_bytes: int) -> int:
        """Run up to ``budget_bytes`` of C1':C2 merge work.

        Background-merge dispatch gating works exactly as in
        :meth:`step_m01`, on the C1':C2 worker's own timeline.
        """
        if budget_bytes <= 0:
            return 0
        timeline = self._bg12
        if timeline is not None and timeline.busy(self.stasis.clock):
            return 0
        if self._m12 is None and not self._start_m12():
            return 0
        assert self._m12 is not None
        if timeline is None:
            started = self.stasis.clock.now
            worked = self._m12.step(budget_bytes)
            elapsed = self.stasis.clock.now - started
        else:
            timeline.catch_up(self.stasis.clock)
            started = timeline.now
            with self.stasis.clock.running_on(timeline):
                worked = self._m12.step(budget_bytes)
                if self._m12.done:
                    self._finish_m12()
            elapsed = timeline.now - started
        if worked:
            self._note_merge_progress(
                "c1c2",
                worked,
                elapsed,
                self._m12.inprogress if self._m12 is not None else 1.0,
            )
        if self._m12 is not None and self._m12.done:
            self._finish_m12()
        return worked

    def force_drain(self, target_fill: float, chunk: int) -> None:
        """Block the writer until C0 drops to ``target_fill`` (stall path).

        With snowshoveling, C0:C1 merge work directly removes records
        from C0.  Without it, the active memtable only empties when it is
        frozen into C0', which requires the previous pass to finish.

        With ``extra_components`` (the Section 3.2 workaround) there is
        no stall at all: a full C0 is flushed to an extra overlapping
        component, trading scan performance for write availability.
        """
        if self.options.extra_components:
            self._flush_extra()
            return
        if not self._c0_overfull(target_fill):
            return
        self._ctr_memtable_full.inc()
        self.runtime.trace.emit(
            "memtable_full",
            fill=self.c0_fill_fraction,
            c0_bytes=self._memtable.nbytes,
        )
        started = self.stasis.clock.now
        with self.runtime.trace.span("stall", cause="merge_backpressure"):
            while self._c0_overfull(target_fill):
                if self._relieve_c0(chunk):
                    continue
                if self._wait_for_background():
                    continue  # wait for a busy merge worker, then retry
                break  # nothing can make progress
        self._ctr_stalls.inc()
        self._hist_stall.observe(self.stasis.clock.now - started)

    def _flush_extra(self) -> None:
        """Flush the whole memtable to an extra overlapping component."""
        if self._memtable.is_empty:
            return
        from repro.sstable.builder import SSTableBuilder

        builder = SSTableBuilder(
            self.stasis,
            tree_id=self._take_tree_id(),
            expected_bytes=self._memtable.nbytes,
            expected_keys=len(self._memtable),
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            compression_ratio=self.options.compression_ratio,
        )
        for record in self._memtable:
            builder.add(record)
        table = builder.finish()
        if table is not None:
            self._extras.insert(0, table)  # newest first
        flushed = self._memtable.nbytes
        self._memtable = MemTable(
            self._c0_capacity,
            seed=self.options.seed,
            kind=self.options.memtable,
        )
        self._ctr_rotations.inc()
        self.runtime.trace.emit(
            "memtable_rotate", kind="extra_flush", frozen_bytes=flushed
        )
        self._merge_epoch += 1  # paused scans re-resolve (memtable swap)
        self.stasis.commit_manifest(self._manifest())
        self._truncate_logical_log()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def r(self) -> float:
        """Current target size ratio between adjacent levels."""
        return self._r

    def component_sizes(self) -> dict[str, int]:
        """Bytes per component (0 for empty slots)."""
        return {
            "c0": self._memtable.nbytes
            + (self._frozen.nbytes if self._frozen is not None else 0),
            "c1": self._c1.nbytes if self._c1 is not None else 0,
            "c1_prime": self._c1_prime.nbytes if self._c1_prime is not None else 0,
            "c2": self._c2.nbytes if self._c2 is not None else 0,
            "extras": sum(extra.nbytes for extra in self._extras),
        }

    def level_view(self) -> dict[str, Any]:
        """Layout snapshot in the generalized N-level vocabulary.

        Maps the paper's fixed slots onto levels so cross-policy tooling
        (``repro bench --policy``, docs/compaction.md) can render every
        engine the same way: level 0 holds the §3.2 extra components
        (overlapping runs, like any L0), level 1 C1 and C1', level 2 C2.
        """
        levels: list[list[dict[str, int]]] = [
            [
                {"nbytes": extra.nbytes, "key_count": extra.key_count}
                for extra in self._extras
            ],
            [
                {"nbytes": c.nbytes, "key_count": c.key_count}
                for c in (self._c1, self._c1_prime)
                if c is not None
            ],
            [
                {"nbytes": self._c2.nbytes, "key_count": self._c2.key_count}
            ]
            if self._c2 is not None
            else [],
        ]
        return {
            "policy": "blsm3",
            "memtable_bytes": self._memtable.nbytes
            + (self._frozen.nbytes if self._frozen is not None else 0),
            "levels": levels,
            "max_bytes": [
                int(self._c0_capacity),
                int(self._r * self._c0_capacity),
                int(self._r * self._r * self._c0_capacity),
            ],
        }

    def memory_footprint(self) -> dict[str, int]:
        """RAM consumed per role (Appendix A's accounting).

        ``index`` is the in-RAM block indexes of every on-disk
        component; ``bloom`` their filters (~1.25 bytes/key at a 1 %
        FPR); ``c0`` the memtable payload; ``cache`` the buffer pool's
        configured capacity in bytes.
        """
        index = 0
        bloom = 0
        for component in (self._c1, self._c1_prime, self._c2):
            if component is None:
                continue
            index += component.index_ram_bytes()
            if component.bloom is not None:
                bloom += component.bloom.nbytes
        return {
            "index": index,
            "bloom": bloom,
            "c0": self._memtable.nbytes
            + (self._frozen.nbytes if self._frozen is not None else 0),
            "cache": self.options.buffer_pool_pages * self.stasis.page_size,
        }

    def key_count_estimate(self) -> int:
        """Keys across all components (counts duplicates once per level)."""
        total = len(self._memtable)
        if self._frozen is not None:
            total += len(self._frozen)
        for component in (self._c1, self._c1_prime, self._c2):
            if component is not None:
                total += component.key_count
        return total

    def stats(self) -> dict[str, Any]:
        """Operational counters for benchmarks and examples."""
        summary = self.stasis.io_summary()
        summary.update(self.component_sizes())
        summary["r"] = self._r
        summary["next_seqno"] = self._next_seqno
        summary["clock_seconds"] = self.stasis.clock.now
        return summary

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls, stasis: Stasis, options: BLSMOptions | None = None
    ) -> "BLSM":
        """Rebuild a tree from durable state after ``stasis.crash()``.

        Phase 1 restores the component set from the newest committed
        manifest and frees extents orphaned by torn merges.  Phase 2
        replays the logical log into a fresh C0.  Bloom filters are not
        persisted (Section 4.4.3), so they are rebuilt by scanning each
        component — a real, charged recovery cost.
        """
        tree = cls.__new__(cls)
        tree.options = options if options is not None else BLSMOptions()
        tree.stasis = stasis
        tree._memtable = MemTable(
            tree._c0_capacity,
            seed=tree.options.seed,
            kind=tree.options.memtable,
        )
        tree._frozen = None
        tree._m01 = None
        tree._m01_extra = None
        tree._m12 = None
        tree._promotion_pending = False
        tree._merge_epoch = 0
        tree._closed = False
        tree._init_timelines()
        tree._init_obs()
        tree.scheduler = make_scheduler(
            tree.options.scheduler,
            tree.options.low_water,
            tree.options.high_water,
            tree.options.max_tick_bytes,
        )
        tree.scheduler.attach(tree)

        def replay(record) -> None:
            if record.op == _OP_DELETE:
                tree._memtable.put(Record.tombstone(record.key, record.seqno))
            elif record.op == _OP_DELTA:
                tree._memtable.put(
                    Record.delta(record.key, record.value, record.seqno)
                )
            else:
                tree._memtable.put(
                    Record.base(record.key, record.value, record.seqno)
                )
            tree._next_seqno = max(tree._next_seqno, record.seqno + 1)

        manifest = stasis.recover_manifest()
        tree._next_seqno = manifest["next_seqno"]
        tree._next_tree_id = manifest["next_tree_id"]
        tree._r = manifest["r"]
        tree._c1 = tree._rebuild_component(manifest["c1"])
        tree._c1_prime = tree._rebuild_component(manifest["c1_prime"])
        tree._c2 = tree._rebuild_component(manifest["c2"])
        tree._extras = [
            tree._rebuild_component(desc)
            for desc in manifest.get("extras", ())
        ]
        tree._free_orphan_extents(manifest)
        storage_recover(stasis, replay)
        return tree

    def __repr__(self) -> str:
        sizes = self.component_sizes()
        return (
            f"BLSM(c0={sizes['c0']}, c1={sizes['c1']}, "
            f"c1'={sizes['c1_prime']}, c2={sizes['c2']}, "
            f"r={self._r:.2f}, t={self.stasis.clock.now:.3f}s)"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def _c0_capacity(self) -> int:
        """Usable active-C0 bytes.

        Without snowshoveling, RAM is split between C0 and the frozen C0'
        being merged, halving the pool (Section 4.2.1).
        """
        if self.options.snowshovel:
            return self.options.c0_bytes
        return max(1, self.options.c0_bytes // 2)

    def _take_seqno(self) -> int:
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _write(self, record: Record, op: str) -> None:
        self._check_open()
        value = record.value if op != _OP_DELETE else None
        self.stasis.logical_log.log(record.seqno, op, record.key, value)
        self._memtable.put(record)
        self._gauge_fill.set(self._memtable.fill_fraction)
        if not self.options.snowshovel and self._memtable.fill_fraction >= 1.0:
            if self._frozen is None:
                self._freeze_memtable()
        self.scheduler.on_write(record.nbytes)

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    @staticmethod
    def _collect(record: Record | None, versions: list[Record]) -> bool:
        """Append a found version; return True to terminate the walk."""
        if record is None:
            return False
        versions.append(record)
        return not record.is_delta

    def _freeze_memtable(self) -> None:
        self._frozen = self._memtable
        self._memtable = MemTable(
            self._c0_capacity,
            seed=self.options.seed,
            kind=self.options.memtable,
        )
        self._ctr_rotations.inc()
        self.runtime.trace.emit(
            "memtable_rotate", kind="freeze", frozen_bytes=self._frozen.nbytes
        )

    def _expected_run_bytes(self) -> int:
        """How much C0 one merge pass is expected to consume."""
        if self.options.snowshovel:
            # Replacement selection doubles run length for random input.
            return max(1, 2 * self._c0_capacity)
        return max(1, self._c0_capacity)

    def _c0_source_bytes(self) -> int:
        if self.options.snowshovel:
            return self._memtable.nbytes
        return self._frozen.nbytes if self._frozen is not None else 0

    def _m01_can_start(self) -> bool:
        if self._promotion_pending:
            return False  # C1 is full and waiting on the C1':C2 merge
        if self._extras:
            return True  # drain the §3.2 workaround components first
        if self.options.snowshovel:
            return not self._memtable.is_empty
        return self._frozen is not None

    def _start_m01(self) -> bool:
        if not self._m01_can_start():
            return False
        self._m01_extra = None
        if self._extras:
            # Oldest extra first: it sits directly above C1 in recency.
            self._m01_extra = self._extras[-1]
            chunk_pages = max(
                1, self.options.merge_chunk_bytes // self.stasis.page_size
            )
            newer = FrozenSource(
                self._m01_extra.iter_records(chunk_pages=chunk_pages)
            )
            newer_bytes = self._m01_extra.nbytes
            newer_keys = self._m01_extra.key_count
        elif self.options.snowshovel:
            newer = SnowshovelSource(self._memtable)
            newer_bytes = self._memtable.nbytes
            newer_keys = len(self._memtable)
        else:
            assert self._frozen is not None
            newer = FrozenSource(iter(self._frozen))
            newer_bytes = self._frozen.nbytes
            newer_keys = len(self._frozen)
        c1_bytes = self._c1.nbytes if self._c1 is not None else 0
        c1_keys = self._c1.key_count if self._c1 is not None else 0
        drop = self._c1_prime is None and self._c2 is None
        # Starting a snowshovel pass moves live memtable records into
        # the merge overlay; paused scans must restart so their sources
        # include it (the same epoch mechanism as merge completion).
        self._merge_epoch += 1
        self._m01 = MergeProcess(
            self.stasis,
            newer=newer,
            older=self._c1,
            tree_id=self._take_tree_id(),
            input_bytes=newer_bytes + c1_bytes,
            expected_keys=newer_keys + c1_keys,
            drop_tombstones=drop,
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            merge_chunk_bytes=self.options.merge_chunk_bytes,
            compression_ratio=self.options.compression_ratio,
        )
        self._merge_obs["c0c1"][0].inc()
        self.runtime.trace.emit(
            "merge_start", level="c0c1", input_bytes=self._m01.input_bytes
        )
        return True

    def _start_m12(self) -> bool:
        if self._c1_prime is None:
            return False
        c2_bytes = self._c2.nbytes if self._c2 is not None else 0
        c2_keys = self._c2.key_count if self._c2 is not None else 0
        self._m12 = MergeProcess(
            self.stasis,
            newer=FrozenSource(
                self._c1_prime.iter_records(
                    chunk_pages=max(
                        1, self.options.merge_chunk_bytes // self.stasis.page_size
                    )
                )
            ),
            older=self._c2,
            tree_id=self._take_tree_id(),
            input_bytes=self._c1_prime.nbytes + c2_bytes,
            expected_keys=self._c1_prime.key_count + c2_keys,
            drop_tombstones=True,  # C2 is the bottom level
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            merge_chunk_bytes=self.options.merge_chunk_bytes,
            compression_ratio=self.options.compression_ratio,
        )
        self._merge_obs["c1c2"][0].inc()
        self.runtime.trace.emit(
            "merge_start", level="c1c2", input_bytes=self._m12.input_bytes
        )
        return True

    def _finish_m01(self) -> None:
        assert self._m01 is not None and self._m01.done
        old_c1 = self._c1
        self._c1 = self._m01.output
        self.runtime.trace.emit(
            "merge_finish",
            level="c0c1",
            output_bytes=self._c1.nbytes if self._c1 is not None else 0,
        )
        self._m01 = None
        consumed_extra = self._m01_extra
        self._m01_extra = None
        if consumed_extra is not None:
            self._extras = [e for e in self._extras if e is not consumed_extra]
        if not self.options.snowshovel:
            self._frozen = None
        self._maybe_persist_bloom(self._c1)
        self.stasis.commit_manifest(self._manifest())
        self._merge_epoch += 1  # historical: scans now pin snapshots
        self.versions.retire(old_c1)
        self.versions.retire(consumed_extra)
        self._truncate_logical_log()
        if (
            self._c1 is not None
            and self._c1.nbytes >= self._r * self._c0_capacity
        ):
            self._try_promote()

    def _finish_m12(self) -> None:
        assert self._m12 is not None and self._m12.done
        old_c2 = self._c2
        old_c1_prime = self._c1_prime
        self._c2 = self._m12.output
        self.runtime.trace.emit(
            "merge_finish",
            level="c1c2",
            output_bytes=self._c2.nbytes if self._c2 is not None else 0,
        )
        self._c1_prime = None
        self._m12 = None
        self._recompute_r()
        self._maybe_persist_bloom(self._c2)
        self.stasis.commit_manifest(self._manifest())
        # Major merges are rare: a good moment to drop superseded
        # manifest records so WAL replay stays bounded.
        self.stasis.checkpoint_wal()
        self._merge_epoch += 1  # historical: scans now pin snapshots
        self.versions.retire(old_c2)
        self.versions.retire(old_c1_prime)
        if self._promotion_pending:
            self._promotion_pending = False
            self._try_promote()

    def _try_promote(self) -> None:
        """Move a full C1 into the C1' slot, or mark the promotion pending."""
        if self._c1 is None:
            return
        if self._c1_prime is not None:
            self._promotion_pending = True  # Figure 4's danger state
            return
        self._c1_prime = self._c1
        self._c1 = None
        self.stasis.commit_manifest(self._manifest())

    def _recompute_r(self) -> None:
        """R = sqrt(|data| / |C0|) for a two-on-disk-level tree (§2.3.1)."""
        data_bytes = self._c2.nbytes if self._c2 is not None else 0
        ratio = math.sqrt(max(1.0, data_bytes / self._c0_capacity))
        self._r = min(self.options.max_r, max(self.options.min_r, ratio))

    def _truncate_logical_log(self) -> None:
        """Checkpoint the log down to the writes still resident in memory.

        Everything a completed merge consumed is durable; what remains
        replayable is exactly the memtable's (and frozen C0's) contents.
        Snowshoveling keeps old records in C0 across passes, so the
        retained set stays large (Section 4.4.2 notes this recovery
        cost).  Retention is exact, not a seqno prefix: replaying a
        record a component already contains would double-apply deltas.
        """
        coverage: dict[bytes, tuple[int, int]] = {}
        for table in (self._memtable, self._frozen):
            if table is None:
                continue
            for record in table:
                bounds = coverage.get(record.key)
                start, end = record.coverage_start, record.seqno
                if bounds is not None:
                    start = min(start, bounds[0])
                    end = max(end, bounds[1])
                coverage[record.key] = (start, end)
        self.stasis.logical_log.retain_ranges(coverage)

    def _c0_overfull(self, target_fill: float) -> bool:
        if self.options.snowshovel:
            return self._memtable.fill_fraction > target_fill
        # Without snowshoveling the active memtable cannot shrink; the
        # writer is blocked only while both halves are full.
        return self._memtable.fill_fraction >= 1.0 and self._frozen is not None

    def _relieve_c0(self, chunk: int) -> bool:
        if not self.options.snowshovel and self._frozen is None:
            if self._memtable.fill_fraction >= 1.0:
                self._freeze_memtable()
                return True
        if self.step_m01(chunk):
            return True
        if self.step_m12(chunk):
            return True
        return self.step_m01(chunk) > 0

    def _take_tree_id(self) -> int:
        tree_id = self._next_tree_id
        self._next_tree_id += 1
        return tree_id

    # -- manifest ------------------------------------------------------

    def _maybe_persist_bloom(self, component: SSTable | None) -> None:
        if component is not None and self.options.persist_bloom_filters:
            from repro.sstable.bloom_store import persist_bloom

            persist_bloom(self.stasis, component)

    def _manifest(self) -> dict[str, Any]:
        return {
            "next_seqno": self._next_seqno,
            "next_tree_id": self._next_tree_id,
            "r": self._r,
            "c1": describe_component(self._c1),
            "c1_prime": describe_component(self._c1_prime),
            "c2": describe_component(self._c2),
            "extras": tuple(
                describe_component(extra) for extra in self._extras
            ),
        }

    def _rebuild_component(self, desc: dict[str, Any] | None) -> SSTable | None:
        return rebuild_component(self.stasis, desc, self.options)

    def _free_orphan_extents(self, manifest: dict[str, Any]) -> None:
        """Free extents a torn merge allocated but never committed."""
        live: set[Extent] = set()
        for name in ("c1", "c1_prime", "c2"):
            live.update(component_extents(manifest[name]))
        for desc in manifest.get("extras", ()):
            live.update(component_extents(desc))
        for extent in self.stasis.regions.allocated_extents:
            if extent not in live:
                for page_id in range(extent.start, extent.end):
                    self.stasis.pagefile.free_page(page_id)
                self.stasis.regions.free(extent)
