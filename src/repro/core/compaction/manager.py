"""The generalized level structure: N on-disk levels of sorted runs.

Where :class:`repro.core.tree.BLSM` hardcodes three component slots
(C1, C1', C2), a :class:`LevelManager` holds an open-ended list of
levels, each a list of :class:`~repro.sstable.reader.SSTable` runs in
**newest-first** order.  Data only ever flows downward, so recency is a
total order over the whole structure: the memtable, then level 0's runs
newest-first, then level 1's, and so on — which is exactly the probe
order reads use and the source order k-way merges require.

Per-level capacity follows the classic geometric schedule
``max_bytes(level) = base * ratio^level``; *policies* decide when a
level's run count or byte size makes a merge due (see
:mod:`repro.core.compaction.policy`), the manager only answers questions
and applies installs.  Manifest round-tripping reuses the same component
descriptors as the bLSM tree, so recovery, orphan-extent accounting and
Bloom-filter rebuild behave identically across policies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.core.components import (
    component_extents,
    describe_component,
    rebuild_component,
)
from repro.sstable.reader import SSTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.options import BLSMOptions
    from repro.storage.region import Extent
    from repro.storage.stasis import Stasis

__all__ = ["LevelManager"]


class LevelManager:
    """N on-disk levels of newest-first sorted runs with geometric sizing."""

    def __init__(self, base_bytes: int, ratio: float) -> None:
        if base_bytes <= 0:
            raise ValueError(f"base_bytes must be positive, got {base_bytes}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must exceed 1, got {ratio}")
        self.base_bytes = base_bytes
        self.ratio = ratio
        self.levels: list[list[SSTable]] = []

    # ------------------------------------------------------------------
    # Queries (what policies read)
    # ------------------------------------------------------------------

    @property
    def level_count(self) -> int:
        """Allocated levels (trailing levels may be empty)."""
        return len(self.levels)

    def runs(self, level: int) -> list[SSTable]:
        """The runs of ``level``, newest first (empty beyond the tree)."""
        if 0 <= level < len(self.levels):
            return self.levels[level]
        return []

    def run_count(self, level: int) -> int:
        """Number of sorted runs resident in ``level``."""
        return len(self.runs(level))

    def level_bytes(self, level: int) -> int:
        """Total record bytes resident in ``level``."""
        return sum(table.nbytes for table in self.runs(level))

    def max_bytes(self, level: int) -> int:
        """Capacity budget of ``level``: ``base * ratio^level``."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return int(self.base_bytes * self.ratio**level)

    def total_bytes(self) -> int:
        """Record bytes across every level."""
        return sum(self.level_bytes(level) for level in range(len(self.levels)))

    def is_bottom(self, level: int) -> bool:
        """Whether no level deeper than ``level`` holds any run."""
        return all(
            not self.levels[deeper]
            for deeper in range(level + 1, len(self.levels))
        )

    def deepest_nonempty(self) -> int | None:
        """Index of the deepest data-bearing level, or ``None``."""
        for level in range(len(self.levels) - 1, -1, -1):
            if self.levels[level]:
                return level
        return None

    def capacity_bottom(self) -> int:
        """The shallowest level ``>= 1`` whose budget covers all data.

        Lazy leveling pins its single-run bottom level here, so the
        bottom deepens as the store grows (the last level of an
        equivalent leveled tree).
        """
        total = self.total_bytes()
        level = 1
        while self.max_bytes(level) < total:
            level += 1
        return level

    def iter_tables(self) -> Iterator[SSTable]:
        """Every resident run, shallowest level first, newest first."""
        for level in self.levels:
            yield from level

    def level_view(self) -> list[list[dict[str, Any]]]:
        """Introspection: per level, per run ``{nbytes, key_count}``."""
        return [
            [
                {"nbytes": table.nbytes, "key_count": table.key_count}
                for table in level
            ]
            for level in self.levels
        ]

    # ------------------------------------------------------------------
    # Mutation (what the tree applies)
    # ------------------------------------------------------------------

    def add_run(self, level: int, table: SSTable) -> None:
        """Install ``table`` as the newest run of ``level``."""
        self._ensure_level(level)
        self.levels[level].insert(0, table)

    def install(
        self,
        inputs: list[SSTable],
        target_level: int,
        output: SSTable | None,
    ) -> None:
        """Atomically swap a finished merge's inputs for its output.

        The inputs (wherever they reside) leave the structure; the
        output — newer than everything already in the target level,
        because data only flows downward — becomes the target's newest
        run.  The caller commits the manifest and frees the inputs.
        """
        input_ids = {id(table) for table in inputs}
        for level in range(len(self.levels)):
            self.levels[level] = [
                table
                for table in self.levels[level]
                if id(table) not in input_ids
            ]
        if output is not None:
            self.add_run(target_level, output)

    def _ensure_level(self, level: int) -> None:
        while len(self.levels) <= level:
            self.levels.append([])

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------

    def describe(self) -> tuple[tuple[dict[str, Any], ...], ...]:
        """Manifest payload: one descriptor tuple per level."""
        return tuple(
            tuple(describe_component(table) for table in level)
            for level in self.levels
        )

    @classmethod
    def rebuild(
        cls,
        stasis: "Stasis",
        desc: tuple[tuple[dict[str, Any], ...], ...],
        base_bytes: int,
        ratio: float,
        options: "BLSMOptions",
    ) -> "LevelManager":
        """Reconstruct a manager (and every run) from a manifest payload."""
        manager = cls(base_bytes, ratio)
        for level in desc:
            manager.levels.append(
                [rebuild_component(stasis, entry, options) for entry in level]
            )
        return manager

    def live_extents(self) -> set["Extent"]:
        """Every extent pinned by a resident run (orphan accounting)."""
        live: set["Extent"] = set()
        for table in self.iter_tables():
            live.update(component_extents(describe_component(table)))
        return live

    def __repr__(self) -> str:
        shape = "/".join(str(len(level)) for level in self.levels) or "-"
        return (
            f"LevelManager(base={self.base_bytes}, ratio={self.ratio:g}, "
            f"runs={shape}, bytes={self.total_bytes()})"
        )
