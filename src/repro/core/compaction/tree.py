"""An LSM tree whose on-disk layout is owned by a pluggable policy.

Where :class:`repro.core.tree.BLSM` hardcodes the paper's three on-disk
slots, a :class:`CompactionTree` pairs one memtable with a
:class:`~repro.core.compaction.manager.LevelManager` and delegates every
layout decision — how many runs a level may hold, what merges are due —
to a :class:`~repro.core.compaction.policy.CompactionPolicy`.  The tree
keeps bLSM's *mechanisms* (logical logging, budget-stepped merges paced
by the write path, manifest-committed installs, epoch-validated scans,
log-replay recovery) and swaps only the *policy*, which is exactly the
factoring the compaction design-space literature argues for (Sarkar et
al.; Luo & Carey, PAPERS.md).

Differences from the bLSM tree, all policy-neutral:

* C0 is flushed whole to a level-0 run when full (the LevelDB shape)
  instead of being consumed incrementally by snowshovel merges, so the
  logical log truncates to a simple seqno prefix at each flush.
* Backpressure is level-0 run count, not C0 fill: once L0 accumulates
  ``options.level0_stop_trigger`` runs the writer stalls and drives
  merge work inline until L0 drains below the policy's trigger.
* At most two merge jobs run at a time — one with source level 0
  (driven by :meth:`step_m01`) and one deeper (driven by
  :meth:`step_m12`) — which is how the existing merge schedulers'
  two-gear surface maps onto N levels without modification.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.compaction.manager import LevelManager
from repro.core.compaction.merge import PolicyMergeJob
from repro.core.compaction.policy import CompactionPolicy, MergePlan, make_policy
from repro.core.options import BLSMOptions
from repro.core.progress import outprogress
from repro.core.scheduler import make_scheduler
from repro.core.versions import TreeSnapshot, VersionSet, ram_source
from repro.errors import EngineClosedError
from repro.memtable.memtable import MemTable
from repro.records import Record, resolve
from repro.sstable.builder import SSTableBuilder
from repro.storage.group_commit import CommitTicket
from repro.storage.recovery import recover as storage_recover
from repro.storage.region import Extent
from repro.storage.stasis import Stasis

_OP_PUT = "put"
_OP_DELETE = "delete"
_OP_DELTA = "delta"

__all__ = ["CompactionTree"]


class CompactionTree:
    """A policy-parameterized LSM tree over the generalized level manager."""

    def __init__(
        self,
        options: BLSMOptions | None = None,
        stasis: Stasis | None = None,
    ) -> None:
        self.options = options if options is not None else BLSMOptions(
            compaction_policy="leveled"
        )
        opts = self.options
        if stasis is not None:
            self.stasis = stasis
        else:
            self.stasis = Stasis(
                disk_model=opts.disk_model,
                page_size=opts.page_size,
                buffer_pool_pages=opts.buffer_pool_pages,
                eviction_policy=opts.eviction_policy,
                durability=opts.durability,
                fault_plan=opts.fault_plan,
                retry=opts.retry,
                capacity_bytes=opts.capacity_bytes,
                log_disk_model=opts.log_disk_model,
                data_stripes=opts.data_stripes,
                stripe_chunk_bytes=opts.stripe_chunk_bytes,
                observability=opts.observability,
            )
        self._policy = self._make_policy(opts)
        self._memtable = MemTable(
            opts.c0_bytes, seed=opts.seed, kind=opts.memtable
        )
        self._manager = LevelManager(self._base_bytes(opts), opts.level_ratio)
        self._job0: PolicyMergeJob | None = None
        self._jobn: PolicyMergeJob | None = None
        self._next_seqno = 0
        self._next_tree_id = 1
        self._merge_epoch = 0
        self._closed = False
        self._init_obs()
        self.scheduler = make_scheduler(
            opts.scheduler, opts.low_water, opts.high_water, opts.max_tick_bytes
        )
        self.scheduler.attach(self)
        self.stasis.commit_manifest(self._manifest())

    @staticmethod
    def _make_policy(opts: BLSMOptions) -> CompactionPolicy:
        return make_policy(
            opts.compaction_policy,
            level0_trigger=opts.level0_trigger,
            fanout=opts.tier_fanout,
        )

    @staticmethod
    def _base_bytes(opts: BLSMOptions) -> int:
        """Level-1 byte budget: L0's worth of whole-memtable flushes."""
        if opts.level_base_bytes is not None:
            return opts.level_base_bytes
        return max(1, opts.level0_trigger * opts.c0_bytes)

    def _init_obs(self) -> None:
        """Bind instrumentation under the same metric names as the bLSM
        tree, so dashboards and trace consumers work across policies."""
        self.runtime = self.stasis.runtime
        self.versions = VersionSet(self.runtime)
        metrics = self.runtime.metrics
        self._ctr_rotations = metrics.counter("memtable.rotations")
        self._ctr_memtable_full = metrics.counter("memtable.full_events")
        self._gauge_fill = metrics.gauge("memtable.fill")
        self._ctr_stalls = metrics.counter("writes.stalls")
        self._hist_stall = metrics.histogram("writes.stall_seconds")
        self._merge_obs = {
            level: (
                metrics.counter(f"merge.{level}.passes"),
                metrics.counter(f"merge.{level}.bytes"),
                metrics.counter(f"merge.{level}.seconds"),
            )
            for level in ("c0c1", "c1c2")
        }

    def _note_merge_progress(
        self, level: str, worked: int, seconds: float, inprogress: float
    ) -> None:
        _passes, ctr_bytes, ctr_seconds = self._merge_obs[level]
        ctr_bytes.inc(worked)
        ctr_seconds.inc(seconds)
        trace = self.runtime.trace
        if trace.enabled:  # skip the kwargs build when tracing is off
            trace.emit(
                "merge_progress",
                level=level,
                worked=worked,
                seconds=seconds,
                inprogress=inprogress,
            )

    # ------------------------------------------------------------------
    # Public write API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Blind write of a full base record: zero seeks."""
        self._write(Record.base(key, value, self._take_seqno()), _OP_PUT)

    def delete(self, key: bytes) -> None:
        """Write a tombstone; space is reclaimed by bottom-level merges."""
        self._write(Record.tombstone(key, self._take_seqno()), _OP_DELETE)

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Zero-seek partial update; folded by reads and merges."""
        self._write(Record.delta(key, delta, self._take_seqno()), _OP_DELTA)

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        """Insert ``key`` only if absent; returns whether it inserted."""
        if self.get(key) is not None:
            return False
        self.put(key, value)
        return True

    def read_modify_write(
        self, key: bytes, update: Callable[[bytes | None], bytes]
    ) -> bytes:
        """Read the current value, apply ``update``, write the result."""
        new_value = update(self.get(key))
        self.put(key, new_value)
        return new_value

    def write_batch(
        self,
        ops: Iterable[tuple[str, bytes, bytes | None]],
        session: int = 0,
        wait: bool = True,
    ) -> CommitTicket:
        """Apply a batch and commit it through Stasis group commit.

        Same contract as :meth:`repro.core.tree.BLSM.write_batch`: the
        records land in the memtable and the staged log; the returned
        ticket resolves when a leader's force covers the batch.
        """
        self._check_open()
        first = self._next_seqno
        count = 0
        for op, key, value in ops:
            if op == "put":
                assert value is not None
                self.put(key, value)
            elif op == "delete":
                self.delete(key)
            elif op == "delta":
                assert value is not None
                self.apply_delta(key, value)
            else:
                raise ValueError(f"unknown batch op {op!r}")
            count += 1
        if count == 0:
            now = self.stasis.clock.now
            return CommitTicket(
                session=session,
                first_seqno=first,
                last_seqno=first - 1,
                ops=0,
                enqueued_at=now,
                leader=True,
                group_size=1,
                durable_at=now,
                durable_lsn=self.stasis.logical_log.durable_seqno,
            )
        return self.stasis.group_commit.commit(
            first, self._next_seqno - 1, count, session=session, wait=wait
        )

    # ------------------------------------------------------------------
    # Public read API
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Point lookup: probe runs newest-to-oldest, stop at a base.

        Recency is a total order over the structure (data only flows
        downward), so the memtable followed by
        :meth:`LevelManager.iter_tables` *is* the correct probe order
        for every policy; Bloom filters skip most absent probes.
        """
        self._check_open()
        versions: list[Record] = []
        if self._collect(self._memtable.get(key), versions):
            return resolve(versions)
        for table in self._manager.iter_tables():
            if self._collect(table.get(key), versions):
                break
        return resolve(versions)

    def scan(
        self,
        lo: bytes,
        hi: bytes | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan across every run, against a pinned snapshot.

        A merge installing (or the memtable flushing) underneath a
        paused scan is invisible: the snapshot pinned the run set at
        scan start, so there is no restart and no row is observed twice
        — same semantics as :meth:`repro.core.tree.BLSM.scan`.
        """
        self._check_open()
        with self.snapshot() as snap:
            yield from snap.scan(lo, hi, limit)

    def snapshot(self) -> TreeSnapshot:
        """Pin a consistent point-in-time read view of the tree.

        The memtable is copied; every on-disk run is pinned in the
        :class:`VersionSet` so merge installs defer their frees past
        the snapshot's lifetime.
        """
        self._check_open()
        return TreeSnapshot(
            self.versions,
            [ram_source(self._memtable)],
            list(self._manager.iter_tables()),
            engine=self._policy.name,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush_log(self) -> None:
        """Force the logical log (durability barrier).

        Pending group-commit tickets resolve first — a flush must not
        leave a session's acknowledged-later batch behind its barrier.
        """
        self.stasis.group_commit.drain()
        self.stasis.logical_log.force()

    def drain(self) -> None:
        """Flush C0 and run every due merge to completion."""
        self._check_open()
        if not self._memtable.is_empty:
            self._flush_memtable()
        while self.step_m01(1 << 30) or self.step_m12(1 << 30):
            pass

    def compact(self) -> None:
        """Merge everything into a single bottom-level run."""
        self.drain()
        tables = list(self._manager.iter_tables())
        if len(tables) <= 1:
            return
        bottom = self._manager.deepest_nonempty()
        assert bottom is not None
        plan = MergePlan(
            bottom, bottom, include_target=True, label="compact"
        )
        job = PolicyMergeJob(
            self.stasis,
            plan,
            tables,
            self._take_tree_id(),
            drop_tombstones=True,
            options=self.options,
        )
        while not job.done:
            job.step(1 << 30)
        self._install_job(job, gear="c1c2")

    def close(self) -> None:
        """Force logs and mark the tree closed."""
        if self._closed:
            return
        self.flush_log()
        self.stasis.wal.force()
        self._closed = True

    # ------------------------------------------------------------------
    # Scheduler interface (the two-gear surface over N levels)
    # ------------------------------------------------------------------

    @property
    def c0_fill_fraction(self) -> float:
        """Fill of the active memtable; the spring's displacement."""
        return self._memtable.fill_fraction

    @property
    def m01_inprogress(self) -> float:
        """Progress of the level-0 merge job (1.0 when none is due)."""
        if self._job0 is not None:
            return self._job0.inprogress
        return 0.0 if self._next_plan(shallow=True) is not None else 1.0

    @property
    def m01_outprogress(self) -> float:
        """Level 1's standing within its geometric budget."""
        return outprogress(
            self.m01_inprogress,
            self._manager.level_bytes(1),
            self.options.c0_bytes,
            self._manager.ratio,
        )

    @property
    def m12_inprogress(self) -> float:
        """Progress of the deep merge job (1.0 when none is due)."""
        if self._jobn is not None:
            return self._jobn.inprogress
        return 0.0 if self._next_plan(shallow=False) is not None else 1.0

    @property
    def m01_input_bytes(self) -> int:
        """Input size of the active (or next) level-0 merge."""
        if self._job0 is not None:
            return self._job0.input_bytes
        return max(
            1, self._manager.level_bytes(0) + self._manager.level_bytes(1)
        )

    @property
    def m12_input_bytes(self) -> int:
        """Input size of the active (or next) deep merge."""
        if self._jobn is not None:
            return self._jobn.input_bytes
        deep = self._manager.total_bytes() - self._manager.level_bytes(0)
        return max(1, deep)

    def write_amplification_estimate(self) -> float:
        """Analytic bytes of merge I/O per written byte (policy-owned)."""
        levels = self._manager.deepest_nonempty()
        depth = max(1, (levels if levels is not None else 0) + 1)
        return max(
            2.0,
            self._policy.estimated_write_amplification(
                depth, self._manager.ratio
            ),
        )

    def step_m01(self, budget_bytes: int) -> int:
        """Run up to ``budget_bytes`` of level-0-sourced merge work."""
        return self._step_gear("c0c1", budget_bytes)

    def step_m12(self, budget_bytes: int) -> int:
        """Run up to ``budget_bytes`` of deeper merge work."""
        return self._step_gear("c1c2", budget_bytes)

    def force_drain(self, target_fill: float, chunk: int) -> None:
        """Scheduler stall hook: flush a full C0, then drain L0 overflow."""
        self._check_open()
        if (
            self._memtable.fill_fraction >= 1.0
            and self._memtable.fill_fraction > target_fill
        ):
            self._flush_memtable()
        chunk = max(1, chunk)
        while self._manager.run_count(0) >= self._policy.max_runs(0):
            if self.step_m01(chunk) == 0 and self.step_m12(chunk) == 0:
                break

    # ------------------------------------------------------------------
    # Merge machinery
    # ------------------------------------------------------------------

    def _busy_levels(self) -> set[int]:
        busy: set[int] = set()
        for job in (self._job0, self._jobn):
            if job is not None:
                busy.add(job.plan.source_level)
                busy.add(job.plan.target_level)
        return busy

    def _next_plan(self, shallow: bool) -> MergePlan | None:
        """The most urgent due plan for one gear (L0-sourced or deeper)."""
        for plan in self._policy.plan_merges(self._manager, self._busy_levels()):
            if (plan.source_level == 0) == shallow:
                return plan
        return None

    def _start_job(self, plan: MergePlan) -> PolicyMergeJob:
        inputs = list(self._manager.runs(plan.source_level))
        if plan.include_target and plan.target_level != plan.source_level:
            inputs.extend(self._manager.runs(plan.target_level))
        job = PolicyMergeJob(
            self.stasis,
            plan,
            inputs,
            self._take_tree_id(),
            drop_tombstones=self._policy.drop_tombstones(self._manager, plan),
            options=self.options,
        )
        gear = "c0c1" if plan.source_level == 0 else "c1c2"
        self._merge_obs[gear][0].inc()
        self.runtime.trace.emit(
            "merge_start",
            level=gear,
            plan=plan.label,
            input_bytes=job.input_bytes,
        )
        return job

    def _step_gear(self, gear: str, budget_bytes: int) -> int:
        if budget_bytes <= 0:
            return 0
        shallow = gear == "c0c1"
        job = self._job0 if shallow else self._jobn
        if job is None:
            plan = self._next_plan(shallow)
            if plan is None:
                return 0
            job = self._start_job(plan)
            if shallow:
                self._job0 = job
            else:
                self._jobn = job
        started = self.stasis.clock.now
        worked = job.step(budget_bytes)
        elapsed = self.stasis.clock.now - started
        if worked:
            self._note_merge_progress(gear, worked, elapsed, job.inprogress)
        if job.done:
            if shallow:
                self._job0 = None
            else:
                self._jobn = None
            self._install_job(job, gear)
        return worked

    def _install_job(self, job: PolicyMergeJob, gear: str) -> None:
        """Swap a finished job's inputs for its output, durably.

        Ordering mirrors the bLSM tree: install in memory, commit the
        manifest (the durability point), bump the merge epoch so paused
        scans restart, then free the inputs' extents.
        """
        self._manager.install(job.inputs, job.plan.target_level, job.output)
        self.runtime.trace.emit(
            "merge_finish",
            level=gear,
            plan=job.plan.label,
            output_bytes=job.output.nbytes if job.output is not None else 0,
        )
        self.stasis.commit_manifest(self._manifest())
        self._merge_epoch += 1  # historical: scans now pin snapshots
        for table in job.inputs:
            self.versions.retire(table)

    # ------------------------------------------------------------------
    # Write internals
    # ------------------------------------------------------------------

    def _write(self, record: Record, op: str) -> None:
        self._check_open()
        value = record.value if op != _OP_DELETE else None
        self.stasis.logical_log.log(record.seqno, op, record.key, value)
        self._memtable.put(record)
        self._gauge_fill.set(self._memtable.fill_fraction)
        if self._memtable.fill_fraction >= 1.0:
            self._stall_for_level0()
            self._flush_memtable()
        self.scheduler.on_write(record.nbytes)

    def _stall_for_level0(self) -> None:
        """Hard backpressure: too many L0 runs blocks the writer.

        The writer drives merge work inline (charged to its own clock —
        the latency spike the paper's schedulers exist to avoid) until
        L0 drops below the policy's trigger.
        """
        if self._manager.run_count(0) < self.options.level0_stop_trigger:
            return
        self._ctr_memtable_full.inc()
        self.runtime.trace.emit(
            "level0_full", runs=self._manager.run_count(0)
        )
        started = self.stasis.clock.now
        with self.runtime.trace.span("stall", cause="level0_backpressure"):
            while self._manager.run_count(0) >= self._policy.max_runs(0):
                if self.step_m01(1 << 30) == 0 and self.step_m12(1 << 30) == 0:
                    break
        self._ctr_stalls.inc()
        self._hist_stall.observe(self.stasis.clock.now - started)

    def _flush_memtable(self) -> None:
        """Flush the whole memtable as level 0's newest run.

        The manifest commits before the log truncates, so a crash
        between the two replays onto state that already contains the
        run — idempotent because replay rebuilds C0 from scratch.
        """
        if self._memtable.is_empty:
            return
        builder = SSTableBuilder(
            self.stasis,
            tree_id=self._take_tree_id(),
            expected_bytes=self._memtable.nbytes,
            expected_keys=len(self._memtable),
            with_bloom=self.options.with_bloom_filters,
            bloom_false_positive_rate=self.options.bloom_false_positive_rate,
            compression_ratio=self.options.compression_ratio,
        )
        for record in self._memtable:
            builder.add(record)
        table = builder.finish()
        flushed = self._memtable.nbytes
        if table is not None:
            self._manager.add_run(0, table)
        self._memtable = MemTable(
            self.options.c0_bytes,
            seed=self.options.seed,
            kind=self.options.memtable,
        )
        self._ctr_rotations.inc()
        self.runtime.trace.emit(
            "memtable_rotate", kind="flush", frozen_bytes=flushed
        )
        self._merge_epoch += 1  # paused scans re-resolve (memtable swap)
        self.stasis.commit_manifest(self._manifest())
        self.stasis.logical_log.truncate(self._next_seqno)

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError()

    @staticmethod
    def _collect(record: Record | None, versions: list[Record]) -> bool:
        """Append a found version; return True to terminate the walk."""
        if record is None:
            return False
        versions.append(record)
        return not record.is_delta

    def _take_seqno(self) -> int:
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _take_tree_id(self) -> int:
        tree_id = self._next_tree_id
        self._next_tree_id += 1
        return tree_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def policy(self) -> CompactionPolicy:
        """The layout-owning policy object."""
        return self._policy

    @property
    def manager(self) -> LevelManager:
        """The level structure (read-only use outside the tree)."""
        return self._manager

    def level_view(self) -> dict[str, Any]:
        """Layout snapshot: per-level runs, budgets, memtable fill."""
        return {
            "policy": self._policy.name,
            "memtable_bytes": self._memtable.nbytes,
            "levels": self._manager.level_view(),
            "max_bytes": [
                self._manager.max_bytes(level)
                for level in range(self._manager.level_count)
            ],
        }

    def stats(self) -> dict[str, Any]:
        """Operational counters for benchmarks and examples."""
        summary = self.stasis.io_summary()
        summary["policy"] = self._policy.name
        summary["level_runs"] = [
            self._manager.run_count(level)
            for level in range(self._manager.level_count)
        ]
        summary["next_seqno"] = self._next_seqno
        summary["clock_seconds"] = self.stasis.clock.now
        return summary

    def __repr__(self) -> str:
        runs = "/".join(
            str(self._manager.run_count(level))
            for level in range(self._manager.level_count)
        )
        return (
            f"CompactionTree(policy={self._policy.name}, "
            f"c0={self._memtable.nbytes}, runs={runs or '-'}, "
            f"t={self.stasis.clock.now:.3f}s)"
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls, stasis: Stasis, options: BLSMOptions | None = None
    ) -> "CompactionTree":
        """Rebuild a tree from durable state after ``stasis.crash()``.

        Identical two-phase shape to :meth:`BLSM.recover`: the newest
        committed manifest restores the level structure (Bloom filters
        rebuilt by scanning — a charged cost), orphaned extents from
        torn merges are freed, and the logical log replays into a fresh
        memtable.
        """
        tree = cls.__new__(cls)
        tree.options = options if options is not None else BLSMOptions(
            compaction_policy="leveled"
        )
        tree.stasis = stasis
        tree._policy = cls._make_policy(tree.options)
        tree._memtable = MemTable(
            tree.options.c0_bytes,
            seed=tree.options.seed,
            kind=tree.options.memtable,
        )
        tree._job0 = None
        tree._jobn = None
        tree._next_seqno = 0
        tree._next_tree_id = 1
        tree._merge_epoch = 0
        tree._closed = False
        tree._init_obs()
        tree.scheduler = make_scheduler(
            tree.options.scheduler,
            tree.options.low_water,
            tree.options.high_water,
            tree.options.max_tick_bytes,
        )
        tree.scheduler.attach(tree)

        def replay(record) -> None:
            if record.op == _OP_DELETE:
                tree._memtable.put(Record.tombstone(record.key, record.seqno))
            elif record.op == _OP_DELTA:
                tree._memtable.put(
                    Record.delta(record.key, record.value, record.seqno)
                )
            else:
                tree._memtable.put(
                    Record.base(record.key, record.value, record.seqno)
                )
            tree._next_seqno = max(tree._next_seqno, record.seqno + 1)

        manifest = stasis.recover_manifest()
        tree._next_seqno = manifest["next_seqno"]
        tree._next_tree_id = manifest["next_tree_id"]
        tree._manager = LevelManager.rebuild(
            stasis,
            manifest["levels"],
            cls._base_bytes(tree.options),
            tree.options.level_ratio,
            tree.options,
        )
        tree._free_orphan_extents()
        storage_recover(stasis, replay)
        return tree

    # -- manifest ------------------------------------------------------

    def _manifest(self) -> dict[str, Any]:
        return {
            "policy": self._policy.name,
            "next_seqno": self._next_seqno,
            "next_tree_id": self._next_tree_id,
            "levels": self._manager.describe(),
        }

    def _free_orphan_extents(self) -> None:
        """Free extents a torn merge allocated but never committed."""
        live: set[Extent] = self._manager.live_extents()
        for extent in self.stasis.regions.allocated_extents:
            if extent not in live:
                for page_id in range(extent.start, extent.end):
                    self.stasis.pagefile.free_page(page_id)
                self.stasis.regions.free(extent)
