"""Compaction policies: who merges what, when (the design-space axes).

The bLSM paper fixes one point in the LSM compaction design space — a
three-level tree with level-granularity merges — but the space itself is
spanned by a few orthogonal decisions (Sarkar et al., *Constructing and
Analyzing the LSM Compaction Design Space*; Luo & Carey's survey):

* **data layout** — how many sorted runs a level may hold before it must
  merge (1 for leveling, ``fanout`` for tiering);
* **granularity** — what one merge consumes (whole levels here, matching
  bLSM's level scheduler; the file-granularity alternative lives in
  :class:`repro.baselines.leveldb_engine.LevelDBEngine`);
* **trigger** — when a merge becomes due (size overflow for leveling,
  run-count overflow for tiering, L0 run count for both).

A :class:`CompactionPolicy` owns exactly these decisions.  It never
touches devices: it reads a :class:`~repro.core.compaction.manager.
LevelManager` and yields :class:`MergePlan` work items; the tree turns
plans into budget-stepped merge jobs.  Adding a policy is therefore one
class with two small methods (see docs/compaction.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compaction.manager import LevelManager

__all__ = [
    "CompactionPolicy",
    "LazyLeveledPolicy",
    "LeveledPolicy",
    "MergePlan",
    "POLICY_NAMES",
    "TieredPolicy",
    "make_policy",
]

#: Every policy ``make_policy`` knows how to build, in presentation
#: order.  ``blsm3`` is the paper's own three-level layout and maps to
#: :class:`repro.core.tree.BLSM` unchanged (see ``make_tree``).
POLICY_NAMES: tuple[str, ...] = ("blsm3", "leveled", "tiered", "lazy-leveled")


@dataclass(frozen=True)
class MergePlan:
    """One unit of compaction work a policy wants performed.

    ``source_level``'s runs (all of them — level granularity) merge into
    ``target_level``.  When ``include_target`` is set the target level's
    resident runs join the merge and are replaced by its output (the
    leveling move); otherwise the output lands in the target level as a
    new run alongside the existing ones (the tiering move).  A plan with
    ``target_level == source_level`` consolidates the level in place —
    all its runs collapse into one (lazy leveling's bottom level).
    """

    source_level: int
    target_level: int
    include_target: bool
    label: str

    def __post_init__(self) -> None:
        if self.source_level < 0:
            raise ValueError(
                f"source_level must be >= 0, got {self.source_level}"
            )
        if self.target_level not in (self.source_level, self.source_level + 1):
            raise ValueError(
                "level-granularity merges target the same or next level: "
                f"got {self.source_level} -> {self.target_level}"
            )


class CompactionPolicy(ABC):
    """Strategy object owning a tree's on-disk layout decisions."""

    #: Registry name (one of :data:`POLICY_NAMES`).
    name: str = "abstract"

    def __init__(self, level0_trigger: int, fanout: int) -> None:
        if level0_trigger < 1:
            raise ValueError(
                f"level0_trigger must be >= 1, got {level0_trigger}"
            )
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.level0_trigger = level0_trigger
        self.fanout = fanout

    @abstractmethod
    def max_runs(self, level: int) -> int:
        """Sorted runs ``level`` may hold before a merge becomes due."""

    @abstractmethod
    def plan_merges(
        self, manager: "LevelManager", busy: Iterable[int] = ()
    ) -> list[MergePlan]:
        """Every merge currently due, most urgent first.

        ``busy`` names levels whose runs an in-flight job is already
        consuming; plans touching them (as source or target) are
        withheld so two jobs never claim the same run.
        """

    # -- shared helpers -------------------------------------------------

    def _free(self, plan: MergePlan, busy: frozenset[int]) -> bool:
        return plan.source_level not in busy and plan.target_level not in busy

    @abstractmethod
    def estimated_write_amplification(self, levels: int, ratio: float) -> float:
        """Analytic merge I/O (read + write bytes) per ingested byte.

        The classic design-space formulas (Sarkar et al., Table 1): a
        byte crossing a leveled level is rewritten ~``ratio`` times
        (``2*(1+ratio)`` I/O per crossing), while a tiered crossing
        copies it once (``2`` I/O).  Used by the spring-and-gear
        scheduler to size merge budgets and by
        :mod:`repro.analysis.amplification` to draw crossover curves.
        """

    def drop_tombstones(self, manager: "LevelManager", plan: MergePlan) -> bool:
        """Whether ``plan``'s merge may garbage-collect tombstones.

        A tombstone may be dropped only when every version older than
        the merge's inputs is *also* in its inputs — otherwise the
        discarded tombstone resurrects an older value.  Older versions
        live in levels deeper than the target, and (for a tiering move,
        which leaves the target's resident runs in place) in the target
        itself.  This is the classic GC-only-at-the-last-level rule;
        bLSM applies it to C2 (Section 3).
        """
        if not manager.is_bottom(plan.target_level):
            return False
        return plan.include_target or manager.run_count(plan.target_level) == 0


class LeveledPolicy(CompactionPolicy):
    """LevelDB-style leveling at level granularity: one run per level.

    L0 collects whole-memtable flushes (overlapping runs) and merges
    them all into L1 once ``level0_trigger`` accumulate; every deeper
    level holds a single run and spills into the next level — merging
    with its resident run — whenever it outgrows ``base * ratio^level``.
    Reads probe at most one run per deep level; writes pay ~``ratio``
    copies per level crossed.
    """

    name = "leveled"

    def max_runs(self, level: int) -> int:
        return self.level0_trigger if level == 0 else 1

    def estimated_write_amplification(self, levels: int, ratio: float) -> float:
        return 2.0 * (1.0 + ratio) * max(1, levels)

    def plan_merges(
        self, manager: "LevelManager", busy: Iterable[int] = ()
    ) -> list[MergePlan]:
        taken = frozenset(busy)
        plans: list[MergePlan] = []
        if manager.run_count(0) >= self.level0_trigger:
            plans.append(
                MergePlan(0, 1, include_target=True, label="leveled:l0")
            )
        for level in range(1, manager.level_count):
            if manager.level_bytes(level) > manager.max_bytes(level):
                plans.append(
                    MergePlan(
                        level, level + 1, include_target=True,
                        label=f"leveled:l{level}",
                    )
                )
        return [plan for plan in plans if self._free(plan, taken)]


class TieredPolicy(CompactionPolicy):
    """Tiering: every level stacks up to ``fanout`` overlapping runs.

    A level that reaches ``fanout`` runs merges them into a *single new
    run* appended to the next level; the target's resident runs are not
    rewritten.  Each byte is therefore copied only once per level — the
    write-optimal end of the design space — at the price of probing up
    to ``fanout`` runs per level on reads.
    """

    name = "tiered"

    def max_runs(self, level: int) -> int:
        return max(self.level0_trigger, self.fanout) if level == 0 else self.fanout

    def estimated_write_amplification(self, levels: int, ratio: float) -> float:
        return 2.0 * max(1, levels)

    def plan_merges(
        self, manager: "LevelManager", busy: Iterable[int] = ()
    ) -> list[MergePlan]:
        taken = frozenset(busy)
        plans: list[MergePlan] = []
        for level in range(manager.level_count):
            if manager.run_count(level) >= self.max_runs(level):
                plans.append(
                    MergePlan(
                        level, level + 1, include_target=False,
                        label=f"tiered:l{level}",
                    )
                )
        return [plan for plan in plans if self._free(plan, taken)]


class LazyLeveledPolicy(TieredPolicy):
    """Dostoevsky-style lazy leveling: tier everywhere, level the bottom.

    Levels above the bottom behave exactly like :class:`TieredPolicy`
    (each byte copied once per level — cheap writes); the bottom level,
    which holds most of the data, is kept to a *single run*.  The bottom
    is pinned by capacity — the shallowest level whose ``base *
    ratio^level`` budget covers the data — so it deepens as the store
    grows, exactly like leveling's last level.  Point reads then probe
    up to ``fanout`` runs only in the small upper levels and one run in
    the large bottom level.
    """

    name = "lazy-leveled"

    def estimated_write_amplification(self, levels: int, ratio: float) -> float:
        upper = max(0, levels - 1)
        return 2.0 * upper + 2.0 * (1.0 + ratio)

    def plan_merges(
        self, manager: "LevelManager", busy: Iterable[int] = ()
    ) -> list[MergePlan]:
        taken = frozenset(busy)
        bottom = manager.capacity_bottom()
        plans: list[MergePlan] = []
        for level in range(manager.level_count):
            count = manager.run_count(level)
            if count == 0:
                continue
            if level >= bottom:
                if count > 1:
                    plans.append(
                        MergePlan(
                            level, level, include_target=True,
                            label=f"lazy:bottom-l{level}",
                        )
                    )
            elif count >= self.max_runs(level):
                target = level + 1
                plans.append(
                    MergePlan(
                        level, target, include_target=target >= bottom,
                        label=f"lazy:l{level}",
                    )
                )
        return [plan for plan in plans if self._free(plan, taken)]


def make_policy(
    name: str, level0_trigger: int = 4, fanout: int = 4
) -> CompactionPolicy:
    """Build a policy by registry name.

    ``blsm3`` is deliberately absent: the paper's own layout is served
    by :class:`repro.core.tree.BLSM` itself (``make_tree`` dispatches),
    so its behaviour stays bit-for-bit identical to the pre-refactor
    tree rather than being re-expressed — and re-risked — here.
    """
    if name == "leveled":
        return LeveledPolicy(level0_trigger, fanout)
    if name == "tiered":
        return TieredPolicy(level0_trigger, fanout)
    if name == "lazy-leveled":
        return LazyLeveledPolicy(level0_trigger, fanout)
    raise ValueError(
        f"unknown compaction policy {name!r}; expected one of "
        f"{tuple(n for n in POLICY_NAMES if n != 'blsm3')}"
    )
