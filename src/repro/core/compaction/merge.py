"""Budget-stepped execution of one :class:`MergePlan`.

A :class:`PolicyMergeJob` is the policy-agnostic worker: it k-way merges
its input runs (newest first, so version resolution is positional) into
one new sorted run, consuming input in byte-budgeted steps exactly like
:class:`repro.core.merge.MergeProcess` — which is what lets the existing
merge schedulers pace policy trees unchanged.  The inputs stay readable
in their levels until the job finishes; the tree then installs the
output atomically (see :meth:`LevelManager.install`) and frees them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.progress import inprogress
from repro.sstable.builder import SSTableBuilder
from repro.sstable.iterator import kway_merge, merge_records
from repro.sstable.reader import SSTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compaction.policy import MergePlan
    from repro.core.options import BLSMOptions
    from repro.storage.stasis import Stasis

__all__ = ["PolicyMergeJob"]


class PolicyMergeJob:
    """One plan's merge: input runs (newest first) -> a single output run."""

    def __init__(
        self,
        stasis: "Stasis",
        plan: "MergePlan",
        inputs_newest_first: list[SSTable],
        tree_id: int,
        drop_tombstones: bool,
        options: "BLSMOptions",
    ) -> None:
        self.plan = plan
        self.inputs = list(inputs_newest_first)
        self.drop_tombstones = drop_tombstones
        self.input_bytes = max(1, sum(t.nbytes for t in self.inputs))
        self.bytes_read = 0
        self.output: SSTable | None = None
        self.done = False
        chunk_pages = max(1, options.merge_chunk_bytes // stasis.page_size)
        self._groups = kway_merge(
            [
                table.iter_records(chunk_pages=chunk_pages)
                for table in self.inputs
            ]
        )
        self._builder = SSTableBuilder(
            stasis,
            tree_id=tree_id,
            expected_bytes=sum(t.nbytes for t in self.inputs),
            expected_keys=sum(t.key_count for t in self.inputs),
            with_bloom=options.with_bloom_filters,
            bloom_false_positive_rate=options.bloom_false_positive_rate,
            compression_ratio=options.compression_ratio,
        )

    @property
    def inprogress(self) -> float:
        """Smooth progress estimator in [0, 1] (Section 4.1)."""
        if self.done:
            return 1.0
        return inprogress(self.bytes_read, self.input_bytes)

    def step(self, budget_bytes: int) -> int:
        """Consume up to ``budget_bytes`` of input; return bytes consumed."""
        if self.done or budget_bytes <= 0:
            return 0
        consumed = 0
        while consumed < budget_bytes:
            group = next(self._groups, None)
            if group is None:
                self.output = self._builder.finish()
                self.done = True
                break
            consumed += sum(record.nbytes for record in group)
            merged = merge_records(group, drop_tombstones=self.drop_tombstones)
            if merged is not None:
                self._builder.add(merged)
        self.bytes_read += consumed
        return consumed
