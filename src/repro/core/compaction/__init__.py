"""The compaction design-space lab: pluggable policies over N levels.

This package generalizes the storage core's on-disk layout away from
the bLSM-specific C0/C1'/C1/C2 slots:

* :mod:`~repro.core.compaction.policy` — the design-space axes as
  strategy objects (``leveled``, ``tiered``, ``lazy-leveled``);
* :mod:`~repro.core.compaction.manager` — the N-level run structure
  with geometric ``base * ratio^level`` sizing;
* :mod:`~repro.core.compaction.merge` — budget-stepped execution of one
  policy-issued merge plan;
* :mod:`~repro.core.compaction.tree` — the policy-parameterized tree
  exposing the same write/read/scheduler/recovery surface as
  :class:`repro.core.tree.BLSM`.

:func:`make_tree` is the single dispatch point: ``blsm3`` (the default
policy) returns the unmodified paper tree, so existing behaviour is
preserved bit for bit, while every other policy name returns a
:class:`CompactionTree` parameterized by :func:`make_policy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.core.compaction.manager import LevelManager
from repro.core.compaction.merge import PolicyMergeJob
from repro.core.compaction.policy import (
    POLICY_NAMES,
    CompactionPolicy,
    LazyLeveledPolicy,
    LeveledPolicy,
    MergePlan,
    TieredPolicy,
    make_policy,
)
from repro.core.compaction.tree import CompactionTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.options import BLSMOptions
    from repro.core.tree import BLSM
    from repro.storage.stasis import Stasis

__all__ = [
    "CompactionPolicy",
    "CompactionTree",
    "LazyLeveledPolicy",
    "LevelManager",
    "LeveledPolicy",
    "MergePlan",
    "POLICY_NAMES",
    "PolicyMergeJob",
    "TieredPolicy",
    "make_policy",
    "make_tree",
    "recover_tree",
]


def make_tree(
    options: "BLSMOptions", stasis: "Stasis | None" = None
) -> "Union[BLSM, CompactionTree]":
    """Build the tree ``options.compaction_policy`` names.

    ``blsm3`` maps to the paper's own :class:`~repro.core.tree.BLSM`
    (imported lazily to avoid a cycle); anything else builds a
    :class:`CompactionTree` around the matching policy.
    """
    if options.compaction_policy == "blsm3":
        from repro.core.tree import BLSM

        return BLSM(options, stasis)
    return CompactionTree(options, stasis)


def recover_tree(
    stasis: "Stasis", options: "BLSMOptions"
) -> "Union[BLSM, CompactionTree]":
    """Recover the tree ``options.compaction_policy`` names from a crash."""
    if options.compaction_policy == "blsm3":
        from repro.core.tree import BLSM

        return BLSM.recover(stasis, options)
    return CompactionTree.recover(stasis, options)
