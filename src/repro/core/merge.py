"""Incremental tree merges (Sections 2.3.1, 4.2, 4.4.1).

A :class:`MergeProcess` merges a newer source with an older source into a
new on-disk component, a bounded number of bytes at a time, so the
scheduler can interleave merge work with application writes.  In the
paper these are threads rate-limited by the scheduler; on the virtual
clock the same rate coupling is expressed by calling ``step`` with a byte
budget.

The newer source is either a :class:`SnowshovelSource` draining the live
memtable (Section 4.2) or a :class:`FrozenSource` over a frozen C0'/C1'
snapshot; the older source is the downstream component being rewritten.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.memtable.memtable import MemTable
from repro.memtable.snowshovel import SnowshovelCursor
from repro.records import Record
from repro.sstable.builder import SSTableBuilder
from repro.sstable.iterator import merge_records
from repro.sstable.reader import SSTable
from repro.storage.stasis import Stasis


class RecordSource(Protocol):
    """A peekable stream of records in increasing key order."""

    def peek(self) -> Record | None:
        """Next record without consuming it; ``None`` when exhausted."""
        ...

    def pop(self) -> Record:
        """Consume and return the next record."""
        ...


class EmptySource:
    """A source with no records (first merge into an empty level)."""

    def peek(self) -> Record | None:
        return None

    def pop(self) -> Record:
        raise StopIteration("empty source")


class FrozenSource:
    """Drains an immutable snapshot: a frozen memtable or an SSTable."""

    def __init__(self, records) -> None:
        self._iterator = iter(records)
        self._head: Record | None = next(self._iterator, None)

    def peek(self) -> Record | None:
        return self._head

    def pop(self) -> Record:
        record = self._head
        if record is None:
            raise StopIteration("source exhausted")
        self._head = next(self._iterator, None)
        return record


class SnowshovelSource:
    """Drains the *live* memtable via a snowshovel cursor.

    ``peek`` reflects the memtable's current contents, so records inserted
    ahead of the cursor while the merge runs join the current pass —
    that is snowshoveling.  The pass ends when nothing at or after the
    cursor remains.
    """

    def __init__(self, memtable: MemTable) -> None:
        self._cursor = SnowshovelCursor(memtable)
        self._memtable = memtable

    def peek(self) -> Record | None:
        cursor = self._cursor.cursor
        if cursor is None:
            key = self._memtable.first_key()
        else:
            key = self._memtable.ceiling_key(cursor)
        return self._memtable.get(key) if key is not None else None

    def pop(self) -> Record:
        record = self._cursor.next_record()
        if record is None:
            raise StopIteration("snowshovel run exhausted")
        return record

    def advance_past(self, key: bytes) -> None:
        """Keep the run cursor at the merge's output position."""
        self._cursor.advance_past(key)


class RangeSnowshovelSource:
    """Snowshovel source confined to one partition's key range.

    Partitioned merges (Section 4.2.2) consume only the C0 records that
    fall in the partition being merged: ``[lo, hi)``.  Records outside
    the range stay in C0 for other partitions' merges.
    """

    def __init__(self, memtable: MemTable, lo: bytes, hi: bytes | None) -> None:
        self._memtable = memtable
        self._lo = lo
        self._hi = hi
        self._cursor: bytes = lo

    def _next_key(self) -> bytes | None:
        key = self._memtable.ceiling_key(self._cursor)
        if key is None:
            return None
        if self._hi is not None and key >= self._hi:
            return None
        return key

    def peek(self) -> Record | None:
        key = self._next_key()
        return self._memtable.get(key) if key is not None else None

    def pop(self) -> Record:
        key = self._next_key()
        if key is None:
            raise StopIteration("range snowshovel exhausted")
        record = self._memtable.remove(key)
        assert record is not None
        self._cursor = key + b"\x00"
        return record

    def advance_past(self, key: bytes) -> None:
        successor = key + b"\x00"
        if successor > self._cursor:
            self._cursor = successor


class MergeProcess:
    """One merge between adjacent tree levels, executed incrementally."""

    def __init__(
        self,
        stasis: Stasis,
        newer: RecordSource,
        older: SSTable | None,
        tree_id: int,
        input_bytes: int,
        expected_keys: int,
        drop_tombstones: bool,
        with_bloom: bool = True,
        bloom_false_positive_rate: float = 0.01,
        merge_chunk_bytes: int = 256 * 1024,
        split_output_bytes: int | None = None,
        tree_id_source: "Callable[[], int] | None" = None,
        compression_ratio: float = 1.0,
    ) -> None:
        self._stasis = stasis
        self._newer = newer
        chunk_pages = max(1, merge_chunk_bytes // stasis.page_size)
        self._chunk_pages = chunk_pages
        if older is not None:
            self._older: RecordSource = FrozenSource(
                older.iter_records(chunk_pages=chunk_pages)
            )
        else:
            self._older = EmptySource()
        self._with_bloom = with_bloom
        self._bloom_fpr = bloom_false_positive_rate
        self._expected_keys = expected_keys
        self._compression_ratio = compression_ratio
        # Partitioned trees split oversized outputs into multiple
        # components, each becoming its own partition (Section 4.2.2).
        if split_output_bytes is not None and tree_id_source is None:
            raise ValueError("split_output_bytes requires tree_id_source")
        self._split_output_bytes = split_output_bytes
        self._tree_id_source = tree_id_source
        self._builder = self._new_builder(tree_id, input_bytes)
        self._drop_tombstones = drop_tombstones
        self.input_bytes = max(1, input_bytes)
        self.bytes_read = 0
        self.newer_bytes_read = 0  # consumed from the newer source only
        self.output: SSTable | None = None
        self.outputs: list[SSTable] = []
        self.done = False
        self.min_seqno_consumed: int | None = None
        self.max_seqno_consumed: int | None = None
        # Snowshoveling physically removes records from the live memtable
        # as they are consumed, but the half-built output component is not
        # yet visible to readers.  The overlay keeps those records
        # readable until the merge commits (in the real system they are
        # served from the in-progress tree, Figure 1).  Sources that
        # expose ``advance_past`` drain a live memtable and need it.
        self._track_overlay = hasattr(newer, "advance_past")
        self.overlay: dict[bytes, Record] = {}

    @property
    def inprogress(self) -> float:
        """Fraction of input consumed (the paper's smooth estimator)."""
        if self.done:
            return 1.0
        return min(1.0, self.bytes_read / self.input_bytes)

    def step(self, budget_bytes: int) -> int:
        """Consume up to ``budget_bytes`` of input; return bytes consumed.

        Completing the merge (building the output component) happens
        automatically when both sources drain.
        """
        if self.done:
            return 0
        consumed = 0
        while consumed < budget_bytes:
            newer_head = self._newer.peek()
            older_head = self._older.peek()
            if newer_head is None and older_head is None:
                self._complete()
                break
            consumed += self._emit_next(newer_head, older_head)
        self.bytes_read += consumed
        return consumed

    def run_to_completion(self) -> int:
        """Consume all remaining input (the naive scheduler's behaviour)."""
        total = 0
        while not self.done:
            total += self.step(budget_bytes=1 << 30)
        return total

    def abort(self) -> None:
        """Tear the merge down, freeing the partially built output."""
        if not self.done:
            self.done = True
            self._builder.abandon()

    def _emit_next(self, newer_head: Record | None, older_head: Record | None) -> int:
        """Emit the next output record; return input bytes consumed."""
        consumed = 0
        group: list[Record] = []
        take_newer = newer_head is not None and (
            older_head is None or newer_head.key <= older_head.key
        )
        take_older = older_head is not None and (
            newer_head is None or older_head.key <= newer_head.key
        )
        if take_newer:
            record = self._newer.pop()
            group.append(record)
            nbytes = record.nbytes
            consumed += nbytes
            self.newer_bytes_read += nbytes
            self._note_seqno(record.seqno)
            if self._track_overlay:
                self.overlay[record.key] = record
        if take_older:
            record = self._older.pop()
            group.append(record)
            consumed += record.nbytes
            if self._track_overlay:
                # The snowshovel cursor must not fall behind the merge's
                # output position (see SnowshovelCursor.advance_past).
                self._newer.advance_past(record.key)  # type: ignore[attr-defined]
        merged = merge_records(group, drop_tombstones=self._drop_tombstones)
        if merged is not None:
            self._builder.add(merged)
            if (
                self._split_output_bytes is not None
                and self._builder.nbytes >= self._split_output_bytes
            ):
                self._rotate_builder()
        return consumed

    def _new_builder(self, tree_id: int, expected_bytes: int) -> SSTableBuilder:
        return SSTableBuilder(
            self._stasis,
            tree_id=tree_id,
            expected_bytes=expected_bytes,
            expected_keys=self._expected_keys,
            with_bloom=self._with_bloom,
            bloom_false_positive_rate=self._bloom_fpr,
            flush_chunk_pages=self._chunk_pages,
            compression_ratio=self._compression_ratio,
        )

    def _rotate_builder(self) -> None:
        table = self._builder.finish()
        if table is not None:
            self.outputs.append(table)
        assert self._tree_id_source is not None
        assert self._split_output_bytes is not None
        self._builder = self._new_builder(
            self._tree_id_source(), self._split_output_bytes
        )

    def overlay_get(self, key: bytes) -> Record | None:
        """Look up a consumed-but-uncommitted record (reads mid-merge)."""
        return self.overlay.get(key)

    def overlay_scan(self, lo: bytes, hi: bytes | None):
        """Overlay records with lo <= key < hi, in key order."""
        for key in sorted(self.overlay):
            if key < lo:
                continue
            if hi is not None and key >= hi:
                break
            yield self.overlay[key]

    def _note_seqno(self, seqno: int) -> None:
        if self.min_seqno_consumed is None or seqno < self.min_seqno_consumed:
            self.min_seqno_consumed = seqno
        if self.max_seqno_consumed is None or seqno > self.max_seqno_consumed:
            self.max_seqno_consumed = seqno

    def _complete(self) -> None:
        table = self._builder.finish()
        if table is not None:
            self.outputs.append(table)
        if self._split_output_bytes is None:
            self.output = table
        self.done = True
