"""Sharded serving: a key router over independent bLSM shards.

The paper's target deployment (Sections 1 and 6) is a PNUTS-style
sharded web service; this package provides the router that turns N
independent single-node trees into one
:class:`~repro.baselines.interface.KVEngine` with batched operations
whose cost is the max — not the sum — of per-shard device time.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    fnv1a_bytes,
    make_partitioner,
)

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardedEngine",
    "fnv1a_bytes",
    "make_partitioner",
]
