"""Sharded serving: a key router over independent bLSM shards.

The paper's target deployment (Sections 1 and 6) is a PNUTS-style
sharded web service; this package provides the router that turns N
independent single-node trees into one
:class:`~repro.baselines.interface.KVEngine` with batched operations
whose cost is the max — not the sum — of per-shard device time, plus
the crash-safe online migration machinery (``repro.shard.migration``)
that moves shard boundaries live under traffic.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.migration import (
    HotShardDetector,
    MigrationController,
    MigrationJournal,
    MigrationPlan,
    MigrationThrottle,
    Rebalancer,
    ShardLease,
    attach_migration,
    crash_and_recover,
    live_migration_bench,
    plan_merge,
    plan_split,
    shard_range,
)
from repro.shard.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    fnv1a_bytes,
    make_partitioner,
)

__all__ = [
    "HashPartitioner",
    "HotShardDetector",
    "MigrationController",
    "MigrationJournal",
    "MigrationPlan",
    "MigrationThrottle",
    "Partitioner",
    "RangePartitioner",
    "Rebalancer",
    "ShardLease",
    "ShardedEngine",
    "attach_migration",
    "crash_and_recover",
    "fnv1a_bytes",
    "live_migration_bench",
    "make_partitioner",
    "plan_merge",
    "plan_split",
    "shard_range",
]
