"""A shard router over independent bLSM trees (Sections 1 and 6).

The paper's deployment target is a PNUTS-style sharded web service: many
independent storage nodes, each running one tree over its own devices.
:class:`ShardedEngine` reproduces that topology inside one process: N
complete shard engines — each with its own Stasis substrate, device set
and virtual clock — behind the one :class:`~repro.baselines.interface.
KVEngine` surface every benchmark already drives.

Concurrency model (the same discipline as PR 3's background merges, one
level up): each shard's clock is an independent position on the virtual
time axis.  A batched operation fans sub-batches out to the shards they
route to; every involved shard first catches up to the router's clock
(an idle server cannot work in the past), then services its sub-batch on
its *own* clock and devices.  The router completes the batch at the
**max** of the shard completion times — not the sum — which is exactly
the near-linear scaling lever sharding exists to buy.  Single-key
operations degenerate to one shard and cost what they always did.

Routing is delegated to a :class:`~repro.shard.partitioner.Partitioner`.
With a resizable range partitioner, versions written before a boundary
move live on their *old* owner; the router reads through the owner
history and broadcasts tombstones to every historic owner, so scans and
gets never resurrect a stale replica (see docs/sharding.md).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.baselines.blsm_engine import BLSMEngine
from repro.baselines.interface import (
    KVEngine,
    WriteBatch,
    build_io_summary,
)
from repro.core.options import BLSMOptions, derive_shard_options
from repro.obs.runtime import EngineRuntime
from repro.shard.partitioner import HashPartitioner, Partitioner
from repro.sim.clock import VirtualClock

T = TypeVar("T")


class ShardedEngine(KVEngine):
    """Hash/range router over N independent shard engines."""

    name = "sharded"

    def __init__(
        self,
        options: BLSMOptions | None = None,
        shards: int = 4,
        partitioner: Partitioner | None = None,
        engine_factory: Callable[[int, BLSMOptions], KVEngine] | None = None,
    ) -> None:
        """Build ``shards`` independent engines and a router over them.

        Args:
            options: per-shard tree configuration; each shard gets its
                own copy (see ``derive_shard_options``) and therefore
                its own device set.  ``fault_plan`` must be unset — the
                crash-point harness needs one serial access sequence,
                which N independent device sets do not provide.
            partitioner: placement policy; defaults to
                :class:`HashPartitioner` over ``shards``.
            engine_factory: ``(shard_index, options) -> KVEngine``
                override for building non-bLSM shards.
        """
        opts = options if options is not None else BLSMOptions()
        if partitioner is None:
            partitioner = HashPartitioner(shards)
        if partitioner.nshards != shards:
            raise ValueError(
                f"partitioner routes {partitioner.nshards} shards, "
                f"engine has {shards}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.partitioner = partitioner
        if engine_factory is None:
            engine_factory = lambda index, shard_opts: BLSMEngine(shard_opts)
        self.shards: list[KVEngine] = [
            engine_factory(index, derive_shard_options(opts, index))
            for index in range(shards)
        ]
        self._clock = VirtualClock()
        self._runtime = EngineRuntime(clock=self._clock)
        metrics = self._runtime.metrics
        self._ctr_batches = metrics.counter("shard.batches")
        self._ctr_batch_ops = metrics.counter("shard.batch_ops")
        self._hist_batch = metrics.histogram("shard.batch_seconds")
        self._ctr_fallback_reads = metrics.counter("shard.fallback_reads")
        self._shard_ops = [
            metrics.counter(f"shard.{index}.ops") for index in range(shards)
        ]
        self._shard_busy = [
            metrics.counter(f"shard.{index}.busy_seconds")
            for index in range(shards)
        ]
        self._closed = False

    # ------------------------------------------------------------------
    # Routing and overlapped execution
    # ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The router's clock: the client's view of virtual time."""
        return self._clock

    def _fan_out(
        self,
        groups: dict[int, Callable[[KVEngine], T]],
        kind: str,
        ops: int,
    ) -> dict[int, T]:
        """Run one callable per shard, overlapped on the time axis.

        Every involved shard catches up to the router clock, services
        its work on its own clock/devices, and the router completes at
        the max of the shard completion times.  The invariant that no
        shard clock is ever *ahead* of the router's (re-established at
        the end of every fan-out) is what makes ``max`` the honest
        completion time: no shard smuggles work into the past.
        """
        issue = self._clock.now
        completion = issue
        per_shard: dict[int, float] = {}
        results: dict[int, T] = {}
        for index, fn in sorted(groups.items()):
            shard = self.shards[index]
            shard.clock.advance_to(issue)
            results[index] = fn(shard)
            end = shard.clock.now
            per_shard[index] = end - issue
            self._shard_busy[index].inc(end - issue)
            completion = max(completion, end)
        self._clock.advance_to(completion)
        self._ctr_batches.inc()
        self._ctr_batch_ops.inc(ops)
        self._hist_batch.observe(completion - issue)
        self._runtime.trace.emit(
            "shard_batch",
            kind=kind,
            ops=ops,
            shards=len(groups),
            seconds=completion - issue,
            per_shard={i: round(s, 9) for i, s in per_shard.items()},
        )
        return results

    def _on_shard(self, index: int, fn: Callable[[KVEngine], T], kind: str) -> T:
        """Single-shard degenerate fan-out (point operations)."""
        self._shard_ops[index].inc()
        return self._fan_out({index: fn}, kind, ops=1)[index]

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Point lookup on the owning shard, falling back through the
        placement history (a resize strands old versions — see module
        docstring)."""
        owners = self.partitioner.owners(key)
        value = self._on_shard(owners[0], lambda s: s.get(key), "get")
        for previous in owners[1:]:
            if value is not None:
                break
            self._ctr_fallback_reads.inc()
            value = self._on_shard(previous, lambda s: s.get(key), "get")
        return value

    def put(self, key: bytes, value: bytes) -> None:
        """Write to the current owner and tombstone every historic one.

        The invalidation keeps the fleet-wide invariant that at most one
        *live* version of a key exists across all owners: without it, a
        later resize that re-promotes an old owner would let ``get``
        find that shard's stale copy before falling back to the newer
        write (the differential harness caught exactly this).  With a
        single owner — the hash-partitioned common case — this is the
        plain one-shard put it always was.
        """
        owners = self.partitioner.owners(key)
        if len(owners) == 1:
            self._on_shard(owners[0], lambda s: s.put(key, value), "put")
            return
        groups: dict[int, Callable[[KVEngine], None]] = {
            owners[0]: lambda s: s.put(key, value)
        }
        for index in owners[1:]:
            groups[index] = lambda s: s.delete(key)
        for index in groups:
            self._shard_ops[index].inc()
        self._fan_out(groups, "put", ops=len(groups))

    def delete(self, key: bytes) -> None:
        """Tombstone every owner, current and historic, so a version
        stranded on an old shard by a resize stays masked."""
        groups = {
            index: (lambda s: s.delete(key))
            for index in self.partitioner.owners(key)
        }
        for index in groups:
            self._shard_ops[index].inc()
        self._fan_out(groups, "delete", ops=len(groups))

    def _delta_target(self, key: bytes) -> int:
        """The shard a delta must land on: wherever the base version is.

        After a range resize the current owner may hold nothing while
        the base version sits on a historic owner.  Routing the delta
        blindly to the current owner would strand it there as a dangling
        delta — which resolves to *no value* — while reads fall back to
        the historic owner and return the base **without** the delta
        (silent lost update; docs/correctness.md, bug 7).  So deltas
        probe the placement history exactly like reads do and land on
        the first owner that holds a version; with a single owner (the
        common case) there is nothing to probe.
        """
        owners = self.partitioner.owners(key)
        if len(owners) == 1:
            return owners[0]
        for index in owners:
            if self._on_shard(index, lambda s: s.get(key), "get") is not None:
                return index
        return owners[0]

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Partial update on the shard holding the base version."""
        index = self._delta_target(key)
        self._on_shard(index, lambda s: s.apply_delta(key, delta), "delta")

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        for index in self.partitioner.owners(key):
            if self._on_shard(index, lambda s: s.get(key), "get") is not None:
                return False
        owner = self.partitioner.shard_for(key)
        self._on_shard(owner, lambda s: s.put(key, value), "put")
        return True

    # ------------------------------------------------------------------
    # Batched operations — the fan-out that makes sharding pay
    # ------------------------------------------------------------------

    def multi_get(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Batched lookup: per-shard sub-batches overlap, so the batch
        costs the slowest shard's device time, not the sum."""
        by_shard: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            index = self.partitioner.shard_for(key)
            by_shard.setdefault(index, []).append(position)

        def lookup(positions: list[int]) -> Callable[[KVEngine], list]:
            return lambda shard: [shard.get(keys[p]) for p in positions]

        groups = {
            index: lookup(positions)
            for index, positions in by_shard.items()
        }
        for index, positions in by_shard.items():
            self._shard_ops[index].inc(len(positions))
        results = self._fan_out(groups, "multi_get", ops=len(keys))
        values: list[bytes | None] = [None] * len(keys)
        for index, positions in by_shard.items():
            for position, value in zip(positions, results[index]):
                values[position] = value
        # Fallback passes for keys a resize may have stranded on an old
        # owner: each round consults the next shard in every missing
        # key's placement history, still overlapped per shard.
        remaining = {
            position: list(self.partitioner.owners(keys[position]))[1:]
            for position in range(len(keys))
            if values[position] is None
        }
        while True:
            missing: dict[int, list[int]] = {}
            for position, history in remaining.items():
                if values[position] is None and history:
                    missing.setdefault(history.pop(0), []).append(position)
            if not missing:
                break
            self._ctr_fallback_reads.inc(
                sum(len(p) for p in missing.values())
            )
            fallback = self._fan_out(
                {i: lookup(p) for i, p in missing.items()},
                "multi_get_fallback",
                ops=sum(len(p) for p in missing.values()),
            )
            for index, positions in missing.items():
                for position, value in zip(positions, fallback[index]):
                    if values[position] is None:
                        values[position] = value
        return values

    def apply_batch(
        self, batch: WriteBatch | Any
    ) -> None:
        """Apply a write batch with per-shard sub-batches overlapped.

        Puts write the current owner and tombstone historic owners;
        deletes broadcast to every owner (tombstones are the
        resize-safety mechanism); deltas route wherever the base version
        lives (``_delta_target``) — unless an earlier mutation in this
        very batch already placed the key, in which case the delta
        follows it so per-key order within the batch is preserved on one
        shard.  Within each shard the original operation order is
        preserved, so per-key ordering semantics match the sequential
        default.
        """
        by_shard: dict[int, WriteBatch] = {}
        placed: dict[bytes, int] = {}
        ops = 0
        for op, key, value in batch:
            ops += 1
            if op == WriteBatch.DELETE:
                owners = self.partitioner.owners(key)
                placed[key] = owners[0]
                routed = [(index, (op, key, value)) for index in owners]
            elif op == WriteBatch.PUT:
                owners = self.partitioner.owners(key)
                placed[key] = owners[0]
                routed = [(owners[0], (op, key, value))]
                routed += [
                    (index, (WriteBatch.DELETE, key, None))
                    for index in owners[1:]
                ]
            else:
                target = placed.get(key)
                if target is None:
                    target = self._delta_target(key)
                    placed[key] = target
                routed = [(target, (op, key, value))]
            for index, entry in routed:
                sub = by_shard.setdefault(index, WriteBatch())
                sub._ops.append(entry)
        if not by_shard:
            return

        def apply(sub: WriteBatch) -> Callable[[KVEngine], None]:
            return lambda shard: shard.apply_batch(sub)

        for index, sub in by_shard.items():
            self._shard_ops[index].inc(len(sub))
        self._fan_out(
            {index: apply(sub) for index, sub in by_shard.items()},
            "apply_batch",
            ops=ops,
        )

    # ------------------------------------------------------------------
    # Scatter-gather scan
    # ------------------------------------------------------------------

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Merged range scan across every shard (heap merge).

        Each shard produces at most ``limit`` rows (any row of the
        final merged prefix must be within the first ``limit`` of its
        shard), the per-shard scans overlap on the time axis, and the
        sorted streams heap-merge.  A key yielded by several shards (a
        range resize left an old version behind) resolves to the
        version from the *newest* owner in the placement history.
        """

        def collect(shard: KVEngine) -> list[tuple[bytes, bytes]]:
            return list(shard.scan(lo, hi, limit))

        groups: dict[int, Callable[[KVEngine], list[tuple[bytes, bytes]]]]
        groups = {index: collect for index in range(len(self.shards))}
        results = self._fan_out(groups, "scan", ops=1)
        streams = [
            [(key, index, value) for key, value in rows]
            for index, rows in sorted(results.items())
        ]
        merged = heapq.merge(*streams)
        emitted = 0
        pending_key: bytes | None = None
        pending: dict[int, bytes] = {}

        def resolve(key: bytes, versions: dict[int, bytes]) -> bytes:
            for owner in self.partitioner.owners(key):
                if owner in versions:
                    return versions[owner]
            return versions[min(versions)]

        for key, index, value in merged:
            if key != pending_key:
                if pending_key is not None:
                    yield pending_key, resolve(pending_key, pending)
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
                pending_key = key
                pending = {}
            pending[index] = value
        if pending_key is not None and (limit is None or emitted < limit):
            yield pending_key, resolve(pending_key, pending)

    # ------------------------------------------------------------------
    # Lifecycle and reporting
    # ------------------------------------------------------------------

    def flush(self) -> None:
        self._fan_out(
            {i: (lambda s: s.flush()) for i in range(len(self.shards))},
            "flush",
            ops=len(self.shards),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._fan_out(
            {i: (lambda s: s.close()) for i in range(len(self.shards))},
            "close",
            ops=len(self.shards),
        )
        self._closed = True

    def metrics(self) -> dict[str, Any]:
        """Aggregate router metrics plus each shard's, prefixed
        ``shard{i}.`` — one flat snapshot covering the whole fleet."""
        snapshot = dict(self._runtime.metrics.snapshot())
        for index, shard in enumerate(self.shards):
            for name, value in shard.metrics().items():
                snapshot[f"shard{index}.{name}"] = value
        return snapshot

    def io_summary(self) -> dict[str, Any]:
        """Sum of the shard device counters, in the shared schema.

        Utilizations are averaged across shards: each shard's devices
        are distinct hardware, so "how busy was the fleet" is the mean,
        not the sum.  Per-shard summaries ride along under
        ``per_shard`` for drill-down.
        """
        per_shard = [shard.io_summary() for shard in self.shards]
        count = max(1, len(per_shard))

        def total(key: str) -> float:
            return sum(summary.get(key, 0) for summary in per_shard)

        return build_io_summary(
            data_seeks=int(total("data_seeks")),
            data_bytes_read=int(total("data_bytes_read")),
            data_bytes_written=int(total("data_bytes_written")),
            log_bytes_written=int(total("log_bytes_written")),
            busy_seconds=total("busy_seconds"),
            fg_busy_seconds=total("fg_busy_seconds"),
            bg_busy_seconds=total("bg_busy_seconds"),
            fg_wait_seconds=total("fg_wait_seconds"),
            data_utilization=total("data_utilization") / count,
            log_utilization=total("log_utilization") / count,
            shards=len(self.shards),
            partitioner=self.partitioner.describe(),
            per_shard=per_shard,
        )

    def shard_rows(self) -> list[dict[str, Any]]:
        """Per-shard attribution rows for ``repro trace`` / ``bench``.

        ``busy_fraction`` is the share of the run each shard spent
        servicing its sub-batches — the load-balance picture;
        ``utilization`` is the shard's own device utilization.
        """
        metrics = self._runtime.metrics
        elapsed = self._clock.now
        rows: list[dict[str, Any]] = []
        for index, shard in enumerate(self.shards):
            summary = shard.io_summary()
            busy = metrics.value(f"shard.{index}.busy_seconds")
            rows.append(
                {
                    "shard": index,
                    "ops": int(metrics.value(f"shard.{index}.ops")),
                    "busy_seconds": busy,
                    "busy_fraction": busy / elapsed if elapsed > 0 else 0.0,
                    "utilization": summary["data_utilization"],
                    "data_seeks": summary["data_seeks"],
                    "data_bytes_read": summary["data_bytes_read"],
                    "data_bytes_written": summary["data_bytes_written"],
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(shards={len(self.shards)}, "
            f"partitioner={self.partitioner.describe()}, "
            f"t={self._clock.now:.3f}s)"
        )
