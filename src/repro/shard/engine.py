"""A shard router over independent bLSM trees (Sections 1 and 6).

The paper's deployment target is a PNUTS-style sharded web service: many
independent storage nodes, each running one tree over its own devices.
:class:`ShardedEngine` reproduces that topology inside one process: N
complete shard engines — each with its own Stasis substrate, device set
and virtual clock — behind the one :class:`~repro.baselines.interface.
KVEngine` surface every benchmark already drives.

Concurrency model (the same discipline as PR 3's background merges, one
level up): each shard's clock is an independent position on the virtual
time axis.  A batched operation fans sub-batches out to the shards they
route to; every involved shard first catches up to the router's clock
(an idle server cannot work in the past), then services its sub-batch on
its *own* clock and devices.  The router completes the batch at the
**max** of the shard completion times — not the sum — which is exactly
the near-linear scaling lever sharding exists to buy.  Single-key
operations degenerate to one shard and cost what they always did.

Routing is delegated to a :class:`~repro.shard.partitioner.Partitioner`.
With a resizable range partitioner, versions written before a boundary
move live on their *old* owner; the router reads through the owner
history and broadcasts tombstones to every historic owner, so scans and
gets never resurrect a stale replica (see docs/sharding.md).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, TypeVar

from repro.baselines.blsm_engine import BLSMEngine
from repro.baselines.interface import (
    KVEngine,
    WriteBatch,
    build_io_summary,
)
from repro.core.options import BLSMOptions, derive_shard_options
from repro.errors import ShardFanoutError
from repro.obs.runtime import EngineRuntime
from repro.shard.partitioner import HashPartitioner, Partitioner
from repro.sim.clock import VirtualClock
from repro.storage.group_commit import CommitTicket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.migration import MigrationController, ShardLease

T = TypeVar("T")


class ShardedEngine(KVEngine):
    """Hash/range router over N independent shard engines."""

    name = "sharded"

    def __init__(
        self,
        options: BLSMOptions | None = None,
        shards: int = 4,
        partitioner: Partitioner | None = None,
        engine_factory: Callable[[int, BLSMOptions], KVEngine] | None = None,
    ) -> None:
        """Build ``shards`` independent engines and a router over them.

        Args:
            options: per-shard tree configuration; each shard gets its
                own copy (see ``derive_shard_options``) and therefore
                its own device set.  ``fault_plan`` must be unset — the
                crash-point harness needs one serial access sequence,
                which N independent device sets do not provide.
            partitioner: placement policy; defaults to
                :class:`HashPartitioner` over ``shards``.
            engine_factory: ``(shard_index, options) -> KVEngine``
                override for building non-bLSM shards.
        """
        opts = options if options is not None else BLSMOptions()
        if partitioner is None:
            partitioner = HashPartitioner(shards)
        if partitioner.nshards != shards:
            raise ValueError(
                f"partitioner routes {partitioner.nshards} shards, "
                f"engine has {shards}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.partitioner = partitioner
        self.options = opts
        if engine_factory is None:
            engine_factory = lambda index, shard_opts: BLSMEngine(shard_opts)
        self.shards: list[KVEngine] = [
            engine_factory(index, derive_shard_options(opts, index))
            for index in range(shards)
        ]
        self._clock = VirtualClock()
        self._runtime = EngineRuntime(clock=self._clock)
        metrics = self._runtime.metrics
        self._ctr_batches = metrics.counter("shard.batches")
        self._ctr_batch_ops = metrics.counter("shard.batch_ops")
        self._hist_batch = metrics.histogram("shard.batch_seconds")
        self._ctr_fallback_reads = metrics.counter("shard.fallback_reads")
        self._shard_ops = [
            metrics.counter(f"shard.{index}.ops") for index in range(shards)
        ]
        self._shard_busy = [
            metrics.counter(f"shard.{index}.busy_seconds")
            for index in range(shards)
        ]
        self._ctr_fg_batches = metrics.counter("shard.foreground_batches")
        # Online-migration state: the cluster epoch advances at every
        # ownership switch; a fenced shard rejects writes through leases
        # older than its fence (see repro.shard.migration).
        self.epoch = 0
        self._fence_epochs = [0] * shards
        self.migration: "MigrationController | None" = None
        # Recovered shards (engine_factory wrapping pre-existing trees)
        # may be ahead of a fresh router clock; no shard clock may ever
        # lead the router's, so start the router at the fleet max.
        self._clock.advance_to(max(shard.clock.now for shard in self.shards))
        self._closed = False

    # ------------------------------------------------------------------
    # Routing and overlapped execution
    # ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The router's clock: the client's view of virtual time."""
        return self._clock

    def _fan_out(
        self,
        groups: dict[int, Callable[[KVEngine], T]],
        kind: str,
        ops: int,
    ) -> dict[int, T]:
        """Run one callable per shard, overlapped on the time axis.

        Every involved shard catches up to the router clock, services
        its work on its own clock/devices, and the router completes at
        the max of the shard completion times.  The invariant that no
        shard clock is ever *ahead* of the router's (re-established at
        the end of every fan-out) is what makes ``max`` the honest
        completion time: no shard smuggles work into the past.
        """
        issue = self._clock.now
        completion = issue
        per_shard: dict[int, float] = {}
        results: dict[int, T] = {}
        for index, fn in sorted(groups.items()):
            shard = self.shards[index]
            shard.clock.advance_to(issue)
            results[index] = fn(shard)
            end = shard.clock.now
            per_shard[index] = end - issue
            self._shard_busy[index].inc(end - issue)
            completion = max(completion, end)
        self._clock.advance_to(completion)
        self._ctr_batches.inc()
        if not kind.startswith("migrate"):
            # Foreground-only counter: the migration throttle uses its
            # growth to tell "traffic is flowing" from "cluster idle".
            self._ctr_fg_batches.inc()
        self._ctr_batch_ops.inc(ops)
        self._hist_batch.observe(completion - issue)
        self._runtime.trace.emit(
            "shard_batch",
            kind=kind,
            ops=ops,
            shards=len(groups),
            seconds=completion - issue,
            per_shard={i: round(s, 9) for i, s in per_shard.items()},
        )
        return results

    def _on_shard(self, index: int, fn: Callable[[KVEngine], T], kind: str) -> T:
        """Single-shard degenerate fan-out (point operations)."""
        self._shard_ops[index].inc()
        return self._fan_out({index: fn}, kind, ops=1)[index]

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Point lookup on the owning shard, falling back through the
        placement history (a resize strands old versions — see module
        docstring)."""
        owners = self.partitioner.owners(key)
        value = self._on_shard(owners[0], lambda s: s.get(key), "get")
        for previous in owners[1:]:
            if value is not None:
                break
            self._ctr_fallback_reads.inc()
            value = self._on_shard(previous, lambda s: s.get(key), "get")
        return value

    def put(self, key: bytes, value: bytes) -> None:
        """Write to the current owner and tombstone every historic one.

        The invalidation keeps the fleet-wide invariant that at most one
        *live* version of a key exists across all owners: without it, a
        later resize that re-promotes an old owner would let ``get``
        find that shard's stale copy before falling back to the newer
        write (the differential harness caught exactly this).  With a
        single owner — the hash-partitioned common case — this is the
        plain one-shard put it always was.

        During a migration's catch-up phase the controller returns the
        migration target as an extra destination: the put double-writes
        there so the staged copy never falls behind (set last, so it
        wins over any historic-owner tombstone for the same shard).
        """
        owners = self.partitioner.owners(key)
        extra = (
            self.migration.on_write(key, "put")
            if self.migration is not None
            else None
        )
        if len(owners) == 1 and extra is None:
            self._on_shard(owners[0], lambda s: s.put(key, value), "put")
            return
        groups: dict[int, Callable[[KVEngine], None]] = {
            owners[0]: lambda s: s.put(key, value)
        }
        for index in owners[1:]:
            groups[index] = lambda s: s.delete(key)
        if extra is not None:
            groups[extra] = lambda s: s.put(key, value)
        for index in groups:
            self._shard_ops[index].inc()
        self._fan_out(groups, "put", ops=len(groups))

    def delete(self, key: bytes) -> None:
        """Tombstone every owner, current and historic, so a version
        stranded on an old shard by a resize stays masked.  During
        migration catch-up the tombstone also double-writes to the
        migration target so its staged copy dies with the original."""
        destinations = list(self.partitioner.owners(key))
        extra = (
            self.migration.on_write(key, "delete")
            if self.migration is not None
            else None
        )
        if extra is not None and extra not in destinations:
            destinations.append(extra)
        groups = {index: (lambda s: s.delete(key)) for index in destinations}
        for index in groups:
            self._shard_ops[index].inc()
        self._fan_out(groups, "delete", ops=len(groups))

    def _delta_target(self, key: bytes) -> int:
        """The shard a delta must land on: wherever the base version is.

        After a range resize the current owner may hold nothing while
        the base version sits on a historic owner.  Routing the delta
        blindly to the current owner would strand it there as a dangling
        delta — which resolves to *no value* — while reads fall back to
        the historic owner and return the base **without** the delta
        (silent lost update; docs/correctness.md, bug 7).  So deltas
        probe the placement history exactly like reads do and land on
        the first owner that holds a version; with a single owner (the
        common case) there is nothing to probe.
        """
        owners = self.partitioner.owners(key)
        if len(owners) == 1:
            return owners[0]
        for index in owners:
            if self._on_shard(index, lambda s: s.get(key), "get") is not None:
                return index
        return owners[0]

    def apply_delta(self, key: bytes, delta: bytes) -> None:
        """Partial update on the shard holding the base version.

        Deltas are never double-written during migration: the staged
        target copy may lack the base version, and a dangling delta
        resolves to nothing.  The controller instead marks the key dirty
        so catch-up re-reads the *resolved* value from the source.
        """
        if self.migration is not None:
            self.migration.on_write(key, "delta")
        index = self._delta_target(key)
        self._on_shard(index, lambda s: s.apply_delta(key, delta), "delta")

    def insert_if_not_exists(self, key: bytes, value: bytes) -> bool:
        for index in self.partitioner.owners(key):
            if self._on_shard(index, lambda s: s.get(key), "get") is not None:
                return False
        self.put(key, value)
        return True

    # ------------------------------------------------------------------
    # Batched operations — the fan-out that makes sharding pay
    # ------------------------------------------------------------------

    def multi_get(self, keys: Sequence[bytes]) -> list[bytes | None]:
        """Batched lookup: per-shard sub-batches overlap, so the batch
        costs the slowest shard's device time, not the sum."""
        by_shard: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            index = self.partitioner.shard_for(key)
            by_shard.setdefault(index, []).append(position)

        def lookup(positions: list[int]) -> Callable[[KVEngine], list]:
            return lambda shard: [shard.get(keys[p]) for p in positions]

        groups = {
            index: lookup(positions)
            for index, positions in by_shard.items()
        }
        for index, positions in by_shard.items():
            self._shard_ops[index].inc(len(positions))
        results = self._fan_out(groups, "multi_get", ops=len(keys))
        values: list[bytes | None] = [None] * len(keys)
        for index, positions in by_shard.items():
            for position, value in zip(positions, results[index]):
                values[position] = value
        # Fallback passes for keys a resize may have stranded on an old
        # owner: each round consults the next shard in every missing
        # key's placement history, still overlapped per shard.
        remaining = {
            position: list(self.partitioner.owners(keys[position]))[1:]
            for position in range(len(keys))
            if values[position] is None
        }
        while True:
            missing: dict[int, list[int]] = {}
            for position, history in remaining.items():
                if values[position] is None and history:
                    missing.setdefault(history.pop(0), []).append(position)
            if not missing:
                break
            self._ctr_fallback_reads.inc(
                sum(len(p) for p in missing.values())
            )
            fallback = self._fan_out(
                {i: lookup(p) for i, p in missing.items()},
                "multi_get_fallback",
                ops=sum(len(p) for p in missing.values()),
            )
            for index, positions in missing.items():
                for position, value in zip(positions, fallback[index]):
                    if values[position] is None:
                        values[position] = value
        return values

    def _route_writes(
        self, batch: WriteBatch | Any
    ) -> tuple[dict[int, WriteBatch], int]:
        """Split a write batch into per-shard sub-batches.

        Puts write the current owner and tombstone historic owners;
        deletes broadcast to every owner (tombstones are the
        resize-safety mechanism); deltas route wherever the base version
        lives (``_delta_target``) — unless an earlier mutation in this
        very batch already placed the key, in which case the delta
        follows it so per-key order within the batch is preserved on one
        shard.  Within each shard the original operation order is
        preserved, so per-key ordering semantics match the sequential
        default.
        """
        by_shard: dict[int, WriteBatch] = {}
        placed: dict[bytes, int] = {}
        ops = 0
        migration = self.migration
        for op, key, value in batch:
            ops += 1
            if op == WriteBatch.DELETE:
                owners = self.partitioner.owners(key)
                placed[key] = owners[0]
                routed = [(index, (op, key, value)) for index in owners]
                extra = (
                    migration.on_write(key, "delete") if migration else None
                )
                if extra is not None and extra not in owners:
                    routed.append((extra, (op, key, value)))
            elif op == WriteBatch.PUT:
                owners = self.partitioner.owners(key)
                placed[key] = owners[0]
                routed = [(owners[0], (op, key, value))]
                routed += [
                    (index, (WriteBatch.DELETE, key, None))
                    for index in owners[1:]
                ]
                extra = migration.on_write(key, "put") if migration else None
                if extra is not None:
                    # Appended last so the catch-up double-write put wins
                    # over any historic-owner tombstone on that shard.
                    routed.append((extra, (op, key, value)))
            else:
                if migration is not None:
                    migration.on_write(key, "delta")
                target = placed.get(key)
                if target is None:
                    target = self._delta_target(key)
                    placed[key] = target
                routed = [(target, (op, key, value))]
            for index, entry in routed:
                sub = by_shard.setdefault(index, WriteBatch())
                sub._ops.append(entry)
        return by_shard, ops

    def apply_batch(
        self, batch: WriteBatch | Any
    ) -> None:
        """Apply a write batch with per-shard sub-batches overlapped.

        Routing semantics live in :meth:`_route_writes`; each shard
        services its sub-batch on its own clock and the batch completes
        at the max of the shard completion times.
        """
        by_shard, ops = self._route_writes(batch)
        if not by_shard:
            return

        def apply(sub: WriteBatch) -> Callable[[KVEngine], None]:
            return lambda shard: shard.apply_batch(sub)

        for index, sub in by_shard.items():
            self._shard_ops[index].inc(len(sub))
        self._fan_out(
            {index: apply(sub) for index, sub in by_shard.items()},
            "apply_batch",
            ops=ops,
        )

    def commit_batch(
        self, batch: WriteBatch, session: int = 0, wait: bool = True
    ) -> CommitTicket:
        """Durably commit a batch: per-shard sub-commits, overlapped.

        Each involved shard commits its sub-batch through its own WAL
        (and, under GROUP durability, its own group-commit queue), so
        the commit costs the slowest shard's force, not the sum.  The
        returned ticket aggregates the per-shard receipts: ``durable_at``
        is the max shard durability time — the instant the whole batch
        is durable fleet-wide.  ``wait=False`` is accepted for interface
        compatibility but resolves synchronously: per-shard clocks are
        independent, so the overlap already captures the latency win.
        """
        issue = self._clock.now
        by_shard, ops = self._route_writes(batch)
        if not by_shard:
            return CommitTicket(
                session=session,
                first_seqno=0,
                last_seqno=-1,
                ops=0,
                enqueued_at=issue,
                leader=True,
                group_size=1,
                durable_at=issue,
            )

        def commit(sub: WriteBatch) -> Callable[[KVEngine], CommitTicket]:
            return lambda shard: shard.commit_batch(
                sub, session=session, wait=True
            )

        for index, sub in by_shard.items():
            self._shard_ops[index].inc(len(sub))
        receipts = self._fan_out(
            {index: commit(sub) for index, sub in by_shard.items()},
            "commit_batch",
            ops=ops,
        )
        tickets = list(receipts.values())
        return CommitTicket(
            session=session,
            first_seqno=min(t.first_seqno for t in tickets),
            last_seqno=max(t.last_seqno for t in tickets),
            ops=ops,
            enqueued_at=issue,
            leader=True,
            group_size=max(t.group_size for t in tickets),
            durable_at=max(
                t.durable_at for t in tickets if t.durable_at is not None
            ),
        )

    # ------------------------------------------------------------------
    # Scatter-gather scan
    # ------------------------------------------------------------------

    def scan(
        self, lo: bytes, hi: bytes | None = None, limit: int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Merged range scan across every shard (chunked cursor merge).

        With a ``limit``, each shard initially produces only
        ``ceil(limit / shards) + 1`` rows — not ``limit`` — and the
        merge refills an individual shard's cursor (from just past its
        last delivered key) only when that shard runs dry *before* the
        global limit is met.  Uniformly distributed rows therefore cost
        each shard ~1/N of the limit in device time; the old
        limit-from-every-shard fetch charged N times that and threw
        away the excess.  Skewed distributions degrade gracefully: the
        shard holding the whole prefix pays chunked refills up to
        ``limit`` while the others stop after one empty chunk.  The
        initial chunk fetch overlaps across shards on the time axis;
        refills are sequential (the merge is blocked on that shard).

        A key yielded by several shards (a range resize left an old
        version behind) resolves to the version from the *newest* owner
        in the placement history.

        While a migration is staging rows on its target (copy and
        catch-up phases), the target's cursor skips the staged range
        entirely — a two-window sub-scan around the mask, not a
        post-filter, so a chunk still produces enough rows *outside*
        the mask to honor the merged prefix guarantee.  A staged copy
        of a key deleted on the source mid-copy must never resurrect
        in a scan.
        """
        count = len(self.shards)
        mask = (
            self.migration.mask_range() if self.migration is not None else None
        )
        chunk = (
            None if limit is None else max(1, -(-limit // count) + 1)
        )

        def fetch(
            index: int, start: bytes, want: int | None
        ) -> Callable[[KVEngine], list[tuple[bytes, bytes]]]:
            if mask is not None and mask[0] == index:
                _, mask_lo, mask_hi = mask

                def masked(shard: KVEngine) -> list[tuple[bytes, bytes]]:
                    rows: list[tuple[bytes, bytes]] = []
                    below_hi = mask_lo if hi is None else min(hi, mask_lo)
                    if start < below_hi:
                        rows.extend(shard.scan(start, below_hi, want))
                    above_lo = max(start, mask_hi)
                    remaining = None if want is None else want - len(rows)
                    if (remaining is None or remaining > 0) and (
                        hi is None or above_lo < hi
                    ):
                        rows.extend(shard.scan(above_lo, hi, remaining))
                    return rows

                return masked
            return lambda shard: list(shard.scan(start, hi, want))

        results = self._fan_out(
            {index: fetch(index, lo, chunk) for index in range(count)},
            "scan",
            ops=1,
        )
        buffers: dict[int, deque[tuple[bytes, bytes]]] = {
            index: deque(rows) for index, rows in results.items()
        }
        # Cursor: where the next chunk for this shard starts (just past
        # the last row it has delivered so far).
        cursors = {
            index: rows[-1][0] + b"\x00" if rows else lo
            for index, rows in results.items()
        }
        # A shard that returned a short chunk has no more rows in range;
        # with no limit the first fetch was already exhaustive.
        exhausted = {
            index: chunk is None or len(rows) < chunk
            for index, rows in results.items()
        }

        def refill(index: int, emitted: int) -> None:
            assert limit is not None
            want = min(chunk or limit, max(1, limit - emitted))
            rows = self._on_shard(
                index, fetch(index, cursors[index], want), "scan"
            )
            buffers[index].extend(rows)
            if rows:
                cursors[index] = rows[-1][0] + b"\x00"
            if len(rows) < want:
                exhausted[index] = True

        def resolve(key: bytes, versions: dict[int, bytes]) -> bytes:
            for owner in self.partitioner.owners(key):
                if owner in versions:
                    return versions[owner]
            return versions[min(versions)]

        emitted = 0
        while True:
            # The merge may only emit the global minimum head once every
            # non-exhausted shard has a head to compare (a dry cursor
            # could still be hiding smaller keys behind a refill).
            for index in range(count):
                while not buffers[index] and not exhausted[index]:
                    refill(index, emitted)
            heads = [
                (buffers[index][0][0], index)
                for index in range(count)
                if buffers[index]
            ]
            if not heads:
                return
            key = min(heads)[0]
            versions = {
                index: buffers[index].popleft()[1]
                for _, index in heads
                if buffers[index][0][0] == key
            }
            yield key, resolve(key, versions)
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    # ------------------------------------------------------------------
    # Online migration surface
    # ------------------------------------------------------------------

    def prune_placement_history(self) -> int:
        """Drop superseded placement mappings that strand no live data.

        Probes each historic owner with a one-row ranged scan over every
        keyspace segment where its mapping disagrees with the current
        one; an entry whose segments are all empty cannot change any
        read and is dropped (see ``RangePartitioner.prune_history``).
        Returns the number of entries pruned; a policy without history
        (hash partitioning) prunes nothing.
        """
        prune = getattr(self.partitioner, "prune_history", None)
        if prune is None:
            return 0

        def stranded(index: int, lo: bytes, hi: bytes | None) -> bool:
            return bool(
                self._on_shard(
                    index, lambda s: list(s.scan(lo, hi, 1)), "migrate_prune"
                )
            )

        return prune(stranded)

    def lease(self, key: bytes) -> "ShardLease":
        """An epoch-stamped ownership claim for ``key``'s current shard.

        Writes through the lease raise
        :class:`~repro.errors.StaleOwnerError` once a migration switch
        fences the shard — the cached-routing-table client model.
        """
        from repro.shard.migration import ShardLease

        return ShardLease(self, self.partitioner.shard_for(key), self.epoch)

    def handle_migration_op(
        self, action: str, key: bytes = b"", budget: int = 1
    ) -> str:
        """Drive the attached migration controller (fuzzer surface).

        ``split``/``merge`` plan a migration of the shard owning ``key``
        when the controller is idle (an unplannable or conflicting
        request is a no-op — the fuzzer explores schedules, it does not
        demand them); any action then steps the controller up to
        ``budget`` times.  Returns the last step tag.
        """
        from repro.errors import MigrationError
        from repro.shard.migration import plan_merge, plan_split

        controller = self.migration
        if controller is None:
            return "no-controller"
        if action in ("split", "merge") and not controller.active:
            planner = plan_split if action == "split" else plan_merge
            plan = planner(self, self.partitioner.shard_for(key))
            if plan is not None:
                try:
                    controller.start(plan)
                except MigrationError:
                    pass
        tag = "idle"
        for _ in range(max(1, budget)):
            if not controller.active:
                break
            tag = controller.step()
        return tag

    # ------------------------------------------------------------------
    # Lifecycle and reporting
    # ------------------------------------------------------------------

    def _fanout_resilient(self, op: str, fn: Callable[[KVEngine], None]) -> None:
        """Run ``fn`` on *every* shard even when some raise.

        A flush/close that stops at the first failing shard would leave
        the healthy remainder un-flushed (durability silently lost) or
        un-closed (resources leaked).  Per-shard failures are collected
        and re-raised together as :class:`ShardFanoutError`; a simulated
        :class:`~repro.errors.CrashPoint` still propagates immediately —
        a dead process visits nothing.
        """
        errors: dict[int, Exception] = {}

        def guarded(index: int) -> Callable[[KVEngine], None]:
            def run(shard: KVEngine) -> None:
                try:
                    fn(shard)
                except Exception as error:
                    errors[index] = error

            return run

        self._fan_out(
            {i: guarded(i) for i in range(len(self.shards))},
            op,
            ops=len(self.shards),
        )
        if errors:
            raise ShardFanoutError(op, errors)

    def flush(self) -> None:
        self._fanout_resilient("flush", lambda s: s.flush())

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._fanout_resilient("close", lambda s: s.close())
        finally:
            self._closed = True

    def metrics(self) -> dict[str, Any]:
        """Aggregate router metrics plus each shard's, prefixed
        ``shard{i}.`` — one flat snapshot covering the whole fleet."""
        snapshot = dict(self._runtime.metrics.snapshot())
        for index, shard in enumerate(self.shards):
            for name, value in shard.metrics().items():
                snapshot[f"shard{index}.{name}"] = value
        return snapshot

    def io_summary(self) -> dict[str, Any]:
        """Sum of the shard device counters, in the shared schema.

        Utilizations are averaged across shards: each shard's devices
        are distinct hardware, so "how busy was the fleet" is the mean,
        not the sum.  Per-shard summaries ride along under
        ``per_shard`` for drill-down.
        """
        per_shard = [shard.io_summary() for shard in self.shards]
        count = max(1, len(per_shard))

        def total(key: str) -> float:
            return sum(summary.get(key, 0) for summary in per_shard)

        return build_io_summary(
            data_seeks=int(total("data_seeks")),
            data_bytes_read=int(total("data_bytes_read")),
            data_bytes_written=int(total("data_bytes_written")),
            log_bytes_written=int(total("log_bytes_written")),
            busy_seconds=total("busy_seconds"),
            fg_busy_seconds=total("fg_busy_seconds"),
            bg_busy_seconds=total("bg_busy_seconds"),
            fg_wait_seconds=total("fg_wait_seconds"),
            data_utilization=total("data_utilization") / count,
            log_utilization=total("log_utilization") / count,
            shards=len(self.shards),
            partitioner=self.partitioner.describe(),
            per_shard=per_shard,
        )

    def shard_rows(self) -> list[dict[str, Any]]:
        """Per-shard attribution rows for ``repro trace`` / ``bench``.

        ``busy_fraction`` is the share of the run each shard spent
        servicing its sub-batches — the load-balance picture;
        ``utilization`` is the shard's own device utilization.
        """
        metrics = self._runtime.metrics
        elapsed = self._clock.now
        rows: list[dict[str, Any]] = []
        for index, shard in enumerate(self.shards):
            summary = shard.io_summary()
            busy = metrics.value(f"shard.{index}.busy_seconds")
            rows.append(
                {
                    "shard": index,
                    "ops": int(metrics.value(f"shard.{index}.ops")),
                    "busy_seconds": busy,
                    "busy_fraction": busy / elapsed if elapsed > 0 else 0.0,
                    "utilization": summary["data_utilization"],
                    "data_seeks": summary["data_seeks"],
                    "data_bytes_read": summary["data_bytes_read"],
                    "data_bytes_written": summary["data_bytes_written"],
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(shards={len(self.shards)}, "
            f"partitioner={self.partitioner.describe()}, "
            f"t={self._clock.now:.3f}s)"
        )
