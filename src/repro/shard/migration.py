"""Crash-safe online shard migration: live split/merge under traffic.

The paper's deployment story (Sections 1 and 6) is a PNUTS-style fleet
of independent trees; PR 4's :class:`~repro.shard.engine.ShardedEngine`
reproduces the fleet but its only elasticity lever was
``RangePartitioner.resize`` — a static, offline remap that strands every
pre-move version on its old owner forever.  This module makes boundary
movement a first-class *online* mechanism: data actually moves, the
ownership switch is atomic and journaled, and a crash at any step
recovers to a consistent ownership map.

The protocol is the classic live-migration state machine, driven one
bounded unit of work at a time so foreground traffic interleaves:

``plan``
    A :class:`MigrationPlan` names a contiguous donated range
    ``[lo, hi)`` moving from ``source`` to an adjacent ``target`` plus
    the post-switch boundary set.  The plan is journaled before any
    data moves.
``copy``
    The target's slice of the moving range is first cleared (a crashed
    earlier attempt may have left stale staged rows), then the source's
    rows are copied over in chunks.  Foreground writes to the moving
    range keep landing on the source; their keys go into an in-memory
    *dirty set* so the copy never chases a moving target.
``catch-up``
    The dirty set is drained (re-read from source, re-staged on target)
    while new foreground puts/deletes *double-write* to both shards, so
    the set only shrinks.  Deltas stay source-only and re-enter the
    dirty set — the target may lack the base version, and a dangling
    delta must never be staged.
``switch``
    The commit point: one journal force containing the new boundaries
    and a bumped cluster epoch.  Only after the record is durable does
    the router's partitioner resize and the source become *fenced* — a
    client still writing through a pre-switch :class:`ShardLease` gets
    :class:`~repro.errors.StaleOwnerError` instead of a misplaced write.
    Crash before the force: recovery restarts the copy (the dirty set
    is volatile, so nothing less is safe).  Crash after: recovery
    resumes at retire.  There is no in-between.
``retire``
    The source's now-stale copies of the moved range are deleted in
    chunks, after which the superseded placement-history entry is
    pruned (:meth:`~repro.shard.partitioner.RangePartitioner.
    prune_history`) — the unbounded-history fix.

Until the switch, readers never observe the target's staged rows: point
reads route to the source (still the owner) and the router's scan masks
the staged range (see ``ShardedEngine.scan``).  After the switch,
readers resolve the target first and the placement history keeps the
un-retired source copies reachable only as (identical) fallbacks.

Migration I/O is throttled against foreground traffic
(:class:`MigrationThrottle` defers steps once migration exceeds its
budgeted share of cluster time while foreground batches are flowing),
and :class:`HotShardDetector` + :class:`Rebalancer` close the loop from
per-shard load metrics to live split/merge plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, TYPE_CHECKING

from repro.errors import (
    CrashPoint,
    MigrationError,
    StaleOwnerError,
    TransientIOError,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryExecutor, RetryPolicy
from repro.obs.timeline import percentile, windows_over_span
from repro.shard.partitioner import RangePartitioner
from repro.sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.engine import ShardedEngine

__all__ = [
    "HotShardDetector",
    "MigrationController",
    "MigrationJournal",
    "MigrationPlan",
    "MigrationThrottle",
    "Rebalancer",
    "ShardLease",
    "attach_migration",
    "crash_and_recover",
    "live_migration_bench",
    "plan_merge",
    "plan_split",
    "shard_range",
]

#: Controller states, in protocol order.
IDLE, COPY, CATCH_UP, RETIRE = "idle", "copy", "catch_up", "retire"


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationPlan:
    """One boundary move: donate ``[lo, hi)`` from source to target.

    Every single-boundary move of a range partitioner is expressible
    this way: a *split* donates half of a hot shard's range to a
    neighbour, a *merge* donates (almost) all of a cold shard's range.
    ``new_boundaries`` is the complete post-switch boundary set — the
    switch installs it verbatim, so the plan record alone is enough to
    recover the ownership map.
    """

    plan_id: int
    kind: str  # "split" or "merge"
    source: int
    target: int
    lo: bytes
    hi: bytes
    new_boundaries: tuple[bytes, ...]


def shard_range(
    partitioner: RangePartitioner, index: int
) -> tuple[bytes, bytes | None]:
    """The key range shard ``index`` currently owns (``hi None`` = +inf)."""
    boundaries = partitioner.boundaries
    lo = b"" if index == 0 else boundaries[index - 1]
    hi = None if index == len(boundaries) else boundaries[index]
    return lo, hi


def _valid_boundaries(
    partitioner: RangePartitioner, candidate: list[bytes]
) -> bool:
    if len(candidate) != len(partitioner.boundaries):
        return False
    try:
        RangePartitioner(candidate)
    except ValueError:
        return False
    return True


def _live_keys(engine: "ShardedEngine", index: int, lo: bytes, hi: bytes | None) -> list[bytes]:
    rows = engine._on_shard(
        index, lambda s: list(s.scan(lo, hi)), "migrate_plan"
    )
    return [key for key, _ in rows]


def plan_split(engine: "ShardedEngine", source: int) -> MigrationPlan | None:
    """Split a hot shard: donate half its live range to a neighbour.

    The split point is the median live key of the source's current
    range.  Interior shards donate their upper half rightward; the last
    shard donates its lower half leftward (a boundary can only move
    between neighbours).  Returns ``None`` when the shard holds too few
    keys to split or the move would produce an invalid boundary set.
    """
    partitioner = engine.partitioner
    if not isinstance(partitioner, RangePartitioner):
        return None
    nshards = partitioner.nshards
    if not 0 <= source < nshards or nshards < 2:
        return None
    lo, hi = shard_range(partitioner, source)
    keys = _live_keys(engine, source, lo, hi)
    if len(keys) < 2:
        return None
    mid = keys[len(keys) // 2]
    boundaries = list(partitioner.boundaries)
    if source < nshards - 1:
        candidate = list(boundaries)
        candidate[source] = mid
        if not _valid_boundaries(partitioner, candidate):
            return None
        assert hi is not None
        return MigrationPlan(
            0, "split", source, source + 1, mid, hi, tuple(candidate)
        )
    candidate = list(boundaries)
    candidate[source - 1] = mid
    if not _valid_boundaries(partitioner, candidate):
        return None
    return MigrationPlan(
        0, "split", source, source - 1, lo, mid, tuple(candidate)
    )


def plan_merge(engine: "ShardedEngine", source: int) -> MigrationPlan | None:
    """Merge a cold shard away: donate (almost) all its range.

    Boundaries must stay strictly increasing, so a shard cannot donate
    its *entire* range; the merge leaves a sliver — interior shards keep
    only keys below ``lo + b"\\x00"``, the last shard keeps only keys
    above its last live one.  Returns ``None`` when the move is
    degenerate (nothing to donate, or an invalid boundary set).
    """
    partitioner = engine.partitioner
    if not isinstance(partitioner, RangePartitioner):
        return None
    nshards = partitioner.nshards
    if not 0 <= source < nshards or nshards < 2:
        return None
    lo, hi = shard_range(partitioner, source)
    boundaries = list(partitioner.boundaries)
    if source < nshards - 1:
        assert hi is not None
        sliver = lo + b"\x00"
        if sliver >= hi:
            return None
        candidate = list(boundaries)
        candidate[source] = sliver
        if not _valid_boundaries(partitioner, candidate):
            return None
        return MigrationPlan(
            0, "merge", source, source + 1, sliver, hi, tuple(candidate)
        )
    keys = _live_keys(engine, source, lo, hi)
    if not keys:
        return None
    cut = keys[-1] + b"\x00"
    candidate = list(boundaries)
    candidate[source - 1] = cut
    if not _valid_boundaries(partitioner, candidate):
        return None
    return MigrationPlan(
        0, "merge", source, source - 1, lo, cut, tuple(candidate)
    )


# ----------------------------------------------------------------------
# The migration journal (the subsystem's WAL)
# ----------------------------------------------------------------------


class MigrationJournal:
    """An append-only, force-on-append journal of migration records.

    The journal is the migration subsystem's write-ahead log: every
    state transition is appended *and forced* before the transition
    takes effect in memory, so replaying the durable prefix always
    reconstructs a consistent ownership map.  Each force charges the
    router clock and (optionally) consults a :class:`FaultPlan` under
    the device name ``migration-journal`` — transient faults are retried
    through a :class:`RetryExecutor` (with a deadline, so a persistent
    fault surfaces typed), ``crash``/``torn`` faults kill the process at
    the force boundary leaving the record volatile, and ``latency``
    faults just cost time.  :meth:`crash` models the process death:
    the un-forced tail is dropped.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        fault_plan: FaultPlan | None = None,
        force_seconds: float = 2e-4,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.fault_plan = fault_plan
        self.force_seconds = force_seconds
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, deadline_seconds=1.0, jitter=0.25
        )
        self.seed = seed
        self.forces = 0
        self._records: list[dict[str, Any]] = []
        self._durable = 0

    @property
    def records(self) -> list[dict[str, Any]]:
        """The durable record prefix (everything that survived forces)."""
        return list(self._records[: self._durable])

    def append(self, record: dict[str, Any]) -> None:
        """Append one record and force it durable (or die trying)."""
        self._records.append(dict(record))
        self.force()

    def force(self) -> None:
        """Make every appended record durable, charging clock time."""

        def write_once() -> None:
            if self.fault_plan is not None:
                for rule in self.fault_plan.note_access(
                    "migration-journal", "write"
                ):
                    if rule.kind == "transient":
                        self.clock.advance(self.force_seconds)
                        raise TransientIOError(
                            "migration-journal force failed"
                        )
                    if rule.kind in ("crash", "torn"):
                        raise CrashPoint(
                            access_index=self.fault_plan.access_count
                        )
                    if rule.kind == "latency":
                        self.clock.advance(rule.extra_seconds)
            self.clock.advance(self.force_seconds)

        executor = RetryExecutor(self.retry_policy, self.clock, seed=self.seed)
        executor.run(write_once, "migration-journal")
        self._durable = len(self._records)
        self.forces += 1

    def crash(self) -> int:
        """Drop the volatile tail (process death); return records lost."""
        lost = len(self._records) - self._durable
        del self._records[self._durable :]
        return lost


def _replay_journal(
    journal: MigrationJournal,
) -> tuple[
    list[bytes] | None,
    list[bytes] | None,
    int,
    tuple[MigrationPlan, str] | None,
    int,
]:
    """Reconstruct ``(boundaries, pre_switch_boundaries, epoch, pending,
    next_plan_id)`` from the journal's durable records.

    ``pending`` is ``(plan, phase)`` with phase ``"copy"`` (planned but
    not switched — the copy restarts from scratch, the volatile dirty
    set died with the process) or ``"retire"`` (switched but the
    superseded range is not yet fully retired/pruned — retirement is
    idempotent and simply reruns).  ``pre_switch_boundaries`` is set
    only for a pending retire: the recovered partitioner needs that
    history entry so reads still fall back to the un-retired source.
    """
    boundaries: list[bytes] | None = None
    previous: list[bytes] | None = None
    epoch = 0
    pending: tuple[MigrationPlan, str] | None = None
    next_plan_id = 1
    for record in journal.records:
        kind = record["type"]
        if kind == "init":
            boundaries = list(record["boundaries"])
            epoch = int(record["epoch"])
        elif kind == "plan":
            plan = MigrationPlan(
                plan_id=int(record["id"]),
                kind=record["kind"],
                source=int(record["source"]),
                target=int(record["target"]),
                lo=record["lo"],
                hi=record["hi"],
                new_boundaries=tuple(record["new_boundaries"]),
            )
            pending = (plan, "copy")
            next_plan_id = max(next_plan_id, plan.plan_id + 1)
        elif kind == "switch":
            previous = boundaries
            boundaries = list(record["boundaries"])
            epoch = int(record["epoch"])
            if pending is not None:
                pending = (pending[0], "retire")
        elif kind == "prune":
            pending = None
            previous = None
        elif kind == "abort":
            pending = None
    if pending is not None and pending[1] == "copy":
        previous = None
    return boundaries, previous, epoch, pending, next_plan_id


# ----------------------------------------------------------------------
# Throttle, detector, rebalancer
# ----------------------------------------------------------------------


class MigrationThrottle:
    """Bound migration's share of cluster time while traffic flows.

    Tracks the router-clock seconds migration steps consume and defers
    further steps whenever that share of elapsed time exceeds
    ``max_fraction`` *and* foreground batches arrived since the last
    step (an idle cluster migrates at full speed — there is no one to
    protect).  Deferral is self-correcting: migration's share decays as
    foreground time accumulates, so progress is guaranteed.
    """

    def __init__(self, max_fraction: float = 0.5) -> None:
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError(
                f"max_fraction must be in (0, 1], got {max_fraction}"
            )
        self.max_fraction = max_fraction
        self.busy_seconds = 0.0
        self._began: float | None = None
        self._last_foreground: float | None = None

    def begin(self, engine: "ShardedEngine") -> None:
        """Reset accounting at migration start."""
        self.busy_seconds = 0.0
        self._began = engine.clock.now
        self._last_foreground = engine._runtime.metrics.value(
            "shard.foreground_batches"
        )

    def should_defer(self, engine: "ShardedEngine") -> bool:
        """Whether the next step should yield to foreground traffic."""
        current = engine._runtime.metrics.value("shard.foreground_batches")
        foreground_active = (
            self._last_foreground is not None
            and current > self._last_foreground
        )
        self._last_foreground = current
        if not foreground_active or self._began is None:
            return False
        elapsed = engine.clock.now - self._began
        if elapsed <= 0.0:
            return False
        return self.busy_seconds / elapsed > self.max_fraction

    def charge(self, seconds: float) -> None:
        """Account one step's router-clock cost against the budget."""
        self.busy_seconds += max(0.0, seconds)


class HotShardDetector:
    """Per-shard load shares from the router's own op counters.

    Each :meth:`observe` call diffs the per-shard ``shard.{i}.ops``
    counters against the previous observation and returns each shard's
    share of the interval's traffic (empty until at least ``min_ops``
    accumulated — a handful of ops is noise, not a hotspot).
    """

    def __init__(self, engine: "ShardedEngine", min_ops: int = 64) -> None:
        self.engine = engine
        self.min_ops = min_ops
        self._last = self._snapshot()

    def _snapshot(self) -> list[float]:
        metrics = self.engine._runtime.metrics
        return [
            metrics.value(f"shard.{index}.ops")
            for index in range(len(self.engine.shards))
        ]

    def observe(self) -> list[float]:
        """Traffic share per shard since the last observation."""
        current = self._snapshot()
        deltas = [now - then for now, then in zip(current, self._last)]
        total = sum(deltas)
        if total < self.min_ops:
            return []
        self._last = current
        return [delta / total for delta in deltas]


class Rebalancer:
    """Close the loop: per-shard load metrics to live split/merge plans.

    ``maybe_rebalance`` is cheap enough to call between batches: it does
    nothing while a migration is already in flight or traffic is too
    thin to judge, splits the hottest shard once its share exceeds
    ``hot_share``, and merges the coldest shard away once its share
    drops under ``cold_share`` (only with more than two shards — merging
    one of two just moves the hotspot).
    """

    def __init__(
        self,
        engine: "ShardedEngine",
        controller: "MigrationController",
        hot_share: float = 0.6,
        cold_share: float = 0.02,
        detector: HotShardDetector | None = None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.hot_share = hot_share
        self.cold_share = cold_share
        self.detector = detector or HotShardDetector(engine)

    def maybe_rebalance(self) -> MigrationPlan | None:
        """Start a split or merge if the load picture warrants one."""
        if self.controller.state != IDLE:
            return None
        shares = self.detector.observe()
        if not shares:
            return None
        hot = max(range(len(shares)), key=shares.__getitem__)
        if shares[hot] >= self.hot_share:
            plan = plan_split(self.engine, hot)
            if plan is not None:
                return self.controller.start(plan)
        cold = min(range(len(shares)), key=shares.__getitem__)
        if len(shares) > 2 and shares[cold] <= self.cold_share:
            plan = plan_merge(self.engine, cold)
            if plan is not None:
                return self.controller.start(plan)
        return None


# ----------------------------------------------------------------------
# Epoch-fenced client leases
# ----------------------------------------------------------------------


class ShardLease:
    """A client's claim that one shard owns a key range, epoch-stamped.

    Real sharded deployments hand clients a routing table; a migration
    switch invalidates cached entries.  A lease captures the cluster
    epoch at creation; writes through it are rejected with
    :class:`~repro.errors.StaleOwnerError` once the leased shard has
    been fenced by a later switch or the key routes elsewhere — the
    stale client re-leases instead of writing through dead routing
    state.
    """

    def __init__(self, engine: "ShardedEngine", shard: int, epoch: int) -> None:
        self.engine = engine
        self.shard = shard
        self.epoch = epoch

    def _check(self, key: bytes) -> None:
        fence = self.engine._fence_epochs[self.shard]
        if fence > self.epoch:
            raise StaleOwnerError(self.shard, self.epoch, self.engine.epoch)
        if self.engine.partitioner.shard_for(key) != self.shard:
            raise StaleOwnerError(self.shard, self.epoch, self.engine.epoch)

    def put(self, key: bytes, value: bytes) -> None:
        self._check(key)
        self.engine.put(key, value)

    def delete(self, key: bytes) -> None:
        self._check(key)
        self.engine.delete(key)

    def __repr__(self) -> str:
        return f"ShardLease(shard={self.shard}, epoch={self.epoch})"


# ----------------------------------------------------------------------
# The controller
# ----------------------------------------------------------------------


class MigrationController:
    """Drives the journaled plan/copy/catch-up/switch/retire machine.

    One controller attaches to one :class:`ShardedEngine` (as
    ``engine.migration``) and advances at most one migration at a time,
    one bounded chunk per :meth:`step` call, so the driver interleaves
    foreground traffic freely.  Every durable transition is journaled
    *before* it takes effect; :func:`crash_and_recover` rebuilds the
    whole fleet — ownership map, epoch, fences and pending migration —
    from the journal plus the shards' own recovery.
    """

    def __init__(
        self,
        engine: "ShardedEngine",
        journal: MigrationJournal | None = None,
        chunk_keys: int = 64,
        throttle: MigrationThrottle | None = None,
    ) -> None:
        if not isinstance(engine.partitioner, RangePartitioner):
            raise MigrationError(
                "online migration requires a RangePartitioner "
                f"(got {engine.partitioner.describe()})"
            )
        if chunk_keys < 1:
            raise ValueError(f"chunk_keys must be >= 1, got {chunk_keys}")
        self.engine = engine
        self.journal = journal if journal is not None else MigrationJournal()
        self.journal.clock = engine.clock
        self.chunk_keys = chunk_keys
        self.throttle = throttle or MigrationThrottle()
        self.state = IDLE
        self.plan: MigrationPlan | None = None
        self.completed = 0
        self.copied_keys = 0
        self.retired_keys = 0
        self._dirty: set[bytes] = set()
        self._clear_done = False
        self._clear_cursor = b""
        self._copy_cursor = b""
        self._retire_cursor = b""
        self._next_plan_id = 1
        metrics = engine._runtime.metrics
        self._ctr_steps = metrics.counter("migration.steps")
        self._ctr_deferred = metrics.counter("migration.deferred_steps")
        self._ctr_copied = metrics.counter("migration.copied_keys")
        self._ctr_retired = metrics.counter("migration.retired_keys")
        self._ctr_switches = metrics.counter("migration.switches")
        engine.migration = self
        if not self.journal.records:
            self.journal.append(
                {
                    "type": "init",
                    "boundaries": list(engine.partitioner.boundaries),
                    "epoch": engine.epoch,
                }
            )

    # -- router hooks --------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether a migration is in flight (any non-idle state)."""
        return self.state != IDLE

    def dirty_keys(self) -> frozenset[bytes]:
        """The keys awaiting catch-up (for invariant checks)."""
        return frozenset(self._dirty)

    def mask_range(self) -> tuple[int, bytes, bytes] | None:
        """The staged range readers must not observe yet, if any.

        During copy and catch-up the target holds staged rows of
        ``[lo, hi)`` that are not yet authoritative (a key deleted on
        the source mid-copy may still have a staged copy); the router's
        scan masks them.  After the switch the target *is* the owner and
        nothing is masked.
        """
        if self.state in (COPY, CATCH_UP) and self.plan is not None:
            return (self.plan.target, self.plan.lo, self.plan.hi)
        return None

    def on_write(self, key: bytes, op: str) -> int | None:
        """Router callback for every foreground mutation.

        Returns the extra shard index the mutation must *also* be
        applied to (the catch-up double-write), or ``None``.  During
        copy every mutation of the moving range just marks its key
        dirty; during catch-up puts and deletes double-write to the
        target (and leave the dirty set), while deltas stay source-only
        and re-enter the dirty set — the target may lack the base
        version and a staged dangling delta would resurrect as garbage.
        """
        plan = self.plan
        if plan is None or self.state not in (COPY, CATCH_UP):
            return None
        if not plan.lo <= key < plan.hi:
            return None
        if self.state == COPY or op == "delta":
            self._dirty.add(key)
            return None
        self._dirty.discard(key)
        return plan.target

    # -- lifecycle -----------------------------------------------------

    def start(self, plan: MigrationPlan) -> MigrationPlan:
        """Journal a plan and enter the copy phase; returns the stamped plan.

        Raises :class:`MigrationError` when a migration is already in
        flight, the plan is malformed, or the partitioner still carries
        placement history that cannot be pruned (a migration over
        untracked strays could clear live fallback versions).
        """
        if self.state != IDLE:
            raise MigrationError(
                f"migration {self.plan.plan_id if self.plan else '?'} is "
                "already in flight"
            )
        partitioner = self.engine.partitioner
        nshards = partitioner.nshards
        if not (0 <= plan.source < nshards and 0 <= plan.target < nshards):
            raise MigrationError(
                f"plan names shards {plan.source}->{plan.target} outside "
                f"the fleet of {nshards}"
            )
        if plan.source == plan.target:
            raise MigrationError("source and target must differ")
        if abs(plan.source - plan.target) != 1:
            raise MigrationError(
                "a boundary move can only donate between neighbours"
            )
        if not plan.lo < plan.hi:
            raise MigrationError(
                f"empty or inverted donated range [{plan.lo!r}, {plan.hi!r})"
            )
        if not _valid_boundaries(partitioner, list(plan.new_boundaries)):
            raise MigrationError(
                f"invalid post-switch boundaries {plan.new_boundaries!r}"
            )
        if partitioner.history_depth:
            self.engine.prune_placement_history()
            if partitioner.history_depth:
                raise MigrationError(
                    "placement history still holds live stranded versions; "
                    "cannot start a migration over them"
                )
        plan = replace(plan, plan_id=self._next_plan_id)
        self._next_plan_id += 1
        self.journal.append(
            {
                "type": "plan",
                "id": plan.plan_id,
                "kind": plan.kind,
                "source": plan.source,
                "target": plan.target,
                "lo": plan.lo,
                "hi": plan.hi,
                "new_boundaries": list(plan.new_boundaries),
            }
        )
        self._enter_copy(plan)
        self.journal.append({"type": "copy_start", "id": plan.plan_id})
        return plan

    def abort(self) -> None:
        """Abandon an un-switched migration (staged rows are cleared).

        Only legal before the ownership switch: afterwards the move is
        committed and must roll *forward* through retirement.
        """
        if self.state == IDLE:
            return
        if self.state == RETIRE:
            raise MigrationError(
                "cannot abort after the ownership switch; the migration "
                "must roll forward through retirement"
            )
        plan = self.plan
        assert plan is not None
        self._clear_range(plan.target, plan.lo, plan.hi)
        self.journal.append({"type": "abort", "id": plan.plan_id})
        self._reset()

    def _enter_copy(self, plan: MigrationPlan) -> None:
        self.plan = plan
        self.state = COPY
        self._dirty.clear()
        self._clear_done = False
        self._clear_cursor = plan.lo
        self._copy_cursor = plan.lo
        self._retire_cursor = plan.lo
        self.throttle.begin(self.engine)

    def _reset(self) -> None:
        self.plan = None
        self.state = IDLE
        self._dirty.clear()

    # -- stepping ------------------------------------------------------

    def step(self) -> str:
        """Perform one bounded unit of migration work; returns a tag.

        Tags: ``idle`` (nothing to do), ``throttled`` (deferred to
        foreground traffic), ``clear``/``copy``/``catch_up``/``retire``
        (one chunk of that phase), ``switch`` (the ownership switch
        happened this step), ``retired`` (the migration completed this
        step).
        """
        if self.state == IDLE:
            return IDLE
        if self.throttle.should_defer(self.engine):
            self._ctr_deferred.inc()
            return "throttled"
        began = self.engine.clock.now
        try:
            return self._step_inner()
        finally:
            self._ctr_steps.inc()
            self.throttle.charge(self.engine.clock.now - began)

    def run_to_completion(self, max_steps: int = 1_000_000) -> int:
        """Step until idle (throttling yields still count); returns steps."""
        steps = 0
        while self.state != IDLE:
            self.step()
            steps += 1
            if steps >= max_steps:
                raise MigrationError(
                    f"migration made no progress after {max_steps} steps"
                )
        return steps

    def _step_inner(self) -> str:
        plan = self.plan
        assert plan is not None
        if self.state == COPY:
            if not self._clear_done:
                return self._step_clear(plan)
            return self._step_copy(plan)
        if self.state == CATCH_UP:
            return self._step_catch_up(plan)
        if self.state == RETIRE:
            return self._step_retire(plan)
        raise AssertionError(f"unreachable state {self.state}")  # pragma: no cover

    def _scan_chunk(
        self, shard: int, lo: bytes, hi: bytes, kind: str
    ) -> list[tuple[bytes, bytes]]:
        return self.engine._on_shard(
            shard, lambda s: list(s.scan(lo, hi, self.chunk_keys)), kind
        )

    def _clear_range(self, shard: int, lo: bytes, hi: bytes) -> int:
        """Delete every live row of ``[lo, hi)`` on one shard (chunked)."""
        from repro.baselines.interface import WriteBatch

        cleared = 0
        cursor = lo
        while True:
            rows = self._scan_chunk(shard, cursor, hi, "migrate_clear")
            if rows:
                batch = WriteBatch()
                for key, _ in rows:
                    batch.delete(key)
                self.engine._on_shard(
                    shard, lambda s: s.apply_batch(batch), "migrate_clear"
                )
                cleared += len(rows)
                cursor = rows[-1][0] + b"\x00"
            if len(rows) < self.chunk_keys:
                return cleared

    def _step_clear(self, plan: MigrationPlan) -> str:
        from repro.baselines.interface import WriteBatch

        rows = self._scan_chunk(
            plan.target, self._clear_cursor, plan.hi, "migrate_clear"
        )
        if rows:
            batch = WriteBatch()
            for key, _ in rows:
                batch.delete(key)
            self.engine._on_shard(
                plan.target, lambda s: s.apply_batch(batch), "migrate_clear"
            )
            self._clear_cursor = rows[-1][0] + b"\x00"
        if len(rows) < self.chunk_keys:
            self._clear_done = True
        return "clear"

    def _step_copy(self, plan: MigrationPlan) -> str:
        from repro.baselines.interface import WriteBatch

        rows = self._scan_chunk(
            plan.source, self._copy_cursor, plan.hi, "migrate_copy"
        )
        if rows:
            batch = WriteBatch()
            for key, value in rows:
                batch.put(key, value)
            self.engine._on_shard(
                plan.target, lambda s: s.apply_batch(batch), "migrate_copy"
            )
            self.copied_keys += len(rows)
            self._ctr_copied.inc(len(rows))
            self._copy_cursor = rows[-1][0] + b"\x00"
        if len(rows) < self.chunk_keys:
            self.state = CATCH_UP
            self.journal.append({"type": "catchup_start", "id": plan.plan_id})
        return "copy"

    def _step_catch_up(self, plan: MigrationPlan) -> str:
        from repro.baselines.interface import WriteBatch

        keys = sorted(self._dirty)[: self.chunk_keys]
        if keys:
            values = self.engine._on_shard(
                plan.source,
                lambda s: [s.get(key) for key in keys],
                "migrate_catchup",
            )
            batch = WriteBatch()
            for key, value in zip(keys, values):
                if value is None:
                    batch.delete(key)
                else:
                    batch.put(key, value)
            self.engine._on_shard(
                plan.target, lambda s: s.apply_batch(batch), "migrate_catchup"
            )
            self._dirty.difference_update(keys)
        if not self._dirty:
            self._switch(plan)
            return "switch"
        return CATCH_UP

    def _switch(self, plan: MigrationPlan) -> None:
        """The atomic ownership switch (one journal force commits it)."""
        new_epoch = self.engine.epoch + 1
        self.journal.append(
            {
                "type": "switch",
                "id": plan.plan_id,
                "source": plan.source,
                "boundaries": list(plan.new_boundaries),
                "epoch": new_epoch,
            }
        )
        # Only reached if the force made the record durable: from here
        # on, recovery rolls this migration forward, never back.
        self.engine.partitioner.resize(list(plan.new_boundaries))
        self.engine.epoch = new_epoch
        self.engine._fence_epochs[plan.source] = new_epoch
        self._ctr_switches.inc()
        self.state = RETIRE
        self._retire_cursor = plan.lo

    def _step_retire(self, plan: MigrationPlan) -> str:
        from repro.baselines.interface import WriteBatch

        rows = self._scan_chunk(
            plan.source, self._retire_cursor, plan.hi, "migrate_retire"
        )
        if rows:
            batch = WriteBatch()
            for key, _ in rows:
                batch.delete(key)
            self.engine._on_shard(
                plan.source, lambda s: s.apply_batch(batch), "migrate_retire"
            )
            self.retired_keys += len(rows)
            self._ctr_retired.inc(len(rows))
            self._retire_cursor = rows[-1][0] + b"\x00"
        if len(rows) < self.chunk_keys:
            self.journal.append({"type": "retire_done", "id": plan.plan_id})
            pruned = self.engine.prune_placement_history()
            self.journal.append(
                {"type": "prune", "id": plan.plan_id, "pruned": pruned}
            )
            self.completed += 1
            self._reset()
            return "retired"
        return RETIRE

    # -- recovery ------------------------------------------------------

    def _resume(self, pending: tuple[MigrationPlan, str] | None) -> None:
        """Restore controller state after a crash (journal already replayed)."""
        if pending is None:
            self._reset()
            return
        plan, phase = pending
        if phase == "copy":
            # The dirty set died with the process; nothing short of a
            # full re-copy (clear first) is safe.
            self._enter_copy(plan)
        else:
            self.plan = plan
            self.state = RETIRE
            self._retire_cursor = plan.lo
            self.throttle.begin(self.engine)


def attach_migration(
    engine: "ShardedEngine",
    journal: MigrationJournal | None = None,
    chunk_keys: int = 64,
    throttle: MigrationThrottle | None = None,
) -> MigrationController:
    """Attach a migration controller to a range-partitioned engine."""
    return MigrationController(
        engine, journal=journal, chunk_keys=chunk_keys, throttle=throttle
    )


def crash_and_recover(engine: "ShardedEngine") -> "ShardedEngine":
    """Simulate a whole-cluster crash and rebuild a consistent fleet.

    Drops every shard's volatile state and the migration journal's
    un-forced tail, recovers each shard's tree from its durable
    substrate, replays the journal into an ownership map (boundaries,
    placement history for any un-retired move, cluster epoch, fences),
    and re-attaches a controller resumed at the recovered migration
    phase: a plan without a durable switch restarts its copy from
    scratch; a switch without a completed retirement rolls forward
    through retirement.  Requires bLSM shards (``SYNC`` durability for
    acked-write guarantees, as everywhere else in the crash harness).
    """
    from repro.baselines.blsm_engine import BLSMEngine
    from repro.core.tree import BLSM
    from repro.shard.engine import ShardedEngine

    controller = engine.migration
    if controller is None:
        raise MigrationError(
            "crash recovery needs an attached MigrationController "
            "(the journal is the recovery source of truth)"
        )
    journal = controller.journal
    if journal.fault_plan is not None:
        journal.fault_plan.disarm()
    journal.crash()
    trees = []
    for shard in engine.shards:
        tree = getattr(shard, "tree", None)
        if not isinstance(tree, BLSM):
            raise MigrationError(
                "crash recovery requires plain bLSM shard engines"
            )
        stasis = tree.stasis
        stasis.crash()
        trees.append(BLSM.recover(stasis, tree.options))
    boundaries, previous, epoch, pending, next_plan_id = _replay_journal(
        journal
    )
    if boundaries is None:
        raise MigrationError("migration journal has no durable init record")
    if previous is not None:
        partitioner = RangePartitioner(previous)
        partitioner.resize(boundaries)
    else:
        partitioner = RangePartitioner(boundaries)
    recovered = ShardedEngine(
        engine.options,
        shards=len(trees),
        partitioner=partitioner,
        engine_factory=lambda index, _options: BLSMEngine.from_tree(
            trees[index]
        ),
    )
    recovered.epoch = epoch
    for record in journal.records:
        if record["type"] == "switch":
            recovered._fence_epochs[int(record["source"])] = int(
                record["epoch"]
            )
    new_controller = MigrationController(
        recovered,
        journal=journal,
        chunk_keys=controller.chunk_keys,
        throttle=MigrationThrottle(controller.throttle.max_fraction),
    )
    new_controller._next_plan_id = max(
        new_controller._next_plan_id, next_plan_id
    )
    new_controller._resume(pending)
    # Self-healing: drop any history entry whose strays are already gone
    # (idempotent; covers a crash between retire_done and prune).
    if new_controller.state == IDLE:
        recovered.prune_placement_history()
    return recovered


# ----------------------------------------------------------------------
# The live-migration benchmark (BENCH_7)
# ----------------------------------------------------------------------


def live_migration_bench(
    records: int = 2400,
    batches: int = 160,
    batch: int = 32,
    value_bytes: int = 128,
    shards: int = 4,
    seed: int = 0,
    hot_fraction: float = 0.85,
    windows: int = 12,
    c0_bytes: int = 48 * 1024,
    cache_pages: int = 32,
    chunk_keys: int = 64,
    max_migration_fraction: float = 0.5,
) -> dict[str, Any]:
    """p99 read/write timelines during a live split vs. quiescent baseline.

    Two identical range-partitioned fleets run the same clustered-Zipfian
    workload (a hot prefix concentrated on shard 0 — sequential keys, so
    the hotspot is contiguous in key space).  The *quiescent* run never
    migrates; the *migrating* run hands per-shard load shares to a
    :class:`Rebalancer` that detects the hot shard and performs a live
    split toward its neighbour, stepping the migration between batches
    under the throttle.  Every read is verified against a dict oracle and
    the final states must match it exactly, so the timeline is only
    reported for a run that stayed correct.  The headline number is
    ``p99_ratio`` — migrating p99 over quiescent p99 — which CI bounds.
    """
    from repro.baselines.interface import WriteBatch
    from repro.core.options import BLSMOptions
    from repro.shard.engine import ShardedEngine
    from repro.storage.logical_log import DurabilityMode

    keys = [b"key%08d" % index for index in range(records)]
    hot_span = max(batch, records // 10)

    def build() -> ShardedEngine:
        options = BLSMOptions(
            c0_bytes=c0_bytes,
            buffer_pool_pages=cache_pages,
            durability=DurabilityMode.ASYNC,
            seed=seed,
        )
        partitioner = RangePartitioner.from_sample(keys, shards)
        engine = ShardedEngine(options, shards=shards, partitioner=partitioner)
        for start in range(0, records, 256):
            load = WriteBatch()
            for key in keys[start : start + 256]:
                load.put(key, b"v0" + bytes(max(0, value_bytes - 2)))
            engine.apply_batch(load)
        return engine

    def run(migrate: bool) -> dict[str, Any]:
        engine = build()
        oracle = {key: b"v0" + bytes(max(0, value_bytes - 2)) for key in keys}
        controller: MigrationController | None = None
        rebalancer: Rebalancer | None = None
        if migrate:
            controller = attach_migration(
                engine,
                chunk_keys=chunk_keys,
                throttle=MigrationThrottle(max_migration_fraction),
            )
            rebalancer = Rebalancer(
                engine, controller, hot_share=0.5, cold_share=0.0
            )
        rng = random.Random(seed)
        read_lat: list[tuple[float, float]] = []
        write_lat: list[tuple[float, float]] = []
        events: list[dict[str, Any]] = []
        last_tag = IDLE
        migration_began: float | None = None
        migration_done: float | None = None

        def pick_key() -> bytes:
            if rng.random() < hot_fraction:
                return keys[rng.randrange(hot_span)]
            return keys[rng.randrange(records)]

        for batch_index in range(batches):
            batch_keys = [pick_key() for _ in range(batch)]
            began = engine.clock.now
            if batch_index % 2 == 0:
                values = engine.multi_get(batch_keys)
                for key, value in zip(batch_keys, values):
                    expected = oracle.get(key)
                    if value != expected:
                        raise AssertionError(
                            f"oracle divergence mid-migration: {key!r} -> "
                            f"{value!r}, expected {expected!r}"
                        )
                read_lat.append(
                    (began, (engine.clock.now - began) / max(1, batch))
                )
            else:
                mutation = WriteBatch()
                for position, key in enumerate(batch_keys):
                    value = b"v%07d" % (batch_index * batch + position)
                    value += bytes(max(0, value_bytes - len(value)))
                    mutation.put(key, value)
                    oracle[key] = value
                engine.apply_batch(mutation)
                write_lat.append(
                    (began, (engine.clock.now - began) / max(1, batch))
                )
            if controller is not None:
                if rebalancer is not None:
                    plan = rebalancer.maybe_rebalance()
                    if plan is not None:
                        migration_began = engine.clock.now
                        events.append(
                            {
                                "t": engine.clock.now,
                                "event": "plan",
                                "kind": plan.kind,
                                "source": plan.source,
                                "target": plan.target,
                            }
                        )
                tag = controller.step()
                if tag != last_tag and tag not in (IDLE, "throttled"):
                    events.append({"t": engine.clock.now, "event": tag})
                if tag == "retired":
                    migration_done = engine.clock.now
                last_tag = tag

        if controller is not None and controller.active:
            controller.run_to_completion()
            migration_done = engine.clock.now
        final = list(engine.scan(b""))
        expected_final = sorted(
            (key, value) for key, value in oracle.items()
        )
        if final != expected_final:
            raise AssertionError(
                "final scan diverged from the oracle after migration"
            )

        result: dict[str, Any] = {
            "read_windows": windows_over_span(read_lat, windows),
            "write_windows": windows_over_span(write_lat, windows),
            "read_p50": percentile([v for _, v in read_lat], 50.0),
            "read_p99": percentile([v for _, v in read_lat], 99.0),
            "write_p50": percentile([v for _, v in write_lat], 50.0),
            "write_p99": percentile([v for _, v in write_lat], 99.0),
            "elapsed_seconds": engine.clock.now,
            "verified": True,
        }
        if controller is not None:
            result["events"] = events
            result["migration"] = {
                "completed": controller.completed,
                "copied_keys": controller.copied_keys,
                "retired_keys": controller.retired_keys,
                "steps": int(
                    engine._runtime.metrics.value("migration.steps")
                ),
                "deferred_steps": int(
                    engine._runtime.metrics.value("migration.deferred_steps")
                ),
                "busy_seconds": controller.throttle.busy_seconds,
                "duration_seconds": (
                    (migration_done - migration_began)
                    if migration_began is not None and migration_done is not None
                    else 0.0
                ),
                "epoch": engine.epoch,
                "boundaries_moved": engine.partitioner.describe(),
                "history_depth": engine.partitioner.history_depth,
            }
        engine.close()
        return result

    quiescent = run(migrate=False)
    migrating = run(migrate=True)
    q_p99 = max(quiescent["read_p99"], quiescent["write_p99"])
    m_p99 = max(migrating["read_p99"], migrating["write_p99"])
    return {
        "bench": "live-migration",
        "records": records,
        "batches": batches,
        "batch": batch,
        "value_bytes": value_bytes,
        "shards": shards,
        "seed": seed,
        "hot_fraction": hot_fraction,
        "quiescent": quiescent,
        "migrating": migrating,
        "p99_ratio": (m_p99 / q_p99) if q_p99 > 0 else 0.0,
    }
