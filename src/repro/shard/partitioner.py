"""Key-to-shard placement policies for the sharded engine.

The paper positions bLSM as the storage node of PNUTS-style sharded web
services (Sections 1 and 6): a fleet of independent trees, each owning a
slice of the keyspace.  A :class:`Partitioner` is that slicing policy.
Two concrete policies cover the standard design space (Luo & Carey's
LSM survey, Section "LSM-based distributed storage"):

* :class:`HashPartitioner` — uniform load spreading, no range locality;
* :class:`RangePartitioner` — contiguous key ranges per shard, so range
  scans touch few shards; resizable, with the history bookkeeping the
  router needs to stay correct across boundary moves.

Placement history matters because a resize strands old versions: a key
written before the move lives on its *old* owner's tree.  The router
consults :meth:`Partitioner.owners` (current owner first, then historic
owners, newest first) on reads and broadcasts tombstones to every owner
on deletes, so stale replicas are masked rather than resurrected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Callable, Iterable, Sequence

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_bytes(data: bytes) -> int:
    """64-bit FNV-1a over raw key bytes.

    Python's built-in ``hash`` of bytes is salted per process
    (PYTHONHASHSEED), which would make shard placement — and therefore
    every simulated device access — nondeterministic across runs.  FNV
    keeps routing reproducible, the property the whole virtual-clock
    methodology rests on.
    """
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


class Partitioner(ABC):
    """Maps keys to shard indices in ``[0, nshards)``."""

    @property
    @abstractmethod
    def nshards(self) -> int:
        """Number of shards this policy routes across."""

    @abstractmethod
    def shard_for(self, key: bytes) -> int:
        """The shard that currently owns ``key``."""

    def owners(self, key: bytes) -> tuple[int, ...]:
        """Every shard that may hold a version of ``key``.

        The current owner first, then historic owners newest-first (a
        policy that never moved keys returns just the current owner).
        Reads fall back along this list; deletes write a tombstone to
        every entry so stale versions on old owners stay masked.
        """
        return (self.shard_for(key),)

    def describe(self) -> str:
        """Short human-readable policy name for benchmark output."""
        return f"{type(self).__name__}({self.nshards})"


class HashPartitioner(Partitioner):
    """FNV-1a hash placement: uniform spreading, no range locality."""

    def __init__(self, nshards: int) -> None:
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        self._nshards = nshards

    @property
    def nshards(self) -> int:
        return self._nshards

    def shard_for(self, key: bytes) -> int:
        return fnv1a_bytes(key) % self._nshards

    def describe(self) -> str:
        return f"hash({self._nshards})"


class RangePartitioner(Partitioner):
    """Contiguous key ranges per shard, split at explicit boundaries.

    ``boundaries`` is a sorted sequence of ``nshards - 1`` split keys:
    shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])`` (the
    first shard owns everything below ``boundaries[0]``, the last
    everything at or above ``boundaries[-1]``).

    :meth:`resize` installs new boundaries without migrating data —
    the cheap, PNUTS-style split.  The superseded mapping is pushed
    onto a history list so :meth:`owners` can still name the shards
    where pre-resize versions of a key physically live.
    """

    def __init__(self, boundaries: Sequence[bytes]) -> None:
        self._boundaries = self._check(boundaries)
        self._history: list[list[bytes]] = []  # newest superseded first

    @staticmethod
    def _check(boundaries: Sequence[bytes]) -> list[bytes]:
        split = list(boundaries)
        if not split:
            raise ValueError("need at least one boundary (two shards)")
        if split != sorted(split) or len(set(split)) != len(split):
            raise ValueError("boundaries must be strictly increasing")
        return split

    @classmethod
    def from_sample(
        cls, keys: Iterable[bytes], nshards: int
    ) -> "RangePartitioner":
        """Boundaries at the quantiles of a key sample.

        The practical way to get balanced ranges over an arbitrary key
        population (the YCSB generator's hashed ``user...`` keys are
        uniform in hash space but lumpy lexicographically): sort a
        sample, cut it into ``nshards`` equal slices.
        """
        if nshards < 2:
            raise ValueError(f"nshards must be >= 2, got {nshards}")
        ordered = sorted(set(keys))
        if len(ordered) < nshards:
            raise ValueError(
                f"sample of {len(ordered)} distinct keys cannot seed "
                f"{nshards} ranges"
            )
        step = len(ordered) / nshards
        return cls([ordered[int(step * i)] for i in range(1, nshards)])

    @property
    def nshards(self) -> int:
        return len(self._boundaries) + 1

    @property
    def boundaries(self) -> tuple[bytes, ...]:
        return tuple(self._boundaries)

    @property
    def resized(self) -> bool:
        """Whether any resize ever happened (owners may differ)."""
        return bool(self._history)

    def shard_for(self, key: bytes) -> int:
        return bisect_right(self._boundaries, key)

    def resize(self, boundaries: Sequence[bytes]) -> None:
        """Install new split points (same shard count, moved edges).

        Data is not migrated: versions written under the old mapping
        stay on their old shard and remain reachable via
        :meth:`owners`.
        """
        split = self._check(boundaries)
        if len(split) != len(self._boundaries):
            raise ValueError(
                f"resize must keep {self.nshards} shards, got "
                f"{len(split) + 1}"
            )
        self._history.insert(0, self._boundaries)
        self._boundaries = split

    def owners(self, key: bytes) -> tuple[int, ...]:
        seen = [self.shard_for(key)]
        for boundaries in self._history:
            owner = bisect_right(boundaries, key)
            if owner not in seen:
                seen.append(owner)
        return tuple(seen)

    @property
    def history_depth(self) -> int:
        """How many superseded mappings :meth:`owners` still consults."""
        return len(self._history)

    def _segments_vs(
        self, boundaries: Sequence[bytes]
    ) -> list[tuple[bytes, bytes | None, int]]:
        """Where a historic mapping disagrees with the current one.

        Returns ``(lo, hi, historic_owner)`` triples covering every
        keyspace segment whose owner under ``boundaries`` differs from
        the current owner (``hi is None`` = unbounded above).  The cut
        points are the union of both boundary sets, so within each
        segment both mappings are constant.
        """
        cuts = sorted(set(self._boundaries) | set(boundaries))
        edges: list[tuple[bytes, bytes | None]] = []
        lo: bytes = b""
        for cut in cuts:
            edges.append((lo, cut))
            lo = cut
        edges.append((lo, None))
        return [
            (seg_lo, seg_hi, bisect_right(list(boundaries), seg_lo))
            for seg_lo, seg_hi in edges
            if bisect_right(list(boundaries), seg_lo)
            != bisect_right(self._boundaries, seg_lo)
        ]

    def prune_history(
        self, stranded: Callable[[int, bytes, bytes | None], bool]
    ) -> int:
        """Drop superseded mappings that no longer own any live version.

        Without pruning every resize appends history forever and every
        read/delete fans out to ever more shards.  A historic mapping is
        only *needed* while some shard it names still physically holds a
        live version the current mapping would not find — exactly what a
        migration's retirement phase eliminates.  ``stranded(shard, lo,
        hi)`` must report whether ``shard`` holds any live key in
        ``[lo, hi)`` (``hi is None`` = unbounded); the sharded engine
        passes a per-shard ranged ``scan(..., limit=1)`` probe.

        Each entry is checked independently: an entry whose differing
        segments hold no live rows contributes no reachable version to
        any read (the fleet keeps at most one live version per key), so
        dropping it can never change an answer.  Returns the number of
        entries dropped.
        """
        kept: list[list[bytes]] = []
        dropped = 0
        for boundaries in self._history:
            needed = any(
                stranded(owner, seg_lo, seg_hi)
                for seg_lo, seg_hi, owner in self._segments_vs(boundaries)
            )
            if needed:
                kept.append(boundaries)
            else:
                dropped += 1
        self._history = kept
        return dropped

    def describe(self) -> str:
        suffix = f", resized x{len(self._history)}" if self._history else ""
        return f"range({self.nshards}{suffix})"


def make_partitioner(
    name: str, nshards: int, sample: Iterable[bytes] | None = None
) -> Partitioner:
    """Build a partitioner by CLI name (``hash`` or ``range``).

    ``range`` needs a key ``sample`` to place balanced boundaries; the
    CLI passes the workload generator's load keys.
    """
    if name == "hash":
        return HashPartitioner(nshards)
    if name == "range":
        if nshards == 1:
            return HashPartitioner(1)  # one shard needs no boundaries
        if sample is None:
            raise ValueError("range partitioner needs a key sample")
        return RangePartitioner.from_sample(sample, nshards)
    raise ValueError(f"unknown partitioner {name!r}; expected hash or range")
