"""I/O statistics counters.

The paper characterizes indexes by *read amplification* (worst-case seeks
per probe) and *write amplification* (total sequential I/O per byte
written), Section 2.1.  :class:`IOStats` records the raw counters those
metrics are computed from; every :class:`~repro.sim.disk.SimDisk` owns one.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass
class IOStats:
    """Cumulative I/O counters for one simulated device.

    Attributes:
        seeks: number of non-sequential accesses (head repositioning).
        read_ops: number of read requests serviced.
        write_ops: number of write requests serviced.
        bytes_read: total bytes transferred from the device.
        bytes_written: total bytes transferred to the device.
        busy_seconds: total virtual time the device spent servicing I/O.
        bg_busy_seconds: the share of ``busy_seconds`` issued from a
            background :class:`~repro.sim.clock.Timeline` (merge work);
            the remainder was synchronous foreground service.
        queue_wait_seconds: total time requesters spent queued behind the
            device's busy horizon before their access started.
    """

    seeks: int = 0
    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_seconds: float = 0.0
    bg_busy_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return replace(self)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes transferred in either direction."""
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )
