"""I/O statistics counters.

The paper characterizes indexes by *read amplification* (worst-case seeks
per probe) and *write amplification* (total sequential I/O per byte
written), Section 2.1.  :class:`IOStats` records the raw counters those
metrics are computed from; every :class:`~repro.sim.disk.SimDisk` owns one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Cumulative I/O counters for one simulated device.

    Attributes:
        seeks: number of non-sequential accesses (head repositioning).
        read_ops: number of read requests serviced.
        write_ops: number of write requests serviced.
        bytes_read: total bytes transferred from the device.
        bytes_written: total bytes transferred to the device.
        busy_seconds: total virtual time the device spent servicing I/O.
    """

    seeks: int = 0
    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_seconds: float = 0.0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            seeks=self.seeks,
            read_ops=self.read_ops,
            write_ops=self.write_ops,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            busy_seconds=self.busy_seconds,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            seeks=self.seeks - earlier.seeks,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            busy_seconds=self.busy_seconds - earlier.busy_seconds,
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes transferred in either direction."""
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            seeks=self.seeks + other.seeks,
            read_ops=self.read_ops + other.read_ops,
            write_ops=self.write_ops + other.write_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            busy_seconds=self.busy_seconds + other.busy_seconds,
        )
