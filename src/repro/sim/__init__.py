"""Simulated storage substrate: virtual clock, device models, I/O statistics.

The paper's evaluation ran on real RAID arrays; a pure-Python reproduction
cannot match absolute device throughput, so every storage engine in this
repository performs its I/O against a :class:`SimDisk`.  A ``SimDisk``
charges seek and transfer costs from a :class:`DiskModel` to a shared
:class:`VirtualClock`, and records the seek/byte counts that the paper's
analysis (Section 2.1) reasons about.  Throughput and latency reported by
the benchmark harness are measured in virtual time, which reproduces the
paper's *shapes* (relative wins, crossover points) deterministically.
"""

from repro.sim.clock import Timeline, VirtualClock
from repro.sim.disk import DiskModel, SimDisk, StripedDisk
from repro.sim.stats import IOStats

__all__ = [
    "DiskModel",
    "IOStats",
    "SimDisk",
    "StripedDisk",
    "Timeline",
    "VirtualClock",
]
