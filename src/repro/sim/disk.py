"""Simulated storage devices.

A :class:`SimDisk` is a serial device with a head position.  An access that
does not continue from the previous access is a *seek* and is charged the
model's access time; every access is charged transfer time at the model's
sequential bandwidth.  This is exactly the cost model the paper uses in its
own arithmetic (Section 2.2: "Modern hard disks transfer 100-200MB/sec, and
have mean access times over 5ms").

The paper runs every system under continuous overload (Section 5.1), so the
device is the bottleneck and a closed-loop, single-queue model reproduces
the measured throughput shapes: total virtual elapsed time is the device
busy time, and per-operation latency is the clock delta across the
operation (including any merge work or backpressure stall charged to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import DeviceFullError
from repro.sim.clock import VirtualClock
from repro.sim.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runtime import EngineRuntime


@dataclass(frozen=True)
class IOEvent:
    """One traced device access (enable with :meth:`SimDisk.start_trace`)."""

    time: float
    kind: str  # "read" or "write"
    offset: int
    nbytes: int
    seek: bool
    service: float

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DiskModel:
    """Performance parameters of a storage device.

    Attributes:
        name: human-readable device name (appears in benchmark output).
        read_access_seconds: head-positioning cost of a non-sequential read.
        write_access_seconds: head-positioning cost of a non-sequential
            write.  SSDs penalize random writes far more than random reads
            (Section 5.4), so the two are modelled separately.
        seq_read_bandwidth: sequential read bandwidth, bytes per second.
        seq_write_bandwidth: sequential write bandwidth, bytes per second.
    """

    name: str
    read_access_seconds: float
    write_access_seconds: float
    seq_read_bandwidth: float
    seq_write_bandwidth: float

    @classmethod
    def hdd(cls) -> "DiskModel":
        """Two 10K RPM enterprise SATA drives in RAID 0 (Section 5.1).

        Each drive transfers 110-130 MB/s and has a mean access time over
        5 ms (Section 2.2); striping doubles bandwidth and, with a deep
        queue, roughly halves the effective access time.
        """
        return cls(
            name="hdd",
            read_access_seconds=2.5e-3,
            write_access_seconds=2.5e-3,
            seq_read_bandwidth=240 * MIB,
            seq_write_bandwidth=240 * MIB,
        )

    @classmethod
    def ssd(cls) -> "DiskModel":
        """Two OCZ Vertex 2 SSDs in RAID 0 (Section 5.1).

        Each drive provides 285 (275) MB/s sequential reads (writes) and
        tens of thousands of read IOPS, but severely penalizes random
        writes (Section 5.4).
        """
        return cls(
            name="ssd",
            read_access_seconds=40e-6,
            write_access_seconds=250e-6,
            seq_read_bandwidth=570 * MIB,
            seq_write_bandwidth=550 * MIB,
        )

    @classmethod
    def single_hdd(cls) -> "DiskModel":
        """One commodity hard disk, matching the Section 2.2 arithmetic

        (5 ms access, 100 MB/s transfer; two seeks for a 1000-byte
        update-in-place write yield a write amplification near 1000).
        """
        return cls(
            name="single-hdd",
            read_access_seconds=5e-3,
            write_access_seconds=5e-3,
            seq_read_bandwidth=100 * MIB,
            seq_write_bandwidth=100 * MIB,
        )


class SimDisk:
    """A serial simulated device charging costs to a shared virtual clock.

    All offsets and sizes are in bytes.  The device keeps a single head
    position; an access at an offset other than where the previous access
    ended counts as a seek.  Large sequential runs (merge output, log
    appends) are therefore charged bandwidth only, while scattered accesses
    (B-Tree page writes, uncached point reads) pay the access time — the
    distinction the whole paper turns on.
    """

    def __init__(
        self,
        model: DiskModel,
        clock: VirtualClock,
        name: str | None = None,
        runtime: "EngineRuntime | None" = None,
        capacity_bytes: int | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.model = model
        self.clock = clock
        self.name = name if name is not None else model.name
        self.capacity_bytes = capacity_bytes
        self.stats = IOStats()
        self._head = -1  # byte offset where the previous access ended
        self._trace: list[IOEvent] | None = None
        self.runtime = runtime
        if runtime is not None:
            runtime.register_disk(self)
            prefix = f"disk.{self.name}"
            metrics = runtime.metrics
            self._ctr_seeks = metrics.counter(f"{prefix}.seeks")
            self._ctr_read_ops = metrics.counter(f"{prefix}.read_ops")
            self._ctr_write_ops = metrics.counter(f"{prefix}.write_ops")
            self._ctr_bytes_read = metrics.counter(f"{prefix}.bytes_read")
            self._ctr_bytes_written = metrics.counter(f"{prefix}.bytes_written")
            self._ctr_busy = metrics.counter(f"{prefix}.busy_seconds")

    def start_trace(self) -> None:
        """Record every access as an :class:`IOEvent` (debugging aid)."""
        self._trace = []

    def stop_trace(self) -> list[IOEvent]:
        """Stop tracing and return the recorded events."""
        events = self._trace if self._trace is not None else []
        self._trace = None
        return events

    def read(self, offset: int, nbytes: int) -> float:
        """Service a read; advance the clock; return the service time."""
        return self._access(
            offset,
            nbytes,
            access_seconds=self.model.read_access_seconds,
            bandwidth=self.model.seq_read_bandwidth,
            is_write=False,
        )

    def write(self, offset: int, nbytes: int) -> float:
        """Service a write; advance the clock; return the service time."""
        return self._access(
            offset,
            nbytes,
            access_seconds=self.model.write_access_seconds,
            bandwidth=self.model.seq_write_bandwidth,
            is_write=True,
        )

    def _access(
        self,
        offset: int,
        nbytes: int,
        access_seconds: float,
        bandwidth: float,
        is_write: bool,
    ) -> float:
        if offset < 0 or nbytes < 0:
            raise ValueError(
                f"invalid access: offset={offset} nbytes={nbytes}"
            )
        if nbytes == 0:
            return 0.0
        if (
            is_write
            and self.capacity_bytes is not None
            and offset + nbytes > self.capacity_bytes
        ):
            raise DeviceFullError(offset, nbytes, self.capacity_bytes)
        sequential = offset == self._head
        service = nbytes / bandwidth
        if not sequential:
            service += access_seconds
            self.stats.seeks += 1
        if is_write:
            self.stats.write_ops += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.read_ops += 1
            self.stats.bytes_read += nbytes
        self.stats.busy_seconds += service
        self._head = offset + nbytes
        self.clock.advance(service)
        if self.runtime is not None:
            if not sequential:
                self._ctr_seeks.inc()
            if is_write:
                self._ctr_write_ops.inc()
                self._ctr_bytes_written.inc(nbytes)
            else:
                self._ctr_read_ops.inc()
                self._ctr_bytes_read.inc(nbytes)
            self._ctr_busy.inc(service)
            self.runtime.trace.emit(
                "disk_io",
                disk=self.name,
                kind="write" if is_write else "read",
                nbytes=nbytes,
                seek=not sequential,
                busy=service,
            )
        if self._trace is not None:
            self._trace.append(
                IOEvent(
                    time=self.clock.now,
                    kind="write" if is_write else "read",
                    offset=offset,
                    nbytes=nbytes,
                    seek=not sequential,
                    service=service,
                )
            )
        return service

    # -- fault-query surface -------------------------------------------
    #
    # Checksummed consumers (pagefile, logs) ask the device whether a byte
    # range was corrupted.  A plain SimDisk never corrupts anything; a
    # FaultyDisk (repro.faults.disk) overrides these with real bookkeeping,
    # so consumer code is uniform across healthy and hostile devices.

    def corrupted(self, offset: int, nbytes: int) -> bool:
        """Whether any byte of ``[offset, offset + nbytes)`` is corrupt."""
        return False

    def mark_corrupt(self, offset: int, nbytes: int) -> None:
        """Flag a byte range as corrupted (no-op on a healthy device)."""

    def clear_corruption(self, offset: int, nbytes: int) -> None:
        """Heal a byte range (no-op on a healthy device)."""

    def __repr__(self) -> str:
        return f"SimDisk(name={self.name!r}, model={self.model.name!r})"
