"""Simulated storage devices.

A :class:`SimDisk` is a serial device with a head position.  An access that
does not continue from the previous access is a *seek* and is charged the
model's access time; every access is charged transfer time at the model's
sequential bandwidth.  This is exactly the cost model the paper uses in its
own arithmetic (Section 2.2: "Modern hard disks transfer 100-200MB/sec, and
have mean access times over 5ms").

Each device also keeps a ``busy_until`` horizon on the shared virtual time
axis: a request issued at time *t* starts at ``max(t, busy_until)`` and the
horizon advances to its completion.  A *synchronous* requester (the
application) advances the foreground :class:`~repro.sim.clock.VirtualClock`
to completion; a *background* requester (a merge running on a
:class:`~repro.sim.clock.Timeline`, installed via
``clock.running_on(timeline)``) advances only its own timeline and the
device horizon.  Foreground latency therefore includes *queueing behind*
background work but never the background work itself — the distinction
between merge service time and device contention that the paper's
dedicated log disk + RAID data array hardware expresses (Section 5.1).

:class:`StripedDisk` models that RAID-0 array: N member devices, each with
its own head and busy horizon, striped in fixed-size chunks.  A logical
access fans out to the members it covers and completes when the slowest
member finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import DeviceFullError
from repro.sim.clock import VirtualClock
from repro.sim.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runtime import EngineRuntime


@dataclass(frozen=True)
class IOEvent:
    """One traced device access (enable with :meth:`SimDisk.start_trace`)."""

    time: float
    kind: str  # "read" or "write"
    offset: int
    nbytes: int
    seek: bool
    service: float
    wait: float = 0.0  # time spent queued behind the busy horizon
    background: bool = False  # issued from a background Timeline

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DiskModel:
    """Performance parameters of a storage device.

    Attributes:
        name: human-readable device name (appears in benchmark output).
        read_access_seconds: head-positioning cost of a non-sequential read.
        write_access_seconds: head-positioning cost of a non-sequential
            write.  SSDs penalize random writes far more than random reads
            (Section 5.4), so the two are modelled separately.
        seq_read_bandwidth: sequential read bandwidth, bytes per second.
        seq_write_bandwidth: sequential write bandwidth, bytes per second.
    """

    name: str
    read_access_seconds: float
    write_access_seconds: float
    seq_read_bandwidth: float
    seq_write_bandwidth: float

    @classmethod
    def hdd(cls) -> "DiskModel":
        """Two 10K RPM enterprise SATA drives in RAID 0 (Section 5.1).

        Each drive transfers 110-130 MB/s and has a mean access time over
        5 ms (Section 2.2); striping doubles bandwidth and, with a deep
        queue, roughly halves the effective access time.
        """
        return cls(
            name="hdd",
            read_access_seconds=2.5e-3,
            write_access_seconds=2.5e-3,
            seq_read_bandwidth=240 * MIB,
            seq_write_bandwidth=240 * MIB,
        )

    @classmethod
    def ssd(cls) -> "DiskModel":
        """Two OCZ Vertex 2 SSDs in RAID 0 (Section 5.1).

        Each drive provides 285 (275) MB/s sequential reads (writes) and
        tens of thousands of read IOPS, but severely penalizes random
        writes (Section 5.4).
        """
        return cls(
            name="ssd",
            read_access_seconds=40e-6,
            write_access_seconds=250e-6,
            seq_read_bandwidth=570 * MIB,
            seq_write_bandwidth=550 * MIB,
        )

    @classmethod
    def single_hdd(cls) -> "DiskModel":
        """One commodity hard disk, matching the Section 2.2 arithmetic

        (5 ms access, 100 MB/s transfer; two seeks for a 1000-byte
        update-in-place write yield a write amplification near 1000).
        """
        return cls(
            name="single-hdd",
            read_access_seconds=5e-3,
            write_access_seconds=5e-3,
            seq_read_bandwidth=100 * MIB,
            seq_write_bandwidth=100 * MIB,
        )

    @classmethod
    def hdd_member(cls) -> "DiskModel":
        """One drive of the Section 5.1 HDD array, for explicit striping
        via :class:`StripedDisk` (half the RAID-0 profile's bandwidth)."""
        return cls(
            name="hdd-member",
            read_access_seconds=5e-3,
            write_access_seconds=5e-3,
            seq_read_bandwidth=120 * MIB,
            seq_write_bandwidth=120 * MIB,
        )


class SimDisk:
    """A serial simulated device charging costs to a shared virtual clock.

    All offsets and sizes are in bytes.  The device keeps a single head
    position; an access at an offset other than where the previous access
    ended counts as a seek.  Large sequential runs (merge output, log
    appends) are therefore charged bandwidth only, while scattered accesses
    (B-Tree page writes, uncached point reads) pay the access time — the
    distinction the whole paper turns on.

    The ``busy_until`` horizon serializes requesters on this device:
    every access starts no earlier than the previous one completed,
    regardless of whether it was issued by the foreground clock or a
    background timeline (see the module docstring).
    """

    def __init__(
        self,
        model: DiskModel,
        clock: VirtualClock,
        name: str | None = None,
        runtime: "EngineRuntime | None" = None,
        capacity_bytes: int | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.model = model
        self.clock = clock
        self.name = name if name is not None else model.name
        self.capacity_bytes = capacity_bytes
        self.stats = IOStats()
        self.busy_until = 0.0  # horizon: when the last queued access ends
        self._head = -1  # byte offset where the previous access ended
        self._trace: list[IOEvent] | None = None
        self.runtime = runtime
        # The per-access metrics/trace dispatch below is the hot path's
        # single biggest fixed cost; precompute one flag so the fast
        # path (no runtime, or observability off) pays one attribute
        # load instead of ~a dozen counter updates and a trace emit.
        self._obs = runtime is not None and runtime.observability
        if runtime is not None:
            runtime.register_disk(self)
        if self._obs:
            prefix = f"disk.{self.name}"
            metrics = runtime.metrics
            self._ctr_seeks = metrics.counter(f"{prefix}.seeks")
            self._ctr_read_ops = metrics.counter(f"{prefix}.read_ops")
            self._ctr_write_ops = metrics.counter(f"{prefix}.write_ops")
            self._ctr_bytes_read = metrics.counter(f"{prefix}.bytes_read")
            self._ctr_bytes_written = metrics.counter(f"{prefix}.bytes_written")
            self._ctr_busy = metrics.counter(f"{prefix}.busy_seconds")
            self._ctr_fg_busy = metrics.counter(f"{prefix}.fg_busy_seconds")
            self._ctr_bg_busy = metrics.counter(f"{prefix}.bg_busy_seconds")
            self._ctr_fg_wait = metrics.counter(f"{prefix}.fg_wait_seconds")
            self._ctr_bg_wait = metrics.counter(f"{prefix}.bg_wait_seconds")
            self._gauge_backlog = metrics.gauge(f"{prefix}.backlog_seconds")

    def start_trace(self) -> None:
        """Record every access as an :class:`IOEvent` (debugging aid)."""
        self._trace = []

    def stop_trace(self) -> list[IOEvent]:
        """Stop tracing and return the recorded events."""
        events = self._trace if self._trace is not None else []
        self._trace = None
        return events

    def read(self, offset: int, nbytes: int) -> float:
        """Service a read; advance the requester's timeline; return the
        observed latency (queue wait plus service time)."""
        return self._access(
            offset,
            nbytes,
            access_seconds=self.model.read_access_seconds,
            bandwidth=self.model.seq_read_bandwidth,
            is_write=False,
        )

    def write(self, offset: int, nbytes: int) -> float:
        """Service a write; advance the requester's timeline; return the
        observed latency (queue wait plus service time)."""
        return self._access(
            offset,
            nbytes,
            access_seconds=self.model.write_access_seconds,
            bandwidth=self.model.seq_write_bandwidth,
            is_write=True,
        )

    def _validate(self, offset: int, nbytes: int, is_write: bool) -> None:
        if offset < 0 or nbytes < 0:
            raise ValueError(
                f"invalid access: offset={offset} nbytes={nbytes}"
            )
        if (
            is_write
            and nbytes > 0
            and self.capacity_bytes is not None
            and offset + nbytes > self.capacity_bytes
        ):
            raise DeviceFullError(offset, nbytes, self.capacity_bytes)

    def _access(
        self,
        offset: int,
        nbytes: int,
        access_seconds: float,
        bandwidth: float,
        is_write: bool,
    ) -> float:
        self._validate(offset, nbytes, is_write)
        if nbytes == 0:
            return 0.0
        timeline = self.clock.active_timeline
        issue_at = timeline.now if timeline is not None else self.clock.now
        end, _service, _wait = self._service_at(
            issue_at,
            offset,
            nbytes,
            access_seconds,
            bandwidth,
            is_write,
            background=timeline is not None,
        )
        if timeline is not None:
            timeline.advance_to(end)
        else:
            self.clock.advance_to(end)
        return end - issue_at

    def _service_at(
        self,
        issue_at: float,
        offset: int,
        nbytes: int,
        access_seconds: float,
        bandwidth: float,
        is_write: bool,
        background: bool,
    ) -> tuple[float, float, float]:
        """Book one access issued at ``issue_at``; return
        ``(end_time, service, queue_wait)``.

        Advances the device horizon and all counters but *no* clock or
        timeline — the caller decides whose timeline completion lands on
        (a :class:`StripedDisk` fans one logical access out to several
        members this way).
        """
        sequential = offset == self._head
        service = nbytes / bandwidth
        if not sequential:
            service += access_seconds
            self.stats.seeks += 1
        start = max(issue_at, self.busy_until)
        wait = start - issue_at
        end = start + service
        self.busy_until = end
        if is_write:
            self.stats.write_ops += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.read_ops += 1
            self.stats.bytes_read += nbytes
        self.stats.busy_seconds += service
        self.stats.queue_wait_seconds += wait
        if background:
            self.stats.bg_busy_seconds += service
        self._head = offset + nbytes
        if self._obs:
            if not sequential:
                self._ctr_seeks.inc()
            if is_write:
                self._ctr_write_ops.inc()
                self._ctr_bytes_written.inc(nbytes)
            else:
                self._ctr_read_ops.inc()
                self._ctr_bytes_read.inc(nbytes)
            self._ctr_busy.inc(service)
            if background:
                self._ctr_bg_busy.inc(service)
                self._ctr_bg_wait.inc(wait)
            else:
                self._ctr_fg_busy.inc(service)
                self._ctr_fg_wait.inc(wait)
            self._gauge_backlog.set(max(0.0, self.busy_until - issue_at))
            self.runtime.trace.emit(
                "disk_io",
                disk=self.name,
                kind="write" if is_write else "read",
                nbytes=nbytes,
                seek=not sequential,
                busy=service,
                wait=wait,
                background=background,
            )
        if self._trace is not None:
            self._trace.append(
                IOEvent(
                    time=end,
                    kind="write" if is_write else "read",
                    offset=offset,
                    nbytes=nbytes,
                    seek=not sequential,
                    service=service,
                    wait=wait,
                    background=background,
                )
            )
        return end, service, wait

    def _charge_wasted(self, seconds: float) -> None:
        """Charge extra device time (injected faults) to the requester."""
        timeline = self.clock.active_timeline
        if timeline is not None:
            timeline.advance_to(timeline.now + seconds)
        else:
            self.clock.advance(seconds)
        self.stats.busy_seconds += seconds

    def sync_barrier(self) -> None:
        """Forget head-sequentiality after a durability barrier.

        A force (fsync) waits for the platter to pass the tail sector and
        drains the device queue; by the time the *next* append is issued
        the head has rotated past it, so that append repositions even
        though its offset is numerically contiguous.  This is why a
        synchronous log commit is bound by access latency while an
        unsynced streaming log is bound by bandwidth (Sections 2.2 and
        4.4.2) — and why group commit, which amortizes one barrier across
        many commits, is worth modelling at all.
        """
        self._head = -1

    # -- fault-query surface -------------------------------------------
    #
    # Checksummed consumers (pagefile, logs) ask the device whether a byte
    # range was corrupted.  A plain SimDisk never corrupts anything; a
    # FaultyDisk (repro.faults.disk) overrides these with real bookkeeping,
    # so consumer code is uniform across healthy and hostile devices.

    def corrupted(self, offset: int, nbytes: int) -> bool:
        """Whether any byte of ``[offset, offset + nbytes)`` is corrupt."""
        return False

    def mark_corrupt(self, offset: int, nbytes: int) -> None:
        """Flag a byte range as corrupted (no-op on a healthy device)."""

    def clear_corruption(self, offset: int, nbytes: int) -> None:
        """Heal a byte range (no-op on a healthy device)."""

    def __repr__(self) -> str:
        return f"SimDisk(name={self.name!r}, model={self.model.name!r})"


class StripedDisk(SimDisk):
    """RAID-0 over N member devices (Section 5.1's data arrays).

    The logical byte space is divided into ``chunk_bytes`` chunks dealt
    round-robin across the members.  Each member keeps its own head and
    busy horizon, so a large sequential access streams from all members
    in parallel (bandwidth scales with N) while members stay individually
    serial.  A logical access completes when its slowest member chunk
    does; consecutive chunks on the same member coalesce into one member
    access (they are physically contiguous).

    The aggregate presents the full :class:`SimDisk` surface under one
    device name: consumers (page file, logs) and the metrics registry see
    a single device whose counters sum the members'.  Members are built
    without a runtime so device-level metrics are not double-counted;
    per-member counters remain available via :attr:`members`.
    """

    def __init__(
        self,
        model: DiskModel,
        clock: VirtualClock,
        stripes: int,
        chunk_bytes: int = 512 * KIB,
        name: str | None = None,
        runtime: "EngineRuntime | None" = None,
        capacity_bytes: int | None = None,
    ) -> None:
        if stripes < 2:
            raise ValueError(f"stripes must be >= 2, got {stripes}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        super().__init__(
            model, clock, name=name, runtime=runtime, capacity_bytes=capacity_bytes
        )
        self.chunk_bytes = chunk_bytes
        self.members = [
            SimDisk(model, clock, name=f"{self.name}.m{i}")
            for i in range(stripes)
        ]

    def _split(
        self, offset: int, nbytes: int
    ) -> list[tuple[int, int, int]]:
        """Map ``[offset, offset + nbytes)`` to ``(member, offset, nbytes)``
        runs, coalescing physically contiguous chunks per member."""
        chunk = self.chunk_bytes
        stripes = len(self.members)
        runs: list[tuple[int, int, int]] = []
        position = offset
        remaining = nbytes
        while remaining > 0:
            index = position // chunk
            within = position % chunk
            member = index % stripes
            member_offset = (index // stripes) * chunk + within
            span = min(remaining, chunk - within)
            if runs and runs[-1][0] == member and (
                runs[-1][1] + runs[-1][2] == member_offset
            ):
                last = runs[-1]
                runs[-1] = (last[0], last[1], last[2] + span)
            else:
                runs.append((member, member_offset, span))
            position += span
            remaining -= span
        return runs

    def _access(
        self,
        offset: int,
        nbytes: int,
        access_seconds: float,
        bandwidth: float,
        is_write: bool,
    ) -> float:
        self._validate(offset, nbytes, is_write)
        if nbytes == 0:
            return 0.0
        timeline = self.clock.active_timeline
        background = timeline is not None
        issue_at = timeline.now if background else self.clock.now
        end = issue_at
        service_sum = 0.0
        wait_max = 0.0
        seeks_before = sum(m.stats.seeks for m in self.members)
        for member, member_offset, span in self._split(offset, nbytes):
            sub_end, sub_service, sub_wait = self.members[member]._service_at(
                issue_at,
                member_offset,
                span,
                access_seconds,
                bandwidth,
                is_write,
                background=background,
            )
            end = max(end, sub_end)
            service_sum += sub_service
            wait_max = max(wait_max, sub_wait)
        self.busy_until = max(self.busy_until, end)
        # Aggregate accounting: the array was "busy" for the access's
        # critical path; seeks count member head repositionings.
        seeked = sum(m.stats.seeks for m in self.members) - seeks_before
        latency = end - issue_at
        service = latency - wait_max  # critical-path service time
        self.stats.seeks += seeked
        if is_write:
            self.stats.write_ops += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.read_ops += 1
            self.stats.bytes_read += nbytes
        self.stats.busy_seconds += service
        self.stats.queue_wait_seconds += wait_max
        if background:
            self.stats.bg_busy_seconds += service
        if self._obs:
            if seeked:
                self._ctr_seeks.inc(seeked)
            if is_write:
                self._ctr_write_ops.inc()
                self._ctr_bytes_written.inc(nbytes)
            else:
                self._ctr_read_ops.inc()
                self._ctr_bytes_read.inc(nbytes)
            self._ctr_busy.inc(service)
            if background:
                self._ctr_bg_busy.inc(service)
                self._ctr_bg_wait.inc(wait_max)
            else:
                self._ctr_fg_busy.inc(service)
                self._ctr_fg_wait.inc(wait_max)
            self._gauge_backlog.set(max(0.0, self.busy_until - issue_at))
            self.runtime.trace.emit(
                "disk_io",
                disk=self.name,
                kind="write" if is_write else "read",
                nbytes=nbytes,
                seek=seeked > 0,
                busy=service,
                wait=wait_max,
                background=background,
            )
        if self._trace is not None:
            self._trace.append(
                IOEvent(
                    time=end,
                    kind="write" if is_write else "read",
                    offset=offset,
                    nbytes=nbytes,
                    seek=seeked > 0,
                    service=service,
                    wait=wait_max,
                    background=background,
                )
            )
        if background:
            timeline.advance_to(end)
        else:
            self.clock.advance_to(end)
        return latency

    def sync_barrier(self) -> None:
        """A barrier drains every member's queue (see base class)."""
        super().sync_barrier()
        for member in self.members:
            member.sync_barrier()

    def __repr__(self) -> str:
        return (
            f"StripedDisk(name={self.name!r}, model={self.model.name!r}, "
            f"stripes={len(self.members)}, chunk={self.chunk_bytes})"
        )
