"""A virtual clock shared by every simulated component.

All device service times, merge work and backpressure stalls advance this
clock; no component ever consults wall-clock time.  This makes every
benchmark in the repository deterministic and independent of host speed.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically increasing virtual time, in seconds.

    The clock starts at zero.  Components advance it by the service time of
    the work they perform; the benchmark harness reads :attr:`now` to
    compute latencies and throughput windows.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the simulation started."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises:
            ValueError: if ``seconds`` is negative (time never goes back).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
