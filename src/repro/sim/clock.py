"""A virtual clock shared by every simulated component.

All device service times, merge work and backpressure stalls advance this
clock; no component ever consults wall-clock time.  This makes every
benchmark in the repository deterministic and independent of host speed.

Concurrency model (docs/concurrency.md): the clock is the *foreground*
timeline — the application's point of view.  Background work (the paper's
merge threads, Section 5.1) runs on a :class:`Timeline`: an independent
position on the same virtual time axis.  While a timeline is installed via
:meth:`VirtualClock.running_on`, device service advances the timeline and
the device's busy horizon instead of the foreground clock, so merge I/O is
*overlapped* with application work rather than charged to it.  Foreground
requests still feel the merge through device queueing: a device whose
``busy_until`` horizon is ahead of the clock delays the next synchronous
request — contention, not charged service, exactly the distinction the
paper's dedicated log disk + data array hardware expresses.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class VirtualClock:
    """Monotonically increasing virtual time, in seconds.

    The clock starts at zero.  Components advance it by the service time of
    the work they perform; the benchmark harness reads :attr:`now` to
    compute latencies and throughput windows.
    """

    __slots__ = ("_now", "_active_timeline")

    def __init__(self) -> None:
        self._now = 0.0
        self._active_timeline: Timeline | None = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the simulation started."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises:
            ValueError: if ``seconds`` is negative (time never goes back).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to at least ``t`` and return the new time.

        Waiting for something that already happened is free: a ``t`` in
        the past leaves the clock unchanged (time never goes back).
        """
        if t > self._now:
            self._now = t
        return self._now

    @property
    def active_timeline(self) -> "Timeline | None":
        """The background timeline work is currently charged to, if any."""
        return self._active_timeline

    @contextmanager
    def running_on(self, timeline: "Timeline") -> Iterator["Timeline"]:
        """Charge all device service inside the block to ``timeline``.

        Devices consult :attr:`active_timeline` on every access: when one
        is installed, service advances the timeline and the device's busy
        horizon, leaving the foreground clock untouched.
        """
        previous = self._active_timeline
        self._active_timeline = timeline
        try:
            yield timeline
        finally:
            self._active_timeline = previous

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class Timeline:
    """An independent position on the shared virtual time axis.

    One :class:`Timeline` models one background worker (the paper's merge
    threads).  It only ever moves forward, and it can run *ahead* of the
    foreground clock — the worker has committed to servicing queued I/O
    into the future.  The gap, :meth:`lag`, is how long the worker stays
    busy from the foreground's point of view; dispatchers use
    :meth:`busy` to avoid handing a worker more work than real time
    allows, which is what converts "bytes dispatched" into a rate bounded
    by device speed.
    """

    __slots__ = ("name", "_now")

    def __init__(self, name: str = "background", start: float = 0.0) -> None:
        self.name = name
        self._now = start

    @property
    def now(self) -> float:
        """This worker's current position in virtual time."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to at least ``t`` and return the new position."""
        if t > self._now:
            self._now = t
        return self._now

    def catch_up(self, clock: VirtualClock) -> float:
        """Sync with the foreground clock before dispatching new work.

        An idle worker cannot perform work in the past: work dispatched
        at foreground time *t* starts no earlier than *t*.
        """
        return self.advance_to(clock.now)

    def lag(self, clock: VirtualClock) -> float:
        """Seconds of queued work ahead of the foreground clock (>= 0)."""
        return max(0.0, self._now - clock.now)

    def busy(self, clock: VirtualClock) -> bool:
        """Whether this worker is still servicing previously queued work."""
        return self._now > clock.now

    def __repr__(self) -> str:
        return f"Timeline(name={self.name!r}, now={self._now:.6f})"
