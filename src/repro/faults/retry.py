"""Bounded retry with exponential backoff, charged to the virtual clock.

Real LSM deployments survive transient device errors by retrying with
backoff; the cost is *time*, which this simulation charges to the shared
virtual clock so degraded-I/O runs show up as latency — the trade-off
"On Performance Stability in LSM-based Storage Systems" (Luo & Carey)
measures.  A :class:`RetryPolicy` is pure configuration; a
:class:`RetryExecutor` binds it to one engine's clock and metrics and is
threaded through the page file, WAL force, and logical-log force paths
by :class:`~repro.storage.stasis.Stasis` (the buffer manager and merge
I/O ride on the page file).

Only :class:`~repro.errors.TransientIOError` is retried.  Exhausting the
attempt budget raises a typed :class:`~repro.errors.IOFaultError`, and
exceeding the policy's virtual-clock ``deadline_seconds`` raises
:class:`~repro.errors.RetryDeadlineError` — never silent data loss and
never an unbounded retry loop.  A :class:`~repro.errors.CrashPoint` is a
``BaseException`` and always propagates: a dead process cannot retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.errors import IOFaultError, RetryDeadlineError, TransientIOError
from repro.sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runtime import EngineRuntime

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently failed I/O is retried.

    Attributes:
        max_attempts: total tries per access, including the first.
        base_backoff_seconds: sleep before the first retry.
        multiplier: backoff growth factor per further retry.
        deadline_seconds: total virtual-clock budget per access, measured
            from the first attempt; once the clock has advanced past it
            no further retry is issued (``None`` = attempts-only bound).
        jitter: fractional backoff randomization in ``[0, 1]``; each
            backoff is scaled by a seeded draw from
            ``[1 - jitter, 1 + jitter]`` so a fleet of retriers does not
            thunder in lockstep.  Zero (the default) keeps the historic
            deterministic schedule.
        seed: seed for the jitter RNG.  The seed travels *with the
            policy* so every executor built from it draws the same
            jitter sequence — replaying a faulted trace under the same
            policy reproduces the same backoff schedule bit-for-bit.
            (Module-level ``random`` would make replay depend on
            whatever else had consumed the global stream.)
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 1e-3
    multiplier: float = 2.0
    deadline_seconds: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_seconds < 0.0:
            raise ValueError(
                "base_backoff_seconds must be non-negative, got "
                f"{self.base_backoff_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ValueError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_seconds(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based), unjittered."""
        return self.base_backoff_seconds * self.multiplier**retry_index


class RetryExecutor:
    """Runs I/O thunks under a :class:`RetryPolicy` on one virtual clock."""

    def __init__(
        self,
        policy: RetryPolicy,
        clock: VirtualClock,
        runtime: "EngineRuntime | None" = None,
        seed: int | None = None,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.runtime = runtime
        # The policy carries the jitter seed (see RetryPolicy.seed); an
        # explicit ``seed`` argument overrides it for tests only.
        self._rng = random.Random(policy.seed if seed is None else seed)
        if runtime is not None:
            metrics = runtime.metrics
            self._ctr_retries = metrics.counter("retry.retries")
            self._ctr_backoff = metrics.counter("retry.backoff_seconds")
            self._ctr_exhausted = metrics.counter("retry.exhausted")
            self._ctr_deadline = metrics.counter("retry.deadline_exceeded")

    def run(self, op: Callable[[], T], what: str = "io") -> T:
        """Invoke ``op``, retrying transient faults with backoff.

        Raises:
            RetryDeadlineError: when the policy's virtual-clock deadline
                elapses before ``op`` succeeds.
            IOFaultError: when ``op`` still fails after the last attempt.
        """
        deadline = self.policy.deadline_seconds
        started = self.clock.now
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                return op()
            except TransientIOError as error:
                elapsed = self.clock.now - started
                if deadline is not None and elapsed >= deadline:
                    if self.runtime is not None:
                        self._ctr_deadline.inc()
                        self.runtime.trace.emit(
                            "io_retry_deadline",
                            what=what,
                            attempts=attempt,
                            deadline=deadline,
                        )
                    raise RetryDeadlineError(what, deadline, attempt) from error
                if attempt == self.policy.max_attempts:
                    if self.runtime is not None:
                        self._ctr_exhausted.inc()
                        self.runtime.trace.emit(
                            "io_retry_exhausted", what=what, attempts=attempt
                        )
                    raise IOFaultError(
                        f"{what}: transient fault persisted through "
                        f"{attempt} attempts"
                    ) from error
                backoff = self.policy.backoff_seconds(attempt - 1)
                if self.policy.jitter > 0.0:
                    spread = self.policy.jitter * (2.0 * self._rng.random() - 1.0)
                    backoff *= 1.0 + spread
                if deadline is not None:
                    # Never sleep past the deadline: cap the backoff so
                    # the last retry fires at the budget edge, not after.
                    backoff = min(backoff, max(0.0, deadline - elapsed))
                self.clock.advance(backoff)
                if self.runtime is not None:
                    self._ctr_retries.inc()
                    self._ctr_backoff.inc(backoff)
                    self.runtime.trace.emit(
                        "io_retry", what=what, attempt=attempt, backoff=backoff
                    )
        raise AssertionError("unreachable")  # pragma: no cover
