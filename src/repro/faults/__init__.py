"""Fault injection: faulty devices, retry hardening, crash-point harness.

The package models the failure modes a production LSM must survive
(Section 4.4.2's recovery discussion): transient device errors, torn
writes, whole-process crashes at arbitrary I/O boundaries, silent
corruption, and latency spikes.  Faults come from a seeded, deterministic
:class:`FaultPlan`; a :class:`FaultyDisk` injects them; a
:class:`RetryPolicy`/:class:`RetryExecutor` pair absorbs the transient
ones with backoff charged to the virtual clock.

The crash-point enumeration harness lives in
:mod:`repro.faults.crashpoints` (imported explicitly, not re-exported
here, because it depends on the engine layer above this package).
"""

from repro.faults.disk import FaultyDisk
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.retry import RetryExecutor, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultyDisk",
    "RetryExecutor",
    "RetryPolicy",
]
